//! Packed four-state bit vectors with Verilog evaluation semantics.
//!
//! [`LogicVec`] stores a vector of [`Logic`] values in the classic
//! simulator (aval, bval) packed encoding: two bit-planes of `u64` words.
//! All operations follow IEEE 1364 semantics: bitwise operators resolve
//! per bit, while arithmetic and relational operators degrade to all-`X`
//! as soon as any operand bit is unknown.
//!
//! # Representation
//!
//! The planes use a small-value representation: vectors of 64 bits or
//! fewer keep their single `(aval, bval)` word pair inline with zero
//! heap allocation (the overwhelming majority of nets in the benchmark
//! suite), spilling to heap-allocated `Vec<u64>` planes only for wider
//! vectors. The representation is canonical — a given width always uses
//! the same variant — so structural equality and hashing are unaffected.
//! Every operation additionally has a word-level fast path for the
//! one-word case, and the multi-word paths operate on whole words with
//! implicit zero-extension rather than materialising resized copies.

use crate::bits::{self, extract_word, low_mask, or_shifted, word_at, words_for, BitsRef};
use crate::logic::Logic;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Deref, DerefMut};

/// One bit-plane: a single word inline for widths <= 64, a heap
/// vector beyond. The variant is determined solely by the vector's
/// width, so equal values always have equal representations.
#[derive(Debug, Clone)]
enum Words {
    Inline(u64),
    Spilled(Vec<u64>),
}

impl Words {
    /// A plane of `n` words, each set to `fill`.
    fn filled(n: usize, fill: u64) -> Words {
        if n == 1 {
            Words::Inline(fill)
        } else {
            Words::Spilled(vec![fill; n])
        }
    }
}

impl Deref for Words {
    type Target = [u64];

    fn deref(&self) -> &[u64] {
        match self {
            Words::Inline(w) => std::slice::from_ref(w),
            Words::Spilled(v) => v,
        }
    }
}

impl DerefMut for Words {
    fn deref_mut(&mut self) -> &mut [u64] {
        match self {
            Words::Inline(w) => std::slice::from_mut(w),
            Words::Spilled(v) => v,
        }
    }
}

impl PartialEq for Words {
    fn eq(&self, other: &Words) -> bool {
        **self == **other
    }
}

impl Eq for Words {}

impl Hash for Words {
    fn hash<H: Hasher>(&self, state: &mut H) {
        (**self).hash(state);
    }
}

/// A fixed-width vector of four-state logic values.
///
/// Bit 0 is the least-significant bit, matching Verilog `[msb:0]`
/// declarations.
///
/// # Example
///
/// ```
/// use aivril_hdl::vec::LogicVec;
///
/// let a = LogicVec::from_u64(4, 0b1010);
/// let b = LogicVec::from_u64(4, 0b0011);
/// assert_eq!(a.add(&b).to_u64(), Some(0b1101));
/// assert_eq!(a.xor(&b).to_u64(), Some(0b1001));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct LogicVec {
    width: u32,
    /// Value plane: bit set = `1` or `X`.
    aval: Words,
    /// Unknown plane: bit set = `Z` or `X`.
    bval: Words,
}

impl LogicVec {
    /// Builds a one-word vector from pre-computed planes, masking to
    /// `width`. Only valid for `width <= 64`.
    fn inline(width: u32, aval: u64, bval: u64) -> LogicVec {
        debug_assert!(0 < width && width <= 64);
        let m = low_mask(width);
        LogicVec {
            width,
            aval: Words::Inline(aval & m),
            bval: Words::Inline(bval & m),
        }
    }

    /// Creates a vector of `width` bits, every bit set to `fill`.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    #[must_use]
    pub fn filled(width: u32, fill: Logic) -> LogicVec {
        assert!(width > 0, "LogicVec width must be non-zero");
        let n = words_for(width);
        let (a, b) = fill.to_avab();
        let mut v = LogicVec {
            width,
            aval: Words::filled(n, if a { u64::MAX } else { 0 }),
            bval: Words::filled(n, if b { u64::MAX } else { 0 }),
        };
        v.mask_top();
        v
    }

    /// All-zero vector of `width` bits.
    #[must_use]
    pub fn zeros(width: u32) -> LogicVec {
        LogicVec::filled(width, Logic::Zero)
    }

    /// All-`X` vector of `width` bits — the reset state of every register.
    #[must_use]
    pub fn xes(width: u32) -> LogicVec {
        LogicVec::filled(width, Logic::X)
    }

    /// Builds a vector of `width` bits from the low bits of `value`.
    #[must_use]
    pub fn from_u64(width: u32, value: u64) -> LogicVec {
        if width <= 64 {
            return LogicVec::inline(width, value, 0);
        }
        let mut v = LogicVec::zeros(width);
        v.aval[0] = value;
        v
    }

    /// Builds a single-bit vector from a scalar logic value.
    #[must_use]
    pub fn from_logic(value: Logic) -> LogicVec {
        LogicVec::filled(1, value)
    }

    /// `true` when this vector's planes are heap-allocated (width > 64).
    /// Diagnostic hook for the kernel's allocation accounting.
    #[must_use]
    pub fn is_spilled(&self) -> bool {
        matches!(self.aval, Words::Spilled(_))
    }

    /// A borrowed read-only view of the packed planes.
    #[must_use]
    pub fn as_bits(&self) -> BitsRef<'_> {
        BitsRef::new(self.width, &self.aval, &self.bval)
    }

    /// Builds a canonical vector from a borrowed plane view.
    ///
    /// # Panics
    ///
    /// Panics if `bits` has zero width.
    #[must_use]
    pub fn from_bits(bits: BitsRef<'_>) -> LogicVec {
        let width = bits.width();
        assert!(width > 0, "LogicVec width must be non-zero");
        if width <= 64 {
            let (a, b) = bits.word(0);
            return LogicVec::inline(width, a, b);
        }
        let (aval, bval) = bits.planes();
        LogicVec {
            width,
            aval: Words::Spilled(aval.to_vec()),
            bval: Words::Spilled(bval.to_vec()),
        }
    }

    /// Overwrites this vector in place from `bits`, keeping its own
    /// width (zero-extending or truncating `bits` — the same resize
    /// semantics as a full-net assignment). Never reallocates.
    pub fn assign_bits(&mut self, bits: BitsRef<'_>) {
        for i in 0..self.aval.len() {
            let (a, b) = bits.word(i);
            self.aval[i] = a;
            self.bval[i] = b;
        }
        self.mask_top();
    }

    /// Compares this vector against `bits` under the same resize
    /// semantics as [`assign_bits`](Self::assign_bits): `true` iff the
    /// assignment would leave the value unchanged.
    #[must_use]
    pub fn equals_bits(&self, bits: BitsRef<'_>) -> bool {
        for i in 0..self.aval.len() {
            let m = self.word_mask(i);
            let (a, b) = bits.word(i);
            if self.aval[i] != a & m || self.bval[i] != b & m {
                return false;
            }
        }
        true
    }

    /// Builds a vector from bits listed MSB-first, as they appear in a
    /// Verilog literal such as `4'b10x1`.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is empty.
    #[must_use]
    pub fn from_bits_msb_first(bits: &[Logic]) -> LogicVec {
        assert!(!bits.is_empty(), "bit list must be non-empty");
        let width = bits.len() as u32;
        let mut v = LogicVec::zeros(width);
        for (i, bit) in bits.iter().rev().enumerate() {
            v.set(i as u32, *bit);
        }
        v
    }

    /// Parses a string of `0 1 x z` characters (MSB first).
    ///
    /// Returns `None` on empty input or invalid characters.
    #[must_use]
    pub fn parse_binary(s: &str) -> Option<LogicVec> {
        let bits: Option<Vec<Logic>> = s.chars().map(Logic::from_char).collect();
        let bits = bits?;
        if bits.is_empty() {
            return None;
        }
        Some(LogicVec::from_bits_msb_first(&bits))
    }

    /// Width of this vector in bits.
    #[must_use]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Returns the bit at `index` (LSB = 0), or `Logic::X` when out of
    /// range (matching Verilog out-of-bounds select semantics).
    #[must_use]
    pub fn get(&self, index: u32) -> Logic {
        if index >= self.width {
            return Logic::X;
        }
        let (w, b) = ((index / 64) as usize, index % 64);
        Logic::from_avab(self.aval[w] >> b & 1 == 1, self.bval[w] >> b & 1 == 1)
    }

    /// Sets the bit at `index` (LSB = 0). Out-of-range writes are ignored,
    /// matching Verilog semantics for out-of-bounds part-select targets.
    pub fn set(&mut self, index: u32, value: Logic) {
        if index >= self.width {
            return;
        }
        let (w, b) = ((index / 64) as usize, index % 64);
        let (a, bb) = value.to_avab();
        let mask = 1u64 << b;
        if a {
            self.aval[w] |= mask;
        } else {
            self.aval[w] &= !mask;
        }
        if bb {
            self.bval[w] |= mask;
        } else {
            self.bval[w] &= !mask;
        }
    }

    /// `true` if any bit is `X` or `Z`.
    #[must_use]
    pub fn has_unknown(&self) -> bool {
        self.bval.iter().any(|&w| w != 0)
    }

    /// Interprets the vector as an unsigned integer.
    ///
    /// Returns `None` if any bit is unknown or the width exceeds 64 bits
    /// with non-zero high bits.
    #[must_use]
    pub fn to_u64(&self) -> Option<u64> {
        if self.has_unknown() {
            return None;
        }
        if self.aval.iter().skip(1).any(|&w| w != 0) {
            return None;
        }
        Some(self.aval[0])
    }

    /// Truthiness in a Verilog `if`: `Some(true)` when any bit is `1`,
    /// `Some(false)` when all bits are `0`, `None` when the answer depends
    /// on unknown bits.
    #[must_use]
    pub fn to_bool(&self) -> Option<bool> {
        let any_one = self
            .aval
            .iter()
            .zip(&*self.bval)
            .any(|(&a, &b)| a & !b != 0);
        if any_one {
            return Some(true);
        }
        if self.has_unknown() {
            return None;
        }
        Some(false)
    }

    /// Iterates over bits from LSB to MSB.
    pub fn iter(&self) -> impl Iterator<Item = Logic> + '_ {
        (0..self.width).map(move |i| self.get(i))
    }

    fn mask_top(&mut self) {
        let rem = self.width % 64;
        if rem != 0 {
            let mask = (1u64 << rem) - 1;
            let last = self.aval.len() - 1;
            self.aval[last] &= mask;
            self.bval[last] &= mask;
        }
    }

    /// Valid-bit mask for word `i` of this vector's planes.
    fn word_mask(&self, i: usize) -> u64 {
        let rem = self.width % 64;
        if rem != 0 && i == words_for(self.width) - 1 {
            (1u64 << rem) - 1
        } else {
            u64::MAX
        }
    }

    /// Zero-extends or truncates to `width` bits.
    #[must_use]
    pub fn resize(&self, width: u32) -> LogicVec {
        if width <= 64 && self.width <= 64 {
            return LogicVec::inline(width, self.aval[0], self.bval[0]);
        }
        let mut out = LogicVec::zeros(width);
        let n = out.aval.len().min(self.aval.len());
        out.aval[..n].copy_from_slice(&self.aval[..n]);
        out.bval[..n].copy_from_slice(&self.bval[..n]);
        out.mask_top();
        out
    }

    /// Bitwise AND with Verilog four-state resolution, computed
    /// word-parallel over the (aval, bval) planes:
    /// a bit is known-0 iff `!a & !b`; the result is 0 where either
    /// operand is known-0, 1 where both are known-1, X otherwise.
    #[must_use]
    pub fn and(&self, rhs: &LogicVec) -> LogicVec {
        self.word_bitwise(rhs, bits::and_words)
    }

    /// Bitwise OR with Verilog four-state resolution (word-parallel):
    /// 1 where either operand is known-1, 0 where both are known-0, X
    /// otherwise.
    #[must_use]
    pub fn or(&self, rhs: &LogicVec) -> LogicVec {
        self.word_bitwise(rhs, bits::or_words)
    }

    /// Bitwise XOR with Verilog four-state resolution (word-parallel):
    /// X wherever either operand is unknown, else the plain XOR.
    #[must_use]
    pub fn xor(&self, rhs: &LogicVec) -> LogicVec {
        self.word_bitwise(rhs, bits::xor_words)
    }

    /// Bitwise XNOR with Verilog four-state resolution (word-parallel).
    #[must_use]
    pub fn xnor(&self, rhs: &LogicVec) -> LogicVec {
        self.word_bitwise(rhs, bits::xnor_words)
    }

    /// Word-parallel bitwise combinator: `f` receives one 64-bit word of
    /// each operand's (aval, bval) planes (zero-extended to the common
    /// width) and returns the result word's planes.
    fn word_bitwise(
        &self,
        rhs: &LogicVec,
        f: impl Fn(u64, u64, u64, u64) -> (u64, u64),
    ) -> LogicVec {
        let width = self.width.max(rhs.width);
        if width <= 64 {
            let (av, bv) = f(self.aval[0], self.bval[0], rhs.aval[0], rhs.bval[0]);
            return LogicVec::inline(width, av, bv);
        }
        let mut out = LogicVec::zeros(width);
        for i in 0..out.aval.len() {
            let (av, bv) = f(
                word_at(&self.aval, i),
                word_at(&self.bval, i),
                word_at(&rhs.aval, i),
                word_at(&rhs.bval, i),
            );
            out.aval[i] = av;
            out.bval[i] = bv;
        }
        out.mask_top();
        out
    }

    /// Bitwise NOT with four-state resolution (word-parallel): known
    /// bits invert; X/Z become X.
    #[must_use]
    pub fn not(&self) -> LogicVec {
        let mut out = LogicVec::zeros(self.width);
        for i in 0..self.aval.len() {
            let unk = self.bval[i];
            out.aval[i] = !self.aval[i] | unk;
            out.bval[i] = unk;
        }
        out.mask_top();
        out
    }

    /// Reduction AND over all bits: `0` if any bit is a known zero, else
    /// `X` if any bit is unknown, else `1` (word-parallel; matches the
    /// per-bit [`Logic::and`] fold because AND is monotone and
    /// commutative).
    #[must_use]
    pub fn reduce_and(&self) -> Logic {
        let mut unknown = false;
        for (i, (&a, &b)) in self.aval.iter().zip(&*self.bval).enumerate() {
            if !a & !b & self.word_mask(i) != 0 {
                return Logic::Zero;
            }
            unknown |= b != 0;
        }
        if unknown {
            Logic::X
        } else {
            Logic::One
        }
    }

    /// Reduction OR over all bits: `1` if any bit is a known one, else
    /// `X` if any bit is unknown, else `0` (word-parallel).
    #[must_use]
    pub fn reduce_or(&self) -> Logic {
        let mut unknown = false;
        for (&a, &b) in self.aval.iter().zip(&*self.bval) {
            if a & !b != 0 {
                return Logic::One;
            }
            unknown |= b != 0;
        }
        if unknown {
            Logic::X
        } else {
            Logic::Zero
        }
    }

    /// Reduction XOR over all bits (parity): `X` if any bit is unknown,
    /// else the popcount parity (word-parallel).
    #[must_use]
    pub fn reduce_xor(&self) -> Logic {
        if self.has_unknown() {
            return Logic::X;
        }
        let ones: u32 = self.aval.iter().map(|w| w.count_ones()).sum();
        Logic::from_bool(ones % 2 == 1)
    }

    /// Word-level arithmetic helper, exact for results that fit in the low
    /// 64 bits (multiplication of wider values keeps only the low word, the
    /// same truncation Verilog applies at the result width).
    fn binary_arith(&self, rhs: &LogicVec, width: u32, op: impl Fn(u64, u64) -> u64) -> LogicVec {
        if self.has_unknown() || rhs.has_unknown() {
            return LogicVec::xes(width);
        }
        let low = op(self.aval[0], rhs.aval[0]);
        if width <= 64 {
            return LogicVec::inline(width, low, 0);
        }
        let mut out = LogicVec::zeros(width);
        out.aval[0] = low;
        out
    }

    /// Addition with Verilog X-propagation: any unknown operand bit makes
    /// the whole result `X`. Result width is the max operand width.
    #[must_use]
    pub fn add(&self, rhs: &LogicVec) -> LogicVec {
        let width = self.width.max(rhs.width);
        if self.has_unknown() || rhs.has_unknown() {
            return LogicVec::xes(width);
        }
        if width <= 64 {
            return LogicVec::inline(width, self.aval[0].wrapping_add(rhs.aval[0]), 0);
        }
        let mut out = LogicVec::zeros(width);
        let mut carry = 0u128;
        for i in 0..out.aval.len() {
            let sum = word_at(&self.aval, i) as u128 + word_at(&rhs.aval, i) as u128 + carry;
            out.aval[i] = sum as u64;
            carry = sum >> 64;
        }
        out.mask_top();
        out
    }

    /// Subtraction (two's complement wraparound) with X-propagation.
    #[must_use]
    pub fn sub(&self, rhs: &LogicVec) -> LogicVec {
        let width = self.width.max(rhs.width);
        if self.has_unknown() || rhs.has_unknown() {
            return LogicVec::xes(width);
        }
        if width <= 64 {
            return LogicVec::inline(width, self.aval[0].wrapping_sub(rhs.aval[0]), 0);
        }
        // a - b == a + (!b + 1) over the common width; `!b` is computed
        // per word against that width's masks, so the borrow chain wraps
        // exactly like the two's-complement path it replaces.
        let mut out = LogicVec::zeros(width);
        let last = out.aval.len() - 1;
        let mut carry = 1u128;
        for i in 0..out.aval.len() {
            let m = if i == last {
                low_mask(((width - 1) % 64) + 1)
            } else {
                u64::MAX
            };
            let sum = word_at(&self.aval, i) as u128 + (!word_at(&rhs.aval, i) & m) as u128 + carry;
            out.aval[i] = sum as u64;
            carry = sum >> 64;
        }
        out.mask_top();
        out
    }

    /// Two's-complement negation with X-propagation.
    #[must_use]
    pub fn negate(&self) -> LogicVec {
        if self.has_unknown() {
            return LogicVec::xes(self.width);
        }
        if self.width <= 64 {
            return LogicVec::inline(self.width, self.aval[0].wrapping_neg(), 0);
        }
        LogicVec::zeros(self.width).sub(self)
    }

    /// Multiplication (low bits) with X-propagation.
    #[must_use]
    pub fn mul(&self, rhs: &LogicVec) -> LogicVec {
        let width = self.width.max(rhs.width);
        self.binary_arith(rhs, width, u64::wrapping_mul)
    }

    /// Division; division by zero or unknown operands yield all-`X`,
    /// matching IEEE 1364.
    #[must_use]
    pub fn div(&self, rhs: &LogicVec) -> LogicVec {
        let width = self.width.max(rhs.width);
        match (self.to_u64(), rhs.to_u64()) {
            (Some(a), Some(b)) if b != 0 => LogicVec::from_u64(width, a / b),
            _ => LogicVec::xes(width),
        }
    }

    /// Remainder; modulo zero or unknown operands yield all-`X`.
    #[must_use]
    pub fn rem(&self, rhs: &LogicVec) -> LogicVec {
        let width = self.width.max(rhs.width);
        match (self.to_u64(), rhs.to_u64()) {
            (Some(a), Some(b)) if b != 0 => LogicVec::from_u64(width, a % b),
            _ => LogicVec::xes(width),
        }
    }

    /// Logical shift left; an unknown shift amount yields all-`X`.
    #[must_use]
    pub fn shl(&self, amount: &LogicVec) -> LogicVec {
        match amount.to_u64() {
            Some(n) => self.shift_left_const(n as u32),
            None => LogicVec::xes(self.width),
        }
    }

    /// Logical shift right; an unknown shift amount yields all-`X`.
    #[must_use]
    pub fn shr(&self, amount: &LogicVec) -> LogicVec {
        match amount.to_u64() {
            Some(n) => self.shift_right_const(n as u32),
            None => LogicVec::xes(self.width),
        }
    }

    /// Shift left by a constant amount, filling with zeros.
    #[must_use]
    pub fn shift_left_const(&self, n: u32) -> LogicVec {
        if n >= self.width {
            return LogicVec::zeros(self.width);
        }
        if self.width <= 64 {
            return LogicVec::inline(self.width, self.aval[0] << n, self.bval[0] << n);
        }
        let mut out = LogicVec::zeros(self.width);
        let (ws, bs) = ((n / 64) as usize, n % 64);
        for i in ws..out.aval.len() {
            let lo_a = self.aval[i - ws] << bs;
            let lo_b = self.bval[i - ws] << bs;
            let (hi_a, hi_b) = if bs > 0 && i > ws {
                (
                    self.aval[i - ws - 1] >> (64 - bs),
                    self.bval[i - ws - 1] >> (64 - bs),
                )
            } else {
                (0, 0)
            };
            out.aval[i] = lo_a | hi_a;
            out.bval[i] = lo_b | hi_b;
        }
        out.mask_top();
        out
    }

    /// Shift right by a constant amount, filling with zeros.
    #[must_use]
    pub fn shift_right_const(&self, n: u32) -> LogicVec {
        if n >= self.width {
            return LogicVec::zeros(self.width);
        }
        if self.width <= 64 {
            return LogicVec::inline(self.width, self.aval[0] >> n, self.bval[0] >> n);
        }
        let mut out = LogicVec::zeros(self.width);
        for i in 0..out.aval.len() {
            let bit = n + 64 * i as u32;
            out.aval[i] = extract_word(&self.aval, bit);
            out.bval[i] = extract_word(&self.bval, bit);
        }
        out.mask_top();
        out
    }

    /// Logical equality (`==`): returns `X` if either operand has unknown
    /// bits, else `0`/`1`.
    #[must_use]
    pub fn logic_eq(&self, rhs: &LogicVec) -> Logic {
        if self.has_unknown() || rhs.has_unknown() {
            return Logic::X;
        }
        Logic::from_bool(self.known_equal(rhs))
    }

    /// Case equality (`===`): exact four-state comparison, always `0`/`1`
    /// (the shorter operand zero-extends, like the per-bit definition).
    #[must_use]
    pub fn case_eq(&self, rhs: &LogicVec) -> bool {
        let n = self.aval.len().max(rhs.aval.len());
        (0..n).all(|i| {
            word_at(&self.aval, i) == word_at(&rhs.aval, i)
                && word_at(&self.bval, i) == word_at(&rhs.bval, i)
        })
    }

    fn known_equal(&self, rhs: &LogicVec) -> bool {
        let n = self.aval.len().max(rhs.aval.len());
        (0..n).all(|i| word_at(&self.aval, i) == word_at(&rhs.aval, i))
    }

    /// Unsigned less-than: `X` on unknown operands.
    #[must_use]
    pub fn lt(&self, rhs: &LogicVec) -> Logic {
        match self.value_cmp(rhs) {
            Some(ord) => Logic::from_bool(ord == std::cmp::Ordering::Less),
            None => Logic::X,
        }
    }

    /// Unsigned less-or-equal: `X` on unknown operands.
    #[must_use]
    pub fn le(&self, rhs: &LogicVec) -> Logic {
        match self.value_cmp(rhs) {
            Some(ord) => Logic::from_bool(ord != std::cmp::Ordering::Greater),
            None => Logic::X,
        }
    }

    /// Unsigned greater-than: `X` on unknown operands.
    #[must_use]
    pub fn gt(&self, rhs: &LogicVec) -> Logic {
        rhs.lt(self)
    }

    /// Unsigned greater-or-equal: `X` on unknown operands.
    #[must_use]
    pub fn ge(&self, rhs: &LogicVec) -> Logic {
        rhs.le(self)
    }

    /// Unsigned value comparison; `None` when unknown bits are present.
    #[must_use]
    pub fn value_cmp(&self, rhs: &LogicVec) -> Option<std::cmp::Ordering> {
        if self.has_unknown() || rhs.has_unknown() {
            return None;
        }
        let n = self.aval.len().max(rhs.aval.len());
        for i in (0..n).rev() {
            match word_at(&self.aval, i).cmp(&word_at(&rhs.aval, i)) {
                std::cmp::Ordering::Equal => continue,
                ord => return Some(ord),
            }
        }
        Some(std::cmp::Ordering::Equal)
    }

    /// Concatenates `{self, low}` — `self` supplies the high bits, as in
    /// the Verilog concatenation `{a, b}` where `a` is written first.
    #[must_use]
    pub fn concat(&self, low: &LogicVec) -> LogicVec {
        let width = self.width + low.width;
        if width <= 64 {
            return LogicVec::inline(
                width,
                self.aval[0] << low.width | low.aval[0],
                self.bval[0] << low.width | low.bval[0],
            );
        }
        let mut out = LogicVec::zeros(width);
        or_shifted(&mut out.aval, &low.aval, 0);
        or_shifted(&mut out.bval, &low.bval, 0);
        or_shifted(&mut out.aval, &self.aval, low.width);
        or_shifted(&mut out.bval, &self.bval, low.width);
        out
    }

    /// Replicates the vector `count` times, as in `{count{v}}`.
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero.
    #[must_use]
    pub fn replicate(&self, count: u32) -> LogicVec {
        assert!(count > 0, "replication count must be non-zero");
        let mut out = self.clone();
        for _ in 1..count {
            out = out.concat(self);
        }
        out
    }

    /// Extracts bits `[msb:lsb]` (inclusive, LSB-0 indexing).
    ///
    /// Out-of-range bits read as `X`, matching Verilog.
    #[must_use]
    pub fn slice(&self, msb: u32, lsb: u32) -> LogicVec {
        let (msb, lsb) = if msb >= lsb { (msb, lsb) } else { (lsb, msb) };
        let width = msb - lsb + 1;
        // Bits at positions >= `known` fall outside the source and read X.
        let known = self.width.saturating_sub(lsb);
        if width <= 64 && self.width <= 64 {
            if known == 0 {
                return LogicVec::xes(width);
            }
            let xfill = low_mask(width) & !low_mask(known);
            return LogicVec::inline(
                width,
                self.aval[0] >> lsb | xfill,
                self.bval[0] >> lsb | xfill,
            );
        }
        let mut out = LogicVec::zeros(width);
        for i in 0..out.aval.len() {
            let bit = lsb + 64 * i as u32;
            out.aval[i] = extract_word(&self.aval, bit);
            out.bval[i] = extract_word(&self.bval, bit);
        }
        if known < width {
            let (ws, bs) = ((known / 64) as usize, known % 64);
            for i in ws..out.aval.len() {
                let m = if i == ws { u64::MAX << bs } else { u64::MAX };
                out.aval[i] |= m;
                out.bval[i] |= m;
            }
        }
        out.mask_top();
        out
    }

    /// Writes `value` into bits `[msb:lsb]`, truncating or zero-extending
    /// `value` as needed.
    pub fn set_slice(&mut self, msb: u32, lsb: u32, value: &LogicVec) {
        let (msb, lsb) = if msb >= lsb { (msb, lsb) } else { (lsb, msb) };
        if lsb >= self.width {
            return;
        }
        // Full overwrite by an equal-width value: copy the planes whole.
        if lsb == 0 && msb + 1 >= self.width && value.width == self.width {
            self.aval.copy_from_slice(&value.aval);
            self.bval.copy_from_slice(&value.bval);
            return;
        }
        if self.width <= 64 {
            // Effective bits written: [lsb, min(msb + 1, self.width)).
            let eff = (msb + 1).min(self.width) - lsb;
            let window = low_mask(eff) << lsb;
            // value bits beyond value.width read as known zero, which the
            // plane encoding already provides.
            let va = (value.aval[0] & low_mask(eff)) << lsb;
            let vb = (value.bval[0] & low_mask(eff)) << lsb;
            self.aval[0] = self.aval[0] & !window | va;
            self.bval[0] = self.bval[0] & !window | vb;
            return;
        }
        for i in 0..=(msb - lsb) {
            let bit = if i < value.width {
                value.get(i)
            } else {
                Logic::Zero
            };
            self.set(lsb + i, bit);
        }
    }

    /// Population count of `1` bits; `None` if any bit is unknown.
    #[must_use]
    pub fn count_ones(&self) -> Option<u32> {
        if self.has_unknown() {
            return None;
        }
        Some(self.aval.iter().map(|w| w.count_ones()).sum())
    }

    /// Renders as a binary digit string, MSB first (no width prefix).
    #[must_use]
    pub fn to_binary_string(&self) -> String {
        (0..self.width)
            .rev()
            .map(|i| self.get(i).to_char())
            .collect()
    }

    /// Renders as lowercase hex; nibbles containing unknown bits render
    /// as `x`/`z` like a Verilog `%h` format.
    #[must_use]
    pub fn to_hex_string(&self) -> String {
        let nibbles = self.width.div_ceil(4);
        let mut s = String::new();
        for n in (0..nibbles).rev() {
            let lsb = n * 4;
            let msb = (lsb + 3).min(self.width - 1);
            let nib = self.slice(msb, lsb);
            if nib.has_unknown() {
                let all_z = nib.iter().all(|b| b == Logic::Z);
                s.push(if all_z { 'z' } else { 'x' });
            } else {
                let v = nib.to_u64().expect("known nibble");
                s.push(char::from_digit(v as u32, 16).expect("nibble < 16"));
            }
        }
        s
    }

    /// Renders as decimal, or `x`/`z` when unknown bits are present.
    #[must_use]
    pub fn to_decimal_string(&self) -> String {
        match self.to_u64() {
            Some(v) => v.to_string(),
            None => {
                if self.iter().all(|b| b == Logic::Z) {
                    "z".to_string()
                } else {
                    "x".to_string()
                }
            }
        }
    }
}

impl fmt::Display for LogicVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}'b{}", self.width, self.to_binary_string())
    }
}

impl From<bool> for LogicVec {
    fn from(b: bool) -> LogicVec {
        LogicVec::from_logic(Logic::from_bool(b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_u64_roundtrip() {
        let v = LogicVec::from_u64(16, 0xBEEF);
        assert_eq!(v.to_u64(), Some(0xBEEF));
        assert_eq!(v.width(), 16);
    }

    #[test]
    fn width_truncates_value() {
        let v = LogicVec::from_u64(4, 0xFF);
        assert_eq!(v.to_u64(), Some(0xF));
    }

    #[test]
    fn parse_binary_with_unknowns() {
        let v = LogicVec::parse_binary("10xz").expect("valid literal");
        assert_eq!(v.get(3), Logic::One);
        assert_eq!(v.get(2), Logic::Zero);
        assert_eq!(v.get(1), Logic::X);
        assert_eq!(v.get(0), Logic::Z);
        assert!(v.has_unknown());
        assert_eq!(v.to_u64(), None);
    }

    #[test]
    fn add_wraps_at_width() {
        let a = LogicVec::from_u64(4, 0xF);
        let b = LogicVec::from_u64(4, 1);
        assert_eq!(a.add(&b).to_u64(), Some(0));
    }

    #[test]
    fn add_propagates_x() {
        let a = LogicVec::parse_binary("1x00").expect("valid");
        let b = LogicVec::from_u64(4, 1);
        let sum = a.add(&b);
        assert!(sum.iter().all(|bit| bit == Logic::X));
    }

    #[test]
    fn wide_add_carries_across_words() {
        let a = LogicVec::from_u64(128, u64::MAX).resize(128);
        let b = LogicVec::from_u64(128, 1);
        let sum = a.add(&b);
        assert_eq!(sum.get(64), Logic::One);
        for i in 0..64 {
            assert_eq!(sum.get(i), Logic::Zero);
        }
    }

    #[test]
    fn sub_wraps_two_complement() {
        let a = LogicVec::from_u64(8, 3);
        let b = LogicVec::from_u64(8, 5);
        assert_eq!(a.sub(&b).to_u64(), Some(0xFE));
    }

    #[test]
    fn wide_sub_borrows_across_words() {
        // 2^64 - 1 == u64::MAX at width 100.
        let a = LogicVec::from_u64(100, 0).set_bit_at(64);
        let b = LogicVec::from_u64(100, 1);
        let diff = a.sub(&b);
        assert_eq!(diff.get(64), Logic::Zero);
        for i in 0..64 {
            assert_eq!(diff.get(i), Logic::One, "bit {i}");
        }
        // And 0 - 1 wraps to all-ones at the full width.
        let z = LogicVec::zeros(100);
        let wrapped = z.sub(&LogicVec::from_u64(100, 1));
        assert!(wrapped.iter().all(|bit| bit == Logic::One));
    }

    impl LogicVec {
        /// Test helper: returns a copy with bit `i` set to `1`.
        fn set_bit_at(mut self, i: u32) -> LogicVec {
            self.set(i, Logic::One);
            self
        }
    }

    #[test]
    fn div_by_zero_is_x() {
        let a = LogicVec::from_u64(8, 42);
        let z = LogicVec::from_u64(8, 0);
        assert!(a.div(&z).has_unknown());
        assert!(a.rem(&z).has_unknown());
    }

    #[test]
    fn logic_eq_vs_case_eq() {
        let a = LogicVec::parse_binary("1x").expect("valid");
        let b = LogicVec::parse_binary("1x").expect("valid");
        assert_eq!(a.logic_eq(&b), Logic::X);
        assert!(a.case_eq(&b));
        let c = LogicVec::parse_binary("10").expect("valid");
        assert!(!a.case_eq(&c));
    }

    #[test]
    fn comparisons() {
        let a = LogicVec::from_u64(8, 5);
        let b = LogicVec::from_u64(8, 9);
        assert_eq!(a.lt(&b), Logic::One);
        assert_eq!(b.lt(&a), Logic::Zero);
        assert_eq!(a.le(&a), Logic::One);
        assert_eq!(b.gt(&a), Logic::One);
        assert_eq!(a.ge(&b), Logic::Zero);
    }

    #[test]
    fn comparison_with_x_is_x() {
        let a = LogicVec::parse_binary("0x").expect("valid");
        let b = LogicVec::from_u64(2, 1);
        assert_eq!(a.lt(&b), Logic::X);
    }

    #[test]
    fn concat_and_slice() {
        let hi = LogicVec::from_u64(4, 0xA);
        let lo = LogicVec::from_u64(4, 0x5);
        let v = hi.concat(&lo);
        assert_eq!(v.to_u64(), Some(0xA5));
        assert_eq!(v.slice(7, 4).to_u64(), Some(0xA));
        assert_eq!(v.slice(3, 0).to_u64(), Some(0x5));
    }

    #[test]
    fn wide_concat_crosses_word_boundaries() {
        let hi = LogicVec::from_u64(40, 0xAB_CDEF_0123);
        let lo = LogicVec::from_u64(40, 0x45_6789_ABCD);
        let v = hi.concat(&lo);
        assert_eq!(v.width(), 80);
        assert_eq!(v.slice(39, 0).to_u64(), Some(0x45_6789_ABCD));
        assert_eq!(v.slice(79, 40).to_u64(), Some(0xAB_CDEF_0123));
    }

    #[test]
    fn replicate() {
        let v = LogicVec::from_u64(2, 0b10);
        assert_eq!(v.replicate(3).to_u64(), Some(0b101010));
    }

    #[test]
    fn slice_out_of_range_reads_x() {
        let v = LogicVec::from_u64(8, 0xFF);
        let s = v.slice(11, 4);
        assert_eq!(s.width(), 8);
        for i in 0..4 {
            assert_eq!(s.get(i), Logic::One, "in-range bit {i}");
        }
        for i in 4..8 {
            assert_eq!(s.get(i), Logic::X, "out-of-range bit {i}");
        }
        assert!(v.slice(20, 10).iter().all(|b| b == Logic::X));
    }

    #[test]
    fn set_slice_updates_range() {
        let mut v = LogicVec::zeros(8);
        v.set_slice(7, 4, &LogicVec::from_u64(4, 0xF));
        assert_eq!(v.to_u64(), Some(0xF0));
    }

    #[test]
    fn set_slice_clamps_to_width() {
        let mut v = LogicVec::from_u64(8, 0xFF);
        // Target bits beyond the vector are ignored; value bits beyond
        // the value read as zero.
        v.set_slice(11, 6, &LogicVec::from_u64(2, 0b01));
        assert_eq!(v.to_u64(), Some(0b0111_1111));
        let mut w = LogicVec::from_u64(8, 0);
        w.set_slice(20, 10, &LogicVec::from_u64(4, 0xF));
        assert_eq!(w.to_u64(), Some(0));
    }

    #[test]
    fn shifts() {
        let v = LogicVec::from_u64(8, 0b0000_0110);
        assert_eq!(v.shift_left_const(2).to_u64(), Some(0b0001_1000));
        assert_eq!(v.shift_right_const(1).to_u64(), Some(0b0000_0011));
        assert_eq!(v.shift_left_const(8).to_u64(), Some(0));
        assert_eq!(v.shift_right_const(20).to_u64(), Some(0));
    }

    #[test]
    fn wide_shifts_cross_words() {
        let v = LogicVec::from_u64(130, 0b1011);
        let l = v.shift_left_const(70);
        assert_eq!(l.get(70), Logic::One);
        assert_eq!(l.get(71), Logic::One);
        assert_eq!(l.get(72), Logic::Zero);
        assert_eq!(l.get(73), Logic::One);
        assert_eq!(l.shift_right_const(70).slice(3, 0).to_u64(), Some(0b1011));
        // X/Z bits travel with the shift.
        let mut x = LogicVec::zeros(130);
        x.set(0, Logic::X);
        assert_eq!(x.shift_left_const(100).get(100), Logic::X);
    }

    #[test]
    fn reductions() {
        assert_eq!(LogicVec::from_u64(4, 0xF).reduce_and(), Logic::One);
        assert_eq!(LogicVec::from_u64(4, 0x7).reduce_and(), Logic::Zero);
        assert_eq!(LogicVec::from_u64(4, 0).reduce_or(), Logic::Zero);
        assert_eq!(LogicVec::from_u64(4, 0b0110).reduce_xor(), Logic::Zero);
        assert_eq!(LogicVec::from_u64(4, 0b0111).reduce_xor(), Logic::One);
    }

    #[test]
    fn reductions_with_unknowns() {
        let v = LogicVec::parse_binary("1x11").expect("valid");
        assert_eq!(v.reduce_and(), Logic::X);
        assert_eq!(v.reduce_or(), Logic::One);
        assert_eq!(v.reduce_xor(), Logic::X);
        let z = LogicVec::parse_binary("0z00").expect("valid");
        assert_eq!(z.reduce_and(), Logic::Zero);
        assert_eq!(z.reduce_or(), Logic::X);
    }

    #[test]
    fn to_bool_semantics() {
        assert_eq!(LogicVec::from_u64(4, 2).to_bool(), Some(true));
        assert_eq!(LogicVec::from_u64(4, 0).to_bool(), Some(false));
        // 1x -> true because a known 1 exists.
        let v = LogicVec::parse_binary("1x").expect("valid");
        assert_eq!(v.to_bool(), Some(true));
        // 0x -> unknown.
        let v = LogicVec::parse_binary("0x").expect("valid");
        assert_eq!(v.to_bool(), None);
    }

    #[test]
    fn hex_rendering() {
        assert_eq!(LogicVec::from_u64(12, 0xABC).to_hex_string(), "abc");
        let v = LogicVec::parse_binary("1010xxxx").expect("valid");
        assert_eq!(v.to_hex_string(), "ax");
    }

    #[test]
    fn decimal_rendering() {
        assert_eq!(LogicVec::from_u64(8, 77).to_decimal_string(), "77");
        assert_eq!(LogicVec::xes(8).to_decimal_string(), "x");
        assert_eq!(LogicVec::filled(8, Logic::Z).to_decimal_string(), "z");
    }

    #[test]
    fn display_format() {
        assert_eq!(LogicVec::from_u64(4, 0b1010).to_string(), "4'b1010");
    }

    #[test]
    fn out_of_range_reads_x() {
        let v = LogicVec::from_u64(4, 0xF);
        assert_eq!(v.get(10), Logic::X);
    }

    #[test]
    fn representation_is_canonical_per_width() {
        // Same width always picks the same variant, whatever the
        // construction path, so equality/hash never see mixed forms.
        for w in [1, 32, 63, 64] {
            assert!(!LogicVec::zeros(w).is_spilled());
            assert!(!LogicVec::xes(w).is_spilled());
            assert!(!LogicVec::from_u64(128, 7).resize(w).is_spilled());
            assert!(!LogicVec::from_u64(w, 1)
                .add(&LogicVec::from_u64(w, 1))
                .is_spilled());
        }
        for w in [65, 127, 128, 129, 200] {
            assert!(LogicVec::zeros(w).is_spilled());
            assert!(LogicVec::from_u64(1, 1).resize(w).is_spilled());
        }
    }

    #[test]
    fn word_boundary_widths_roundtrip() {
        for w in [63u32, 64, 65, 127, 128, 129] {
            let ones = LogicVec::filled(w, Logic::One);
            assert_eq!(ones.count_ones(), Some(w));
            assert_eq!(ones.reduce_and(), Logic::One);
            let inc = ones.add(&LogicVec::from_u64(w, 1));
            assert_eq!(inc.count_ones(), Some(0), "2^{w} wraps to zero");
            assert_eq!(ones.sub(&ones).count_ones(), Some(0));
            assert_eq!(ones.not().count_ones(), Some(0));
            assert_eq!(ones.concat(&ones).width(), 2 * w);
            assert_eq!(ones.slice(w - 1, 0), ones);
        }
    }
}
