//! The simulated model's "knowledge": golden solutions per task.

use std::collections::HashMap;

/// Golden artefacts for one task in both languages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskKnowledge {
    /// Golden Verilog DUT.
    pub verilog_dut: String,
    /// Golden Verilog testbench.
    pub verilog_tb: String,
    /// Golden VHDL DUT.
    pub vhdl_dut: String,
    /// Golden VHDL testbench.
    pub vhdl_tb: String,
}

impl TaskKnowledge {
    /// DUT for the selected language.
    #[must_use]
    pub fn dut(&self, verilog: bool) -> &str {
        if verilog {
            &self.verilog_dut
        } else {
            &self.vhdl_dut
        }
    }

    /// Testbench for the selected language.
    #[must_use]
    pub fn tb(&self, verilog: bool) -> &str {
        if verilog {
            &self.verilog_tb
        } else {
            &self.vhdl_tb
        }
    }
}

/// Maps task names to golden solutions. This models what a competent
/// LLM "knows" about each benchmark design; the fault-injection engine
/// then degrades that knowledge at the profile's calibrated rates.
#[derive(Debug, Clone, Default)]
pub struct TaskLibrary {
    tasks: HashMap<String, TaskKnowledge>,
}

impl TaskLibrary {
    /// Creates an empty library.
    #[must_use]
    pub fn new() -> TaskLibrary {
        TaskLibrary::default()
    }

    /// Registers a task's golden artefacts.
    pub fn add_task(
        &mut self,
        name: impl Into<String>,
        verilog_dut: impl Into<String>,
        verilog_tb: impl Into<String>,
        vhdl_dut: impl Into<String>,
        vhdl_tb: impl Into<String>,
    ) {
        self.tasks.insert(
            name.into(),
            TaskKnowledge {
                verilog_dut: verilog_dut.into(),
                verilog_tb: verilog_tb.into(),
                vhdl_dut: vhdl_dut.into(),
                vhdl_tb: vhdl_tb.into(),
            },
        );
    }

    /// Looks up a task by name.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&TaskKnowledge> {
        self.tasks.get(name)
    }

    /// Number of known tasks.
    #[must_use]
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// `true` when no tasks are registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_lookup() {
        let mut lib = TaskLibrary::new();
        assert!(lib.is_empty());
        lib.add_task("t1", "vdut", "vtb", "hdut", "htb");
        assert_eq!(lib.len(), 1);
        let k = lib.get("t1").expect("present");
        assert_eq!(k.dut(true), "vdut");
        assert_eq!(k.dut(false), "hdut");
        assert_eq!(k.tb(true), "vtb");
        assert_eq!(k.tb(false), "htb");
        assert!(lib.get("t2").is_none());
    }
}
