//! Evaluation metrics and paper-table assembly.
//!
//! * [`pass_at_k`] — the unbiased estimator of Chen et al. (2021), the
//!   metric the paper reports (`k = 1` throughout).
//! * [`EvalOutcome`]/[`SampleOutcome`] — per-task, per-sample results
//!   collected by the benchmark harness.
//! * [`render_table1`], [`render_table2`], [`figure3`]/[`render_figure3`]
//!   — assembly and ASCII rendering of every table and figure in the
//!   paper's evaluation section.

#![warn(missing_docs)]

mod passk;
mod tables;

pub use passk::{pass_at_k, suite_pass_at_k};
pub use tables::{
    delta_f, figure3, render_figure3, render_table1, render_table2, suite_metric,
    suite_metric_with_se, table2_literature, EvalOutcome, Figure3Row, LiteratureEntry,
    SampleOutcome, Table1Row,
};
