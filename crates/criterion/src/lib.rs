//! Offline stand-in for the `criterion` crate.
//!
//! Provides the macro/struct surface the workspace's benches use
//! ([`Criterion::bench_function`], [`Bencher::iter`],
//! [`criterion_group!`], [`criterion_main!`], [`black_box`]) with a
//! simple measured loop instead of criterion's statistical machinery:
//! each benchmark warms up briefly, then reports the best-of-runs
//! nanoseconds per iteration. Good enough to compare hot paths before
//! and after a change; not a substitute for criterion's rigour.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark driver; collects and prints per-benchmark timings.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs `f` as the benchmark `name` and prints its timing.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher {
            best_ns_per_iter: f64::INFINITY,
            measured: false,
        };
        f(&mut bencher);
        if bencher.measured {
            println!("{name:<40} {:>12.1} ns/iter", bencher.best_ns_per_iter);
        } else {
            println!("{name:<40} (no measurement: Bencher::iter never called)");
        }
        self
    }
}

/// Times closures passed to [`Bencher::iter`].
#[derive(Debug)]
pub struct Bencher {
    best_ns_per_iter: f64,
    measured: bool,
}

impl Bencher {
    /// Measures `f`: short warmup, then several timed batches; the best
    /// batch (least interference) is reported.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warmup + batch sizing: grow the batch until it takes ≥ ~5 ms.
        let mut batch = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(5) || batch >= 1 << 20 {
                break;
            }
            batch *= 2;
        }
        for _ in 0..5 {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let ns = start.elapsed().as_nanos() as f64 / batch as f64;
            self.best_ns_per_iter = self.best_ns_per_iter.min(ns);
        }
        self.measured = true;
    }
}

/// Groups benchmark functions under one callable name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_and_reports() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
    }

    criterion_group!(smoke, smoke_target);

    fn smoke_target(c: &mut Criterion) {
        c.bench_function("smoke", |b| b.iter(|| black_box(2) * 2));
    }

    #[test]
    fn groups_are_callable() {
        smoke();
    }
}
