//! Offline stand-in for the `criterion` crate.
//!
//! Provides the macro/struct surface the workspace's benches use
//! ([`Criterion::bench_function`], [`Bencher::iter`],
//! [`criterion_group!`], [`criterion_main!`], [`black_box`]) with a
//! simple measured loop instead of criterion's statistical machinery:
//! each benchmark warms up briefly, then reports the best-of-runs
//! nanoseconds per iteration. Good enough to compare hot paths before
//! and after a change; not a substitute for criterion's rigour.
//!
//! Two environment switches extend the plain-text report:
//!
//! * `CRITERION_JSON=<path>` — append one JSON line per benchmark
//!   (`{"name": ..., "ns_per_iter": ...}`) to `<path>`, so CI can
//!   upload a machine-readable report artifact.
//! * `CRITERION_QUICK=1` — quick mode: smaller batches and fewer
//!   timed rounds. Noisier numbers, much faster wall clock; meant for
//!   smoke jobs that only check the benches still run and produce a
//!   report, not for comparing timings.

#![warn(missing_docs)]

use std::io::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark driver; collects and prints per-benchmark timings.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

/// `true` when `CRITERION_QUICK` asks for the fast, noisy mode.
fn quick_mode() -> bool {
    std::env::var("CRITERION_QUICK").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// Appends one benchmark's JSON record to the `CRITERION_JSON` file,
/// when that switch is set. Formatting is fixed (name, then
/// `ns_per_iter` with one decimal) so reports diff cleanly.
fn append_json_record(name: &str, ns_per_iter: f64) {
    let Ok(path) = std::env::var("CRITERION_JSON") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let line = format!(
        "{{\"name\":\"{}\",\"ns_per_iter\":{:.1},\"quick\":{}}}\n",
        name.escape_default(),
        ns_per_iter,
        quick_mode()
    );
    let written = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut f| f.write_all(line.as_bytes()));
    if let Err(e) = written {
        eprintln!("[criterion] cannot append to {path}: {e}");
    }
}

impl Criterion {
    /// Runs `f` as the benchmark `name` and prints its timing.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher {
            best_ns_per_iter: f64::INFINITY,
            measured: false,
        };
        f(&mut bencher);
        if bencher.measured {
            println!("{name:<40} {:>12.1} ns/iter", bencher.best_ns_per_iter);
            append_json_record(name, bencher.best_ns_per_iter);
        } else {
            println!("{name:<40} (no measurement: Bencher::iter never called)");
        }
        self
    }
}

/// Times closures passed to [`Bencher::iter`].
#[derive(Debug)]
pub struct Bencher {
    best_ns_per_iter: f64,
    measured: bool,
}

impl Bencher {
    /// Measures `f`: short warmup, then several timed batches; the best
    /// batch (least interference) is reported.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warmup + batch sizing: grow the batch until it takes long
        // enough to time reliably (~5 ms, or ~1 ms in quick mode).
        let (target, rounds) = if quick_mode() {
            (Duration::from_millis(1), 2)
        } else {
            (Duration::from_millis(5), 5)
        };
        let mut batch = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= target || batch >= 1 << 20 {
                break;
            }
            batch *= 2;
        }
        for _ in 0..rounds {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let ns = start.elapsed().as_nanos() as f64 / batch as f64;
            self.best_ns_per_iter = self.best_ns_per_iter.min(ns);
        }
        self.measured = true;
    }
}

/// Groups benchmark functions under one callable name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_and_reports() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
    }

    criterion_group!(smoke, smoke_target);

    fn smoke_target(c: &mut Criterion) {
        c.bench_function("smoke", |b| b.iter(|| black_box(2) * 2));
    }

    #[test]
    fn groups_are_callable() {
        smoke();
    }
}
