//! Elaboration: AST → shared simulatable IR.
//!
//! Resolves the module hierarchy from a chosen top, propagates
//! parameters, flattens instances (ports become continuous assignments
//! between parent and child nets, the classic interpreted-simulator
//! approach), performs the semantic checks whose messages the Review
//! Agent consumes (undeclared identifiers, illegal assignment targets,
//! port mismatches), and compiles behavioural statements into the
//! [`aivril_hdl::ir::Instr`] programs the simulator executes.

use crate::ast::{self, BinOp, Connections, EventExpr, Item, Module, NetType, PortDir, UnOp};
use crate::literal::parse_literal;
use aivril_hdl::diag::{codes, Diagnostic, Diagnostics};
use aivril_hdl::ir::{
    BinaryOp, Design, Expr, Instr, LValue, Net, NetId, NetKind, Process, ProcessKind, SysTaskKind,
    Trigger, UnaryOp,
};
use aivril_hdl::logic::Logic;
use aivril_hdl::source::Span;
use aivril_hdl::vec::LogicVec;
use std::collections::HashMap;

const MAX_DEPTH: u32 = 64;

/// Elaborates `top` from the parsed `unit`, appending problems to
/// `diags`. Returns `None` when errors prevent producing a design.
pub fn elaborate(unit: &ast::SourceUnit, top: &str, diags: &mut Diagnostics) -> Option<Design> {
    let mut modules: HashMap<&str, &Module> = HashMap::new();
    for m in &unit.modules {
        if modules.insert(m.name.as_str(), &**m).is_some() {
            diags.push(Diagnostic::error(
                codes::VLOG_REDECLARED,
                format!("module '{}' is defined more than once", m.name),
                m.span,
            ));
        }
    }
    let Some(&top_module) = modules.get(top) else {
        diags.push(Diagnostic::global_error(
            codes::ELAB_UNKNOWN_MODULE,
            format!("top module '{top}' not found in the compiled sources"),
        ));
        return None;
    };
    let mut el = Elaborator {
        modules,
        design: Design::new(top),
        diags,
        inline_counter: 0,
        inline_depth: 0,
    };
    el.instantiate(top_module, String::new(), HashMap::new(), None, 0);
    if el.diags.has_errors() {
        None
    } else {
        Some(el.design)
    }
}

/// Everything known about one name inside a module scope.
#[derive(Debug, Clone, Copy)]
struct NetInfo {
    id: NetId,
    net_type: NetType,
}

/// A module function, resolved at declaration time.
#[derive(Debug, Clone)]
struct FunctionSig {
    width: u32,
    inputs: Vec<(String, u32)>,
    body: ast::Stmt,
}

/// One declared memory: its element nets in address order.
#[derive(Debug, Clone)]
struct MemInfo {
    elems: Vec<NetId>,
    width: u32,
    /// Lowest legal address.
    base: i64,
}

#[derive(Debug, Default)]
struct Scope {
    prefix: String,
    params: HashMap<String, i64>,
    nets: HashMap<String, NetInfo>,
    functions: HashMap<String, FunctionSig>,
    mems: HashMap<String, MemInfo>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AssignCtx {
    Continuous,
    Procedural,
}

struct Elaborator<'a, 'd> {
    modules: HashMap<&'a str, &'a Module>,
    design: Design,
    diags: &'d mut Diagnostics,
    /// Unique id source for function-inlining temporaries.
    inline_counter: u32,
    /// Guard against (mutually) recursive functions.
    inline_depth: u32,
}

impl<'a> Elaborator<'a, '_> {
    fn error(&mut self, code: &str, message: String, span: Span) {
        self.diags.push(Diagnostic::error(code, message, span));
    }

    fn warning(&mut self, code: &str, message: String, span: Span) {
        self.diags.push(Diagnostic::warning(code, message, span));
    }

    /// Instantiates `module` under hierarchical `prefix`; `bindings`
    /// carries evaluated parameter overrides. `conns` describes the
    /// parent-side port connections (absent for the top instance).
    fn instantiate(
        &mut self,
        module: &'a Module,
        prefix: String,
        bindings: HashMap<String, i64>,
        conns: Option<PortBinding<'a, '_>>,
        depth: u32,
    ) {
        if depth > MAX_DEPTH {
            self.error(
                codes::ELAB_UNKNOWN_MODULE,
                format!("hierarchy deeper than {MAX_DEPTH} levels (recursive instantiation?)"),
                module.span,
            );
            return;
        }
        let mut scope = Scope {
            prefix,
            ..Scope::default()
        };

        // Non-ANSI headers list bare names; their direction/type/range
        // come from body `input`/`output` declarations.
        let ports: Vec<ast::Port> = if module.nonansi_ports.is_empty() {
            module.ports.clone()
        } else {
            self.resolve_nonansi_ports(module)
        };
        let ports = &ports;

        // --- Pass 0: header parameters (defaults overridden by bindings).
        for p in &module.params {
            let value = match bindings.get(&p.name) {
                Some(&v) => v,
                None => self.eval_const(&p.default, &scope).unwrap_or(0),
            };
            scope.params.insert(p.name.clone(), value);
        }

        // --- Pass 1: declarations (ports, nets, body params).
        for port in ports {
            if port.dir == PortDir::Inout {
                self.error(
                    codes::ELAB_PORT_MISMATCH,
                    format!("inout port '{}' is not supported", port.name),
                    port.span,
                );
            }
            let width = self.range_width(&port.range, &scope);
            self.declare_net(
                &mut scope,
                &port.name,
                width,
                port.net_type,
                None,
                port.span,
            );
        }
        for item in &module.items {
            match item {
                Item::PortDecl { .. } => {}
                Item::Param(p) => {
                    let value = if p.local {
                        self.eval_const(&p.default, &scope).unwrap_or(0)
                    } else {
                        match bindings.get(&p.name) {
                            Some(&v) => v,
                            None => self.eval_const(&p.default, &scope).unwrap_or(0),
                        }
                    };
                    scope.params.insert(p.name.clone(), value);
                }
                Item::NetDecl {
                    net_type,
                    range,
                    names,
                } => {
                    let width = self.range_width(range, &scope);
                    for (name, span, init) in names {
                        // `output q; reg q;` legally re-types a non-ANSI
                        // port as a register.
                        if let Some(info) = scope.nets.get(name).copied() {
                            let is_port = ports.iter().any(|p| &p.name == name);
                            if is_port
                                && info.net_type == NetType::Wire
                                && *net_type == NetType::Reg
                                && self.design.net(info.id).width == width
                            {
                                scope.nets.insert(
                                    name.clone(),
                                    NetInfo {
                                        id: info.id,
                                        net_type: NetType::Reg,
                                    },
                                );
                                self.design.nets[info.id.0 as usize].kind = NetKind::Reg;
                                continue;
                            }
                        }
                        let init_value = init.as_ref().and_then(|e| {
                            self.eval_const(e, &scope)
                                .map(|v| LogicVec::from_u64(width, v as u64))
                        });
                        self.declare_net(&mut scope, name, width, *net_type, init_value, *span);
                    }
                }
                Item::IntegerDecl { names } => {
                    for (name, span) in names {
                        self.declare_net(&mut scope, name, 32, NetType::Reg, None, *span);
                    }
                }
                Item::MemDecl { width_range, names } => {
                    let width = self.range_width(width_range, &scope);
                    for (name, (a, b), span) in names {
                        let av = self.eval_const(a, &scope).unwrap_or(0);
                        let bv = self.eval_const(b, &scope).unwrap_or(0);
                        let (lo, hi) = if av <= bv { (av, bv) } else { (bv, av) };
                        let depth = (hi - lo + 1).max(1);
                        if depth > 1024 {
                            self.error(
                                codes::VLOG_SYNTAX,
                                format!(
                                    "memory '{name}' has {depth} words; at most 1024 are supported"
                                ),
                                *span,
                            );
                            continue;
                        }
                        if scope.nets.contains_key(name)
                            || scope.mems.contains_key(name)
                            || scope.params.contains_key(name)
                        {
                            self.error(
                                codes::VLOG_REDECLARED,
                                format!("'{name}' is already declared in this scope"),
                                *span,
                            );
                            continue;
                        }
                        let elems: Vec<NetId> = (0..depth)
                            .map(|k| {
                                self.design.add_net(Net {
                                    name: format!("{}{}[{}]", scope.prefix, name, lo + k),
                                    width,
                                    kind: NetKind::Reg,
                                    init: None,
                                })
                            })
                            .collect();
                        scope.mems.insert(
                            name.clone(),
                            MemInfo {
                                elems,
                                width,
                                base: lo,
                            },
                        );
                    }
                }
                Item::Function(f) => {
                    let width = self.range_width(&f.range, &scope);
                    let inputs: Vec<(String, u32)> = f
                        .inputs
                        .iter()
                        .map(|(n, r, _)| (n.clone(), self.range_width(r, &scope)))
                        .collect();
                    if scope
                        .functions
                        .insert(
                            f.name.clone(),
                            FunctionSig {
                                width,
                                inputs,
                                body: f.body.clone(),
                            },
                        )
                        .is_some()
                    {
                        self.error(
                            codes::VLOG_REDECLARED,
                            format!("function '{}' is already declared", f.name),
                            f.span,
                        );
                    }
                }
                _ => {}
            }
        }

        // --- Pass 2: port connections from the parent side.
        if let Some(binding) = conns {
            self.connect_ports(&module.name, ports, &scope, binding);
        }

        // --- Pass 3: behaviour.
        for item in &module.items {
            match item {
                Item::PortDecl { .. }
                | Item::Param(_)
                | Item::NetDecl { .. }
                | Item::MemDecl { .. }
                | Item::IntegerDecl { .. }
                | Item::Function(_) => {}
                Item::ContinuousAssign { target, expr, span } => {
                    if expr_contains_call(expr) {
                        // Function calls need statement context: compile
                        // the assign as an inferred-sensitivity process.
                        let mut b = Builder::default();
                        let wait_slot = b.emit(Instr::WaitEvent {
                            triggers: Vec::new(),
                        });
                        let rhs = self.lower_expr_proc(expr, &scope, &mut b);
                        if let Some(lv) = self.lower_lvalue(target, &scope, AssignCtx::Continuous) {
                            let rhs = self.fit_expr(&lv, rhs, *span);
                            b.emit(Instr::BlockingAssign {
                                lvalue: lv,
                                expr: rhs,
                            });
                            b.emit(Instr::Jump(0));
                            let mut reads = Vec::new();
                            collect_instr_reads(&b.instrs, &mut reads);
                            reads.sort_unstable();
                            reads.dedup();
                            b.instrs[wait_slot] = Instr::WaitEvent {
                                triggers: reads.into_iter().map(Trigger::AnyChange).collect(),
                            };
                            self.design.add_process(Process {
                                name: format!("{}assign_fn@{}", scope.prefix, span.start),
                                kind: ProcessKind::Always,
                                body: b.instrs,
                            });
                        }
                    } else {
                        let rhs = self.lower_expr(expr, &scope);
                        if let Some(lv) = self.lower_lvalue(target, &scope, AssignCtx::Continuous) {
                            let rhs = self.fit_expr(&lv, rhs, *span);
                            self.design.add_continuous_assign(lv, rhs);
                        }
                    }
                }
                Item::Always { events, body, span } => {
                    self.compile_always(events, body, &scope, *span);
                }
                Item::Initial { body, span } => {
                    let mut b = Builder::default();
                    self.compile_stmt(body, &scope, &mut b);
                    b.emit(Instr::Halt);
                    self.design.add_process(Process {
                        name: format!("{}initial@{}", scope.prefix, span_line(*span)),
                        kind: ProcessKind::Initial,
                        body: b.instrs,
                    });
                }
                Item::Instance {
                    module: child_name,
                    name,
                    param_overrides,
                    connections,
                    span,
                } => {
                    let Some(&child) = self.modules.get(child_name.as_str()) else {
                        self.error(
                            codes::ELAB_UNKNOWN_MODULE,
                            format!("unknown module '{child_name}' instantiated as '{name}'"),
                            *span,
                        );
                        continue;
                    };
                    // Evaluate parameter overrides in the parent scope.
                    let mut bindings = HashMap::new();
                    for (i, (pname, expr)) in param_overrides.iter().enumerate() {
                        let value = self.eval_const(expr, &scope).unwrap_or(0);
                        let key = if pname.is_empty() {
                            match child.params.get(i) {
                                Some(p) => p.name.clone(),
                                None => continue,
                            }
                        } else {
                            pname.clone()
                        };
                        if !child.params.iter().any(|p| p.name == key) {
                            self.error(
                                codes::ELAB_PORT_MISMATCH,
                                format!("module '{child_name}' has no parameter '{key}'"),
                                *span,
                            );
                            continue;
                        }
                        bindings.insert(key, value);
                    }
                    let child_prefix = format!("{}{}.", scope.prefix, name);
                    self.instantiate(
                        child,
                        child_prefix,
                        bindings,
                        Some(PortBinding {
                            connections,
                            parent_scope: &scope,
                            span: *span,
                        }),
                        depth + 1,
                    );
                }
            }
        }
    }

    /// Builds the effective port list of a non-ANSI module from its
    /// header names and body `input`/`output` declarations.
    fn resolve_nonansi_ports(&mut self, module: &Module) -> Vec<ast::Port> {
        use std::collections::HashMap as Map;
        let mut decls: Map<&str, ast::Port> = Map::new();
        for item in &module.items {
            if let Item::PortDecl {
                dir,
                net_type,
                range,
                names,
            } = item
            {
                for (name, span) in names {
                    decls.insert(
                        name.as_str(),
                        ast::Port {
                            dir: *dir,
                            net_type: *net_type,
                            range: range.clone(),
                            name: name.clone(),
                            span: *span,
                        },
                    );
                }
            }
        }
        let mut ports = Vec::new();
        for (name, span) in &module.nonansi_ports {
            match decls.remove(name.as_str()) {
                Some(port) => ports.push(port),
                None => self.error(
                    codes::ELAB_PORT_MISMATCH,
                    format!("port '{name}' has no input/output declaration in the module body"),
                    *span,
                ),
            }
        }
        for (name, port) in decls {
            self.error(
                codes::ELAB_PORT_MISMATCH,
                format!("'{name}' is declared input/output but is not in the port list"),
                port.span,
            );
        }
        ports
    }

    fn declare_net(
        &mut self,
        scope: &mut Scope,
        name: &str,
        width: u32,
        net_type: NetType,
        init: Option<LogicVec>,
        span: Span,
    ) {
        if scope.nets.contains_key(name) || scope.params.contains_key(name) {
            self.error(
                codes::VLOG_REDECLARED,
                format!("'{name}' is already declared in this scope"),
                span,
            );
            return;
        }
        let id = self.design.add_net(Net {
            name: format!("{}{}", scope.prefix, name),
            width,
            kind: match net_type {
                NetType::Wire => NetKind::Wire,
                NetType::Reg => NetKind::Reg,
            },
            init,
        });
        scope
            .nets
            .insert(name.to_string(), NetInfo { id, net_type });
    }

    fn range_width(&mut self, range: &Option<(ast::Expr, ast::Expr)>, scope: &Scope) -> u32 {
        match range {
            None => 1,
            Some((msb, lsb)) => {
                let m = self.eval_const(msb, scope).unwrap_or(0);
                let l = self.eval_const(lsb, scope).unwrap_or(0);
                (m - l).unsigned_abs() as u32 + 1
            }
        }
    }

    // ------------------------------------------------------ connections

    fn connect_ports(
        &mut self,
        module_name: &str,
        ports: &[ast::Port],
        child_scope: &Scope,
        binding: PortBinding<'a, '_>,
    ) {
        let PortBinding {
            connections,
            parent_scope,
            span,
        } = binding;
        let pairs: Vec<(&ast::Port, Option<&ast::Expr>, Span)> = match connections {
            Connections::Positional(exprs) => {
                if exprs.len() > ports.len() {
                    self.error(
                        codes::ELAB_PORT_MISMATCH,
                        format!(
                            "too many port connections: module '{module_name}' has {} ports, {} given",
                            ports.len(),
                            exprs.len()
                        ),
                        span,
                    );
                }
                ports
                    .iter()
                    .zip(exprs.iter().map(Some).chain(std::iter::repeat(None)))
                    .map(|(p, e)| (p, e, span))
                    .collect()
            }
            Connections::Named(named) => {
                let mut pairs = Vec::new();
                for (pname, expr, cspan) in named {
                    match ports.iter().find(|p| &p.name == pname) {
                        Some(port) => pairs.push((port, expr.as_ref(), *cspan)),
                        None => self.error(
                            codes::ELAB_PORT_MISMATCH,
                            format!("module '{module_name}' has no port named '{pname}'"),
                            *cspan,
                        ),
                    }
                }
                pairs
            }
        };
        for (port, expr, cspan) in pairs {
            let Some(&info) = child_scope.nets.get(&port.name) else {
                continue;
            };
            match (port.dir, expr) {
                (PortDir::Input, Some(e)) => {
                    let rhs = self.lower_expr(e, parent_scope);
                    let lv = LValue::Net(info.id);
                    let rhs = self.fit_expr(&lv, rhs, cspan);
                    self.design.add_continuous_assign(lv, rhs);
                }
                (PortDir::Input, None) => {
                    self.warning(
                        codes::ELAB_PORT_MISMATCH,
                        format!("input port '{}' is unconnected", port.name),
                        cspan,
                    );
                }
                (PortDir::Output, Some(e)) => {
                    if let Some(lv) = self.lower_lvalue(e, parent_scope, AssignCtx::Continuous) {
                        let rhs = self.fit_expr(&lv, Expr::Net(info.id), cspan);
                        self.design.add_continuous_assign(lv, rhs);
                    }
                }
                (PortDir::Output, None) | (PortDir::Inout, _) => {}
            }
        }
    }

    /// Adjusts `rhs` to the target width: context-determined operators
    /// are widened recursively (matching IEEE 1364 context-determined
    /// expression sizing), narrower self-determined values are
    /// zero-padded, and truncation earns a Vivado-style warning.
    fn fit_expr(&mut self, lv: &LValue, rhs: Expr, span: Span) -> Expr {
        let lw = self.lvalue_width(lv);
        let rw = self.expr_width(&rhs);
        if rw > lw {
            self.warning(
                codes::WIDTH_MISMATCH,
                format!("assignment truncates a {rw}-bit expression to {lw} bits"),
                span,
            );
            rhs
        } else {
            // Even at equal widths, context sizing must reach narrower
            // inner operands (e.g. `credit + (dime << 1)` where `dime`
            // is 1 bit): recurse unconditionally.
            self.widen_expr(rhs, lw)
        }
    }

    /// Recursively widens context-determined operators to `w` bits.
    fn widen_expr(&self, e: Expr, w: u32) -> Expr {
        let context_determined = matches!(
            &e,
            Expr::Const(_)
                | Expr::Ternary { .. }
                | Expr::Binary {
                    op: BinaryOp::Add
                        | BinaryOp::Sub
                        | BinaryOp::Mul
                        | BinaryOp::Div
                        | BinaryOp::Rem
                        | BinaryOp::And
                        | BinaryOp::Or
                        | BinaryOp::Xor
                        | BinaryOp::Xnor
                        | BinaryOp::Shl
                        | BinaryOp::Shr,
                    ..
                }
                | Expr::Unary {
                    op: UnaryOp::Not | UnaryOp::Negate,
                    ..
                }
        );
        if !context_determined {
            return self.pad_expr(e, w);
        }
        match e {
            Expr::Const(v) if v.width() >= w => Expr::Const(v),
            Expr::Const(v) => Expr::Const(v.resize(w)),
            Expr::Binary {
                op: op @ (BinaryOp::Shl | BinaryOp::Shr),
                lhs,
                rhs,
            } => Expr::Binary {
                op,
                lhs: Box::new(self.widen_expr(*lhs, w)),
                rhs,
            },
            Expr::Binary { op, lhs, rhs } => Expr::Binary {
                op,
                lhs: Box::new(self.widen_expr(*lhs, w)),
                rhs: Box::new(self.widen_expr(*rhs, w)),
            },
            Expr::Unary { op, operand } => Expr::Unary {
                op,
                operand: Box::new(self.widen_expr(*operand, w)),
            },
            Expr::Ternary { cond, then, els } => Expr::Ternary {
                cond,
                then: Box::new(self.widen_expr(*then, w)),
                els: Box::new(self.widen_expr(*els, w)),
            },
            other => self.pad_expr(other, w),
        }
    }

    /// Zero-extends a self-determined expression by concatenating
    /// leading zero bits.
    fn pad_expr(&self, e: Expr, w: u32) -> Expr {
        let cur = self.expr_width(&e);
        if cur >= w {
            return e;
        }
        Expr::Concat(vec![Expr::Const(LogicVec::zeros(w - cur)), e])
    }

    fn lvalue_width(&self, lv: &LValue) -> u32 {
        match lv {
            LValue::Net(id) => self.design.net(*id).width,
            LValue::Range(_, msb, lsb) => msb - lsb + 1,
            LValue::Index(_, _) => 1,
            LValue::Concat(parts) => parts.iter().map(|p| self.lvalue_width(p)).sum(),
        }
    }

    fn expr_width(&self, e: &Expr) -> u32 {
        match e {
            Expr::Const(v) => v.width(),
            Expr::Net(id) => self.design.net(*id).width,
            Expr::Index { .. } => 1,
            Expr::Range { msb, lsb, .. } => msb - lsb + 1,
            Expr::Unary { op, operand } => match op {
                UnaryOp::Not | UnaryOp::Negate => self.expr_width(operand),
                _ => 1,
            },
            Expr::Binary { op, lhs, rhs } => match op {
                BinaryOp::Eq
                | BinaryOp::Ne
                | BinaryOp::CaseEq
                | BinaryOp::CaseNe
                | BinaryOp::Lt
                | BinaryOp::Le
                | BinaryOp::Gt
                | BinaryOp::Ge
                | BinaryOp::LogicalAnd
                | BinaryOp::LogicalOr => 1,
                BinaryOp::Shl | BinaryOp::Shr => self.expr_width(lhs),
                _ => self.expr_width(lhs).max(self.expr_width(rhs)),
            },
            Expr::Ternary { then, els, .. } => self.expr_width(then).max(self.expr_width(els)),
            Expr::Concat(parts) => parts.iter().map(|p| self.expr_width(p)).sum(),
            Expr::Repeat { count, operand } => count * self.expr_width(operand),
            Expr::Time => 64,
            Expr::EdgeFlag { .. } => 1,
        }
    }

    // ---------------------------------------------------- const folding

    fn eval_const(&mut self, e: &ast::Expr, scope: &Scope) -> Option<i64> {
        match self.try_eval_const(e, scope) {
            Some(v) => Some(v),
            None => {
                let span = e
                    .span()
                    .unwrap_or_else(|| Span::file_start(aivril_hdl::source::FileId(0)));
                self.error(
                    codes::VLOG_SYNTAX,
                    "expected a constant expression".to_string(),
                    span,
                );
                None
            }
        }
    }

    fn try_eval_const(&self, e: &ast::Expr, scope: &Scope) -> Option<i64> {
        match e {
            ast::Expr::Number { text, .. } => {
                let v = crate::literal::try_parse_literal(text)?;
                v.to_u64().map(|u| u as i64)
            }
            ast::Expr::Ident { name, .. } => scope.params.get(name).copied(),
            ast::Expr::Unary { op, operand } => {
                let v = self.try_eval_const(operand, scope)?;
                Some(match op {
                    UnOp::Negate => -v,
                    UnOp::Not => !v,
                    UnOp::LogicalNot => i64::from(v == 0),
                    UnOp::Plus => v,
                    _ => return None,
                })
            }
            ast::Expr::Binary { op, lhs, rhs } => {
                let a = self.try_eval_const(lhs, scope)?;
                let b = self.try_eval_const(rhs, scope)?;
                Some(match op {
                    BinOp::Add => a.wrapping_add(b),
                    BinOp::Sub => a.wrapping_sub(b),
                    BinOp::Mul => a.wrapping_mul(b),
                    BinOp::Div => a.checked_div(b)?,
                    BinOp::Rem => a.checked_rem(b)?,
                    BinOp::Shl => a.wrapping_shl(b as u32),
                    BinOp::Shr => a.wrapping_shr(b as u32),
                    BinOp::Pow => (a as f64).powi(b as i32) as i64,
                    BinOp::And => a & b,
                    BinOp::Or => a | b,
                    BinOp::Xor => a ^ b,
                    BinOp::Eq => i64::from(a == b),
                    BinOp::Ne => i64::from(a != b),
                    BinOp::Lt => i64::from(a < b),
                    BinOp::Le => i64::from(a <= b),
                    BinOp::Gt => i64::from(a > b),
                    BinOp::Ge => i64::from(a >= b),
                    _ => return None,
                })
            }
            ast::Expr::Ternary { cond, then, els } => {
                let c = self.try_eval_const(cond, scope)?;
                if c != 0 {
                    self.try_eval_const(then, scope)
                } else {
                    self.try_eval_const(els, scope)
                }
            }
            _ => None,
        }
    }

    // -------------------------------------------------------- lowering

    fn lower_expr(&mut self, e: &ast::Expr, scope: &Scope) -> Expr {
        match e {
            ast::Expr::Number { text, span } => Expr::Const(parse_literal(text, *span, self.diags)),
            ast::Expr::Ident { name, span } => {
                if let Some(&v) = scope.params.get(name) {
                    return Expr::Const(LogicVec::from_u64(32, v as u64));
                }
                match scope.nets.get(name) {
                    Some(info) => Expr::Net(info.id),
                    None => {
                        self.error(
                            codes::VLOG_UNDECLARED,
                            format!("'{name}' is not declared"),
                            *span,
                        );
                        Expr::Const(LogicVec::xes(1))
                    }
                }
            }
            ast::Expr::Index { base, index } => {
                if let ast::Expr::Ident { name, .. } = base.as_ref() {
                    if let Some(mem) = scope.mems.get(name).cloned() {
                        let idx = self.lower_expr(index, scope);
                        return mem_read_mux(&mem, idx);
                    }
                }
                let Some(net) = self.base_net(base, scope) else {
                    return Expr::Const(LogicVec::xes(1));
                };
                let idx = self.lower_expr(index, scope);
                Expr::Index {
                    net,
                    index: Box::new(idx),
                }
            }
            ast::Expr::RangeSel { base, msb, lsb } => {
                let Some(net) = self.base_net(base, scope) else {
                    return Expr::Const(LogicVec::xes(1));
                };
                let m = self.eval_const(msb, scope).unwrap_or(0).max(0) as u32;
                let l = self.eval_const(lsb, scope).unwrap_or(0).max(0) as u32;
                let (m, l) = if m >= l { (m, l) } else { (l, m) };
                Expr::Range {
                    net,
                    msb: m,
                    lsb: l,
                }
            }
            ast::Expr::Unary { op, operand } => {
                let inner = self.lower_expr(operand, scope);
                let op = match op {
                    UnOp::Not => UnaryOp::Not,
                    UnOp::LogicalNot => UnaryOp::LogicalNot,
                    UnOp::Negate => UnaryOp::Negate,
                    UnOp::Plus => return inner,
                    UnOp::ReduceAnd => UnaryOp::ReduceAnd,
                    UnOp::ReduceOr => UnaryOp::ReduceOr,
                    UnOp::ReduceXor => UnaryOp::ReduceXor,
                    UnOp::ReduceNand => UnaryOp::ReduceNand,
                    UnOp::ReduceNor => UnaryOp::ReduceNor,
                    UnOp::ReduceXnor => UnaryOp::ReduceXnor,
                };
                Expr::Unary {
                    op,
                    operand: Box::new(inner),
                }
            }
            ast::Expr::Binary { op, lhs, rhs } => {
                if *op == BinOp::Pow {
                    // Support constant powers only (all the suite needs).
                    if let Some(v) = self.try_eval_const(e, scope) {
                        return Expr::Const(LogicVec::from_u64(32, v as u64));
                    }
                    let span = e
                        .span()
                        .unwrap_or_else(|| Span::file_start(aivril_hdl::source::FileId(0)));
                    self.error(
                        codes::VLOG_SYNTAX,
                        "the power operator '**' requires constant operands".to_string(),
                        span,
                    );
                    return Expr::Const(LogicVec::xes(32));
                }
                let l = self.lower_expr(lhs, scope);
                let r = self.lower_expr(rhs, scope);
                let op = match op {
                    BinOp::And => BinaryOp::And,
                    BinOp::Or => BinaryOp::Or,
                    BinOp::Xor => BinaryOp::Xor,
                    BinOp::Xnor => BinaryOp::Xnor,
                    BinOp::LogicalAnd => BinaryOp::LogicalAnd,
                    BinOp::LogicalOr => BinaryOp::LogicalOr,
                    BinOp::Add => BinaryOp::Add,
                    BinOp::Sub => BinaryOp::Sub,
                    BinOp::Mul => BinaryOp::Mul,
                    BinOp::Div => BinaryOp::Div,
                    BinOp::Rem => BinaryOp::Rem,
                    BinOp::Shl => BinaryOp::Shl,
                    BinOp::Shr => BinaryOp::Shr,
                    BinOp::Eq => BinaryOp::Eq,
                    BinOp::Ne => BinaryOp::Ne,
                    BinOp::CaseEq => BinaryOp::CaseEq,
                    BinOp::CaseNe => BinaryOp::CaseNe,
                    BinOp::Lt => BinaryOp::Lt,
                    BinOp::Le => BinaryOp::Le,
                    BinOp::Gt => BinaryOp::Gt,
                    BinOp::Ge => BinaryOp::Ge,
                    BinOp::Pow => unreachable!("handled above"),
                };
                Expr::Binary {
                    op,
                    lhs: Box::new(l),
                    rhs: Box::new(r),
                }
            }
            ast::Expr::Ternary { cond, then, els } => Expr::Ternary {
                cond: Box::new(self.lower_expr(cond, scope)),
                then: Box::new(self.lower_expr(then, scope)),
                els: Box::new(self.lower_expr(els, scope)),
            },
            ast::Expr::Concat(parts) => {
                Expr::Concat(parts.iter().map(|p| self.lower_expr(p, scope)).collect())
            }
            ast::Expr::Repeat { count, value } => {
                let n = self.eval_const(count, scope).unwrap_or(1).max(1) as u32;
                Expr::Repeat {
                    count: n,
                    operand: Box::new(self.lower_expr(value, scope)),
                }
            }
            ast::Expr::Time { .. } => Expr::Time,
            ast::Expr::Call { name, span, .. } => {
                self.error(
                    codes::VLOG_SYNTAX,
                    format!(
                        "function call '{name}(...)' is not allowed in this context \
                         (functions are supported in procedural code and continuous assignments)"
                    ),
                    *span,
                );
                Expr::Const(LogicVec::xes(1))
            }
        }
    }

    /// Lowers an expression in a statement context, inlining any
    /// function calls into `b` (temporaries + the function body) and
    /// substituting the call site with the return temporary.
    fn lower_expr_proc(&mut self, e: &ast::Expr, scope: &Scope, b: &mut Builder) -> Expr {
        if !expr_contains_call(e) {
            return self.lower_expr(e, scope);
        }
        match e {
            ast::Expr::Call { name, args, span } => self.inline_call(name, args, *span, scope, b),
            ast::Expr::Unary { op, operand } => {
                let inner = self.lower_expr_proc(operand, scope, b);
                match unop_of(*op) {
                    Some(op) => Expr::Unary {
                        op,
                        operand: Box::new(inner),
                    },
                    None => inner, // unary `+` is the identity
                }
            }
            ast::Expr::Binary { op, lhs, rhs } => {
                let l = self.lower_expr_proc(lhs, scope, b);
                let r = self.lower_expr_proc(rhs, scope, b);
                match binop_of(*op) {
                    Some(op) => Expr::Binary {
                        op,
                        lhs: Box::new(l),
                        rhs: Box::new(r),
                    },
                    None => {
                        let span = e
                            .span()
                            .unwrap_or_else(|| Span::file_start(aivril_hdl::source::FileId(0)));
                        self.error(
                            codes::VLOG_SYNTAX,
                            "the power operator '**' cannot take function-call operands"
                                .to_string(),
                            span,
                        );
                        Expr::Const(LogicVec::xes(32))
                    }
                }
            }
            ast::Expr::Ternary { cond, then, els } => Expr::Ternary {
                cond: Box::new(self.lower_expr_proc(cond, scope, b)),
                then: Box::new(self.lower_expr_proc(then, scope, b)),
                els: Box::new(self.lower_expr_proc(els, scope, b)),
            },
            ast::Expr::Concat(parts) => Expr::Concat(
                parts
                    .iter()
                    .map(|p| self.lower_expr_proc(p, scope, b))
                    .collect(),
            ),
            ast::Expr::Repeat { count, value } => {
                let n = self.eval_const(count, scope).unwrap_or(1).max(1) as u32;
                Expr::Repeat {
                    count: n,
                    operand: Box::new(self.lower_expr_proc(value, scope, b)),
                }
            }
            ast::Expr::Index { base, index } => {
                if let ast::Expr::Ident { name, .. } = base.as_ref() {
                    if let Some(mem) = scope.mems.get(name).cloned() {
                        let idx = self.lower_expr_proc(index, scope, b);
                        return mem_read_mux(&mem, idx);
                    }
                }
                let Some(net) = self.base_net(base, scope) else {
                    return Expr::Const(LogicVec::xes(1));
                };
                let idx = self.lower_expr_proc(index, scope, b);
                Expr::Index {
                    net,
                    index: Box::new(idx),
                }
            }
            other => self.lower_expr(other, scope),
        }
    }

    /// Inlines one function call: binds arguments to fresh temporaries,
    /// compiles the function body with the argument/return overlay, and
    /// returns the return temporary.
    fn inline_call(
        &mut self,
        name: &str,
        args: &[ast::Expr],
        span: Span,
        scope: &Scope,
        b: &mut Builder,
    ) -> Expr {
        let Some(sig) = scope.functions.get(name).cloned() else {
            self.error(
                codes::VLOG_UNDECLARED,
                format!("'{name}' is not a declared function"),
                span,
            );
            return Expr::Const(LogicVec::xes(1));
        };
        if args.len() != sig.inputs.len() {
            self.error(
                codes::ELAB_PORT_MISMATCH,
                format!(
                    "function '{name}' takes {} argument(s), {} given",
                    sig.inputs.len(),
                    args.len()
                ),
                span,
            );
            return Expr::Const(LogicVec::xes(sig.width));
        }
        if self.inline_depth >= 16 {
            self.error(
                codes::VLOG_SYNTAX,
                format!("function '{name}': call nesting exceeds 16 (recursion?)"),
                span,
            );
            return Expr::Const(LogicVec::xes(sig.width));
        }
        self.inline_counter += 1;
        let uid = self.inline_counter;
        // Overlay scope: arguments and the return variable shadow module
        // names; everything else (nets, params, functions) stays visible.
        let mut inner = Scope {
            prefix: scope.prefix.clone(),
            params: scope.params.clone(),
            nets: scope.nets.clone(),
            functions: scope.functions.clone(),
            mems: scope.mems.clone(),
        };
        for ((arg_name, width), arg_expr) in sig.inputs.iter().zip(args) {
            let id = self.design.add_net(Net {
                name: format!("{}$fn{uid}${arg_name}", scope.prefix),
                width: *width,
                kind: NetKind::Reg,
                init: None,
            });
            let value = self.lower_expr_proc(arg_expr, scope, b);
            let lv = LValue::Net(id);
            let value = self.fit_expr(&lv, value, span);
            b.emit(Instr::BlockingAssign {
                lvalue: lv,
                expr: value,
            });
            inner.nets.insert(
                arg_name.clone(),
                NetInfo {
                    id,
                    net_type: NetType::Reg,
                },
            );
        }
        let ret = self.design.add_net(Net {
            name: format!("{}$fn{uid}$return", scope.prefix),
            width: sig.width,
            kind: NetKind::Reg,
            init: None,
        });
        inner.nets.insert(
            name.to_string(),
            NetInfo {
                id: ret,
                net_type: NetType::Reg,
            },
        );
        let body_start = b.here();
        self.inline_depth += 1;
        self.compile_stmt(&sig.body, &inner, b);
        self.inline_depth -= 1;
        // IEEE 1364 §10.3.4: function bodies may not contain timing
        // controls or nonblocking assignments.
        if b.instrs[body_start..].iter().any(|i| {
            matches!(
                i,
                Instr::Delay { .. } | Instr::WaitEvent { .. } | Instr::NonblockingAssign { .. }
            )
        }) {
            self.error(
                codes::VLOG_SYNTAX,
                format!(
                    "function '{name}' contains timing controls or nonblocking \
                     assignments, which functions may not use"
                ),
                span,
            );
        }
        Expr::Net(ret)
    }

    /// Resolves the base of a select, which must be a plain identifier.
    fn base_net(&mut self, base: &ast::Expr, scope: &Scope) -> Option<NetId> {
        match base {
            ast::Expr::Ident { name, span } => match scope.nets.get(name) {
                Some(info) => Some(info.id),
                None => {
                    self.error(
                        codes::VLOG_UNDECLARED,
                        format!("'{name}' is not declared"),
                        *span,
                    );
                    None
                }
            },
            other => {
                let span = other
                    .span()
                    .unwrap_or_else(|| Span::file_start(aivril_hdl::source::FileId(0)));
                self.error(
                    codes::VLOG_SYNTAX,
                    "bit/part select base must be a simple identifier".to_string(),
                    span,
                );
                None
            }
        }
    }

    fn lower_lvalue(&mut self, e: &ast::Expr, scope: &Scope, ctx: AssignCtx) -> Option<LValue> {
        match e {
            ast::Expr::Ident { name, span } => {
                let info = self.lvalue_net(name, *span, scope, ctx)?;
                Some(LValue::Net(info.id))
            }
            ast::Expr::Index { base, index } => {
                let (name, span) = ident_of(base)?;
                let info = self.lvalue_net(name, span, scope, ctx)?;
                let idx = self.lower_expr(index, scope);
                Some(LValue::Index(info.id, idx))
            }
            ast::Expr::RangeSel { base, msb, lsb } => {
                let (name, span) = ident_of(base)?;
                let info = self.lvalue_net(name, span, scope, ctx)?;
                let m = self.eval_const(msb, scope)?.max(0) as u32;
                let l = self.eval_const(lsb, scope)?.max(0) as u32;
                let (m, l) = if m >= l { (m, l) } else { (l, m) };
                Some(LValue::Range(info.id, m, l))
            }
            ast::Expr::Concat(parts) => {
                let mut lvs = Vec::new();
                for p in parts {
                    lvs.push(self.lower_lvalue(p, scope, ctx)?);
                }
                Some(LValue::Concat(lvs))
            }
            other => {
                let span = other
                    .span()
                    .unwrap_or_else(|| Span::file_start(aivril_hdl::source::FileId(0)));
                self.error(
                    codes::VLOG_BAD_ASSIGN,
                    "illegal assignment target".to_string(),
                    span,
                );
                None
            }
        }
    }

    fn lvalue_net(
        &mut self,
        name: &str,
        span: Span,
        scope: &Scope,
        ctx: AssignCtx,
    ) -> Option<NetInfo> {
        let Some(&info) = scope.nets.get(name) else {
            self.error(
                codes::VLOG_UNDECLARED,
                format!("'{name}' is not declared"),
                span,
            );
            return None;
        };
        match (ctx, info.net_type) {
            (AssignCtx::Continuous, NetType::Reg) => {
                self.error(
                    codes::VLOG_BAD_ASSIGN,
                    format!("continuous assignment to reg '{name}' is illegal"),
                    span,
                );
                None
            }
            (AssignCtx::Procedural, NetType::Wire) => {
                self.error(
                    codes::VLOG_BAD_ASSIGN,
                    format!(
                        "procedural assignment to wire '{name}' is illegal (declare it as reg)"
                    ),
                    span,
                );
                None
            }
            _ => Some(info),
        }
    }

    // ------------------------------------------------- statement compile

    fn compile_always(
        &mut self,
        events: &Option<Vec<EventExpr>>,
        body: &ast::Stmt,
        scope: &Scope,
        span: Span,
    ) {
        let mut b = Builder::default();
        match events {
            Some(list) if !list.is_empty() => {
                let triggers = self.lower_events(list, scope);
                b.emit(Instr::WaitEvent { triggers });
                self.compile_stmt(body, scope, &mut b);
                b.emit(Instr::Jump(0));
            }
            Some(_) => {
                // @* — infer sensitivity from every net the body reads.
                let wait_slot = b.emit(Instr::WaitEvent {
                    triggers: Vec::new(),
                });
                self.compile_stmt(body, scope, &mut b);
                b.emit(Instr::Jump(0));
                let mut reads = Vec::new();
                collect_instr_reads(&b.instrs, &mut reads);
                reads.sort_unstable();
                reads.dedup();
                if reads.is_empty() {
                    self.warning(
                        codes::SIM_RUNTIME,
                        "always @* block reads no signals; it will run once".to_string(),
                        span,
                    );
                }
                let triggers = reads.into_iter().map(Trigger::AnyChange).collect();
                b.instrs[wait_slot] = Instr::WaitEvent { triggers };
            }
            None => {
                self.compile_stmt(body, scope, &mut b);
                b.emit(Instr::Jump(0));
                // An always block with no timing control at all would spin
                // forever within one time step: reject it, as linting
                // compilers do.
                let has_timing = b
                    .instrs
                    .iter()
                    .any(|i| matches!(i, Instr::Delay { .. } | Instr::WaitEvent { .. }));
                if !has_timing {
                    self.error(
                        codes::VLOG_SYNTAX,
                        "always block contains no timing control (# or @)".to_string(),
                        span,
                    );
                }
            }
        }
        self.design.add_process(Process {
            name: format!("{}always@{}", scope.prefix, span_line(span)),
            kind: ProcessKind::Always,
            body: b.instrs,
        });
    }

    fn lower_events(&mut self, list: &[EventExpr], scope: &Scope) -> Vec<Trigger> {
        let mut triggers = Vec::new();
        for ev in list {
            let (expr, ctor): (&ast::Expr, fn(NetId) -> Trigger) = match ev {
                EventExpr::Posedge(e) => (e, Trigger::Posedge),
                EventExpr::Negedge(e) => (e, Trigger::Negedge),
                EventExpr::Any(e) => (e, Trigger::AnyChange),
            };
            match expr {
                ast::Expr::Ident { name, span } => match scope.nets.get(name) {
                    Some(info) => triggers.push(ctor(info.id)),
                    None => self.error(
                        codes::VLOG_UNDECLARED,
                        format!("'{name}' is not declared"),
                        *span,
                    ),
                },
                other => {
                    let span = other
                        .span()
                        .unwrap_or_else(|| Span::file_start(aivril_hdl::source::FileId(0)));
                    self.error(
                        codes::VLOG_SYNTAX,
                        "event expression must be a simple signal name".to_string(),
                        span,
                    );
                }
            }
        }
        triggers
    }

    fn compile_stmt(&mut self, stmt: &ast::Stmt, scope: &Scope, b: &mut Builder) {
        match stmt {
            ast::Stmt::Block(stmts) => {
                for s in stmts {
                    self.compile_stmt(s, scope, b);
                }
            }
            ast::Stmt::Blocking {
                target,
                value,
                span,
            } => {
                let expr = self.lower_expr_proc(value, scope, b);
                if self.try_mem_write(target, expr.clone(), false, *span, scope, b) {
                    return;
                }
                if let Some(lv) = self.lower_lvalue(target, scope, AssignCtx::Procedural) {
                    let expr = self.fit_expr(&lv, expr, *span);
                    b.emit(Instr::BlockingAssign { lvalue: lv, expr });
                }
            }
            ast::Stmt::Nonblocking {
                target,
                value,
                span,
            } => {
                let expr = self.lower_expr_proc(value, scope, b);
                if self.try_mem_write(target, expr.clone(), true, *span, scope, b) {
                    return;
                }
                if let Some(lv) = self.lower_lvalue(target, scope, AssignCtx::Procedural) {
                    let expr = self.fit_expr(&lv, expr, *span);
                    b.emit(Instr::NonblockingAssign { lvalue: lv, expr });
                }
            }
            ast::Stmt::If { cond, then, els } => {
                let c = self.lower_expr_proc(cond, scope, b);
                let branch = b.emit_branch(c);
                self.compile_stmt(then, scope, b);
                match els {
                    Some(e) => {
                        let jump_end = b.emit(Instr::Jump(usize::MAX));
                        b.patch(branch, b.here());
                        self.compile_stmt(e, scope, b);
                        b.patch(jump_end, b.here());
                    }
                    None => b.patch(branch, b.here()),
                }
            }
            ast::Stmt::Case {
                subject,
                arms,
                default,
                wildcard,
                span,
            } => {
                self.compile_case(
                    subject,
                    arms,
                    default.as_deref(),
                    *wildcard,
                    *span,
                    scope,
                    b,
                );
            }
            ast::Stmt::For {
                init,
                cond,
                step,
                body,
            } => {
                self.compile_stmt(
                    &ast::Stmt::Blocking {
                        target: init.0.clone(),
                        value: init.1.clone(),
                        span: Span::file_start(aivril_hdl::source::FileId(0)),
                    },
                    scope,
                    b,
                );
                let head = b.here();
                let c = self.lower_expr_proc(cond, scope, b);
                let exit = b.emit_branch(c);
                self.compile_stmt(body, scope, b);
                self.compile_stmt(
                    &ast::Stmt::Blocking {
                        target: step.0.clone(),
                        value: step.1.clone(),
                        span: Span::file_start(aivril_hdl::source::FileId(0)),
                    },
                    scope,
                    b,
                );
                b.emit(Instr::Jump(head));
                b.patch(exit, b.here());
            }
            ast::Stmt::While { cond, body } => {
                let head = b.here();
                let c = self.lower_expr_proc(cond, scope, b);
                let exit = b.emit_branch(c);
                self.compile_stmt(body, scope, b);
                b.emit(Instr::Jump(head));
                b.patch(exit, b.here());
            }
            ast::Stmt::Repeat { count, body } => {
                // Dedicated hidden counter so nested repeats don't clash.
                let counter = self.design.add_net(Net {
                    name: format!("{}$repeat{}", scope.prefix, self.design.nets.len()),
                    width: 32,
                    kind: NetKind::Reg,
                    init: Some(LogicVec::zeros(32)),
                });
                let n = self.lower_expr(count, scope);
                b.emit(Instr::BlockingAssign {
                    lvalue: LValue::Net(counter),
                    expr: n,
                });
                let head = b.here();
                let cond = Expr::Binary {
                    op: BinaryOp::Gt,
                    lhs: Box::new(Expr::Net(counter)),
                    rhs: Box::new(Expr::constant(32, 0)),
                };
                let exit = b.emit_branch(cond);
                self.compile_stmt(body, scope, b);
                b.emit(Instr::BlockingAssign {
                    lvalue: LValue::Net(counter),
                    expr: Expr::Binary {
                        op: BinaryOp::Sub,
                        lhs: Box::new(Expr::Net(counter)),
                        rhs: Box::new(Expr::constant(32, 1)),
                    },
                });
                b.emit(Instr::Jump(head));
                b.patch(exit, b.here());
            }
            ast::Stmt::Forever { body } => {
                let head = b.here();
                self.compile_stmt(body, scope, b);
                b.emit(Instr::Jump(head));
            }
            ast::Stmt::Delay { amount, then } => {
                let amt = self.lower_expr(amount, scope);
                b.emit(Instr::Delay { amount: amt });
                if let Some(s) = then {
                    self.compile_stmt(s, scope, b);
                }
            }
            ast::Stmt::EventControl { events, then } => {
                if events.is_empty() {
                    self.error(
                        codes::VLOG_SYNTAX,
                        "@* is only supported at the top of an always block".to_string(),
                        Span::file_start(aivril_hdl::source::FileId(0)),
                    );
                } else {
                    let triggers = self.lower_events(events, scope);
                    b.emit(Instr::WaitEvent { triggers });
                }
                if let Some(s) = then {
                    self.compile_stmt(s, scope, b);
                }
            }
            ast::Stmt::WaitCond { cond, then } => {
                // head: if (cond) goto end; wait(any net in cond); goto head;
                let c = self.lower_expr(cond, scope);
                let mut reads = Vec::new();
                c.collect_reads(&mut reads);
                reads.sort_unstable();
                reads.dedup();
                let head = b.here();
                let to_wait = b.emit_branch(c);
                let jump_end = b.emit(Instr::Jump(usize::MAX));
                b.patch(to_wait, b.here());
                b.emit(Instr::WaitEvent {
                    triggers: reads.into_iter().map(Trigger::AnyChange).collect(),
                });
                b.emit(Instr::Jump(head));
                b.patch(jump_end, b.here());
                if let Some(s) = then {
                    self.compile_stmt(s, scope, b);
                }
            }
            ast::Stmt::SysCall { name, args, span } => {
                self.compile_syscall(name, args, *span, scope, b);
            }
            ast::Stmt::Null => {}
        }
    }

    #[allow(clippy::too_many_arguments)] // mirrors the AST node's fields
    /// Compiles `mem[addr] = v` / `mem[addr] <= v` as a per-element
    /// conditional write (address demultiplexer). Returns `false` when
    /// the target is not a memory element.
    #[allow(clippy::too_many_arguments)] // one logical operation, many facets
    fn try_mem_write(
        &mut self,
        target: &ast::Expr,
        value: Expr,
        nonblocking: bool,
        span: Span,
        scope: &Scope,
        b: &mut Builder,
    ) -> bool {
        let ast::Expr::Index { base, index } = target else {
            return false;
        };
        let ast::Expr::Ident { name, .. } = base.as_ref() else {
            return false;
        };
        let Some(mem) = scope.mems.get(name).cloned() else {
            return false;
        };
        let idx = self.lower_expr_proc(index, scope, b);
        // Evaluate address and data once into temporaries so the demux
        // arms agree even if the expressions have function calls.
        self.inline_counter += 1;
        let uid = self.inline_counter;
        let addr_net = self.design.add_net(Net {
            name: format!("{}$mem{uid}$addr", scope.prefix),
            width: 32,
            kind: NetKind::Reg,
            init: None,
        });
        let nw = |id: NetId| self.design.net(id).width;
        b.emit(Instr::BlockingAssign {
            lvalue: LValue::Net(addr_net),
            expr: idx.padded_to(32, &nw),
        });
        let data_net = self.design.add_net(Net {
            name: format!("{}$mem{uid}$data", scope.prefix),
            width: mem.width,
            kind: NetKind::Reg,
            init: None,
        });
        let data_lv = LValue::Net(data_net);
        let value = self.fit_expr(&data_lv, value, span);
        b.emit(Instr::BlockingAssign {
            lvalue: data_lv,
            expr: value,
        });
        for (k, id) in mem.elems.iter().enumerate() {
            let addr = mem.base + k as i64;
            let cond = Expr::Binary {
                op: BinaryOp::Eq,
                lhs: Box::new(Expr::Net(addr_net)),
                rhs: Box::new(Expr::constant(32, addr as u64)),
            };
            let skip = b.emit_branch(cond);
            let instr = if nonblocking {
                Instr::NonblockingAssign {
                    lvalue: LValue::Net(*id),
                    expr: Expr::Net(data_net),
                }
            } else {
                Instr::BlockingAssign {
                    lvalue: LValue::Net(*id),
                    expr: Expr::Net(data_net),
                }
            };
            b.emit(instr);
            b.patch(skip, b.here());
        }
        true
    }

    #[allow(clippy::too_many_arguments)] // mirrors the AST node's fields
    fn compile_case(
        &mut self,
        subject: &ast::Expr,
        arms: &[(Vec<ast::Expr>, ast::Stmt)],
        default: Option<&ast::Stmt>,
        wildcard: bool,
        span: Span,
        scope: &Scope,
        b: &mut Builder,
    ) {
        let subj = self.lower_expr(subject, scope);
        let mut end_jumps = Vec::new();
        for (labels, body) in arms {
            let mut cond: Option<Expr> = None;
            for label in labels {
                let c = if wildcard {
                    // casez/casex: constant label with z/?/x as don't-care.
                    match label {
                        ast::Expr::Number { text, span } => {
                            let lit = parse_literal(text, *span, self.diags);
                            let width = lit.width();
                            let mut mask = LogicVec::zeros(width);
                            let mut want = LogicVec::zeros(width);
                            for i in 0..width {
                                match lit.get(i) {
                                    Logic::Zero => mask.set(i, Logic::One),
                                    Logic::One => {
                                        mask.set(i, Logic::One);
                                        want.set(i, Logic::One);
                                    }
                                    Logic::X | Logic::Z => {}
                                }
                            }
                            Expr::Binary {
                                op: BinaryOp::CaseEq,
                                lhs: Box::new(Expr::Binary {
                                    op: BinaryOp::And,
                                    lhs: Box::new(subj.clone()),
                                    rhs: Box::new(Expr::Const(mask)),
                                }),
                                rhs: Box::new(Expr::Const(want)),
                            }
                        }
                        other => {
                            let s = other.span().unwrap_or(span);
                            self.error(
                                codes::VLOG_SYNTAX,
                                "casez/casex labels must be constant literals".to_string(),
                                s,
                            );
                            Expr::constant(1, 0)
                        }
                    }
                } else {
                    Expr::Binary {
                        op: BinaryOp::CaseEq,
                        lhs: Box::new(subj.clone()),
                        rhs: Box::new(self.lower_expr(label, scope)),
                    }
                };
                cond = Some(match cond {
                    None => c,
                    Some(prev) => Expr::Binary {
                        op: BinaryOp::LogicalOr,
                        lhs: Box::new(prev),
                        rhs: Box::new(c),
                    },
                });
            }
            let cond = cond.unwrap_or_else(|| Expr::constant(1, 0));
            let skip = b.emit_branch(cond);
            self.compile_stmt(body, scope, b);
            end_jumps.push(b.emit(Instr::Jump(usize::MAX)));
            b.patch(skip, b.here());
        }
        if let Some(d) = default {
            self.compile_stmt(d, scope, b);
        }
        for j in end_jumps {
            b.patch(j, b.here());
        }
    }

    fn compile_syscall(
        &mut self,
        name: &str,
        args: &[ast::SysArg],
        span: Span,
        scope: &Scope,
        b: &mut Builder,
    ) {
        let kind = match name {
            "$display" | "$strobe" => SysTaskKind::Display,
            "$monitor" => SysTaskKind::Monitor,
            "$write" => SysTaskKind::Write,
            "$error" => SysTaskKind::Error,
            "$fatal" => SysTaskKind::Fatal,
            "$finish" | "$stop" => SysTaskKind::Finish,
            other => {
                self.warning(
                    codes::SIM_RUNTIME,
                    format!("system task '{other}' is not supported and will be ignored"),
                    span,
                );
                return;
            }
        };
        let mut format = None;
        let mut exprs = Vec::new();
        for (i, arg) in args.iter().enumerate() {
            match arg {
                ast::SysArg::Str(s) if i == 0 => format = Some(s.clone()),
                ast::SysArg::Str(s) => {
                    // Non-leading strings print literally: fold into format.
                    match &mut format {
                        Some(f) => f.push_str(s),
                        None => format = Some(s.clone()),
                    }
                }
                ast::SysArg::Expr(e) => exprs.push(self.lower_expr_proc(e, scope, b)),
            }
        }
        // $fatal's first argument may be a finish-code number.
        if kind == SysTaskKind::Fatal && format.is_none() && exprs.len() == 1 {
            exprs.clear();
        }
        b.emit(Instr::SysCall {
            kind,
            format,
            args: exprs,
        });
    }
}

struct PortBinding<'a, 's> {
    connections: &'a Connections,
    parent_scope: &'s Scope,
    span: Span,
}

fn ident_of(e: &ast::Expr) -> Option<(&str, Span)> {
    match e {
        ast::Expr::Ident { name, span } => Some((name, *span)),
        _ => None,
    }
}

fn span_line(span: Span) -> u32 {
    // Best-effort debug tag; real line numbers come from the SourceMap
    // when diagnostics render.
    span.start
}

#[derive(Default)]
struct Builder {
    instrs: Vec<Instr>,
}

impl Builder {
    fn emit(&mut self, i: Instr) -> usize {
        self.instrs.push(i);
        self.instrs.len() - 1
    }

    fn emit_branch(&mut self, cond: Expr) -> usize {
        self.emit(Instr::BranchIfFalse {
            cond,
            target: usize::MAX,
        })
    }

    fn here(&self) -> usize {
        self.instrs.len()
    }

    fn patch(&mut self, at: usize, target: usize) {
        match &mut self.instrs[at] {
            Instr::Jump(t) => *t = target,
            Instr::BranchIfFalse { target: t, .. } => *t = target,
            other => unreachable!("patched a non-branch instruction: {other:?}"),
        }
    }
}

/// Builds the read multiplexer for `mem[idx]`: a ternary chain over the
/// element nets; out-of-range addresses read all-`X`, like real memory
/// models.
fn mem_read_mux(mem: &MemInfo, idx: Expr) -> Expr {
    let mut out = Expr::Const(LogicVec::xes(mem.width));
    for (k, id) in mem.elems.iter().enumerate().rev() {
        let addr = mem.base + k as i64;
        out = Expr::Ternary {
            cond: Box::new(Expr::Binary {
                op: BinaryOp::Eq,
                lhs: Box::new(idx.clone()),
                rhs: Box::new(Expr::constant(32, addr as u64)),
            }),
            then: Box::new(Expr::Net(*id)),
            els: Box::new(out),
        };
    }
    out
}

/// `true` when the AST expression contains a function call anywhere.
fn expr_contains_call(e: &ast::Expr) -> bool {
    match e {
        ast::Expr::Call { .. } => true,
        ast::Expr::Unary { operand, .. } => expr_contains_call(operand),
        ast::Expr::Binary { lhs, rhs, .. } => expr_contains_call(lhs) || expr_contains_call(rhs),
        ast::Expr::Ternary { cond, then, els } => {
            expr_contains_call(cond) || expr_contains_call(then) || expr_contains_call(els)
        }
        ast::Expr::Concat(parts) => parts.iter().any(expr_contains_call),
        ast::Expr::Repeat { count, value } => {
            expr_contains_call(count) || expr_contains_call(value)
        }
        ast::Expr::Index { base, index } => expr_contains_call(base) || expr_contains_call(index),
        ast::Expr::RangeSel { base, msb, lsb } => {
            expr_contains_call(base) || expr_contains_call(msb) || expr_contains_call(lsb)
        }
        ast::Expr::Number { .. } | ast::Expr::Ident { .. } | ast::Expr::Time { .. } => false,
    }
}

/// AST → IR unary-operator mapping (`None` for the identity `+`).
fn unop_of(op: UnOp) -> Option<UnaryOp> {
    Some(match op {
        UnOp::Not => UnaryOp::Not,
        UnOp::LogicalNot => UnaryOp::LogicalNot,
        UnOp::Negate => UnaryOp::Negate,
        UnOp::Plus => return None,
        UnOp::ReduceAnd => UnaryOp::ReduceAnd,
        UnOp::ReduceOr => UnaryOp::ReduceOr,
        UnOp::ReduceXor => UnaryOp::ReduceXor,
        UnOp::ReduceNand => UnaryOp::ReduceNand,
        UnOp::ReduceNor => UnaryOp::ReduceNor,
        UnOp::ReduceXnor => UnaryOp::ReduceXnor,
    })
}

/// AST → IR binary-operator mapping (`None` for `**`, which only exists
/// as a constant fold).
fn binop_of(op: BinOp) -> Option<BinaryOp> {
    Some(match op {
        BinOp::And => BinaryOp::And,
        BinOp::Or => BinaryOp::Or,
        BinOp::Xor => BinaryOp::Xor,
        BinOp::Xnor => BinaryOp::Xnor,
        BinOp::LogicalAnd => BinaryOp::LogicalAnd,
        BinOp::LogicalOr => BinaryOp::LogicalOr,
        BinOp::Add => BinaryOp::Add,
        BinOp::Sub => BinaryOp::Sub,
        BinOp::Mul => BinaryOp::Mul,
        BinOp::Div => BinaryOp::Div,
        BinOp::Rem => BinaryOp::Rem,
        BinOp::Pow => return None,
        BinOp::Shl => BinaryOp::Shl,
        BinOp::Shr => BinaryOp::Shr,
        BinOp::Eq => BinaryOp::Eq,
        BinOp::Ne => BinaryOp::Ne,
        BinOp::CaseEq => BinaryOp::CaseEq,
        BinOp::CaseNe => BinaryOp::CaseNe,
        BinOp::Lt => BinaryOp::Lt,
        BinOp::Le => BinaryOp::Le,
        BinOp::Gt => BinaryOp::Gt,
        BinOp::Ge => BinaryOp::Ge,
    })
}

/// Collects every net read by the instructions (for `@*` inference).
fn collect_instr_reads(instrs: &[Instr], out: &mut Vec<NetId>) {
    for i in instrs {
        match i {
            Instr::BlockingAssign { lvalue, expr } | Instr::NonblockingAssign { lvalue, expr } => {
                expr.collect_reads(out);
                if let LValue::Index(_, idx) = lvalue {
                    idx.collect_reads(out);
                }
            }
            Instr::Delay { amount } => amount.collect_reads(out),
            Instr::BranchIfFalse { cond, .. } => cond.collect_reads(out),
            Instr::SysCall { args, .. } => {
                for a in args {
                    a.collect_reads(out);
                }
            }
            Instr::WaitEvent { .. } | Instr::Jump(_) | Instr::Halt => {}
        }
    }
}
