//! Four-state scalar logic values.
//!
//! Verilog (IEEE 1364) and VHDL (`std_logic`, collapsed onto four states)
//! both model signals with the values `0`, `1`, `X` (unknown) and `Z`
//! (high impedance). [`Logic`] implements the standard resolution tables
//! for the bitwise operators; anything touching `X` or `Z` degrades to
//! `X` exactly as a real simulator kernel would.

use std::fmt;

/// A single four-state logic value.
///
/// # Example
///
/// ```
/// use aivril_hdl::logic::Logic;
///
/// assert_eq!(Logic::One.and(Logic::X), Logic::X);
/// assert_eq!(Logic::Zero.and(Logic::X), Logic::Zero);
/// assert_eq!(Logic::One.or(Logic::X), Logic::One);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub enum Logic {
    /// Logic low.
    #[default]
    Zero,
    /// Logic high.
    One,
    /// Unknown value.
    X,
    /// High impedance.
    Z,
}

impl Logic {
    /// Returns `true` for [`Logic::X`] and [`Logic::Z`].
    #[must_use]
    pub fn is_unknown(self) -> bool {
        matches!(self, Logic::X | Logic::Z)
    }

    /// Converts a boolean into `0`/`1`.
    #[must_use]
    pub fn from_bool(b: bool) -> Logic {
        if b {
            Logic::One
        } else {
            Logic::Zero
        }
    }

    /// Returns `Some(true)`/`Some(false)` for `1`/`0` and `None` for `X`/`Z`.
    #[must_use]
    pub fn to_bool(self) -> Option<bool> {
        match self {
            Logic::Zero => Some(false),
            Logic::One => Some(true),
            Logic::X | Logic::Z => None,
        }
    }

    /// Standard (aval, bval) simulator encoding: `0 = (0,0)`, `1 = (1,0)`,
    /// `Z = (0,1)`, `X = (1,1)`.
    #[must_use]
    pub fn to_avab(self) -> (bool, bool) {
        match self {
            Logic::Zero => (false, false),
            Logic::One => (true, false),
            Logic::Z => (false, true),
            Logic::X => (true, true),
        }
    }

    /// Inverse of [`Logic::to_avab`].
    #[must_use]
    pub fn from_avab(aval: bool, bval: bool) -> Logic {
        match (aval, bval) {
            (false, false) => Logic::Zero,
            (true, false) => Logic::One,
            (false, true) => Logic::Z,
            (true, true) => Logic::X,
        }
    }

    /// Four-state AND: `0` dominates, otherwise unknowns yield `X`.
    #[must_use]
    pub fn and(self, rhs: Logic) -> Logic {
        match (self, rhs) {
            (Logic::Zero, _) | (_, Logic::Zero) => Logic::Zero,
            (Logic::One, Logic::One) => Logic::One,
            _ => Logic::X,
        }
    }

    /// Four-state OR: `1` dominates, otherwise unknowns yield `X`.
    #[must_use]
    pub fn or(self, rhs: Logic) -> Logic {
        match (self, rhs) {
            (Logic::One, _) | (_, Logic::One) => Logic::One,
            (Logic::Zero, Logic::Zero) => Logic::Zero,
            _ => Logic::X,
        }
    }

    /// Four-state XOR: any unknown input yields `X`.
    #[must_use]
    pub fn xor(self, rhs: Logic) -> Logic {
        match (self.to_bool(), rhs.to_bool()) {
            (Some(a), Some(b)) => Logic::from_bool(a ^ b),
            _ => Logic::X,
        }
    }

    /// Four-state NOT: unknown input yields `X`.
    #[allow(clippy::should_implement_trait)] // domain op, deliberately `not`
    #[must_use]
    pub fn not(self) -> Logic {
        match self {
            Logic::Zero => Logic::One,
            Logic::One => Logic::Zero,
            Logic::X | Logic::Z => Logic::X,
        }
    }

    /// Parses one of `0 1 x X z Z` into a logic value.
    #[must_use]
    pub fn from_char(c: char) -> Option<Logic> {
        match c {
            '0' => Some(Logic::Zero),
            '1' => Some(Logic::One),
            'x' | 'X' => Some(Logic::X),
            'z' | 'Z' | '?' => Some(Logic::Z),
            _ => None,
        }
    }

    /// The canonical lowercase display character.
    #[must_use]
    pub fn to_char(self) -> char {
        match self {
            Logic::Zero => '0',
            Logic::One => '1',
            Logic::X => 'x',
            Logic::Z => 'z',
        }
    }
}

impl fmt::Display for Logic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_char())
    }
}

impl From<bool> for Logic {
    fn from(b: bool) -> Logic {
        Logic::from_bool(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: [Logic; 4] = [Logic::Zero, Logic::One, Logic::X, Logic::Z];

    #[test]
    fn and_truth_table() {
        assert_eq!(Logic::Zero.and(Logic::X), Logic::Zero);
        assert_eq!(Logic::X.and(Logic::Zero), Logic::Zero);
        assert_eq!(Logic::One.and(Logic::One), Logic::One);
        assert_eq!(Logic::One.and(Logic::Z), Logic::X);
        assert_eq!(Logic::X.and(Logic::X), Logic::X);
    }

    #[test]
    fn or_truth_table() {
        assert_eq!(Logic::One.or(Logic::X), Logic::One);
        assert_eq!(Logic::Zero.or(Logic::Zero), Logic::Zero);
        assert_eq!(Logic::Zero.or(Logic::Z), Logic::X);
    }

    #[test]
    fn xor_propagates_unknowns() {
        for v in ALL {
            assert_eq!(Logic::X.xor(v), Logic::X);
            assert_eq!(v.xor(Logic::Z), Logic::X);
        }
        assert_eq!(Logic::One.xor(Logic::One), Logic::Zero);
        assert_eq!(Logic::One.xor(Logic::Zero), Logic::One);
    }

    #[test]
    fn not_maps_z_to_x() {
        assert_eq!(Logic::Z.not(), Logic::X);
        assert_eq!(Logic::X.not(), Logic::X);
        assert_eq!(Logic::Zero.not(), Logic::One);
    }

    #[test]
    fn avab_roundtrip() {
        for v in ALL {
            let (a, b) = v.to_avab();
            assert_eq!(Logic::from_avab(a, b), v);
        }
    }

    #[test]
    fn char_roundtrip() {
        for v in ALL {
            assert_eq!(Logic::from_char(v.to_char()), Some(v));
        }
        assert_eq!(Logic::from_char('q'), None);
    }

    #[test]
    fn and_or_commutative() {
        for a in ALL {
            for b in ALL {
                assert_eq!(a.and(b), b.and(a));
                assert_eq!(a.or(b), b.or(a));
                assert_eq!(a.xor(b), b.xor(a));
            }
        }
    }

    #[test]
    fn de_morgan_on_known_values() {
        for a in [Logic::Zero, Logic::One] {
            for b in [Logic::Zero, Logic::One] {
                assert_eq!(a.and(b).not(), a.not().or(b.not()));
            }
        }
    }
}
