//! The TCP front-end: connection handling, the worker pool, and the
//! deterministic response-streaming discipline.
//!
//! Execution pulls jobs from the [`JobQueue`] and runs them through
//! [`Harness::run_job`] with a job-private [`Recorder`]. Response
//! frames are rendered *after* the pipeline run completes, from the
//! recorder's journal in span-close order — never from live callbacks —
//! so a job's `ack`/`progress`/`result` stream is a pure function of
//! its identity, byte-identical however jobs interleave across workers.

use crate::config::ServeConfig;
use crate::outbox::Outbox;
use crate::protocol::{self, Request, SubmitRequest};
use crate::queue::{Admission, FrameSink, Job, JobQueue};
use aivril_bench::Harness;
use aivril_llm::ModelProfile;
use aivril_obs::{render_event, Recorder};
use std::io::{BufRead, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// The job service: shared harness, per-tenant admission queue, and
/// the accept loop. Wrapped in an [`Arc`] and shared by the accept
/// thread, connection threads and the worker pool.
pub struct Server {
    harness: Harness,
    profile: ModelProfile,
    queue: JobQueue,
    config: ServeConfig,
    started: Instant,
    stop: AtomicBool,
    local_addr: OnceLock<SocketAddr>,
}

impl Server {
    /// Builds a server (harness, model profile, empty queue) from
    /// `config`. Does not bind anything yet.
    #[must_use]
    pub fn new(config: ServeConfig) -> Server {
        let harness = Harness::new(config.harness.clone());
        let profile = config.profile();
        let queue = JobQueue::new(
            config.max_inflight,
            config.max_queue,
            config.harness.pipeline.resilience,
        )
        .with_global_limits(config.max_tenants, config.max_jobs);
        Server {
            harness,
            profile,
            queue,
            config,
            started: Instant::now(),
            stop: AtomicBool::new(false),
            local_addr: OnceLock::new(),
        }
    }

    /// The admission clock: wall seconds since server start. Admission
    /// is deliberately outside the deterministic replay surface (see
    /// the [`crate::queue`] docs); job execution never reads this.
    fn now_s(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    /// The admission queue (exposed for tests and stats).
    #[must_use]
    pub fn queue(&self) -> &JobQueue {
        &self.queue
    }

    /// The service configuration in force.
    #[must_use]
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Validates and admits one submission, emitting the `ack` or
    /// `reject` frame to `sink` so the transcript carries the verdict.
    ///
    /// # Errors
    ///
    /// Returns a message (sent back as an `error` frame) when the task
    /// name is not in the suite.
    pub fn submit(&self, spec: SubmitRequest, sink: FrameSink) -> Result<Admission, String> {
        let problem_index = self
            .harness
            .problems()
            .iter()
            .position(|p| p.name == spec.task)
            .ok_or_else(|| format!("unknown task {:?}", spec.task))?;
        let seed = crate::job_seed(&spec.tenant, &spec.job);
        let (tenant, job_id) = (spec.tenant.clone(), spec.job.clone());
        // The verdict frame is enqueued (never socket-written — the
        // sink must not block) under the queue lock, before the job
        // becomes claimable — the ack always precedes progress.
        let verdict = self.queue.submit_with(
            Job {
                spec,
                problem_index,
                seed,
                sink: sink.clone(),
            },
            self.now_s(),
            |verdict| match verdict {
                Admission::Accepted { seed } => {
                    sink(&protocol::ack_frame(&tenant, &job_id, *seed));
                }
                Admission::Rejected {
                    reason,
                    retry_after_s,
                } => sink(&protocol::reject_frame(
                    &tenant,
                    &job_id,
                    reason,
                    *retry_after_s,
                )),
            },
        );
        Ok(verdict)
    }

    /// Executes one claimed job and streams its frames. The journal is
    /// recorded privately and replayed to the sink only after the run
    /// completes, which is what makes the stream schedule-invariant.
    pub fn execute(&self, job: &Job) {
        let spec = &job.spec;
        let recorder = Recorder::new();
        recorder.set_context(&[
            ("flow", protocol::flow_label(spec.flow)),
            ("job", &spec.job),
            ("lang", protocol::lang_label(spec.verilog)),
            ("model", &self.profile.name),
            ("task", &spec.task),
            ("tenant", &spec.tenant),
        ]);
        let run = self.harness.run_job(
            &self.profile,
            job.problem_index,
            job.seed,
            spec.verilog,
            spec.flow,
            &recorder,
        );
        let mut seq = 0usize;
        for journal in recorder.runs() {
            for event in &journal.events {
                let rendered = render_event(&journal, event);
                (job.sink)(&protocol::progress_frame(
                    &spec.tenant,
                    &spec.job,
                    seq,
                    &rendered,
                ));
                seq += 1;
            }
        }
        (job.sink)(&protocol::result_frame(spec, job.seed, &run));
        let failed = run.record.outcome.crashed || run.record.resilience.degraded > 0;
        self.queue.complete(
            &spec.tenant,
            run.record.outcome.total_latency,
            failed,
            self.now_s(),
        );
    }

    /// One worker thread's life: claim, execute, repeat until the
    /// queue shuts down and drains.
    pub fn run_worker(&self) {
        while let Some(job) = self.queue.next() {
            self.execute(&job);
        }
    }

    /// Spawns `n` worker threads running [`Server::run_worker`].
    #[must_use]
    pub fn spawn_workers(self: &Arc<Self>, n: usize) -> Vec<std::thread::JoinHandle<()>> {
        (0..n)
            .map(|i| {
                let server = Arc::clone(self);
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || server.run_worker())
                    .expect("spawn worker thread")
            })
            .collect()
    }

    /// Drains the queue on the current thread until no job is runnable
    /// right now. Deterministic single-threaded execution for tests.
    pub fn drain(&self) {
        while let Some(job) = self.queue.try_next() {
            self.execute(&job);
        }
    }

    /// Initiates shutdown: pending jobs still drain, then workers exit.
    pub fn finish(&self) {
        self.queue.shutdown();
    }

    /// The bound address once [`Server::serve`] is running.
    #[must_use]
    pub fn local_addr(&self) -> Option<SocketAddr> {
        self.local_addr.get().copied()
    }

    /// Flags the accept loop to stop and wakes it with a self-connect
    /// (accept has no timeout; a dummy connection is the portable way
    /// to interrupt it).
    pub fn request_stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(addr) = self.local_addr() {
            drop(TcpStream::connect(addr));
        }
    }

    /// Runs the accept loop on `listener` until [`Server::request_stop`].
    /// Each connection gets its own thread.
    pub fn serve(self: &Arc<Self>, listener: &TcpListener) {
        if let Ok(addr) = listener.local_addr() {
            let _ = self.local_addr.set(addr);
        }
        for stream in listener.incoming() {
            if self.stop.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = stream else { continue };
            let server = Arc::clone(self);
            let _ = std::thread::Builder::new()
                .name("serve-conn".to_string())
                .spawn(move || server.handle_connection(stream));
        }
    }

    /// Serves one connection: greet, then one request per line until
    /// EOF. All socket writes go through the connection's bounded
    /// [`Outbox`] writer thread — the sink shared with job sinks only
    /// *enqueues*, so neither the submission path (which emits the
    /// ack under the queue lock) nor a worker thread ever blocks on a
    /// slow client; a client that stops reading is dropped when its
    /// outbox overflows or a write times out.
    pub fn handle_connection(self: &Arc<Self>, stream: TcpStream) {
        let write_half = match stream.try_clone() {
            Ok(s) => s,
            Err(_) => return,
        };
        let outbox = Outbox::spawn(
            write_half,
            self.config.outbox_cap,
            self.config.send_timeout_s,
        );
        /// Closes the outbox when the last sink clone drops (the
        /// connection handler and every in-flight job share one
        /// closure), letting the writer thread drain and exit.
        struct SinkGuard(Arc<Outbox>);
        impl Drop for SinkGuard {
            fn drop(&mut self) {
                self.0.close();
            }
        }
        let sink: FrameSink = {
            let guard = SinkGuard(Arc::clone(&outbox));
            Arc::new(move |frame: &str| {
                // A vanished client must not take a worker down: a
                // dead outbox swallows frames silently.
                guard.0.push(frame);
            })
        };
        sink(&protocol::hello_frame(
            &self.profile.name,
            self.config.max_inflight,
            self.config.max_queue,
        ));
        let reader = BufReader::new(stream);
        for line in reader.lines() {
            let Ok(line) = line else { break };
            if line.trim().is_empty() {
                continue;
            }
            match protocol::parse_request(&line) {
                Err(e) => sink(&protocol::error_frame(&e)),
                Ok(Request::Ping) => sink(&protocol::pong_frame()),
                Ok(Request::Stats) => sink(&protocol::stats_frame(
                    &self.queue.stats(),
                    self.harness.cache_stats().as_ref(),
                )),
                Ok(Request::Shutdown) => {
                    sink(&protocol::bye_frame());
                    // The process exits once the accept loop notices
                    // the stop flag — make sure the `bye` actually hits
                    // the wire before that instead of racing the writer
                    // thread.
                    outbox.drain(std::time::Duration::from_secs(5));
                    self.finish();
                    self.request_stop();
                    break;
                }
                Ok(Request::Submit(spec)) => {
                    if let Err(e) = self.submit(spec, sink.clone()) {
                        sink(&protocol::error_frame(&e));
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aivril_bench::Flow;
    use std::sync::{Mutex, PoisonError};

    fn collect_sink() -> (FrameSink, Arc<Mutex<Vec<String>>>) {
        let frames = Arc::new(Mutex::new(Vec::new()));
        let sink_frames = Arc::clone(&frames);
        let sink: FrameSink = Arc::new(move |f: &str| {
            sink_frames
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push(f.to_string());
        });
        (sink, frames)
    }

    fn small_server() -> Server {
        let (mut config, _) = ServeConfig::from_vars_checked(|_| None);
        config.harness.task_limit = 4;
        Server::new(config)
    }

    #[test]
    fn unknown_task_is_an_error_not_a_job() {
        let server = small_server();
        let (sink, frames) = collect_sink();
        let err = server
            .submit(
                SubmitRequest {
                    tenant: "acme".into(),
                    job: "j1".into(),
                    task: "prob999_warp_drive".into(),
                    verilog: true,
                    flow: Flow::Aivril2,
                },
                sink,
            )
            .unwrap_err();
        assert!(err.contains("unknown task"), "{err}");
        assert!(frames.lock().unwrap().is_empty(), "no frame for an error");
        assert_eq!(server.queue().stats().queued, 0);
    }

    #[test]
    fn submitted_job_streams_ack_progress_result() {
        let server = small_server();
        let (sink, frames) = collect_sink();
        let verdict = server
            .submit(
                SubmitRequest {
                    tenant: "acme".into(),
                    job: "j1".into(),
                    task: "prob000_and2".into(),
                    verilog: true,
                    flow: Flow::Aivril2,
                },
                sink,
            )
            .unwrap();
        assert!(matches!(verdict, Admission::Accepted { .. }));
        server.drain();
        let frames = frames.lock().unwrap();
        assert!(frames[0].contains("\"type\":\"ack\""), "{}", frames[0]);
        assert!(
            frames.len() > 2,
            "expected progress frames between ack and result: {frames:?}"
        );
        for frame in &frames[1..frames.len() - 1] {
            assert!(frame.contains("\"type\":\"progress\""), "{frame}");
        }
        let last = frames.last().unwrap();
        assert!(last.contains("\"type\":\"result\""), "{last}");
        assert!(last.contains("\"task\":\"prob000_and2\""), "{last}");
        assert_eq!(server.queue().stats().completed, 1);
    }

    #[test]
    fn replayed_job_is_byte_identical() {
        let server = small_server();
        let run_once = || {
            let (sink, frames) = collect_sink();
            server
                .submit(
                    SubmitRequest {
                        tenant: "acme".into(),
                        job: "replay-me".into(),
                        task: "prob002_xor2".into(),
                        verilog: true,
                        flow: Flow::Aivril2,
                    },
                    sink,
                )
                .unwrap();
            server.drain();
            let g = frames.lock().unwrap();
            g.clone()
        };
        let first = run_once();
        let second = run_once();
        assert_eq!(first, second, "replay must be byte-identical");
    }
}
