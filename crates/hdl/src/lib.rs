//! Shared hardware-description substrate for the AIVRIL2 reproduction.
//!
//! This crate provides the foundation every other crate in the workspace
//! builds on:
//!
//! * [`logic`] — IEEE-1364 four-state scalar logic values (`0`, `1`, `X`, `Z`)
//!   with the standard resolution tables.
//! * [`vec`](mod@vec) — [`LogicVec`], a packed four-state bit vector with
//!   X/Z-propagating arithmetic, shifts, comparisons, concatenation and
//!   part-selects, matching Verilog evaluation semantics.
//! * [`source`] — source files, spans and line/column mapping used by both
//!   language frontends and by the diagnostics engine.
//! * [`diag`] — structured diagnostics with Vivado-style log rendering
//!   (`ERROR: [VRFC 10-91] ... [adder.v:12]`), the raw material the paper's
//!   *Review Agent* distills into corrective prompts.
//! * [`ir`] — the elaborated design intermediate representation shared by
//!   the Verilog and VHDL frontends and executed by the event-driven
//!   simulator, enabling mixed-language simulation exactly as Vivado's
//!   unified compilation flow does.
//!
//! # Example
//!
//! ```
//! use aivril_hdl::vec::LogicVec;
//!
//! let a = LogicVec::from_u64(8, 0x5A);
//! let b = LogicVec::from_u64(8, 0x0F);
//! assert_eq!(a.and(&b).to_u64(), Some(0x0A));
//! ```

#![warn(missing_docs)]

pub mod bits;
pub mod diag;
pub mod ir;
pub mod logic;
pub mod source;
pub mod vec;

pub use bits::{BitsRef, ScratchBuf};
pub use diag::{Diagnostic, Severity};
pub use logic::Logic;
pub use source::{FileId, SourceMap, Span};
pub use vec::LogicVec;
