//! Value Change Dump (IEEE 1364 §18) waveform output.
//!
//! The simulator can record every net change and render it as a
//! standard `.vcd` file loadable by GTKWave & friends — the waveform
//! side-channel real debugging flows (and tools like VerilogCoder's
//! waveform tracer) rely on.

use aivril_hdl::ir::Design;
use aivril_hdl::vec::LogicVec;

/// One recorded value change.
#[derive(Debug, Clone)]
pub(crate) struct Change {
    pub time: u64,
    pub net: usize,
    pub value: LogicVec,
}

/// Generates the short printable identifier code VCD uses for net `i`.
fn id_code(mut i: usize) -> String {
    // Base-94 over the printable ASCII range '!'..='~'.
    let mut s = String::new();
    loop {
        s.push(char::from(b'!' + (i % 94) as u8));
        i /= 94;
        if i == 0 {
            break;
        }
    }
    s
}

fn format_value(v: &LogicVec, code: &str) -> String {
    if v.width() == 1 {
        format!("{}{}\n", v.get(0).to_char(), code)
    } else {
        format!("b{} {}\n", v.to_binary_string(), code)
    }
}

/// Renders a full VCD document from the design's net declarations, the
/// initial values and the time-ordered change list.
pub(crate) fn render(
    design: &Design,
    initial: &[LogicVec],
    changes: &[Change],
    end_time: u64,
) -> String {
    let mut out = String::new();
    out.push_str("$date\n  (deterministic reproduction run)\n$end\n");
    out.push_str("$version\n  aivril-sim\n$end\n");
    out.push_str("$timescale 1ns $end\n");
    out.push_str(&format!("$scope module {} $end\n", design.top));
    for (i, net) in design.nets.iter().enumerate() {
        let range = if net.width == 1 {
            String::new()
        } else {
            format!(" [{}:0]", net.width - 1)
        };
        // VCD identifiers may not contain spaces; hierarchical dots are
        // conventional and accepted by viewers.
        out.push_str(&format!(
            "$var wire {} {} {}{} $end\n",
            net.width,
            id_code(i),
            net.name,
            range
        ));
    }
    out.push_str("$upscope $end\n$enddefinitions $end\n");
    out.push_str("#0\n$dumpvars\n");
    for (i, v) in initial.iter().enumerate() {
        out.push_str(&format_value(v, &id_code(i)));
    }
    out.push_str("$end\n");
    let mut current = 0u64;
    for c in changes {
        if c.time != current {
            out.push_str(&format!("#{}\n", c.time));
            current = c.time;
        }
        out.push_str(&format_value(&c.value, &id_code(c.net)));
    }
    if end_time > current {
        out.push_str(&format!("#{end_time}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use aivril_hdl::ir::{Net, NetKind};

    fn design() -> Design {
        let mut d = Design::new("tb");
        d.add_net(Net {
            name: "tb.clk".into(),
            width: 1,
            kind: NetKind::Reg,
            init: None,
        });
        d.add_net(Net {
            name: "tb.count".into(),
            width: 4,
            kind: NetKind::Reg,
            init: None,
        });
        d
    }

    #[test]
    fn id_codes_are_unique_and_printable() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..1000 {
            let code = id_code(i);
            assert!(code.chars().all(|c| ('!'..='~').contains(&c)));
            assert!(seen.insert(code), "duplicate at {i}");
        }
        assert_eq!(id_code(0), "!");
        assert_eq!(
            id_code(94),
            "\"!".to_string().chars().rev().collect::<String>()
        );
    }

    #[test]
    fn renders_header_and_changes() {
        let d = design();
        let initial = vec![LogicVec::zeros(1), LogicVec::xes(4)];
        let changes = vec![
            Change {
                time: 5,
                net: 0,
                value: LogicVec::from_u64(1, 1),
            },
            Change {
                time: 5,
                net: 1,
                value: LogicVec::from_u64(4, 3),
            },
            Change {
                time: 10,
                net: 0,
                value: LogicVec::from_u64(1, 0),
            },
        ];
        let vcd = render(&d, &initial, &changes, 20);
        assert!(vcd.contains("$timescale 1ns $end"));
        assert!(vcd.contains("$var wire 1 ! tb.clk $end"));
        assert!(vcd.contains("$var wire 4 \" tb.count [3:0] $end"));
        assert!(vcd.contains("#0\n$dumpvars\n0!\nbxxxx \"\n$end\n"));
        assert!(vcd.contains("#5\n1!\nb0011 \"\n"));
        assert!(vcd.contains("#10\n0!\n"));
        assert!(vcd.ends_with("#20\n"));
    }
}
