//! The suite's core invariant: every golden DUT passes its own
//! reference testbench, in both languages, under the EDA tool suite.
//! This is what makes the benchmark usable for pass@1 scoring — a
//! correct submission is guaranteed to score as functionally correct.

use aivril_eda::{HdlFile, ToolSuite, XsimToolSuite};
use aivril_verilogeval::suite;

#[test]
fn all_verilog_goldens_pass_their_testbenches() {
    let tools = XsimToolSuite::new();
    let mut failures = Vec::new();
    for p in suite() {
        let files = [
            HdlFile::new(format!("{}.v", p.module_name), p.verilog.dut.clone()),
            HdlFile::new("tb.v", p.verilog.tb.clone()),
        ];
        let report = tools.simulate(&files, Some("tb"));
        if !report.passed {
            failures.push(format!(
                "{}:\n--- dut ---\n{}\n--- log ---\n{}",
                p.name,
                p.verilog.dut,
                tail(&report.log, 30)
            ));
        }
    }
    assert!(
        failures.is_empty(),
        "{} Verilog golden(s) failed:\n{}",
        failures.len(),
        failures.join("\n=====\n")
    );
}

#[test]
fn all_vhdl_goldens_pass_their_testbenches() {
    let tools = XsimToolSuite::new();
    let mut failures = Vec::new();
    for p in suite() {
        let files = [
            HdlFile::new(format!("{}.vhd", p.module_name), p.vhdl.dut.clone()),
            HdlFile::new("tb.vhd", p.vhdl.tb.clone()),
        ];
        let report = tools.simulate(&files, Some("tb"));
        if !report.passed {
            failures.push(format!(
                "{}:\n--- dut ---\n{}\n--- log ---\n{}",
                p.name,
                p.vhdl.dut,
                tail(&report.log, 30)
            ));
        }
    }
    assert!(
        failures.is_empty(),
        "{} VHDL golden(s) failed:\n{}",
        failures.len(),
        failures.join("\n=====\n")
    );
}

fn tail(s: &str, n: usize) -> String {
    let lines: Vec<&str> = s.lines().collect();
    let start = lines.len().saturating_sub(n);
    lines[start..].join("\n")
}
