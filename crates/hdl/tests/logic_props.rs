//! Property-based tests for the four-state logic substrate.

use aivril_hdl::logic::Logic;
use aivril_hdl::vec::LogicVec;
use proptest::prelude::*;

fn arb_logic() -> impl Strategy<Value = Logic> {
    prop_oneof![
        Just(Logic::Zero),
        Just(Logic::One),
        Just(Logic::X),
        Just(Logic::Z),
    ]
}

fn arb_vec(max_width: u32) -> impl Strategy<Value = LogicVec> {
    (1..=max_width).prop_flat_map(|w| {
        proptest::collection::vec(arb_logic(), w as usize)
            .prop_map(|bits| LogicVec::from_bits_msb_first(&bits))
    })
}

proptest! {
    /// The scalar resolution tables are commutative and X-dominant.
    #[test]
    fn scalar_ops_commute(a in arb_logic(), b in arb_logic()) {
        prop_assert_eq!(a.and(b), b.and(a));
        prop_assert_eq!(a.or(b), b.or(a));
        prop_assert_eq!(a.xor(b), b.xor(a));
    }

    /// Vector bitwise ops distribute over per-bit scalar ops.
    #[test]
    fn bitwise_is_per_bit(a in arb_vec(24), b in arb_vec(24)) {
        let width = a.width().max(b.width());
        let and = a.and(&b);
        for i in 0..width {
            let ab = if i < a.width() { a.get(i) } else { Logic::Zero };
            let bb = if i < b.width() { b.get(i) } else { Logic::Zero };
            prop_assert_eq!(and.get(i), ab.and(bb));
        }
    }

    /// Double negation over known values is the identity.
    #[test]
    fn not_not_identity(v in 0u64..u64::MAX, w in 1u32..60) {
        let v = v & ((1 << w) - 1);
        let lv = LogicVec::from_u64(w, v);
        prop_assert_eq!(lv.not().not().to_u64(), Some(v));
        prop_assert_eq!(lv.negate().negate().to_u64(), Some(v));
    }

    /// Case equality is reflexive for every four-state pattern; logical
    /// equality is reflexive only on fully-known values.
    #[test]
    fn equality_semantics(v in arb_vec(20)) {
        prop_assert!(v.case_eq(&v));
        if v.has_unknown() {
            prop_assert_eq!(v.logic_eq(&v), Logic::X);
        } else {
            prop_assert_eq!(v.logic_eq(&v), Logic::One);
        }
    }

    /// `set_slice` then `slice` reads back exactly what was written.
    #[test]
    fn slice_write_read(base in 0u64..1u64<<32, hi in 0u32..31, lo in 0u32..31, val in 0u64..1u64<<31) {
        let (hi, lo) = if hi >= lo { (hi, lo) } else { (lo, hi) };
        let mut v = LogicVec::from_u64(32, base);
        let w = hi - lo + 1;
        let val = val & ((1u64 << w) - 1);
        v.set_slice(hi, lo, &LogicVec::from_u64(w, val));
        prop_assert_eq!(v.slice(hi, lo).to_u64(), Some(val));
        // Bits outside the slice are untouched.
        for i in 0..32u32 {
            if i < lo || i > hi {
                prop_assert_eq!(v.get(i), Logic::from_bool(base >> i & 1 == 1));
            }
        }
    }

    /// Shifts agree with u64 shifts.
    #[test]
    fn shifts_match_u64(v in 0u64..u64::MAX, w in 1u32..60, n in 0u32..64) {
        let v = v & ((1 << w) - 1);
        let lv = LogicVec::from_u64(w, v);
        let mask = (1u64 << w) - 1;
        let expect_l = if n >= 64 { 0 } else { (v << n) & mask };
        let expect_r = if n >= 64 { 0 } else { v >> n };
        prop_assert_eq!(lv.shift_left_const(n).to_u64(), Some(expect_l));
        prop_assert_eq!(lv.shift_right_const(n).to_u64(), Some(expect_r));
    }

    /// Binary literal rendering round-trips through parsing.
    #[test]
    fn binary_string_roundtrip(v in arb_vec(24)) {
        let s = v.to_binary_string();
        let back = LogicVec::parse_binary(&s).expect("rendered string parses");
        prop_assert!(back.case_eq(&v));
        prop_assert_eq!(back.width(), v.width());
    }

    /// Resize up then back down is the identity.
    #[test]
    fn resize_roundtrip(v in 0u64..u64::MAX, w in 1u32..48, extra in 1u32..32) {
        let v = v & ((1 << w) - 1);
        let lv = LogicVec::from_u64(w, v);
        prop_assert_eq!(lv.resize(w + extra).resize(w).to_u64(), Some(v));
    }

    /// Replication multiplies the popcount.
    #[test]
    fn replicate_popcount(v in 0u64..256, n in 1u32..6) {
        let lv = LogicVec::from_u64(8, v);
        let rep = lv.replicate(n);
        prop_assert_eq!(rep.width(), 8 * n);
        prop_assert_eq!(rep.count_ones(), lv.count_ones().map(|c| c * n));
    }
}

proptest! {
    /// Differential oracle: the word-parallel bitwise implementations
    /// must agree bit-for-bit with the scalar resolution tables.
    #[test]
    fn word_parallel_matches_scalar(a in arb_vec(80), b in arb_vec(80)) {
        let width = a.width().max(b.width());
        type OpPair = (&'static str, fn(&LogicVec, &LogicVec) -> LogicVec, fn(Logic, Logic) -> Logic);
        let ops: [OpPair; 4] = [
            ("and", LogicVec::and, Logic::and),
            ("or", LogicVec::or, Logic::or),
            ("xor", LogicVec::xor, Logic::xor),
            ("xnor", LogicVec::xnor, |x, y| x.xor(y).not()),
        ];
        for (name, vec_op, bit_op) in ops {
            let fast = vec_op(&a, &b);
            for i in 0..width {
                let ab = if i < a.width() { a.get(i) } else { Logic::Zero };
                let bb = if i < b.width() { b.get(i) } else { Logic::Zero };
                prop_assert_eq!(fast.get(i), bit_op(ab, bb), "{} bit {}", name, i);
            }
        }
        // NOT as well.
        let n = a.not();
        for i in 0..a.width() {
            prop_assert_eq!(n.get(i), a.get(i).not());
        }
    }
}
