//! LLM abstraction and the simulated, fault-injecting language models.
//!
//! AIVRIL2 is *LLM-agnostic*: its agents exchange chat messages with any
//! model behind a uniform interface. This crate provides that interface
//! ([`LanguageModel`], [`ChatRequest`]/[`ChatResponse`]) plus the
//! reproduction's central substitution: [`SimLlm`], a deterministic
//! model simulator.
//!
//! # Why a simulated model is a sound substitute
//!
//! The framework under study never inspects model internals — it only
//! sees generated code, compiler logs and simulation logs. What matters
//! for reproducing the paper's results is the *error process*: how often
//! a model's RTL carries syntax or functional faults, and how reliably
//! pointed-at faults get repaired per corrective iteration. [`SimLlm`]
//! implements exactly that process: starting from a golden solution (its
//! "knowledge" of the task, provided by a [`TaskLibrary`]), it injects
//! *real, compilable-or-not* textual faults at per-model × per-language
//! calibrated rates ([`profiles`]), and on corrective prompts repairs
//! surviving faults with calibrated per-iteration probabilities. Every
//! sample is reproducible from the request's seed.
//!
//! Latencies are modeled per generated token ([`LlmLatencyModel`]) so
//! the paper's Figure 3 latency breakdown can be regenerated.
//!
//! # Example
//!
//! ```
//! use aivril_llm::{profiles, ChatRequest, GenParams, LanguageModel, Message, SimLlm, TaskLibrary};
//!
//! let mut lib = TaskLibrary::new();
//! lib.add_task(
//!     "prob000_and2",
//!     "module and2(input a, input b, output y);\n  assign y = a & b;\nendmodule\n",
//!     "module tb; endmodule\n",
//!     "entity and2 is end entity;\n",
//!     "entity tb is end entity;\n",
//! );
//! let mut model = SimLlm::new(profiles::claude35_sonnet(), lib);
//! let request = ChatRequest {
//!     messages: vec![Message::user(
//!         "Design task: prob000_and2.\nTarget language: Verilog.\n\
//!          Write the RTL module for the task.",
//!     )],
//!     params: GenParams { seed: 1, ..GenParams::default() },
//! };
//! let response = model.chat(&request).expect("no faults configured");
//! assert!(response.content.contains("```"));
//! assert!(response.latency_s > 0.0);
//! ```

#![warn(missing_docs)]

mod chat;
mod faults;
mod latency;
pub mod mutate;
pub mod profiles;
mod simllm;
mod task;

pub use chat::{ChatRequest, ChatResponse, GenParams, Message, Role, TokenUsage};
pub use faults::{BackendFault, FaultConfig, LlmError};
pub use latency::LlmLatencyModel;
pub use profiles::{LangProfile, ModelProfile};
pub use simllm::{protocol, task_header, SimLlm};
pub use task::TaskLibrary;

/// A chat-completion language model, as the agents see it.
///
/// Implementations must be deterministic given
/// [`GenParams::seed`] — the evaluation harness relies on replayable
/// samples for the unbiased pass@k estimator.
pub trait LanguageModel {
    /// Model identifier shown in result tables (e.g. `Claude 3.5 Sonnet`).
    fn name(&self) -> &str;

    /// Produces the assistant's next message for `request`, or a
    /// transport-level [`LlmError`] (timeout, rate limit) when the
    /// backend fails before yielding one. Content-level degradations —
    /// truncated or empty completions, wrong-language code — are `Ok`
    /// responses: the corrective loop, not the transport, handles those.
    fn chat(&mut self, request: &ChatRequest) -> Result<ChatResponse, LlmError>;
}

/// Extracts the first fenced code block from a model response, the way
/// the Code Agent ingests generations. Falls back to the whole text when
/// no fence is present (models sometimes reply with bare code).
#[must_use]
pub fn extract_code(response: &str) -> String {
    if let Some(start) = response.find("```") {
        let after = &response[start + 3..];
        // Skip the info string (e.g. `verilog`).
        let body_start = after.find('\n').map_or(0, |i| i + 1);
        let body = &after[body_start..];
        if let Some(end) = body.find("```") {
            return body[..end].to_string();
        }
        return body.to_string();
    }
    response.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extract_fenced_code() {
        let r = "Here is the module:\n```verilog\nmodule m;\nendmodule\n```\nDone.";
        assert_eq!(extract_code(r), "module m;\nendmodule\n");
    }

    #[test]
    fn extract_without_fence_returns_all() {
        assert_eq!(extract_code("module m; endmodule"), "module m; endmodule");
    }

    #[test]
    fn extract_unterminated_fence() {
        let r = "```vhdl\nentity e is end;";
        assert_eq!(extract_code(r), "entity e is end;");
    }
}
