//! A tiny hand-rolled JSON writer: exactly what the exporters need,
//! with deterministic formatting (no registry access, no dependencies).

/// Escapes `s` for inclusion in a JSON string literal (no quotes).
#[must_use]
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders a quoted JSON string literal.
#[must_use]
pub fn string(s: &str) -> String {
    format!("\"{}\"", escape(s))
}

/// Renders an `f64` as a JSON number with fixed six-decimal precision —
/// the deterministic formatting every exporter uses. Non-finite values
/// (not representable in JSON) render as `null`.
#[must_use]
pub fn number(value: f64) -> String {
    if value.is_finite() {
        format!("{value:.6}")
    } else {
        "null".to_string()
    }
}

/// Renders an object from pre-rendered `key: value` fragments.
#[must_use]
pub fn object(fields: &[(&str, String)]) -> String {
    let inner: Vec<String> = fields
        .iter()
        .map(|(k, v)| format!("{}:{v}", string(k)))
        .collect();
    format!("{{{}}}", inner.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn numbers_are_fixed_precision() {
        assert_eq!(number(1.5), "1.500000");
        assert_eq!(number(f64::NAN), "null");
    }

    #[test]
    fn objects_compose() {
        assert_eq!(
            object(&[("a", "1".to_string()), ("b", string("x"))]),
            "{\"a\":1,\"b\":\"x\"}"
        );
    }
}
