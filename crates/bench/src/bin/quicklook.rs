//! Smoke-test harness: a miniature Table-1-shaped run (few tasks, few
//! samples, one model) that finishes in seconds. Useful for sanity
//! checking after changes, before committing to the full table runs.

use aivril_bench::{Flow, Harness, HarnessConfig};
use aivril_llm::profiles;
use aivril_metrics::suite_metric;

fn main() {
    let config = HarnessConfig {
        samples: 2,
        task_limit: 10,
        ..HarnessConfig::from_env()
    };
    let harness = Harness::new(config);
    let profile = profiles::claude35_sonnet();
    println!(
        "quicklook: {} tasks x {} samples on {} thread(s), {}",
        harness.problems().len(),
        config.samples,
        config.effective_threads(),
        profile.name
    );

    for verilog in [true, false] {
        let lang = if verilog { "Verilog" } else { "VHDL" };
        let base = harness.evaluate(&profile, verilog, Flow::Baseline);
        let (full, stats) = harness.evaluate_with_stats(&profile, verilog, Flow::Aivril2);
        println!(
            "  {lang:8}  baseline S {:5.1}% F {:5.1}%   AIVRIL2 S {:5.1}% F {:5.1}%",
            suite_metric(&base, 1, |s| s.syntax) * 100.0,
            suite_metric(&base, 1, |s| s.functional) * 100.0,
            suite_metric(&full, 1, |s| s.syntax) * 100.0,
            suite_metric(&full, 1, |s| s.functional) * 100.0,
        );
        println!("  {stats}");
    }
    println!("ok");
}
