//! Magnitude comparators (10 problems).

use crate::builders::{comb_problem, CombSpec};
use crate::port::{vhdl_lit, vlog_lit, Port};
use crate::{Difficulty, Family, Problem};

fn eq(width: u32) -> CombSpec {
    CombSpec {
        name: format!("cmp_eq_w{width}"),
        family: Family::Comparator,
        difficulty: Difficulty::Easy,
        description: format!("y is 1 exactly when the two {width}-bit inputs are equal."),
        inputs: vec![Port::new("a", width), Port::new("b", width)],
        outputs: vec![Port::new("y", 1)],
        vlog_body: "  assign y = (a == b);\n".into(),
        vlog_out_reg: false,
        vhdl_body: "  y <= '1' when a = b else '0';\n".into(),
        vhdl_decls: String::new(),
        eval: Box::new(|v| vec![u64::from(v[0] == v[1])]),
    }
}

fn lt(width: u32) -> CombSpec {
    CombSpec {
        name: format!("cmp_lt_w{width}"),
        family: Family::Comparator,
        difficulty: Difficulty::Easy,
        description: format!(
            "y is 1 when the unsigned {width}-bit input a is strictly less than b."
        ),
        inputs: vec![Port::new("a", width), Port::new("b", width)],
        outputs: vec![Port::new("y", 1)],
        vlog_body: "  assign y = (a < b);\n".into(),
        vlog_out_reg: false,
        vhdl_body: "  y <= '1' when unsigned(a) < unsigned(b) else '0';\n".into(),
        vhdl_decls: String::new(),
        eval: Box::new(|v| vec![u64::from(v[0] < v[1])]),
    }
}

fn full(width: u32) -> CombSpec {
    CombSpec {
        name: format!("cmp_full_w{width}"),
        family: Family::Comparator,
        difficulty: Difficulty::Medium,
        description: format!(
            "A full {width}-bit unsigned comparator: eq = (a == b), lt = (a < b), gt = (a > b); exactly one output is 1."
        ),
        inputs: vec![Port::new("a", width), Port::new("b", width)],
        outputs: vec![Port::new("eq", 1), Port::new("lt", 1), Port::new("gt", 1)],
        vlog_body: "  assign eq = (a == b);\n  assign lt = (a < b);\n  assign gt = (a > b);\n"
            .into(),
        vlog_out_reg: false,
        vhdl_body: "  eq <= '1' when a = b else '0';\n  lt <= '1' when unsigned(a) < unsigned(b) else '0';\n  gt <= '1' when unsigned(a) > unsigned(b) else '0';\n".into(),
        vhdl_decls: String::new(),
        eval: Box::new(|v| {
            vec![
                u64::from(v[0] == v[1]),
                u64::from(v[0] < v[1]),
                u64::from(v[0] > v[1]),
            ]
        }),
    }
}

fn minmax(width: u32, is_max: bool) -> CombSpec {
    let name = if is_max { "max" } else { "min" };
    let (vop, hop) = if is_max { (">", ">") } else { ("<", "<") };
    CombSpec {
        name: format!("{name}_w{width}"),
        family: Family::Comparator,
        difficulty: Difficulty::Medium,
        description: format!(
            "y is the {} of the two unsigned {width}-bit inputs a and b.",
            if is_max { "maximum" } else { "minimum" }
        ),
        inputs: vec![Port::new("a", width), Port::new("b", width)],
        outputs: vec![Port::new("y", width)],
        vlog_body: format!("  assign y = (a {vop} b) ? a : b;\n"),
        vlog_out_reg: false,
        vhdl_body: format!("  y <= a when unsigned(a) {hop} unsigned(b) else b;\n"),
        vhdl_decls: String::new(),
        eval: Box::new(move |v| {
            vec![if is_max {
                v[0].max(v[1])
            } else {
                v[0].min(v[1])
            }]
        }),
    }
}

fn is_zero(width: u32) -> CombSpec {
    CombSpec {
        name: format!("is_zero_w{width}"),
        family: Family::Comparator,
        difficulty: Difficulty::Easy,
        description: format!("y is 1 exactly when the {width}-bit input a is all zeros."),
        inputs: vec![Port::new("a", width)],
        outputs: vec![Port::new("y", 1)],
        vlog_body: "  assign y = ~|a;\n".into(),
        vlog_out_reg: false,
        vhdl_body: format!("  y <= '1' when a = {} else '0';\n", vhdl_lit(width, 0)),
        vhdl_decls: String::new(),
        eval: Box::new(|v| vec![u64::from(v[0] == 0)]),
    }
}

fn in_range(width: u32, lo: u64, hi: u64) -> CombSpec {
    CombSpec {
        name: format!("in_range_w{width}"),
        family: Family::Comparator,
        difficulty: Difficulty::Medium,
        description: format!(
            "y is 1 when the unsigned {width}-bit input a satisfies {lo} <= a <= {hi}."
        ),
        inputs: vec![Port::new("a", width)],
        outputs: vec![Port::new("y", 1)],
        vlog_body: format!(
            "  assign y = (a >= {}) && (a <= {});\n",
            vlog_lit(width, lo),
            vlog_lit(width, hi)
        ),
        vlog_out_reg: false,
        vhdl_body: format!(
            "  y <= '1' when (unsigned(a) >= {lo}) and (unsigned(a) <= {hi}) else '0';\n"
        ),
        vhdl_decls: String::new(),
        eval: Box::new(move |v| vec![u64::from(v[0] >= lo && v[0] <= hi)]),
    }
}

/// Appends the family's problems.
pub fn extend(problems: &mut Vec<Problem>) {
    for w in [4, 8] {
        problems.push(comb_problem(eq(w)));
    }
    for w in [4, 8] {
        problems.push(comb_problem(lt(w)));
    }
    for w in [4, 8] {
        problems.push(comb_problem(full(w)));
    }
    problems.push(comb_problem(minmax(4, true)));
    problems.push(comb_problem(minmax(4, false)));
    problems.push(comb_problem(is_zero(8)));
    problems.push(comb_problem(in_range(4, 3, 12)));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contributes_10_problems() {
        let mut v = Vec::new();
        extend(&mut v);
        assert_eq!(v.len(), 10);
    }

    #[test]
    fn full_comparator_one_hot() {
        let s = full(4);
        assert_eq!((s.eval)(&[3, 3]), vec![1, 0, 0]);
        assert_eq!((s.eval)(&[2, 9]), vec![0, 1, 0]);
        assert_eq!((s.eval)(&[9, 2]), vec![0, 0, 1]);
    }

    #[test]
    fn in_range_golden() {
        let s = in_range(4, 3, 12);
        assert_eq!((s.eval)(&[2]), vec![0]);
        assert_eq!((s.eval)(&[3]), vec![1]);
        assert_eq!((s.eval)(&[12]), vec![1]);
        assert_eq!((s.eval)(&[13]), vec![0]);
    }
}
