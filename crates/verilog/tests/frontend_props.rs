//! Property-based tests for the Verilog frontend.

use aivril_hdl::source::SourceMap;
use aivril_verilog::{analyze, compile, try_parse_literal};
use aivril_verilogeval::Problem;
use proptest::prelude::*;
use std::sync::OnceLock;

fn suite() -> &'static [Problem] {
    static SUITE: OnceLock<Vec<Problem>> = OnceLock::new();
    SUITE.get_or_init(aivril_verilogeval::suite)
}

proptest! {
    /// The lexer and parser never panic on printable noise.
    #[test]
    fn frontend_total_on_noise(src in "[ -~\\n\\t]{0,400}") {
        let mut sources = SourceMap::new();
        sources.add_file("noise.v", src);
        let _ = analyze(&sources);
    }

    /// Literal parsing matches its mathematical definition for sized
    /// binary/hex/decimal forms.
    #[test]
    fn literal_parsing(v in 0u64..u64::MAX, w in 1u32..60) {
        let v = v & ((1 << w) - 1);
        for text in [
            format!("{w}'d{v}"),
            format!("{w}'h{v:x}"),
            format!("{w}'b{v:b}"),
            format!("{w}'o{v:o}"),
        ] {
            let parsed = try_parse_literal(&text).expect("well-formed literal");
            prop_assert_eq!(parsed.width(), w);
            prop_assert_eq!(parsed.to_u64(), Some(v), "text {}", text);
        }
    }

    /// Parameterised modules elaborate for any width in range, and the
    /// parameter genuinely controls the port width.
    #[test]
    fn parameter_widths_elaborate(w in 1u32..48) {
        let src = format!(
            "module wide #(parameter W = 4) (input [W-1:0] a, output [W-1:0] y);\n\
             \x20 assign y = ~a;\nendmodule\n\
             module top;\n  reg [{hi}:0] a; wire [{hi}:0] y;\n\
             \x20 wide #(.W({w})) u(.a(a), .y(y));\nendmodule\n",
            hi = w - 1
        );
        let mut sources = SourceMap::new();
        sources.add_file("t.v", src);
        let design = compile(&sources, "top").expect("elaborates");
        let net = design.find_net("u.a").expect("child port exists");
        prop_assert_eq!(design.net(net).width, w);
    }

    /// Deleting an arbitrary line from a golden design either still
    /// compiles or produces at least one located error — never a panic,
    /// never a silent empty result.
    #[test]
    fn line_deletion_is_diagnosed(idx in 0usize..16, line in 0usize..40) {
        let problems = suite();
        let p = &problems[idx * 9 % problems.len()];
        let lines: Vec<&str> = p.verilog.dut.lines().collect();
        let drop = line % lines.len();
        let mutated: String = lines
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != drop)
            .map(|(_, l)| format!("{l}\n"))
            .collect();
        let mut sources = SourceMap::new();
        sources.add_file("m.v", mutated);
        match compile(&sources, &p.module_name) {
            Ok(design) => prop_assert!(!design.nets.is_empty()),
            Err(diags) => prop_assert!(diags.has_errors()),
        }
    }
}

/// Non-proptest sanity: every golden DUT in the suite analyzes without
/// diagnostics of any severity beyond warnings.
#[test]
fn all_golden_duts_analyze_cleanly() {
    for p in suite() {
        let mut sources = SourceMap::new();
        sources.add_file("dut.v", p.verilog.dut.clone());
        sources.add_file("tb.v", p.verilog.tb.clone());
        let (_, diags) = analyze(&sources);
        assert!(
            !diags.has_errors(),
            "{}: {}",
            p.name,
            diags.render(&sources)
        );
    }
}
