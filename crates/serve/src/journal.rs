//! The crash-safe job journal: a write-ahead log of admissions.
//!
//! Every accepted submission appends one `admit` record *under the
//! queue lock, before the job becomes claimable*; every terminal
//! outcome (result streamed, or deadline expiry) appends one `done`
//! record. A server restarted over the same journal directory replays
//! the log and re-admits every job with more `admit`s than `done`s —
//! and because a job's seed is a pure function of `(tenant, job)`
//! ([`crate::job_seed`]), the recovered run is byte-identical to the
//! one the crash interrupted.
//!
//! ## Format
//!
//! `journal.log` is line-oriented, append-only, and checksummed the
//! same way as the bench checkpoint logs:
//!
//! ```text
//! aivril.journal 1
//! admit {fnv64(payload):016x} {payload}
//! done {fnv64(payload):016x} {payload}
//! ```
//!
//! where `payload` is an [`aivril_obs::codec`] token run —
//! `(tenant, job, task, verilog, flow)` for `admit`, `(tenant, job)`
//! for `done`. The codec percent-escapes whitespace, so one record is
//! always one line.
//!
//! ## Crash discipline
//!
//! A crash can leave at most a torn tail: an unterminated or
//! checksum-failing final region. [`JobJournal::open`] keeps the
//! longest valid prefix, truncates the rest away, and replays only
//! records from that prefix — corruption costs durability of the torn
//! records, never a panic and never a phantom job. Records are counted,
//! not keyed: a job resubmitted after completion gets a fresh
//! `admit`/`done` pair, and a job is pending exactly when its `admit`s
//! outnumber its `done`s (the latest `admit`'s spec wins).

use crate::protocol::{flow_label, SubmitRequest};
use aivril_bench::Flow;
use aivril_obs::codec;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// First line of every journal file.
const HEADER: &str = "aivril.journal 1";

/// The write-ahead admission journal. All methods are safe to call
/// from any thread; appends are serialized by an internal lock.
pub struct JobJournal {
    path: PathBuf,
    file: Mutex<File>,
    pending: Vec<SubmitRequest>,
}

impl std::fmt::Debug for JobJournal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobJournal")
            .field("path", &self.path)
            .field("pending", &self.pending.len())
            .finish_non_exhaustive()
    }
}

/// Encodes an `admit` payload.
fn admit_payload(spec: &SubmitRequest) -> String {
    let mut w = codec::Writer::new();
    w.str(&spec.tenant);
    w.str(&spec.job);
    w.str(&spec.task);
    w.bool(spec.verilog);
    w.str(flow_label(spec.flow));
    w.finish()
}

/// Encodes a `done` payload.
fn done_payload(tenant: &str, job: &str) -> String {
    let mut w = codec::Writer::new();
    w.str(tenant);
    w.str(job);
    w.finish()
}

/// Formats one checksummed record line (without the newline).
fn record_line(kind: &str, payload: &str) -> String {
    format!("{kind} {:016x} {payload}", codec::fnv64(payload.as_bytes()))
}

/// One replayed record.
enum Record {
    Admit(SubmitRequest),
    Done { tenant: String, job: String },
}

/// Decodes one journal line; `None` marks corruption (the caller
/// truncates from here).
fn decode_line(line: &str) -> Option<Record> {
    let (kind, rest) = line.split_once(' ')?;
    let (sum, payload) = rest.split_once(' ')?;
    if sum.len() != 16 || u64::from_str_radix(sum, 16).ok()? != codec::fnv64(payload.as_bytes()) {
        return None;
    }
    let mut r = codec::Reader::new(payload);
    match kind {
        "admit" => {
            let (tenant, job, task) = (r.str()?, r.str()?, r.str()?);
            let verilog = r.bool()?;
            let flow = match r.str()?.as_str() {
                "aivril2" => Flow::Aivril2,
                "baseline" => Flow::Baseline,
                _ => return None,
            };
            r.at_end().then_some(Record::Admit(SubmitRequest {
                tenant,
                job,
                task,
                verilog,
                flow,
            }))
        }
        "done" => {
            let (tenant, job) = (r.str()?, r.str()?);
            r.at_end().then_some(Record::Done { tenant, job })
        }
        _ => None,
    }
}

impl JobJournal {
    /// Opens (creating if necessary) the journal in `dir`, replays the
    /// valid prefix, truncates any torn tail away, and remembers which
    /// jobs were admitted but never finished — [`JobJournal::pending`].
    ///
    /// # Errors
    ///
    /// I/O errors creating or reading the file, or a complete first
    /// line that is not a journal header (the file belongs to something
    /// else; refusing beats destroying it).
    pub fn open(dir: impl AsRef<Path>) -> io::Result<JobJournal> {
        let dir = dir.as_ref();
        fs::create_dir_all(dir)?;
        let path = dir.join("journal.log");
        let bytes = match fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e),
        };

        // Walk complete (newline-terminated) lines, tracking the byte
        // length of the valid prefix. The first undecodable or
        // unterminated line is the torn tail: everything from there on
        // is truncated away.
        let mut valid_len = 0usize;
        let mut records = Vec::new();
        let mut fresh = true;
        let mut offset = 0usize;
        while let Some(nl) = bytes[offset..].iter().position(|&b| b == b'\n') {
            let end = offset + nl + 1;
            let line = std::str::from_utf8(&bytes[offset..end - 1]).ok();
            if valid_len == 0 && offset == 0 {
                // Header line. A torn header truncates to empty; a
                // complete line that is some *other* file's content is
                // an error, not a silent wipe.
                match line {
                    Some(HEADER) => {
                        fresh = false;
                        valid_len = end;
                    }
                    Some(_) | None => {
                        return Err(io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!("{} is not a job journal", path.display()),
                        ))
                    }
                }
            } else {
                match line.and_then(decode_line) {
                    Some(rec) => {
                        records.push(rec);
                        valid_len = end;
                    }
                    None => break,
                }
            }
            offset = end;
        }

        let mut file = OpenOptions::new().create(true).append(true).open(&path)?;
        if valid_len < bytes.len() {
            // Torn tail (or unterminated header): drop it.
            file.set_len(valid_len as u64)?;
        }
        if fresh {
            file.set_len(0)?;
            writeln!(file, "{HEADER}")?;
            file.flush()?;
        }

        // Pending = admits minus dones per (tenant, job), replayed in
        // first-admission order so recovery re-admits deterministically;
        // the latest admit's spec wins.
        let mut order: Vec<(String, String)> = Vec::new();
        let mut net: std::collections::HashMap<(String, String), (i64, Option<SubmitRequest>)> =
            std::collections::HashMap::new();
        for rec in records {
            match rec {
                Record::Admit(spec) => {
                    let key = (spec.tenant.clone(), spec.job.clone());
                    let slot = net.entry(key.clone()).or_insert_with(|| {
                        order.push(key);
                        (0, None)
                    });
                    slot.0 += 1;
                    slot.1 = Some(spec);
                }
                Record::Done { tenant, job } => {
                    let key = (tenant, job);
                    let slot = net.entry(key.clone()).or_insert_with(|| {
                        order.push(key);
                        (0, None)
                    });
                    slot.0 -= 1;
                }
            }
        }
        let pending = order
            .into_iter()
            .filter_map(|key| {
                let (count, spec) = net.remove(&key)?;
                if count > 0 {
                    spec
                } else {
                    None
                }
            })
            .collect();

        Ok(JobJournal {
            path,
            file: Mutex::new(file),
            pending,
        })
    }

    /// Jobs admitted by a previous process over this journal that never
    /// reached a terminal record, in original admission order.
    #[must_use]
    pub fn pending(&self) -> &[SubmitRequest] {
        &self.pending
    }

    /// The journal file's path (diagnostics).
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    fn append(&self, line: &str) -> io::Result<()> {
        let mut f = self
            .file
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        writeln!(f, "{line}")?;
        f.flush()
    }

    /// Records an accepted admission. Call under the queue lock, before
    /// the job becomes claimable — a crash after this point re-admits
    /// the job on restart.
    ///
    /// # Errors
    ///
    /// I/O errors from the append; the job still runs (the journal
    /// degrades to best-effort durability, never blocks admission).
    pub fn record_admit(&self, spec: &SubmitRequest) -> io::Result<()> {
        self.append(&record_line("admit", &admit_payload(spec)))
    }

    /// Records a terminal outcome (result streamed or deadline expiry).
    ///
    /// # Errors
    ///
    /// I/O errors from the append.
    pub fn record_done(&self, tenant: &str, job: &str) -> io::Result<()> {
        self.append(&record_line("done", &done_payload(tenant, job)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(tenant: &str, job: &str) -> SubmitRequest {
        SubmitRequest {
            tenant: tenant.to_string(),
            job: job.to_string(),
            task: "prob000_and2".to_string(),
            verilog: true,
            flow: Flow::Aivril2,
        }
    }

    fn tmp(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("aivril-journal-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn admits_without_dones_are_pending_after_reopen() {
        let dir = tmp("pending");
        let j = JobJournal::open(&dir).unwrap();
        assert!(j.pending().is_empty(), "fresh journal has no pending jobs");
        j.record_admit(&spec("acme", "a")).unwrap();
        j.record_admit(&spec("acme", "b")).unwrap();
        j.record_admit(&spec("globex", "a")).unwrap();
        j.record_done("acme", "a").unwrap();
        drop(j);
        let j = JobJournal::open(&dir).unwrap();
        let pending: Vec<(&str, &str)> = j
            .pending()
            .iter()
            .map(|s| (s.tenant.as_str(), s.job.as_str()))
            .collect();
        assert_eq!(pending, [("acme", "b"), ("globex", "a")]);
        // Finishing them empties the journal for the next restart.
        j.record_done("acme", "b").unwrap();
        j.record_done("globex", "a").unwrap();
        drop(j);
        let j = JobJournal::open(&dir).unwrap();
        assert!(j.pending().is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn resubmission_counts_as_a_fresh_pair_and_latest_spec_wins() {
        let dir = tmp("counts");
        let j = JobJournal::open(&dir).unwrap();
        j.record_admit(&spec("acme", "a")).unwrap();
        j.record_done("acme", "a").unwrap();
        let mut second = spec("acme", "a");
        second.task = "prob001_or2".to_string();
        j.record_admit(&second).unwrap();
        drop(j);
        let j = JobJournal::open(&dir).unwrap();
        assert_eq!(j.pending().len(), 1);
        assert_eq!(j.pending()[0].task, "prob001_or2", "latest admit wins");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tails_and_tampered_lines_are_truncated_not_replayed() {
        let dir = tmp("torn");
        let j = JobJournal::open(&dir).unwrap();
        j.record_admit(&spec("acme", "a")).unwrap();
        j.record_admit(&spec("acme", "b")).unwrap();
        drop(j);
        let path = dir.join("journal.log");

        // A torn (unterminated) tail: the partial record is dropped,
        // the valid prefix survives.
        let mut bytes = fs::read(&path).unwrap();
        let full = bytes.clone();
        bytes.extend_from_slice(b"admit 00ff");
        fs::write(&path, &bytes).unwrap();
        let j = JobJournal::open(&dir).unwrap();
        assert_eq!(j.pending().len(), 2, "valid prefix replays");
        drop(j);
        assert_eq!(fs::read(&path).unwrap(), full, "tail truncated away");

        // A checksum-failing line mid-file cuts replay there: the
        // record after it is *also* dropped (append-only discipline —
        // nothing after damage is trusted).
        let text = String::from_utf8(full).unwrap();
        let mut lines: Vec<&str> = text.lines().collect();
        let tampered = lines[1].replacen('a', "b", 1);
        lines[1] = &tampered;
        fs::write(&path, format!("{}\n", lines.join("\n"))).unwrap();
        let j = JobJournal::open(&dir).unwrap();
        assert!(j.pending().is_empty(), "nothing after damage replays");
        // And the journal is usable again after the truncation.
        j.record_admit(&spec("acme", "c")).unwrap();
        drop(j);
        let j = JobJournal::open(&dir).unwrap();
        assert_eq!(j.pending().len(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn foreign_files_are_refused_not_wiped() {
        let dir = tmp("foreign");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("journal.log"), "important data\nmore\n").unwrap();
        let err = JobJournal::open(&dir).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert_eq!(
            fs::read(dir.join("journal.log")).unwrap(),
            b"important data\nmore\n",
            "the foreign file is untouched"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn names_with_escapes_round_trip() {
        // Codec escaping keeps one record on one line even for names at
        // the edge of the allowed alphabet.
        let dir = tmp("escape");
        let j = JobJournal::open(&dir).unwrap();
        let s = spec("t.en-ant_0", "job.9-x_");
        j.record_admit(&s).unwrap();
        drop(j);
        let j = JobJournal::open(&dir).unwrap();
        assert_eq!(j.pending(), [s]);
        let _ = fs::remove_dir_all(&dir);
    }
}
