//! Simulation results, logs and run limits.

use std::fmt;

/// Resource limits protecting the kernel against runaway designs.
///
/// The defaults are generous for the benchmark-suite designs (a few
/// hundred clock cycles each) while still terminating promptly when an
/// LLM-injected fault produces an infinite loop or a zero-delay
/// oscillation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimConfig {
    /// Simulation stops (without error) once time exceeds this value.
    pub max_time: u64,
    /// Maximum delta cycles within a single time step before the run is
    /// aborted with [`LimitKind::DeltaCycles`] (zero-delay oscillation).
    pub max_deltas_per_step: u32,
    /// Maximum instructions a single process may execute without
    /// suspending before [`LimitKind::ProcessInstructions`] fires
    /// (procedural infinite loop).
    pub max_instrs_per_activation: u64,
    /// Total instruction budget for the whole run
    /// ([`LimitKind::TotalInstructions`]).
    pub max_total_instrs: u64,
}

impl Default for SimConfig {
    fn default() -> SimConfig {
        SimConfig {
            max_time: 1_000_000,
            max_deltas_per_step: 10_000,
            max_instrs_per_activation: 200_000,
            max_total_instrs: 50_000_000,
        }
    }
}

/// Which resource limit aborted a simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LimitKind {
    /// Too many delta cycles in one time step (combinational loop or
    /// zero-delay oscillation).
    DeltaCycles,
    /// One process ran too long without suspending (infinite `while`).
    ProcessInstructions,
    /// The whole run exceeded its instruction budget.
    TotalInstructions,
}

impl fmt::Display for LimitKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            LimitKind::DeltaCycles => "delta-cycle limit exceeded (possible combinational loop)",
            LimitKind::ProcessInstructions => {
                "process iteration limit exceeded (possible infinite loop)"
            }
            LimitKind::TotalInstructions => "total simulation instruction budget exceeded",
        };
        f.write_str(s)
    }
}

/// One line of simulator output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogLine {
    /// Simulation time at which the line was emitted.
    pub time: u64,
    /// Rendered text (no trailing newline).
    pub text: String,
    /// `true` for `$error` / `$fatal` / failing `assert` output.
    pub is_error: bool,
}

/// Outcome of a simulation run.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Final simulation time.
    pub end_time: u64,
    /// Emitted log lines in order.
    pub lines: Vec<LogLine>,
    /// Count of `$error`/`$fatal`/assertion-failure events.
    pub error_count: u32,
    /// `true` when the run ended via `$finish` (or `$fatal`).
    pub finished: bool,
    /// `true` when the event queue drained with no `$finish` (event
    /// starvation — the normal end for designs without testbenches).
    pub starved: bool,
    /// Set when a resource limit aborted the run.
    pub limit_hit: Option<LimitKind>,
    /// Total instructions executed — the workload measure used by the
    /// EDA latency model.
    pub instructions_executed: u64,
}

impl SimResult {
    /// `true` when the run completed without errors, limits or fatal
    /// aborts.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.error_count == 0 && self.limit_hit.is_none()
    }

    /// The full log as one newline-separated string.
    #[must_use]
    pub fn log_text(&self) -> String {
        let mut out = String::new();
        for line in &self.lines {
            out.push_str(&line.text);
            out.push('\n');
        }
        out
    }

    /// Iterates over error lines only.
    pub fn error_lines(&self) -> impl Iterator<Item = &LogLine> {
        self.lines.iter().filter(|l| l.is_error)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_bounded() {
        let c = SimConfig::default();
        assert!(c.max_time > 0);
        assert!(c.max_deltas_per_step > 0);
        assert!(c.max_instrs_per_activation > 0);
        assert!(c.max_total_instrs > c.max_instrs_per_activation);
    }

    #[test]
    fn clean_result_detection() {
        let mut r = SimResult {
            end_time: 10,
            lines: vec![],
            error_count: 0,
            finished: true,
            starved: false,
            limit_hit: None,
            instructions_executed: 5,
        };
        assert!(r.is_clean());
        r.error_count = 1;
        assert!(!r.is_clean());
        r.error_count = 0;
        r.limit_hit = Some(LimitKind::DeltaCycles);
        assert!(!r.is_clean());
    }

    #[test]
    fn log_text_joins_lines() {
        let r = SimResult {
            end_time: 0,
            lines: vec![
                LogLine {
                    time: 0,
                    text: "a".into(),
                    is_error: false,
                },
                LogLine {
                    time: 1,
                    text: "b".into(),
                    is_error: true,
                },
            ],
            error_count: 1,
            finished: false,
            starved: true,
            limit_hit: None,
            instructions_executed: 0,
        };
        assert_eq!(r.log_text(), "a\nb\n");
        assert_eq!(r.error_lines().count(), 1);
    }

    #[test]
    fn limit_kind_messages() {
        assert!(LimitKind::DeltaCycles.to_string().contains("delta"));
        assert!(LimitKind::ProcessInstructions
            .to_string()
            .contains("infinite loop"));
        assert!(LimitKind::TotalInstructions.to_string().contains("budget"));
    }
}
