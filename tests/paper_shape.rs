//! The reproduction contract, as a test: the qualitative claims of the
//! paper's evaluation must hold on a mid-size run. This is the guard
//! that keeps future changes from silently bending the results.

use aivril_bench::{Flow, Harness, HarnessConfig};
use aivril_llm::profiles;
use aivril_metrics::{suite_metric, EvalOutcome};

fn harness() -> Harness {
    Harness::new(HarnessConfig {
        samples: 3,
        task_limit: 36,
        threads: 0,
        ..HarnessConfig::default()
    })
}

fn avg_latency(outcomes: &[EvalOutcome]) -> f64 {
    let (mut sum, mut n) = (0.0, 0u32);
    for o in outcomes {
        for s in &o.samples {
            sum += s.total_latency;
            n += 1;
        }
    }
    sum / f64::from(n.max(1))
}

#[test]
fn table1_shape_holds() {
    let h = harness();

    // Claude / Verilog: strong baseline, near-perfect syntax recovery,
    // functional gain.
    let claude = profiles::claude35_sonnet();
    let base = h.evaluate(&claude, true, Flow::Baseline);
    let full = h.evaluate(&claude, true, Flow::Aivril2);
    let base_s = suite_metric(&base, 1, |s| s.syntax);
    let full_s = suite_metric(&full, 1, |s| s.syntax);
    let base_f = suite_metric(&base, 1, |s| s.functional);
    let full_f = suite_metric(&full, 1, |s| s.functional);
    assert!(
        base_s > 0.8 && base_s < 1.0,
        "claude V baseline syntax {base_s}"
    );
    assert!(full_s > 0.98, "claude V aivril2 syntax {full_s}");
    assert!(
        full_f > base_f + 0.03,
        "claude V functional {base_f} -> {full_f}"
    );

    // Llama3 / VHDL: the stress case — near-zero baseline, partial but
    // dramatic syntax recovery (the paper's 1.28% -> 58.87%).
    let llama = profiles::llama3_70b();
    let base_h = h.evaluate(&llama, false, Flow::Baseline);
    let full_h = h.evaluate(&llama, false, Flow::Aivril2);
    let base_hs = suite_metric(&base_h, 1, |s| s.syntax);
    let full_hs = suite_metric(&full_h, 1, |s| s.syntax);
    assert!(base_hs < 0.1, "llama VHDL baseline syntax {base_hs}");
    assert!(
        full_hs > 0.25 && full_hs < 0.95,
        "llama VHDL aivril2 syntax {full_hs} (paper: 58.87%)"
    );
    assert!(
        full_hs > base_hs * 5.0,
        "syntax recovery factor {base_hs} -> {full_hs} (paper: ~46x)"
    );
}

#[test]
fn figure3_shape_holds() {
    let h = harness();
    let claude = profiles::claude35_sonnet();
    let llama = profiles::llama3_70b();

    let claude_base = avg_latency(&h.evaluate(&claude, true, Flow::Baseline));
    let claude_full = avg_latency(&h.evaluate(&claude, true, Flow::Aivril2));
    let llama_base = avg_latency(&h.evaluate(&llama, false, Flow::Baseline));
    let llama_full = avg_latency(&h.evaluate(&llama, false, Flow::Aivril2));

    // AIVRIL2 costs real latency, bounded by the paper's worst case
    // neighbourhood; Llama/VHDL is the most expensive configuration.
    assert!(
        claude_full > claude_base * 1.5,
        "claude ratio {}",
        claude_full / claude_base
    );
    assert!(
        llama_full > llama_base * 2.0,
        "llama ratio {}",
        llama_full / llama_base
    );
    assert!(
        llama_full > claude_full,
        "llama VHDL must be the slowest configuration"
    );
    assert!(
        llama_full < 90.0,
        "worst-case average {llama_full}s (paper ~42s scale)"
    );
}

#[test]
fn model_ordering_holds_everywhere() {
    // The GPT-4o / Claude gap is only ~5 points (72.44 vs 77.00 in
    // Table 1), inside sampling noise on the 36-task slice the other
    // shape tests use — this one needs a bigger sample to make the
    // ordering claim meaningful. Cheap now that evaluate() is parallel.
    let h = Harness::new(HarnessConfig {
        samples: 5,
        task_limit: 96,
        threads: 0,
        ..HarnessConfig::default()
    });
    let mut f_rates = Vec::new();
    for profile in profiles::all() {
        let full = h.evaluate(&profile, true, Flow::Aivril2);
        f_rates.push((
            profile.name.clone(),
            suite_metric(&full, 1, |s| s.functional),
        ));
    }
    // Table 1/2 ordering: Claude > GPT-4o > Llama3 after AIVRIL2.
    assert!(
        f_rates[2].1 >= f_rates[1].1 && f_rates[1].1 >= f_rates[0].1,
        "ordering violated: {f_rates:?}"
    );
}
