//! Observability suite: the run journal and the metrics registry must
//! be *deterministic artifacts* — byte-identical across reruns and
//! across thread counts — and the instrumentation must vanish when no
//! recorder is installed.
//!
//! Metric comparison is `f64::to_bits` equality (via the registry's
//! `Eq` snapshot), never an epsilon: the contract under test is that
//! worker count changes *nothing*, including summation order.

use aivril_bench::{Flow, Harness, HarnessConfig, Telemetry};
use aivril_llm::profiles;
use aivril_obs::{chrome_trace, render_journal, MetricValue, Recorder, JOURNAL_VERSION};

fn harness(threads: usize, recorder: Recorder) -> Harness {
    Harness::new(HarnessConfig {
        samples: 2,
        // 10 tasks matches quicklook and is the smallest prefix of the
        // suite that exercises every sim-kernel histogram (NBA flushes
        // included).
        task_limit: 10,
        threads,
        ..HarnessConfig::default()
    })
    .with_recorder(recorder)
}

/// Runs a quicklook-sized evaluation (one model, Verilog, AIVRIL2)
/// under a fresh recorder and returns it.
fn traced_run(threads: usize) -> Recorder {
    let rec = Recorder::new();
    let profile = profiles::claude35_sonnet();
    let h = harness(threads, rec.clone());
    let _ = h.evaluate_with_stats(&profile, true, Flow::Aivril2);
    rec
}

#[test]
fn journal_is_identical_across_thread_counts() {
    let serial = render_journal(&traced_run(1));
    let four = render_journal(&traced_run(4));
    assert_eq!(
        serial, four,
        "journal bytes must not depend on AIVRIL_THREADS"
    );
}

#[test]
fn journal_is_identical_across_reruns() {
    let first = render_journal(&traced_run(2));
    let second = render_journal(&traced_run(2));
    assert_eq!(first, second, "fixed-seed journal must be reproducible");
}

#[test]
fn journal_golden_shape() {
    // Golden snapshot of the journal *shape* for one fixed-seed run:
    // schema header, run grouping, and the stage spans the flow emits.
    let journal = render_journal(&traced_run(1));
    let mut lines = journal.lines();
    let header = lines.next().expect("journal has a header line");
    assert!(
        header.starts_with(&format!(
            "{{\"schema\":\"aivril.journal\",\"version\":{JOURNAL_VERSION},\"runs\":20,"
        )),
        "unexpected header: {header}"
    );
    let body: Vec<&str> = lines.collect();
    assert!(!body.is_empty(), "journal has events");
    for line in &body {
        assert!(
            line.starts_with('{') && line.ends_with('}'),
            "bad line: {line}"
        );
    }
    // Every pipeline stage appears as a span somewhere in the journal.
    for span in [
        "stage.tb_generation",
        "stage.tb_syntax_loop",
        "stage.rtl_generation",
        "stage.rtl_syntax_loop",
        "stage.functional_loop",
        "llm.chat",
        "eda.compile",
        "eda.simulate",
    ] {
        let needle = format!("\"span\":\"{span}\"");
        assert!(
            body.iter().any(|l| l.contains(&needle)),
            "journal missing span {span}"
        );
    }
    // Runs are grouped in grid order: the (problem, sample) pairs of
    // the event stream must be non-decreasing.
    let mut coords = Vec::new();
    for line in &body {
        if let Some(idx) = line.find("\"problem\":") {
            let rest = &line[idx + 10..];
            let p: u32 = rest[..rest.find(',').unwrap()].parse().unwrap();
            let sidx = line.find("\"sample\":").unwrap();
            let rest = &line[sidx + 9..];
            let s: u32 = rest[..rest.find('}').unwrap()].parse().unwrap();
            coords.push((p, s));
        }
    }
    assert!(!coords.is_empty(), "journal events carry run coordinates");
    assert!(
        coords.windows(2).all(|w| w[0] <= w[1]),
        "journal runs must be sorted by (problem, sample)"
    );
}

#[test]
fn metrics_are_bit_identical_across_thread_counts() {
    let serial = traced_run(1);
    let two = traced_run(2);
    let eight = traced_run(8);
    let base = serial.metrics();
    assert!(!base.is_empty(), "traced run must produce metrics");
    // MetricValue's Eq is f64::to_bits-based (histogram bounds are
    // stored as bit patterns; gauge Eq goes through to_bits), so
    // snapshot equality *is* bitwise equality.
    assert_eq!(base.snapshot(), two.metrics().snapshot(), "1 vs 2 threads");
    assert_eq!(
        base.snapshot(),
        eight.metrics().snapshot(),
        "1 vs 8 threads"
    );
    assert_eq!(
        base.render(),
        two.metrics().render(),
        "rendered dump 1 vs 2"
    );
}

#[test]
fn sim_kernel_histograms_are_recorded() {
    // VHDL: its signal-assignment semantics exercise the NBA queue,
    // so all three kernel histograms fill (Verilog designs in the
    // 10-task prefix use pure blocking assignments).
    let rec = Recorder::new();
    let h = harness(2, rec.clone());
    let _ = h.evaluate_with_stats(&profiles::claude35_sonnet(), false, Flow::Aivril2);
    let metrics = rec.metrics();
    for name in [
        "sim_delta_cycles_per_step",
        "sim_event_queue_depth",
        "sim_nba_flush_size",
    ] {
        let value = metrics
            .get(name, &[])
            .unwrap_or_else(|| panic!("metrics dump missing {name}"));
        match value {
            MetricValue::Histogram(h) => {
                assert!(h.count() > 0, "{name} must observe at least one value")
            }
            other => panic!("{name} should be a histogram, got {other:?}"),
        }
    }
    match metrics.get("sim_runs_total", &[]) {
        Some(MetricValue::Counter(n)) => assert!(*n > 0, "at least one simulated task"),
        other => panic!("sim_runs_total should be a counter, got {other:?}"),
    }
}

#[test]
fn chrome_trace_is_valid_and_deterministic() {
    let first = chrome_trace(&traced_run(1));
    let second = chrome_trace(&traced_run(4));
    assert_eq!(first, second, "chrome trace must not depend on threads");
    assert!(first.starts_with('[') && first.trim_end().ends_with(']'));
    assert!(first.contains("\"ph\":\"X\""), "has complete events");
    assert!(first.contains("\"ph\":\"M\""), "has thread_name metadata");
    assert!(first.contains("\"cat\":\"aivril\""));
}

#[test]
fn disabled_recorder_records_nothing() {
    let rec = Recorder::disabled();
    let profile = profiles::claude35_sonnet();
    let h = harness(2, rec.clone());
    let _ = h.evaluate_with_stats(&profile, true, Flow::Aivril2);
    assert!(!rec.is_enabled());
    assert!(rec.metrics().is_empty(), "disabled recorder stays empty");
    assert!(rec.runs().is_empty(), "disabled recorder has no journal");
}

#[test]
fn disabled_recorder_does_not_change_results() {
    // Instrumentation must be observation-only: outcomes with a live
    // recorder are bit-identical to outcomes without one.
    let profile = profiles::claude35_sonnet();
    let plain = harness(2, Recorder::disabled());
    let traced = harness(2, Recorder::new());
    let (a, _) = plain.evaluate_with_stats(&profile, true, Flow::Aivril2);
    let (b, _) = traced.evaluate_with_stats(&profile, true, Flow::Aivril2);
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.task, y.task);
        for (s, t) in x.samples.iter().zip(&y.samples) {
            assert_eq!(s.syntax, t.syntax);
            assert_eq!(s.functional, t.functional);
            assert_eq!(s.total_latency.to_bits(), t.total_latency.to_bits());
        }
    }
}

#[test]
fn telemetry_from_vars_switches() {
    let off = Telemetry::from_vars(|_| None);
    assert!(!off.is_enabled(), "no env vars => disabled recorder");
    let on = Telemetry::from_vars(|k| (k == "AIVRIL_METRICS").then(|| "1".to_string()));
    assert!(on.is_enabled(), "AIVRIL_METRICS=1 enables the recorder");
    let zero = Telemetry::from_vars(|k| (k == "AIVRIL_METRICS").then(|| "0".to_string()));
    assert!(!zero.is_enabled(), "AIVRIL_METRICS=0 keeps it off");
    let trace =
        Telemetry::from_vars(|k| (k == "AIVRIL_TRACE_JSON").then(|| "/tmp/x.jsonl".to_string()));
    assert!(trace.is_enabled(), "trace path enables the recorder");
}
