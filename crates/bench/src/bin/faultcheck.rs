//! Calibration utility: measures what fraction of single functional
//! faults from the catalogue actually fail the reference testbench.
use aivril_bench::{Harness, HarnessConfig};
use aivril_llm::mutate::{
    apply_fault, count_occurrences, functional_templates, AppliedFault, Dialect, FaultKind,
};

fn main() {
    // Honour `AIVRIL_TASKS` so CI can smoke a small slice; the default
    // (no env) still sweeps the full 156-problem suite.
    let base = HarnessConfig::from_env();
    for verilog in [true, false] {
        let h = Harness::new(HarnessConfig {
            samples: 1,
            task_limit: base.task_limit.min(156),
            ..HarnessConfig::default()
        });
        let dialect = if verilog {
            Dialect::Verilog
        } else {
            Dialect::Vhdl
        };
        let (mut total, mut caught, mut broke_syntax, mut noop) = (0, 0, 0, 0);
        let mut immune = 0;
        for p in h.problems() {
            let golden = &p.golden(verilog).dut;
            if functional_templates(dialect)
                .iter()
                .all(|t| count_occurrences(golden, t.pattern) == 0)
            {
                immune += 1;
                println!("IMMUNE {} {}", if verilog { "V" } else { "H" }, p.name);
            }
            for t in functional_templates(dialect) {
                let n = count_occurrences(golden, t.pattern);
                for occ in 0..n.min(2) {
                    let f = AppliedFault {
                        template: t.clone(),
                        occurrence: occ,
                        kind: FaultKind::Functional,
                    };
                    let mutated = apply_fault(golden, &f);
                    if mutated == *golden {
                        noop += 1;
                        continue;
                    }
                    total += 1;
                    let (s, func) = h.score(p, &mutated, verilog);
                    if !s {
                        broke_syntax += 1;
                        println!(
                            "SYNTAXBREAK {} {} '{}'->'{}'",
                            p.name, t.description, t.pattern, t.replacement
                        );
                    } else if !func {
                        caught += 1;
                    } else {
                        println!(
                            "UNCAUGHT {} {} '{}'->'{}' occ{}",
                            p.name, t.description, t.pattern, t.replacement, occ
                        );
                    }
                }
            }
        }
        eprintln!("{}: total={total} caught={caught} uncaught={} broke_syntax={broke_syntax} noop={noop} immune_problems={immune}",
            if verilog {"Verilog"} else {"VHDL"}, total - caught - broke_syntax);
    }
}
