//! The event-driven simulation kernel.

use crate::bytecode::{self, ExprProgram, ScratchArena};
use crate::eval::EvalCtx;
use crate::format::render_format;
use crate::result::{LimitKind, LogLine, SimConfig, SimResult};
use crate::sched::FutureQueue;
use crate::vcd;
use aivril_hdl::bits::{BitsRef, ScratchBuf};
use aivril_hdl::ir::{Design, Instr, LValue, NetId, SysTaskKind, Trigger};
use aivril_hdl::logic::Logic;
use aivril_hdl::vec::LogicVec;
use std::collections::VecDeque;

/// Sentinel in [`Simulator::nba_slots`] for instructions without a
/// pre-sized nonblocking staging buffer.
const NO_NBA_SLOT: u32 = u32::MAX;

/// One pending nonblocking commit, staged until the NBA region flushes.
#[derive(Debug)]
struct NbaEntry {
    net: NetId,
    msb: u32,
    lsb: u32,
    value: NbaValue,
}

/// Where a staged nonblocking value lives.
#[derive(Debug)]
enum NbaValue {
    /// Index into [`Simulator::nba_bufs`] — the zero-alloc fast path for
    /// whole-net assignments (`msb..lsb` spans the full net).
    Buf(u32),
    /// Boxed fallback: partial/concat l-values, or the same assignment
    /// executing twice before a flush (its buffer is still busy).
    Owned(LogicVec),
}

/// Floor for the per-net watcher compaction threshold: lists shorter
/// than this are never compacted (the scan would cost more than the
/// memory it reclaims).
const WATCHER_COMPACT_MIN: usize = 8;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    Runnable,
    /// Suspended at a `WaitEvent`; the instruction's pc is kept in
    /// `ProcState::wait_pc`.
    Waiting,
    /// Suspended at a `Delay`; wake-up queued in `Simulator::sched`.
    Sleeping,
    Halted,
}

#[derive(Debug)]
struct ProcState {
    pc: usize,
    status: Status,
    /// Bumped on every wake/suspend so stale watcher and timer entries
    /// can be skipped lazily instead of being unlinked eagerly.
    generation: u64,
    /// While `Waiting`: the pc of the `WaitEvent` that suspended the
    /// process. The triggers are read back from the (immutable) process
    /// body instead of being cloned into the state on every suspend.
    wait_pc: usize,
    /// The net whose change last resumed this process (drives
    /// [`aivril_hdl::ir::Expr::EdgeFlag`] evaluation).
    last_wake: Option<NetId>,
}

/// The simulator instance for one elaborated design.
///
/// Construct with [`Simulator::new`], execute with [`Simulator::run`],
/// then optionally inspect final net values with
/// [`Simulator::net_value`].
#[derive(Debug)]
pub struct Simulator<'d> {
    design: &'d Design,
    config: SimConfig,
    values: Vec<LogicVec>,
    procs: Vec<ProcState>,
    /// Per-process, per-pc compiled form of the instruction's expression
    /// (`None` for instructions without a hot expression). Lowered once
    /// at [`Simulator::new`]; see [`crate::bytecode`].
    programs: Vec<Vec<Option<ExprProgram>>>,
    /// The shared evaluation arena: one pre-sized wide buffer per
    /// scratch slot, sized at lowering from the static width bounds of
    /// every compiled program. Allocated once; every compiled
    /// evaluation runs in place against it.
    arena: ScratchArena,
    runnable: VecDeque<usize>,
    /// `#0`-delayed processes (inactive region of the current step).
    inactive: Vec<usize>,
    /// Drained counterpart of `inactive`; the two swap every flush so
    /// neither ever gives its capacity back.
    inactive_spare: Vec<usize>,
    /// Pending timed wake-ups, indexed by the wheel/heap hybrid.
    sched: FutureQueue,
    /// Reused receive buffer for [`FutureQueue::pop_at`].
    wake_batch: Vec<(usize, u64)>,
    /// Pending nonblocking commits, in program order.
    nba: Vec<NbaEntry>,
    /// Drained counterpart of `nba` (same double-buffer trick as
    /// `inactive_spare`).
    nba_spare: Vec<NbaEntry>,
    /// Pre-sized staging buffers for whole-net nonblocking assignments,
    /// one per `NonblockingAssign`-to-a-net instruction in the design
    /// (sized to that net's width at construction).
    nba_bufs: Vec<ScratchBuf>,
    /// Whether the matching `nba_bufs` entry currently holds a staged
    /// value (cleared at flush). A busy buffer forces the boxed
    /// [`NbaValue::Owned`] fallback.
    nba_busy: Vec<bool>,
    /// Per-process, per-pc index into `nba_bufs` (`NO_NBA_SLOT` when the
    /// instruction has no staging buffer).
    nba_slots: Vec<Vec<u32>>,
    /// Reused slice buffer for l-value resolution.
    lv_scratch: Vec<(NetId, u32, u32, LogicVec)>,
    /// Per-net list of (process, generation) waiting on that net.
    watchers: Vec<Vec<(usize, u64)>>,
    /// Per-net length at which the watcher list is next compacted.
    /// Stale entries (process moved on) are dropped lazily when the net
    /// changes; a never-changing net would otherwise accumulate one
    /// stale entry per wait cycle, unboundedly.
    watcher_threshold: Vec<usize>,
    /// Spilled (heap-backed) values materialised outside the arena by
    /// the compiled evaluator (cold l-value shapes, busy NBA buffers) —
    /// zero in steady state for net-shaped assignments at any width.
    /// [`Simulator::perf`] adds the arena's and NBA buffers' growth
    /// events on top.
    eval_allocs: u64,
    /// Watcher-list compactions performed.
    compactions: u64,
    time: u64,
    /// Net changes made by the currently-running process activation, as
    /// `(net, old first bit, new first bit)`. A process that writes one
    /// of its own trigger nets *before* reaching its `WaitEvent` would
    /// otherwise lose that notification (the watcher is not registered
    /// yet) and settle silently instead of re-evaluating — the classic
    /// self-triggering `assign a = ~a` bug.
    activation_changes: Vec<(NetId, Logic, Logic)>,
    lines: Vec<LogLine>,
    partial_line: String,
    error_count: u32,
    finished: bool,
    starved: bool,
    limit_hit: Option<LimitKind>,
    total_instrs: u64,
    activations_this_step: u64,
    /// When recording, the initial values and every subsequent change.
    waves: Option<(Vec<LogicVec>, Vec<vcd::Change>)>,
    /// The active `$monitor`: format, argument expressions, and the
    /// values last printed (None = not yet printed).
    monitor: Option<MonitorSlot>,
    /// Telemetry sink for the kernel histograms; disabled by default.
    recorder: aivril_obs::Recorder,
    /// Locally-accumulated kernel statistics, only allocated when the
    /// recorder is enabled so the hot loop pays a single `Option` check
    /// per region when telemetry is off.
    kstats: Option<KernelStats>,
    /// Finished-run telemetry, available via [`Simulator::take_telemetry`]
    /// after [`Simulator::run`] when collection was enabled.
    telemetry: Option<KernelTelemetry>,
}

/// Event-kernel distributions gathered during [`Simulator::run`] and
/// folded into the recorder once at the end of the run.
#[derive(Debug)]
struct KernelStats {
    /// Delta cycles (process activations) per quiescent time step.
    delta: aivril_obs::Histogram,
    /// Scheduled-event-queue depth at each quiescent point.
    queue: aivril_obs::Histogram,
    /// Nonblocking-assignment batch size at each flush.
    nba: aivril_obs::Histogram,
}

impl KernelStats {
    fn new() -> KernelStats {
        KernelStats {
            delta: aivril_obs::Histogram::new(&[1.0, 2.0, 4.0, 8.0, 16.0, 64.0, 256.0, 1024.0]),
            queue: aivril_obs::Histogram::new(&[1.0, 2.0, 4.0, 8.0, 16.0, 64.0, 256.0]),
            nba: aivril_obs::Histogram::new(&[1.0, 2.0, 4.0, 8.0, 16.0, 64.0]),
        }
    }
}

/// The complete telemetry a finished run feeds into a recorder: the
/// three kernel histograms plus the instruction count. A run is a pure
/// function of `(design, config)`, so this value is too — callers that
/// memoize simulation results (the EDA result cache) store it alongside
/// the [`SimResult`](crate::SimResult) and [`replay`](KernelTelemetry::record_to)
/// it on a cache hit, keeping the metrics registry byte-identical
/// whether the kernel actually ran or not.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelTelemetry {
    delta: aivril_obs::Histogram,
    queue: aivril_obs::Histogram,
    nba: aivril_obs::Histogram,
    instructions: u64,
    perf: KernelPerf,
}

impl KernelTelemetry {
    /// Feeds this run's kernel series into `recorder` — the single
    /// emission path shared by live runs and cache-hit replays, so the
    /// two are indistinguishable in the metrics registry. No-op on a
    /// disabled recorder.
    ///
    /// The attached [`KernelPerf`] counters are deliberately *not*
    /// emitted here: they are performance-model diagnostics, surfaced
    /// through the harness's `[stats]` segment and the `aivril.results`
    /// `kernel` block instead, so the metrics registry stays
    /// byte-identical to pre-optimisation builds. (The `sim_kernel_`
    /// prefix is reserved as diagnostic in
    /// `aivril_obs::DIAGNOSTIC_METRIC_PREFIXES` should a future series
    /// need the registry.)
    pub fn record_to(&self, recorder: &aivril_obs::Recorder) {
        recorder.record_histogram("sim_delta_cycles_per_step", &[], &self.delta);
        recorder.record_histogram("sim_event_queue_depth", &[], &self.queue);
        recorder.record_histogram("sim_nba_flush_size", &[], &self.nba);
        recorder.counter_add("sim_instructions_total", &[], self.instructions);
        recorder.counter_add("sim_runs_total", &[], 1);
    }

    /// The run's flat performance counters (for cache-hit accounting).
    #[must_use]
    pub fn perf(&self) -> KernelPerf {
        self.perf
    }

    /// Serialises the telemetry into a durable-artifact payload (the
    /// on-disk EDA cache). Inverse of [`KernelTelemetry::decode`].
    pub fn encode(&self, w: &mut aivril_obs::codec::Writer) {
        for hist in [&self.delta, &self.queue, &self.nba] {
            aivril_obs::codec::encode_histogram(w, hist);
        }
        w.u64(self.instructions);
        w.u64(self.perf.instructions);
        w.u64(self.perf.sim_time_ns);
        w.u64(self.perf.eval_allocs);
        w.u64(self.perf.compactions);
        w.u64(self.perf.scratch_slots);
        w.u64(self.perf.arena_words);
    }

    /// Rebuilds telemetry from a durable-artifact payload; `None` on
    /// any malformation (the caller treats that as a cache miss).
    #[must_use]
    pub fn decode(r: &mut aivril_obs::codec::Reader<'_>) -> Option<KernelTelemetry> {
        let delta = aivril_obs::codec::decode_histogram(r)?;
        let queue = aivril_obs::codec::decode_histogram(r)?;
        let nba = aivril_obs::codec::decode_histogram(r)?;
        let instructions = r.u64()?;
        let perf = KernelPerf {
            instructions: r.u64()?,
            sim_time_ns: r.u64()?,
            eval_allocs: r.u64()?,
            compactions: r.u64()?,
            scratch_slots: r.u64()?,
            arena_words: r.u64()?,
        };
        Some(KernelTelemetry {
            delta,
            queue,
            nba,
            instructions,
            perf,
        })
    }
}

/// Flat performance counters of one finished run — the raw integers
/// behind the diagnostic `sim_kernel_*` series and the harness's
/// `kernel:` stats segment. Like [`KernelTelemetry`], a pure function
/// of `(design, config)`, so sums over runs are independent of thread
/// count and cache mode.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelPerf {
    /// Kernel instructions executed.
    pub instructions: u64,
    /// Final simulation time (the modeled clock, in ns).
    pub sim_time_ns: u64,
    /// Heap events attributable to compiled evaluation: arena and NBA
    /// staging-buffer growth beyond their static sizing, plus spilled
    /// values materialised on the boxed fallback paths. Zero in steady
    /// state for net-shaped assignments *at any width* — the
    /// zero-allocation claim, as a measurable counter.
    pub eval_allocs: u64,
    /// Watcher-list compactions performed (stale-entry reclamation).
    pub compactions: u64,
    /// Evaluation-arena high-water mark, in slots (static per design:
    /// the deepest compiled expression).
    pub scratch_slots: u64,
    /// Evaluation-arena high-water footprint: per-plane capacity words
    /// across all scratch slots and NBA staging buffers. Static per
    /// design unless a slot outgrows its bound (which `eval_allocs`
    /// counts).
    pub arena_words: u64,
}

impl KernelPerf {
    /// Kernel instructions per second of *simulated* time — the
    /// throughput measure on the modeled clock (wall-clock-free, hence
    /// deterministic). Zero when no simulated time elapsed.
    #[must_use]
    pub fn instrs_per_sim_sec(&self) -> f64 {
        if self.sim_time_ns == 0 {
            0.0
        } else {
            self.instructions as f64 / (self.sim_time_ns as f64 * 1e-9)
        }
    }

    /// Counter delta since `before` (sums subtract; the arena
    /// high-water mark takes the max).
    #[must_use]
    pub fn since(&self, before: &KernelPerf) -> KernelPerf {
        KernelPerf {
            instructions: self.instructions - before.instructions,
            sim_time_ns: self.sim_time_ns - before.sim_time_ns,
            eval_allocs: self.eval_allocs - before.eval_allocs,
            compactions: self.compactions - before.compactions,
            scratch_slots: self.scratch_slots.max(before.scratch_slots),
            arena_words: self.arena_words.max(before.arena_words),
        }
    }

    /// Accumulates another run's counters (sums add; the arena
    /// high-water mark takes the max).
    pub fn merge(&mut self, other: &KernelPerf) {
        self.instructions += other.instructions;
        self.sim_time_ns += other.sim_time_ns;
        self.eval_allocs += other.eval_allocs;
        self.compactions += other.compactions;
        self.scratch_slots = self.scratch_slots.max(other.scratch_slots);
        self.arena_words = self.arena_words.max(other.arena_words);
    }
}

/// Registered `$monitor` state: format, args, last printed values.
type MonitorSlot = (
    Option<String>,
    Vec<aivril_hdl::ir::Expr>,
    Option<Vec<LogicVec>>,
);

impl<'d> Simulator<'d> {
    /// Prepares a simulation of `design` under the given limits.
    ///
    /// All nets start at their declared initial value, or all-`X` when
    /// none was declared (matching `reg`/`signal` power-on semantics).
    #[must_use]
    pub fn new(design: &'d Design, config: SimConfig) -> Simulator<'d> {
        let values = design
            .nets
            .iter()
            .map(|n| n.init.clone().unwrap_or_else(|| LogicVec::xes(n.width)))
            .collect();
        let procs: Vec<ProcState> = design
            .processes
            .iter()
            .map(|_| ProcState {
                pc: 0,
                status: Status::Runnable,
                generation: 0,
                wait_pc: 0,
                last_wake: None,
            })
            .collect();
        let runnable = (0..design.processes.len()).collect();
        // Lower every hot expression to bytecode once, up front. Net
        // widths are static, so compilation records per-slot width
        // bounds and the shared arena is sized once, here, for every
        // program's every slot — steady-state evaluation then never
        // touches the heap, regardless of datapath width.
        let net_widths: Vec<u32> = design.nets.iter().map(|n| n.width).collect();
        let programs: Vec<Vec<Option<ExprProgram>>> = design
            .processes
            .iter()
            .map(|p| {
                p.body
                    .iter()
                    .map(|instr| {
                        let expr = match instr {
                            Instr::BlockingAssign { expr, .. }
                            | Instr::NonblockingAssign { expr, .. } => Some(expr),
                            Instr::Delay { amount } => Some(amount),
                            Instr::BranchIfFalse { cond, .. } => Some(cond),
                            _ => None,
                        };
                        expr.map(|e| bytecode::compile(e, &net_widths))
                    })
                    .collect()
            })
            .collect();
        let arena = ScratchArena::for_programs(
            programs
                .iter()
                .flat_map(|per_pc| per_pc.iter().filter_map(Option::as_ref)),
        );
        // Whole-net nonblocking assignments get a staging buffer sized
        // to the target net, so `a <= expr` never boxes the staged
        // value either.
        let mut nba_bufs: Vec<ScratchBuf> = Vec::new();
        let nba_slots: Vec<Vec<u32>> = design
            .processes
            .iter()
            .map(|p| {
                p.body
                    .iter()
                    .map(|instr| match instr {
                        Instr::NonblockingAssign {
                            lvalue: LValue::Net(net),
                            ..
                        } => {
                            let slot = nba_bufs.len() as u32;
                            nba_bufs.push(ScratchBuf::with_width(design.net(*net).width));
                            slot
                        }
                        _ => NO_NBA_SLOT,
                    })
                    .collect()
            })
            .collect();
        let nba_busy = vec![false; nba_bufs.len()];
        Simulator {
            design,
            config,
            values,
            procs,
            programs,
            arena,
            runnable,
            inactive: Vec::new(),
            inactive_spare: Vec::new(),
            sched: FutureQueue::new(),
            wake_batch: Vec::new(),
            nba: Vec::new(),
            nba_spare: Vec::new(),
            nba_bufs,
            nba_busy,
            nba_slots,
            lv_scratch: Vec::new(),
            watchers: vec![Vec::new(); design.nets.len()],
            watcher_threshold: vec![WATCHER_COMPACT_MIN; design.nets.len()],
            eval_allocs: 0,
            compactions: 0,
            time: 0,
            activation_changes: Vec::new(),
            lines: Vec::new(),
            partial_line: String::new(),
            error_count: 0,
            finished: false,
            starved: false,
            limit_hit: None,
            total_instrs: 0,
            activations_this_step: 0,
            waves: None,
            monitor: None,
            recorder: aivril_obs::Recorder::disabled(),
            kstats: None,
            telemetry: None,
        }
    }

    /// Attaches an observability recorder: the run accumulates kernel
    /// histograms (delta cycles per timestep, event-queue depth, NBA
    /// flush sizes) locally and folds them into the recorder when
    /// [`Simulator::run`] returns. Disabled by default (no-op path).
    #[must_use]
    pub fn with_recorder(mut self, recorder: aivril_obs::Recorder) -> Simulator<'d> {
        if recorder.is_enabled() && self.kstats.is_none() {
            self.kstats = Some(KernelStats::new());
        }
        self.recorder = recorder;
        self
    }

    /// Forces kernel-statistics collection even when no (enabled)
    /// recorder is attached, so [`Simulator::take_telemetry`] returns
    /// the run's [`KernelTelemetry`]. The EDA result cache needs this:
    /// an untraced worker may be the one that populates a cache entry,
    /// and a traced worker hitting that entry later must still be able
    /// to replay the kernel series.
    pub fn collect_telemetry(&mut self) {
        if self.kstats.is_none() {
            self.kstats = Some(KernelStats::new());
        }
    }

    /// Returns the finished run's kernel telemetry, when collection was
    /// enabled (via [`Simulator::with_recorder`] with an enabled
    /// recorder, or [`Simulator::collect_telemetry`]). `None` before
    /// [`Simulator::run`] or when collection was off; consumes the
    /// value.
    #[must_use]
    pub fn take_telemetry(&mut self) -> Option<KernelTelemetry> {
        self.telemetry.take()
    }

    /// Enables waveform recording; [`Simulator::vcd`] renders the dump
    /// after [`Simulator::run`] returns.
    pub fn record_waves(&mut self) {
        if self.waves.is_none() {
            self.waves = Some((self.values.clone(), Vec::new()));
        }
    }

    /// Renders the recorded waveform as a standard VCD document.
    /// Returns `None` unless [`Simulator::record_waves`] was called
    /// before the run.
    #[must_use]
    pub fn vcd(&self) -> Option<String> {
        self.waves
            .as_ref()
            .map(|(initial, changes)| vcd::render(self.design, initial, changes, self.time))
    }

    /// Runs the simulation to completion (`$finish`, event starvation,
    /// the time horizon, or a resource limit) and returns the outcome.
    pub fn run(&mut self) -> SimResult {
        while !self.finished && self.limit_hit.is_none() {
            if let Some(pid) = self.runnable.pop_front() {
                self.activations_this_step += 1;
                if self.activations_this_step > u64::from(self.config.max_deltas_per_step) {
                    self.hit_limit(LimitKind::DeltaCycles);
                    break;
                }
                self.run_process(pid);
                continue;
            }
            if !self.inactive.is_empty() {
                // Double-buffer swap: drain through the spare so both
                // Vecs keep their capacity across steps.
                std::mem::swap(&mut self.inactive, &mut self.inactive_spare);
                for i in 0..self.inactive_spare.len() {
                    let pid = self.inactive_spare[i];
                    self.procs[pid].status = Status::Runnable;
                    self.runnable.push_back(pid);
                }
                self.inactive_spare.clear();
                continue;
            }
            if !self.nba.is_empty() {
                let mut batch =
                    std::mem::replace(&mut self.nba, std::mem::take(&mut self.nba_spare));
                if let Some(ks) = &mut self.kstats {
                    ks.nba.observe(batch.len() as f64);
                }
                // The buffers come out of `self` for the duration of
                // the flush so a staged value can be committed while
                // `self` is mutably borrowed by the write.
                let bufs = std::mem::take(&mut self.nba_bufs);
                for entry in batch.drain(..) {
                    match entry.value {
                        NbaValue::Buf(slot) => {
                            self.nba_busy[slot as usize] = false;
                            self.commit_net(entry.net, bufs[slot as usize].as_bits());
                        }
                        NbaValue::Owned(value) => {
                            self.write_slice(entry.net, entry.msb, entry.lsb, &value);
                        }
                    }
                }
                self.nba_bufs = bufs;
                self.nba_spare = batch;
                continue;
            }
            // Time step is quiescent: the $monitor observes it, then time
            // advances to the next scheduled event.
            self.fire_monitor();
            if let Some(ks) = &mut self.kstats {
                ks.delta.observe(self.activations_this_step as f64);
                ks.queue.observe(self.sched.distinct_times() as f64);
            }
            match self.sched.next_time(self.time) {
                Some(t) if t <= self.config.max_time => {
                    self.activations_this_step = 0;
                    let mut batch = std::mem::take(&mut self.wake_batch);
                    self.sched.pop_at(t, &mut batch);
                    self.time = t;
                    for &(pid, generation) in &batch {
                        let p = &mut self.procs[pid];
                        if p.generation == generation && p.status == Status::Sleeping {
                            p.status = Status::Runnable;
                            p.generation += 1;
                            p.last_wake = None;
                            self.runnable.push_back(pid);
                        }
                    }
                    batch.clear();
                    self.wake_batch = batch;
                }
                Some(_) => break, // beyond the time horizon
                None => {
                    self.starved = true;
                    break;
                }
            }
        }
        self.flush_partial();
        if let Some(ks) = self.kstats.take() {
            // `take()` so a (hypothetical) second `run` call cannot
            // double-count the same distributions.
            let telemetry = KernelTelemetry {
                delta: ks.delta,
                queue: ks.queue,
                nba: ks.nba,
                instructions: self.total_instrs,
                perf: self.perf(),
            };
            telemetry.record_to(&self.recorder);
            self.telemetry = Some(telemetry);
        }
        SimResult {
            end_time: self.time,
            lines: self.lines.clone(),
            error_count: self.error_count,
            finished: self.finished,
            starved: self.starved,
            limit_hit: self.limit_hit,
            instructions_executed: self.total_instrs,
        }
    }

    /// Looks up a net's final value by hierarchical name after [`run`]
    /// returned. Returns `None` for unknown names.
    ///
    /// [`run`]: Simulator::run
    #[must_use]
    pub fn net_value(&self, name: &str) -> Option<&LogicVec> {
        self.design
            .find_net(name)
            .map(|id| &self.values[id.0 as usize])
    }

    fn hit_limit(&mut self, kind: LimitKind) {
        self.limit_hit = Some(kind);
        self.error_count += 1;
        self.lines.push(LogLine {
            time: self.time,
            text: format!("ERROR: [XSIM 43-3225] {kind}"),
            is_error: true,
        });
    }

    fn eval(&self, expr: &aivril_hdl::ir::Expr) -> LogicVec {
        self.eval_with_wake(expr, None)
    }

    fn eval_with_wake(&self, expr: &aivril_hdl::ir::Expr, last_wake: Option<NetId>) -> LogicVec {
        EvalCtx {
            values: &self.values,
            time: self.time,
            last_wake,
        }
        .eval(expr)
    }

    /// Executes the compiled program at `(pid, pc)` into the shared
    /// arena (result readable at `self.arena.result()` afterwards).
    /// Returns `false` when no program was lowered for that pc — the
    /// caller then falls back to the tree interpreter, which also keeps
    /// the interpreter alive as the differential-testing oracle.
    fn exec_program(&mut self, pid: usize, pc: usize, last_wake: Option<NetId>) -> bool {
        let Some(prog) = self.programs[pid].get(pc).and_then(Option::as_ref) else {
            return false;
        };
        bytecode::exec(prog, &self.values, self.time, last_wake, &mut self.arena);
        true
    }

    /// Materialises the arena result as an owned value (the boxed cold
    /// path for non-net l-value shapes), counting the spill.
    fn arena_result_owned(&mut self) -> LogicVec {
        let value = LogicVec::from_bits(self.arena.result());
        self.eval_allocs += u64::from(value.is_spilled());
        value
    }

    /// Commits a full-width value to `net` straight from the arena
    /// (zero-copy: the net's planes are overwritten in place).
    fn commit_net_from_arena(&mut self, net: NetId) {
        let arena = std::mem::take(&mut self.arena);
        self.commit_net(net, arena.result());
        self.arena = arena;
    }

    /// Stages a whole-net nonblocking assignment from the arena into
    /// its pre-sized staging buffer; falls back to a boxed value when
    /// the buffer already holds a staged write from this flush window.
    fn stage_nba_from_arena(&mut self, net: NetId, slot: u32) {
        let arena = std::mem::take(&mut self.arena);
        let width = self.design.net(net).width;
        let i = slot as usize;
        let value = if self.nba_busy[i] {
            let mut v = LogicVec::zeros(width);
            v.assign_bits(arena.result());
            self.eval_allocs += u64::from(v.is_spilled());
            NbaValue::Owned(v)
        } else {
            self.nba_busy[i] = true;
            self.nba_bufs[i].load_resized(arena.result(), width);
            NbaValue::Buf(slot)
        };
        self.nba.push(NbaEntry {
            net,
            msb: width - 1,
            lsb: 0,
            value,
        });
        self.arena = arena;
    }

    /// The run's flat performance counters so far (final after
    /// [`Simulator::run`] returns).
    #[must_use]
    pub fn perf(&self) -> KernelPerf {
        let nba_grows: u64 = self.nba_bufs.iter().map(ScratchBuf::grows).sum();
        let nba_words: u64 = self
            .nba_bufs
            .iter()
            .map(|b| b.capacity_words() as u64)
            .sum();
        KernelPerf {
            instructions: self.total_instrs,
            sim_time_ns: self.time,
            eval_allocs: self.eval_allocs + self.arena.allocs() + nba_grows,
            compactions: self.compactions,
            scratch_slots: self.arena.slot_count() as u64,
            arena_words: self.arena.total_words() + nba_words,
        }
    }

    /// Drops every stale entry from one watcher list and re-arms its
    /// threshold at twice the live population. Amortised O(1) per push:
    /// a net whose watchers never wake (it never changes) triggers a
    /// compaction only after the list doubles, so the list length stays
    /// within a constant factor of the processes genuinely waiting.
    fn compact_watchers(&mut self, net: usize) {
        let procs = &self.procs;
        let list = &mut self.watchers[net];
        list.retain(|&(pid, generation)| {
            let p = &procs[pid];
            p.generation == generation && p.status == Status::Waiting
        });
        self.compactions += 1;
        self.watcher_threshold[net] = (list.len() * 2).max(WATCHER_COMPACT_MIN);
    }

    fn run_process(&mut self, pid: usize) {
        let body = &self.design.processes[pid].body;
        let wake = self.procs[pid].last_wake;
        self.activation_changes.clear();
        let mut instrs_this_activation = 0u64;
        loop {
            let pc = self.procs[pid].pc;
            if pc >= body.len() {
                self.procs[pid].status = Status::Halted;
                return;
            }
            instrs_this_activation += 1;
            self.total_instrs += 1;
            if instrs_this_activation > self.config.max_instrs_per_activation {
                self.hit_limit(LimitKind::ProcessInstructions);
                self.procs[pid].status = Status::Halted;
                return;
            }
            if self.total_instrs > self.config.max_total_instrs {
                self.hit_limit(LimitKind::TotalInstructions);
                self.procs[pid].status = Status::Halted;
                return;
            }
            match &body[pc] {
                Instr::BlockingAssign { lvalue, expr } => {
                    match (lvalue, self.exec_program(pid, pc, wake)) {
                        // Hot path: whole-net target, compiled program —
                        // the value goes arena → net planes with no
                        // intermediate boxing.
                        (LValue::Net(net), true) => self.commit_net_from_arena(*net),
                        (_, true) => {
                            let value = self.arena_result_owned();
                            self.write_lvalue(lvalue, value);
                        }
                        (_, false) => {
                            let value = self.eval_with_wake(expr, wake);
                            self.write_lvalue(lvalue, value);
                        }
                    }
                    self.procs[pid].pc = pc + 1;
                }
                Instr::NonblockingAssign { lvalue, expr } => {
                    let slot = self.nba_slots[pid][pc];
                    match (slot, self.exec_program(pid, pc, wake)) {
                        // Hot path: whole-net target, compiled program —
                        // stage into the pre-sized buffer.
                        (slot, true) if slot != NO_NBA_SLOT => {
                            let LValue::Net(net) = lvalue else {
                                unreachable!("nba_slots only maps whole-net targets");
                            };
                            self.stage_nba_from_arena(*net, slot);
                        }
                        (_, ran) => {
                            let value = if ran {
                                self.arena_result_owned()
                            } else {
                                self.eval_with_wake(expr, wake)
                            };
                            let mut slices = std::mem::take(&mut self.lv_scratch);
                            self.resolve_lvalue(lvalue, &value, &mut slices);
                            for (net, msb, lsb, v) in slices.drain(..) {
                                self.nba.push(NbaEntry {
                                    net,
                                    msb,
                                    lsb,
                                    value: NbaValue::Owned(v),
                                });
                            }
                            self.lv_scratch = slices;
                        }
                    }
                    self.procs[pid].pc = pc + 1;
                }
                Instr::Delay { amount } => {
                    let amt = if self.exec_program(pid, pc, None) {
                        self.arena.result().to_u64().unwrap_or(0)
                    } else {
                        self.eval_with_wake(amount, None).to_u64().unwrap_or(0)
                    };
                    self.procs[pid].pc = pc + 1;
                    self.procs[pid].generation += 1;
                    if amt == 0 {
                        self.procs[pid].status = Status::Runnable;
                        self.inactive.push(pid);
                    } else {
                        self.procs[pid].status = Status::Sleeping;
                        let generation = self.procs[pid].generation;
                        self.sched
                            .schedule(self.time, self.time + amt, pid, generation);
                    }
                    return;
                }
                Instr::WaitEvent { triggers } => {
                    self.procs[pid].pc = pc + 1;
                    self.procs[pid].generation += 1;
                    // If this activation already changed one of the nets
                    // it is about to wait on (continuous assigns write
                    // before re-arming), the notification fired while no
                    // watcher was registered. Re-arm the process as a
                    // fresh delta instead of suspending; a genuinely
                    // oscillating design then runs into the
                    // `max_deltas_per_step` ceiling and gets a clear
                    // [`LimitKind::DeltaCycles`] diagnostic rather than
                    // silently settling at a wrong value.
                    let self_wake = self.activation_changes.iter().find_map(|(net, old, new)| {
                        let woken = triggers.iter().any(|t| match t {
                            Trigger::AnyChange(n) => n == net,
                            Trigger::Posedge(n) => {
                                n == net && *new == Logic::One && *old != Logic::One
                            }
                            Trigger::Negedge(n) => {
                                n == net && *new == Logic::Zero && *old != Logic::Zero
                            }
                        });
                        woken.then_some(*net)
                    });
                    if let Some(net) = self_wake {
                        self.procs[pid].status = Status::Runnable;
                        self.procs[pid].last_wake = Some(net);
                        self.runnable.push_back(pid);
                        return;
                    }
                    self.procs[pid].status = Status::Waiting;
                    self.procs[pid].wait_pc = pc;
                    let generation = self.procs[pid].generation;
                    for t in triggers {
                        let ni = t.net().0 as usize;
                        self.watchers[ni].push((pid, generation));
                        if self.watchers[ni].len() >= self.watcher_threshold[ni] {
                            self.compact_watchers(ni);
                        }
                    }
                    return;
                }
                Instr::Jump(target) => {
                    self.procs[pid].pc = *target;
                }
                Instr::BranchIfFalse { cond, target } => {
                    let cond_true = if self.exec_program(pid, pc, wake) {
                        self.arena.result().to_bool()
                    } else {
                        self.eval_with_wake(cond, wake).to_bool()
                    };
                    let taken = cond_true != Some(true);
                    self.procs[pid].pc = if taken { *target } else { pc + 1 };
                }
                Instr::SysCall {
                    kind: SysTaskKind::Monitor,
                    format,
                    args,
                } => {
                    self.monitor = Some((format.clone(), args.clone(), None));
                    self.procs[pid].pc = pc + 1;
                }
                Instr::SysCall { kind, format, args } => {
                    let kind = *kind;
                    let rendered = {
                        let values: Vec<LogicVec> =
                            args.iter().map(|a| self.eval_with_wake(a, wake)).collect();
                        match format {
                            Some(f) => render_format(f, &values),
                            None => values
                                .iter()
                                .map(LogicVec::to_decimal_string)
                                .collect::<Vec<_>>()
                                .join(" "),
                        }
                    };
                    self.procs[pid].pc = pc + 1;
                    match kind {
                        SysTaskKind::Display => self.emit_line(rendered, false),
                        SysTaskKind::Write => self.partial_line.push_str(&rendered),
                        SysTaskKind::Error => {
                            self.error_count += 1;
                            let text = format!("ERROR: {rendered} (at time {})", self.time);
                            self.emit_line(text, true);
                        }
                        SysTaskKind::Fatal => {
                            self.error_count += 1;
                            let text = format!("FATAL: {rendered} (at time {})", self.time);
                            self.emit_line(text, true);
                            self.finished = true;
                            return;
                        }
                        SysTaskKind::Finish => {
                            self.finished = true;
                            return;
                        }
                        SysTaskKind::Monitor => unreachable!("registered above"),
                    }
                }
                Instr::Halt => {
                    self.procs[pid].status = Status::Halted;
                    return;
                }
            }
        }
    }

    /// Prints the active `$monitor` line when any argument changed since
    /// the last print (and always on its first quiescent step). `$time`
    /// arguments are excluded from change detection, per IEEE 1364 §17.1.
    fn fire_monitor(&mut self) {
        let Some((format, args, last)) = &self.monitor else {
            return;
        };
        let (values, watched): (Vec<LogicVec>, Vec<LogicVec>) = {
            let ctx = EvalCtx {
                values: &self.values,
                time: self.time,
                last_wake: None,
            };
            let values: Vec<LogicVec> = args.iter().map(|a| ctx.eval(a)).collect();
            let watched = args
                .iter()
                .zip(&values)
                .filter(|(a, _)| !matches!(a, aivril_hdl::ir::Expr::Time))
                .map(|(_, v)| v.clone())
                .collect();
            (values, watched)
        };
        if last.as_ref() == Some(&watched) {
            return;
        }
        let text = match format {
            Some(f) => render_format(f, &values),
            None => values
                .iter()
                .map(LogicVec::to_decimal_string)
                .collect::<Vec<_>>()
                .join(" "),
        };
        if let Some((_, _, last)) = &mut self.monitor {
            *last = Some(watched);
        }
        self.emit_line(text, false);
    }

    fn emit_line(&mut self, text: String, is_error: bool) {
        let full = if self.partial_line.is_empty() {
            text
        } else {
            let mut s = std::mem::take(&mut self.partial_line);
            s.push_str(&text);
            s
        };
        self.lines.push(LogLine {
            time: self.time,
            text: full,
            is_error,
        });
    }

    fn flush_partial(&mut self) {
        if !self.partial_line.is_empty() {
            let text = std::mem::take(&mut self.partial_line);
            self.lines.push(LogLine {
                time: self.time,
                text,
                is_error: false,
            });
        }
    }

    /// Resolves an l-value into concrete `(net, msb, lsb, value)` slices.
    /// Concatenation targets split the value MSB-first, per IEEE 1364.
    fn resolve_lvalue(
        &self,
        lvalue: &LValue,
        value: &LogicVec,
        out: &mut Vec<(NetId, u32, u32, LogicVec)>,
    ) {
        match lvalue {
            LValue::Net(id) => {
                let w = self.design.net(*id).width;
                out.push((*id, w - 1, 0, value.resize(w)));
            }
            LValue::Range(id, msb, lsb) => {
                let w = msb - lsb + 1;
                out.push((*id, *msb, *lsb, value.resize(w)));
            }
            LValue::Index(id, idx_expr) => {
                let idx = self.eval(idx_expr);
                if let Some(i) = idx.to_u64() {
                    let w = self.design.net(*id).width;
                    if (i as u32) < w {
                        out.push((*id, i as u32, i as u32, value.resize(1)));
                    }
                }
                // Unknown/out-of-range index: write vanishes (IEEE 1364).
            }
            LValue::Concat(parts) => {
                // Split MSB-first: compute widths, then hand out slices.
                let widths: Vec<u32> = parts.iter().map(|p| self.lvalue_width(p)).collect();
                let total: u32 = widths.iter().sum();
                let v = value.resize(total);
                let mut hi = total;
                for (part, w) in parts.iter().zip(widths) {
                    let slice = v.slice(hi - 1, hi - w);
                    self.resolve_lvalue(part, &slice, out);
                    hi -= w;
                }
            }
        }
    }

    fn lvalue_width(&self, lvalue: &LValue) -> u32 {
        match lvalue {
            LValue::Net(id) => self.design.net(*id).width,
            LValue::Range(_, msb, lsb) => msb - lsb + 1,
            LValue::Index(_, _) => 1,
            LValue::Concat(parts) => parts.iter().map(|p| self.lvalue_width(p)).sum(),
        }
    }

    fn write_lvalue(&mut self, lvalue: &LValue, value: LogicVec) {
        let mut slices = std::mem::take(&mut self.lv_scratch);
        self.resolve_lvalue(lvalue, &value, &mut slices);
        for (net, msb, lsb, v) in slices.drain(..) {
            self.write_slice(net, msb, lsb, &v);
        }
        self.lv_scratch = slices;
    }

    fn write_slice(&mut self, net: NetId, msb: u32, lsb: u32, value: &LogicVec) {
        let idx = net.0 as usize;
        let width = self.values[idx].width();
        // Full-overwrite writes (the common shape) skip the clone-and-
        // splice path entirely.
        if lsb == 0 && msb + 1 >= width && value.width() == width {
            return self.commit_net(net, value.as_bits());
        }
        let old = self.values[idx].clone();
        let mut new = old.clone();
        new.set_slice(msb, lsb, value);
        if new == old {
            return;
        }
        let (old_bit, new_bit) = (old.get(0), new.get(0));
        self.values[idx] = new.clone();
        self.activation_changes.push((net, old_bit, new_bit));
        if let Some((_, changes)) = &mut self.waves {
            changes.push(vcd::Change {
                time: self.time,
                net: idx,
                value: new,
            });
        }
        self.notify_watchers(net, old_bit, new_bit);
    }

    /// Overwrites `net`'s full value from a borrowed bit view — the
    /// zero-copy commit shared by blocking assigns, staged NBA buffers
    /// and full-width `write_slice` calls. The net's existing planes
    /// are reused (no allocation); resize semantics apply when `bits`
    /// is narrower or wider than the net.
    fn commit_net(&mut self, net: NetId, bits: BitsRef<'_>) {
        let idx = net.0 as usize;
        if self.values[idx].equals_bits(bits) {
            return;
        }
        let old_bit = self.values[idx].get(0);
        self.values[idx].assign_bits(bits);
        let new_bit = self.values[idx].get(0);
        self.activation_changes.push((net, old_bit, new_bit));
        if let Some((_, changes)) = &mut self.waves {
            changes.push(vcd::Change {
                time: self.time,
                net: idx,
                value: self.values[idx].clone(),
            });
        }
        self.notify_watchers(net, old_bit, new_bit);
    }

    fn notify_watchers(&mut self, net: NetId, old_bit: Logic, new_bit: Logic) {
        let idx = net.0 as usize;
        if self.watchers[idx].is_empty() {
            return;
        }
        // In-place retain: stale and woken entries drop out, pending
        // ones stay, with no transfer buffer. The triggers are read back
        // from the (immutable) process body at the recorded wait pc.
        let design = self.design;
        let procs = &mut self.procs;
        let runnable = &mut self.runnable;
        self.watchers[idx].retain(|&(pid, generation)| {
            let p = &procs[pid];
            if p.generation != generation || p.status != Status::Waiting {
                return false; // stale
            }
            let Instr::WaitEvent { triggers } = &design.processes[pid].body[p.wait_pc] else {
                unreachable!("wait_pc always records a WaitEvent");
            };
            let woken = triggers.iter().any(|t| match t {
                Trigger::AnyChange(n) => *n == net,
                Trigger::Posedge(n) => *n == net && new_bit == Logic::One && old_bit != Logic::One,
                Trigger::Negedge(n) => {
                    *n == net && new_bit == Logic::Zero && old_bit != Logic::Zero
                }
            });
            if woken {
                let p = &mut procs[pid];
                p.status = Status::Runnable;
                p.generation += 1;
                p.last_wake = Some(net);
                runnable.push_back(pid);
                return false;
            }
            true
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aivril_hdl::ir::{
        BinaryOp, Expr, Net, NetKind, Process, ProcessKind, SysTaskKind, UnaryOp,
    };

    fn reg(name: &str, width: u32, init: Option<u64>) -> Net {
        Net {
            name: name.into(),
            width,
            kind: NetKind::Reg,
            init: init.map(|v| LogicVec::from_u64(width, v)),
        }
    }

    /// Builds a clock + posedge-triggered counter + finishing testbench.
    fn counter_design(cycles: u64) -> Design {
        let mut d = Design::new("tb");
        let clk = d.add_net(reg("clk", 1, Some(0)));
        let count = d.add_net(reg("count", 8, Some(0)));
        // initial forever #5 clk = ~clk;
        d.add_process(Process {
            name: "clkgen".into(),
            kind: ProcessKind::Always,
            body: vec![
                Instr::Delay {
                    amount: Expr::constant(32, 5),
                },
                Instr::BlockingAssign {
                    lvalue: LValue::Net(clk),
                    expr: Expr::Unary {
                        op: UnaryOp::Not,
                        operand: Box::new(Expr::Net(clk)),
                    },
                },
                Instr::Jump(0),
            ],
        });
        // always @(posedge clk) count <= count + 1;
        d.add_process(Process {
            name: "count".into(),
            kind: ProcessKind::Always,
            body: vec![
                Instr::WaitEvent {
                    triggers: vec![Trigger::Posedge(clk)],
                },
                Instr::NonblockingAssign {
                    lvalue: LValue::Net(count),
                    expr: Expr::Binary {
                        op: BinaryOp::Add,
                        lhs: Box::new(Expr::Net(count)),
                        rhs: Box::new(Expr::constant(8, 1)),
                    },
                },
                Instr::Jump(0),
            ],
        });
        // initial begin #(10*cycles); $display("count=%0d", count); $finish; end
        d.add_process(Process {
            name: "tb".into(),
            kind: ProcessKind::Initial,
            body: vec![
                Instr::Delay {
                    amount: Expr::constant(32, 10 * cycles + 2),
                },
                Instr::SysCall {
                    kind: SysTaskKind::Display,
                    format: Some("count=%0d".into()),
                    args: vec![Expr::Net(count)],
                },
                Instr::SysCall {
                    kind: SysTaskKind::Finish,
                    format: None,
                    args: vec![],
                },
                Instr::Halt,
            ],
        });
        d
    }

    #[test]
    fn counter_counts_posedges() {
        let d = counter_design(7);
        let mut sim = Simulator::new(&d, SimConfig::default());
        let r = sim.run();
        assert!(r.finished);
        assert!(r.is_clean());
        assert_eq!(r.lines[0].text, "count=7");
        assert_eq!(sim.net_value("count").and_then(LogicVec::to_u64), Some(7));
    }

    #[test]
    fn nba_reads_old_values_register_swap() {
        // a <= b; b <= a; at a posedge must swap, not duplicate.
        let mut d = Design::new("swap");
        let clk = d.add_net(reg("clk", 1, Some(0)));
        let a = d.add_net(reg("a", 4, Some(3)));
        let b = d.add_net(reg("b", 4, Some(9)));
        d.add_process(Process {
            name: "swap".into(),
            kind: ProcessKind::Always,
            body: vec![
                Instr::WaitEvent {
                    triggers: vec![Trigger::Posedge(clk)],
                },
                Instr::NonblockingAssign {
                    lvalue: LValue::Net(a),
                    expr: Expr::Net(b),
                },
                Instr::NonblockingAssign {
                    lvalue: LValue::Net(b),
                    expr: Expr::Net(a),
                },
                Instr::Jump(0),
            ],
        });
        d.add_process(Process {
            name: "stim".into(),
            kind: ProcessKind::Initial,
            body: vec![
                Instr::Delay {
                    amount: Expr::constant(32, 5),
                },
                Instr::BlockingAssign {
                    lvalue: LValue::Net(clk),
                    expr: Expr::constant(1, 1),
                },
                Instr::Delay {
                    amount: Expr::constant(32, 5),
                },
                Instr::SysCall {
                    kind: SysTaskKind::Finish,
                    format: None,
                    args: vec![],
                },
                Instr::Halt,
            ],
        });
        let mut sim = Simulator::new(&d, SimConfig::default());
        sim.run();
        assert_eq!(sim.net_value("a").and_then(LogicVec::to_u64), Some(9));
        assert_eq!(sim.net_value("b").and_then(LogicVec::to_u64), Some(3));
    }

    #[test]
    fn continuous_assign_tracks_inputs() {
        let mut d = Design::new("comb");
        let a = d.add_net(reg("a", 4, Some(0)));
        let y = d.add_net(Net {
            name: "y".into(),
            width: 4,
            kind: NetKind::Wire,
            init: None,
        });
        d.add_continuous_assign(
            LValue::Net(y),
            Expr::Unary {
                op: UnaryOp::Not,
                operand: Box::new(Expr::Net(a)),
            },
        );
        d.add_process(Process {
            name: "stim".into(),
            kind: ProcessKind::Initial,
            body: vec![
                Instr::Delay {
                    amount: Expr::constant(32, 1),
                },
                Instr::BlockingAssign {
                    lvalue: LValue::Net(a),
                    expr: Expr::constant(4, 0b0101),
                },
                Instr::Delay {
                    amount: Expr::constant(32, 1),
                },
                Instr::SysCall {
                    kind: SysTaskKind::Finish,
                    format: None,
                    args: vec![],
                },
                Instr::Halt,
            ],
        });
        let mut sim = Simulator::new(&d, SimConfig::default());
        sim.run();
        assert_eq!(sim.net_value("y").and_then(LogicVec::to_u64), Some(0b1010));
    }

    #[test]
    fn error_and_fatal_counting() {
        let mut d = Design::new("t");
        d.add_process(Process {
            name: "p".into(),
            kind: ProcessKind::Initial,
            body: vec![
                Instr::SysCall {
                    kind: SysTaskKind::Error,
                    format: Some("Test Case 2 Failed".into()),
                    args: vec![],
                },
                Instr::SysCall {
                    kind: SysTaskKind::Fatal,
                    format: Some("giving up".into()),
                    args: vec![],
                },
                Instr::Halt,
            ],
        });
        let r = Simulator::new(&d, SimConfig::default()).run();
        assert_eq!(r.error_count, 2);
        assert!(r.finished, "$fatal ends the run");
        assert!(r.lines[0].text.contains("Test Case 2 Failed"));
        assert!(r.lines[0].is_error);
    }

    #[test]
    fn infinite_procedural_loop_hits_limit() {
        let mut d = Design::new("t");
        d.add_process(Process {
            name: "spin".into(),
            kind: ProcessKind::Initial,
            body: vec![Instr::Jump(0)],
        });
        let r = Simulator::new(&d, SimConfig::default()).run();
        assert_eq!(r.limit_hit, Some(LimitKind::ProcessInstructions));
        assert!(!r.is_clean());
    }

    #[test]
    fn zero_delay_oscillation_hits_delta_limit() {
        // A zero-delay ping-pong: each process toggles its own net and
        // waits on the other's, re-waking each other forever at time 0.
        let mut d = Design::new("t");
        let a = d.add_net(reg("a", 1, Some(0)));
        let b = d.add_net(reg("b", 1, Some(0)));
        let toggler =
            |own: aivril_hdl::ir::NetId, other: aivril_hdl::ir::NetId, name: &str| Process {
                name: name.into(),
                kind: ProcessKind::Always,
                body: vec![
                    Instr::BlockingAssign {
                        lvalue: LValue::Net(own),
                        expr: Expr::Unary {
                            op: UnaryOp::Not,
                            operand: Box::new(Expr::Net(own)),
                        },
                    },
                    Instr::WaitEvent {
                        triggers: vec![Trigger::AnyChange(other)],
                    },
                    Instr::Jump(0),
                ],
            };
        d.add_process(toggler(a, b, "p1"));
        d.add_process(toggler(b, a, "p2"));
        let r = Simulator::new(&d, SimConfig::default()).run();
        assert_eq!(r.limit_hit, Some(LimitKind::DeltaCycles));
    }

    #[test]
    fn self_triggering_assign_hits_delta_limit() {
        // `assign a = ~a` with a driven initial value: the process
        // changes its own trigger net before re-arming. It used to lose
        // the self-notification and settle silently at a wrong value;
        // now it must oscillate into the delta-cycle ceiling with a
        // clear diagnostic.
        let mut d = Design::new("t");
        let a = d.add_net(reg("a", 1, Some(0)));
        d.add_continuous_assign(
            LValue::Net(a),
            Expr::Unary {
                op: UnaryOp::Not,
                operand: Box::new(Expr::Net(a)),
            },
        );
        let r = Simulator::new(&d, SimConfig::default()).run();
        assert_eq!(r.limit_hit, Some(LimitKind::DeltaCycles));
        assert!(!r.is_clean());
        assert!(
            r.lines.iter().any(|l| l.text.contains("delta-cycle limit")),
            "log: {}",
            r.log_text()
        );
    }

    #[test]
    fn self_write_without_change_still_settles() {
        // Writing one's own trigger net with an *unchanged* value is not
        // a self-notification (no event fires); the process must suspend
        // normally and the run must starve cleanly.
        let mut d = Design::new("t");
        let a = d.add_net(reg("a", 1, Some(1)));
        // assign a = a & a; -- identity, value never changes.
        d.add_continuous_assign(
            LValue::Net(a),
            Expr::Binary {
                op: BinaryOp::And,
                lhs: Box::new(Expr::Net(a)),
                rhs: Box::new(Expr::Net(a)),
            },
        );
        let r = Simulator::new(&d, SimConfig::default()).run();
        assert!(r.starved, "no events left after the identity write");
        assert!(r.is_clean());
    }

    #[test]
    fn self_posedge_rearms_with_edge_semantics() {
        // A process waiting on posedge of a net it drives 0→1 during its
        // own activation must re-arm (the edge really happened); the
        // second pass writes 1→1 (no change) and suspends for good.
        let mut d = Design::new("t");
        let a = d.add_net(reg("a", 1, Some(0)));
        let hits = d.add_net(reg("hits", 4, Some(0)));
        d.add_process(Process {
            name: "p".into(),
            kind: ProcessKind::Always,
            body: vec![
                Instr::BlockingAssign {
                    lvalue: LValue::Net(a),
                    expr: Expr::constant(1, 1),
                },
                Instr::BlockingAssign {
                    lvalue: LValue::Net(hits),
                    expr: Expr::Binary {
                        op: BinaryOp::Add,
                        lhs: Box::new(Expr::Net(hits)),
                        rhs: Box::new(Expr::constant(4, 1)),
                    },
                },
                Instr::WaitEvent {
                    triggers: vec![Trigger::Posedge(a)],
                },
                Instr::Jump(0),
            ],
        });
        let mut sim = Simulator::new(&d, SimConfig::default());
        let r = sim.run();
        assert!(r.starved, "second pass sees no edge and suspends");
        assert_eq!(
            sim.net_value("hits").and_then(LogicVec::to_u64),
            Some(2),
            "exactly one self-wake: initial pass + edge-triggered pass"
        );
    }

    #[test]
    fn watcher_lists_stay_bounded_on_never_changing_nets() {
        // A process that waits on (posedge clk, anychange dead) re-arms
        // every clock edge; `dead` never changes, so its watcher list
        // used to gain one stale entry per cycle — unbounded growth on
        // long runs. With amortised compaction the list must stay within
        // a small constant of the single live waiter.
        let mut d = Design::new("t");
        let clk = d.add_net(reg("clk", 1, Some(0)));
        let dead = d.add_net(reg("dead", 1, Some(0)));
        d.add_process(Process {
            name: "clkgen".into(),
            kind: ProcessKind::Always,
            body: vec![
                Instr::Delay {
                    amount: Expr::constant(32, 5),
                },
                Instr::BlockingAssign {
                    lvalue: LValue::Net(clk),
                    expr: Expr::Unary {
                        op: UnaryOp::Not,
                        operand: Box::new(Expr::Net(clk)),
                    },
                },
                Instr::Jump(0),
            ],
        });
        d.add_process(Process {
            name: "waiter".into(),
            kind: ProcessKind::Always,
            body: vec![
                Instr::WaitEvent {
                    triggers: vec![Trigger::Posedge(clk), Trigger::AnyChange(dead)],
                },
                Instr::Jump(0),
            ],
        });
        d.add_process(Process {
            name: "stop".into(),
            kind: ProcessKind::Initial,
            body: vec![
                Instr::Delay {
                    amount: Expr::constant(32, 10_000),
                },
                Instr::SysCall {
                    kind: SysTaskKind::Finish,
                    format: None,
                    args: vec![],
                },
                Instr::Halt,
            ],
        });
        let mut sim = Simulator::new(&d, SimConfig::default());
        let r = sim.run();
        assert!(r.finished);
        let dead_watchers = sim.watchers[dead.0 as usize].len();
        assert!(
            dead_watchers <= 16,
            "stale watcher entries must be compacted; found {dead_watchers} after \
             ~1000 wait cycles"
        );
        assert!(
            sim.perf().compactions > 50,
            "the long run must have compacted repeatedly, got {}",
            sim.perf().compactions
        );
    }

    #[test]
    fn starvation_without_finish() {
        let mut d = Design::new("t");
        let a = d.add_net(reg("a", 1, Some(0)));
        d.add_process(Process {
            name: "once".into(),
            kind: ProcessKind::Initial,
            body: vec![
                Instr::BlockingAssign {
                    lvalue: LValue::Net(a),
                    expr: Expr::constant(1, 1),
                },
                Instr::Halt,
            ],
        });
        let r = Simulator::new(&d, SimConfig::default()).run();
        assert!(r.starved);
        assert!(!r.finished);
        assert!(r.is_clean());
    }

    #[test]
    fn zero_delay_orders_after_active() {
        // #0 lets another same-time process run first.
        let mut d = Design::new("t");
        let a = d.add_net(reg("a", 4, Some(0)));
        let seen = d.add_net(reg("seen", 4, Some(0)));
        d.add_process(Process {
            name: "reader".into(),
            kind: ProcessKind::Initial,
            body: vec![
                Instr::Delay {
                    amount: Expr::constant(32, 0),
                },
                Instr::BlockingAssign {
                    lvalue: LValue::Net(seen),
                    expr: Expr::Net(a),
                },
                Instr::Halt,
            ],
        });
        d.add_process(Process {
            name: "writer".into(),
            kind: ProcessKind::Initial,
            body: vec![
                Instr::BlockingAssign {
                    lvalue: LValue::Net(a),
                    expr: Expr::constant(4, 7),
                },
                Instr::Halt,
            ],
        });
        let mut sim = Simulator::new(&d, SimConfig::default());
        sim.run();
        assert_eq!(sim.net_value("seen").and_then(LogicVec::to_u64), Some(7));
    }

    #[test]
    fn concat_lvalue_splits_msb_first() {
        let mut d = Design::new("t");
        let hi = d.add_net(reg("hi", 4, Some(0)));
        let lo = d.add_net(reg("lo", 4, Some(0)));
        d.add_process(Process {
            name: "p".into(),
            kind: ProcessKind::Initial,
            body: vec![
                Instr::BlockingAssign {
                    lvalue: LValue::Concat(vec![LValue::Net(hi), LValue::Net(lo)]),
                    expr: Expr::constant(8, 0xA5),
                },
                Instr::Halt,
            ],
        });
        let mut sim = Simulator::new(&d, SimConfig::default());
        sim.run();
        assert_eq!(sim.net_value("hi").and_then(LogicVec::to_u64), Some(0xA));
        assert_eq!(sim.net_value("lo").and_then(LogicVec::to_u64), Some(0x5));
    }

    #[test]
    fn write_then_display_concatenates() {
        let mut d = Design::new("t");
        d.add_process(Process {
            name: "p".into(),
            kind: ProcessKind::Initial,
            body: vec![
                Instr::SysCall {
                    kind: SysTaskKind::Write,
                    format: Some("part1 ".into()),
                    args: vec![],
                },
                Instr::SysCall {
                    kind: SysTaskKind::Display,
                    format: Some("part2".into()),
                    args: vec![],
                },
                Instr::Halt,
            ],
        });
        let r = Simulator::new(&d, SimConfig::default()).run();
        assert_eq!(r.lines[0].text, "part1 part2");
    }

    #[test]
    fn negedge_trigger() {
        let mut d = Design::new("t");
        let clk = d.add_net(reg("clk", 1, Some(1)));
        let hits = d.add_net(reg("hits", 4, Some(0)));
        d.add_process(Process {
            name: "neg".into(),
            kind: ProcessKind::Always,
            body: vec![
                Instr::WaitEvent {
                    triggers: vec![Trigger::Negedge(clk)],
                },
                Instr::BlockingAssign {
                    lvalue: LValue::Net(hits),
                    expr: Expr::Binary {
                        op: BinaryOp::Add,
                        lhs: Box::new(Expr::Net(hits)),
                        rhs: Box::new(Expr::constant(4, 1)),
                    },
                },
                Instr::Jump(0),
            ],
        });
        d.add_process(Process {
            name: "stim".into(),
            kind: ProcessKind::Initial,
            body: vec![
                Instr::Delay {
                    amount: Expr::constant(32, 5),
                },
                Instr::BlockingAssign {
                    lvalue: LValue::Net(clk),
                    expr: Expr::constant(1, 0),
                },
                Instr::Delay {
                    amount: Expr::constant(32, 5),
                },
                Instr::BlockingAssign {
                    lvalue: LValue::Net(clk),
                    expr: Expr::constant(1, 1),
                },
                Instr::Delay {
                    amount: Expr::constant(32, 5),
                },
                Instr::BlockingAssign {
                    lvalue: LValue::Net(clk),
                    expr: Expr::constant(1, 0),
                },
                Instr::Delay {
                    amount: Expr::constant(32, 1),
                },
                Instr::SysCall {
                    kind: SysTaskKind::Finish,
                    format: None,
                    args: vec![],
                },
                Instr::Halt,
            ],
        });
        let mut sim = Simulator::new(&d, SimConfig::default());
        sim.run();
        assert_eq!(sim.net_value("hits").and_then(LogicVec::to_u64), Some(2));
    }
}

#[cfg(test)]
mod vcd_tests {
    use super::*;
    use aivril_hdl::ir::{Expr, Net, NetKind, Process, ProcessKind, SysTaskKind, UnaryOp};

    #[test]
    fn vcd_records_clock_toggles() {
        let mut d = Design::new("tb");
        let clk = d.add_net(Net {
            name: "tb.clk".into(),
            width: 1,
            kind: NetKind::Reg,
            init: Some(LogicVec::zeros(1)),
        });
        d.add_process(Process {
            name: "clkgen".into(),
            kind: ProcessKind::Always,
            body: vec![
                Instr::Delay {
                    amount: Expr::constant(32, 5),
                },
                Instr::BlockingAssign {
                    lvalue: LValue::Net(clk),
                    expr: Expr::Unary {
                        op: UnaryOp::Not,
                        operand: Box::new(Expr::Net(clk)),
                    },
                },
                Instr::Jump(0),
            ],
        });
        d.add_process(Process {
            name: "stop".into(),
            kind: ProcessKind::Initial,
            body: vec![
                Instr::Delay {
                    amount: Expr::constant(32, 22),
                },
                Instr::SysCall {
                    kind: SysTaskKind::Finish,
                    format: None,
                    args: vec![],
                },
                Instr::Halt,
            ],
        });
        let mut sim = Simulator::new(&d, SimConfig::default());
        assert!(sim.vcd().is_none(), "no dump without recording");
        sim.record_waves();
        sim.run();
        let vcd = sim.vcd().expect("recorded");
        assert!(vcd.contains("$var wire 1 ! tb.clk $end"));
        assert!(vcd.contains("#0\n$dumpvars\n0!\n$end\n"));
        assert!(vcd.contains("#5\n1!\n"));
        assert!(vcd.contains("#10\n0!\n"));
        assert!(vcd.contains("#15\n1!\n"));
        assert!(vcd.contains("#20\n0!\n"));
    }
}

#[cfg(test)]
mod monitor_tests {
    use super::*;
    use aivril_hdl::ir::{BinaryOp, Expr, Net, NetKind, Process, ProcessKind, SysTaskKind};

    #[test]
    fn monitor_prints_only_on_change() {
        // A counter that increments at t=10,20 and holds at t=30; the
        // monitor must print at t=0 (first observation), 10 and 20 only.
        let mut d = Design::new("tb");
        let n = d.add_net(Net {
            name: "n".into(),
            width: 4,
            kind: NetKind::Reg,
            init: Some(LogicVec::zeros(4)),
        });
        let bump = |d: &mut Design, delay: u64, inc: u64| {
            d.add_process(Process {
                name: format!("bump{delay}"),
                kind: ProcessKind::Initial,
                body: vec![
                    Instr::Delay {
                        amount: Expr::constant(32, delay),
                    },
                    Instr::BlockingAssign {
                        lvalue: LValue::Net(n),
                        expr: Expr::Binary {
                            op: BinaryOp::Add,
                            lhs: Box::new(Expr::Net(n)),
                            rhs: Box::new(Expr::constant(4, inc)),
                        },
                    },
                    Instr::Halt,
                ],
            });
        };
        bump(&mut d, 10, 1);
        bump(&mut d, 20, 1);
        bump(&mut d, 30, 0); // same value: no print expected
        d.add_process(Process {
            name: "mon".into(),
            kind: ProcessKind::Initial,
            body: vec![
                Instr::SysCall {
                    kind: SysTaskKind::Monitor,
                    format: Some("t=%t n=%0d".into()),
                    args: vec![Expr::Time, Expr::Net(n)],
                },
                Instr::Delay {
                    amount: Expr::constant(32, 40),
                },
                Instr::SysCall {
                    kind: SysTaskKind::Finish,
                    format: None,
                    args: vec![],
                },
                Instr::Halt,
            ],
        });
        let r = Simulator::new(&d, SimConfig::default()).run();
        let texts: Vec<&str> = r.lines.iter().map(|l| l.text.as_str()).collect();
        assert_eq!(
            texts,
            vec!["t=0 n=0", "t=10 n=1", "t=20 n=2"],
            "log: {texts:?}"
        );
    }
}
