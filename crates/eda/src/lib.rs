//! EDA tool facade: the "Vivado" of the AIVRIL2 reproduction.
//!
//! The paper's agents never call compiler internals — they launch EDA
//! tools and read back *logs*. This crate packages the from-scratch
//! Verilog/VHDL frontends and the event-driven simulator behind exactly
//! that interface: a [`ToolSuite`] with `compile` (≈ `xvlog`/`xvhdl`)
//! and `simulate` (≈ `xelab` + `xsim`) operations that return textual
//! Vivado-style logs plus structured reports and a modeled wall-clock
//! latency (used to reproduce the paper's Figure 3 latency breakdown).
//!
//! # Example
//!
//! ```
//! use aivril_eda::{HdlFile, Language, ToolSuite, XsimToolSuite};
//!
//! let tools = XsimToolSuite::new();
//! let file = HdlFile::new("inv.v", "module inv(input a, output y);\nassign y = ~a;\nendmodule\n");
//! assert_eq!(file.language, Language::Verilog);
//! let report = tools.compile(&[file]);
//! assert!(report.success);
//! ```

#![warn(missing_docs)]

mod cache;
mod disk;
pub mod faults;
mod latency;
mod report;
mod source;
mod xsim;

pub use cache::{CacheStats, EdaCache};
pub use disk::DiskStats;
pub use faults::EdaFaultPlan;
pub use latency::ToolLatencyModel;
pub use report::{CompileReport, SimDiverged, SimReport, TestFailure, ToolMessage};
pub use source::{HdlFile, Language};
pub use xsim::{XsimToolSuite, PASS_MARKER};

/// An EDA tool suite the agents can drive: a compiler and a simulator,
/// both reporting through logs.
///
/// Implementations must be deterministic: the agent loops rely on
/// replayable behaviour for calibration and testing.
pub trait ToolSuite {
    /// Analyses `files` only (lexing/parsing — the `xvlog`/`xvhdl` step
    /// without elaboration), so a testbench can be syntax-checked before
    /// the unit it instantiates exists.
    fn analyze(&self, files: &[HdlFile]) -> CompileReport;

    /// Analyses and elaborates `files` (syntax + semantic checks),
    /// producing a Vivado-style log. All files must be one language.
    fn compile(&self, files: &[HdlFile]) -> CompileReport;

    /// Compiles and simulates `files` with `top` as the root unit
    /// (auto-detected when `None`: the unit nothing else instantiates).
    fn simulate(&self, files: &[HdlFile], top: Option<&str>) -> SimReport;
}
