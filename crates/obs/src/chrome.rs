//! Chrome `trace_event` JSON exporter (the format Perfetto and
//! `chrome://tracing` load).
//!
//! Each span becomes one complete (`"ph":"X"`) event with `ts`/`dur` in
//! integer microseconds of modeled time. Each run maps to a thread id
//! (its index in journal order) so runs stack as separate tracks; a
//! `thread_name` metadata event labels every track with the run's grid
//! coordinates and context. All timestamps are modeled, so the export
//! is byte-identical across reruns and thread counts.

use crate::json;
use crate::recorder::{AttrValue, Recorder, RunJournal, UNSCOPED};

fn micros(seconds: f64) -> i64 {
    (seconds * 1e6).round() as i64
}

fn run_label(run: &RunJournal) -> String {
    let coords = if run.problem == UNSCOPED && run.sample == UNSCOPED {
        "unscoped".to_string()
    } else {
        format!("p{}s{}", run.problem, run.sample)
    };
    let ctx: Vec<String> = run
        .context
        .iter()
        .map(|(k, v)| format!("{k}={v}"))
        .collect();
    if ctx.is_empty() {
        coords
    } else {
        format!("{coords} {}", ctx.join(" "))
    }
}

fn attr_json(value: &AttrValue) -> String {
    match value {
        AttrValue::Str(s) => json::string(s),
        AttrValue::Int(i) => i.to_string(),
        AttrValue::Float(f) => json::number(*f),
        AttrValue::Bool(b) => b.to_string(),
    }
}

/// Renders the whole trace as a JSON array of `trace_event` objects.
#[must_use]
pub fn chrome_trace(recorder: &Recorder) -> String {
    let runs = recorder.runs();
    let mut events: Vec<String> = Vec::new();
    for (tid, run) in runs.iter().enumerate() {
        events.push(json::object(&[
            ("name", json::string("thread_name")),
            ("ph", json::string("M")),
            ("pid", "1".to_string()),
            ("tid", tid.to_string()),
            (
                "args",
                json::object(&[("name", json::string(&run_label(run)))]),
            ),
        ]));
        for event in &run.events {
            let args: Vec<String> = event
                .attrs
                .iter()
                .map(|(k, v)| format!("{}:{}", json::string(k), attr_json(v)))
                .collect();
            events.push(json::object(&[
                ("name", json::string(&event.name)),
                ("cat", json::string("aivril")),
                ("ph", json::string("X")),
                ("pid", "1".to_string()),
                ("tid", tid.to_string()),
                ("ts", micros(event.t_start).to_string()),
                (
                    "dur",
                    (micros(event.t_end) - micros(event.t_start)).to_string(),
                ),
                ("args", format!("{{{}}}", args.join(","))),
            ]));
        }
    }
    format!("[{}]", events.join(",\n"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_has_metadata_and_complete_events() {
        let r = Recorder::new();
        r.set_context(&[("model", "sim")]);
        r.begin_run(0, 1);
        {
            let _s = r.span("stage.rtl_generation");
            r.advance(0.5);
        }
        r.end_run();
        let trace = chrome_trace(&r);
        assert!(trace.starts_with('[') && trace.ends_with(']'));
        assert!(trace.contains("\"thread_name\""));
        assert!(trace.contains("\"name\":\"p0s1 model=sim\""));
        assert!(trace.contains("\"ph\":\"X\""));
        assert!(trace.contains("\"dur\":500000"));
    }

    #[test]
    fn empty_recorder_renders_empty_array() {
        assert_eq!(chrome_trace(&Recorder::new()), "[]");
        assert_eq!(chrome_trace(&Recorder::disabled()), "[]");
    }
}
