//! # aivril-obs — structured observability for the AIVRIL2 reproduction
//!
//! The telemetry substrate shared by every crate in the workspace:
//!
//! * [`Recorder`] — a cheap-to-clone handle carrying hierarchical
//!   [`Span`]s (with stage/iteration attributes) and per-run journals.
//!   A disabled recorder is a branch-on-`None` no-op, so instrumented
//!   hot paths cost nothing when telemetry is off.
//! * [`MetricsRegistry`] — counters, gauges and fixed-bucket
//!   [`Histogram`]s keyed by `(name, labels)`, with an associative,
//!   order-independent `merge()`: per-worker registries fold into
//!   bit-identical aggregates for any `AIVRIL_THREADS`.
//! * Exporters — [`render_journal`] (schema-versioned JSONL, one line
//!   per span close) and [`chrome_trace`] (Chrome `trace_event` JSON,
//!   viewable in Perfetto). Both are driven entirely off modeled
//!   latencies, never the wall clock, so output is reproducible.
//! * [`codec`] — a deterministic token codec (floats as exact bit
//!   patterns, FNV-64 checksums, total decoding) for durable artifacts:
//!   on-disk EDA cache entries and shard checkpoint records.
//! * [`analyze`] — the read side: total parsers for the journal and
//!   `aivril.results` artifacts plus the deterministic report
//!   renderers ([`summary`], [`diff`], [`flame`], [`regress`]) behind
//!   the `aivril-inspect` tool.
//!
//! The determinism contract is documented on the [`metrics`] module;
//! the span/run/fork model on the [`recorder`] module.

#![warn(missing_docs)]

pub mod analyze;
pub mod chrome;
pub mod codec;
pub mod journal;
pub mod json;
pub mod metrics;
pub mod recorder;

pub use analyze::{
    attribution, diff, flame, parse_artifact, parse_journal, parse_results, regress, summary,
    Artifact, DiffOutcome, JournalDoc, RegressOutcome, ResultsDoc, SpanNode,
};
pub use chrome::chrome_trace;
pub use journal::{render_event, render_journal, DIAGNOSTIC_ATTRS, JOURNAL_VERSION};
pub use metrics::{Histogram, MetricKey, MetricValue, MetricsRegistry, DIAGNOSTIC_METRIC_PREFIXES};
pub use recorder::{AttrValue, Recorder, RunJournal, Span, SpanEvent, UNSCOPED};
