//! Parity generators and checkers (8 problems).

use crate::builders::{comb_problem, CombSpec};
use crate::port::Port;
use crate::{Difficulty, Family, Problem};

fn xor_chain_vhdl(sig: &str, width: u32) -> String {
    (0..width)
        .map(|i| format!("{sig}({i})"))
        .collect::<Vec<_>>()
        .join(" xor ")
}

fn generator(width: u32, even: bool) -> CombSpec {
    let kind = if even { "even" } else { "odd" };
    let vexpr = if even {
        "^d".to_string()
    } else {
        "~^d".to_string()
    };
    let chain = xor_chain_vhdl("d", width);
    let hexpr = if even {
        chain
    } else {
        format!("not ({chain})")
    };
    CombSpec {
        name: format!("parity_{kind}_w{width}"),
        family: Family::Parity,
        difficulty: Difficulty::Easy,
        description: format!(
            "p is the {kind}-parity bit of the {width}-bit input d: with {kind} parity, the XOR of all data bits{} equals p.",
            if even { "" } else { ", inverted," }
        ),
        inputs: vec![Port::new("d", width)],
        outputs: vec![Port::new("p", 1)],
        vlog_body: format!("  assign p = {vexpr};\n"),
        vlog_out_reg: false,
        vhdl_body: format!("  p <= {hexpr};\n"),
        vhdl_decls: String::new(),
        eval: Box::new(move |v| {
            let ones = v[0].count_ones() as u64 & 1;
            vec![if even { ones } else { ones ^ 1 }]
        }),
    }
}

fn checker(width: u32) -> CombSpec {
    let chain = xor_chain_vhdl("d", width);
    CombSpec {
        name: format!("parity_check_w{width}"),
        family: Family::Parity,
        difficulty: Difficulty::Medium,
        description: format!(
            "An even-parity checker: error is 1 when the XOR of the {width}-bit data d together with the parity bit p is 1 (i.e. the codeword has odd weight)."
        ),
        inputs: vec![Port::new("d", width), Port::new("p", 1)],
        outputs: vec![Port::new("error", 1)],
        vlog_body: "  assign error = (^d) ^ p;\n".into(),
        vlog_out_reg: false,
        vhdl_body: format!("  error <= ({chain}) xor p;\n"),
        vhdl_decls: String::new(),
        eval: Box::new(move |v| vec![(u64::from(v[0].count_ones()) & 1) ^ v[1]]),
    }
}

/// Appends the family's problems.
pub fn extend(problems: &mut Vec<Problem>) {
    for w in [4, 8, 16] {
        problems.push(comb_problem(generator(w, true)));
        problems.push(comb_problem(generator(w, false)));
    }
    for w in [4, 8] {
        problems.push(comb_problem(checker(w)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contributes_8_problems() {
        let mut v = Vec::new();
        extend(&mut v);
        assert_eq!(v.len(), 8);
    }

    #[test]
    fn parity_golden() {
        let even = generator(8, true);
        assert_eq!((even.eval)(&[0b1011_0000]), vec![1]);
        assert_eq!((even.eval)(&[0b1010_0101]), vec![0]);
        let odd = generator(8, false);
        assert_eq!((odd.eval)(&[0]), vec![1]);
    }

    #[test]
    fn checker_flags_bad_codewords() {
        let c = checker(4);
        assert_eq!((c.eval)(&[0b0011, 0]), vec![0], "even weight, p=0: ok");
        assert_eq!((c.eval)(&[0b0111, 0]), vec![1], "odd weight, p=0: error");
        assert_eq!((c.eval)(&[0b0111, 1]), vec![0], "odd weight, p=1: ok");
    }
}
