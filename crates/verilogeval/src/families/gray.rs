//! Gray-code converters (8 problems).

use crate::builders::{comb_problem, CombSpec};
use crate::port::Port;
use crate::{Difficulty, Family, Problem};

fn bin2gray(width: u32) -> CombSpec {
    let hi = width - 1;
    // g = b ^ (b >> 1); spelled per bit in VHDL.
    let mut hbits: Vec<String> = vec![format!("b({hi})")];
    for i in (0..hi).rev() {
        hbits.push(format!("(b({}) xor b({i}))", i + 1));
    }
    CombSpec {
        name: format!("bin2gray_w{width}"),
        family: Family::GrayCode,
        difficulty: Difficulty::Medium,
        description: format!(
            "g is the reflected binary (Gray) code of the {width}-bit binary input b: g = b XOR (b >> 1)."
        ),
        inputs: vec![Port::new("b", width)],
        outputs: vec![Port::new("g", width)],
        vlog_body: "  assign g = b ^ (b >> 1);\n".into(),
        vlog_out_reg: false,
        vhdl_body: format!("  g <= {};\n", hbits.join(" & ")),
        vhdl_decls: String::new(),
        eval: Box::new(|v| vec![v[0] ^ (v[0] >> 1)]),
    }
}

fn gray2bin(width: u32) -> CombSpec {
    let hi = width - 1;
    // b[i] = XOR of g[hi..=i]; explicit chains in both languages.
    let mut vlines = String::new();
    let mut hbits = Vec::new();
    for i in (0..width).rev() {
        let terms_v: Vec<String> = (i..width).rev().map(|k| format!("g[{k}]")).collect();
        let terms_h: Vec<String> = (i..width).rev().map(|k| format!("g({k})")).collect();
        vlines.push_str(&format!("  assign b[{i}] = {};\n", terms_v.join(" ^ ")));
        hbits.push(format!("({})", terms_h.join(" xor ")));
    }
    let _ = hi;
    CombSpec {
        name: format!("gray2bin_w{width}"),
        family: Family::GrayCode,
        difficulty: Difficulty::Medium,
        description: format!(
            "b is the binary value of the {width}-bit Gray-code input g: b[i] is the XOR of g's bits from the MSB down to bit i."
        ),
        inputs: vec![Port::new("g", width)],
        outputs: vec![Port::new("b", width)],
        vlog_body: vlines,
        vlog_out_reg: false,
        vhdl_body: format!("  b <= {};\n", hbits.join(" & ")),
        vhdl_decls: String::new(),
        eval: Box::new(move |v| {
            let mut b = 0u64;
            let mut acc = 0u64;
            for i in (0..width).rev() {
                acc ^= v[0] >> i & 1;
                b |= acc << i;
            }
            vec![b]
        }),
    }
}

/// Appends the family's problems.
pub fn extend(problems: &mut Vec<Problem>) {
    for w in [3, 4, 5, 8] {
        problems.push(comb_problem(bin2gray(w)));
    }
    for w in [3, 4, 5, 8] {
        problems.push(comb_problem(gray2bin(w)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contributes_8_problems() {
        let mut v = Vec::new();
        extend(&mut v);
        assert_eq!(v.len(), 8);
    }

    #[test]
    fn gray_roundtrip() {
        let to = bin2gray(4);
        let from = gray2bin(4);
        for b in 0..16u64 {
            let g = (to.eval)(&[b])[0];
            assert_eq!((from.eval)(&[g]), vec![b], "roundtrip of {b}");
        }
    }

    #[test]
    fn adjacent_codes_differ_in_one_bit() {
        let to = bin2gray(4);
        for b in 0..15u64 {
            let g1 = (to.eval)(&[b])[0];
            let g2 = (to.eval)(&[b + 1])[0];
            assert_eq!((g1 ^ g2).count_ones(), 1);
        }
    }
}
