//! Recursive-descent parser for the VHDL-93 subset.

use crate::ast::*;
use crate::lexer::{Keyword as Kw, Punct, Token, TokenKind};
use aivril_hdl::diag::{codes, Diagnostic, Diagnostics};
use aivril_hdl::source::Span;

/// Parses a token stream into a design file, appending errors to `diags`.
pub fn parse(tokens: Vec<Token>, diags: &mut Diagnostics) -> DesignFile {
    let mut p = Parser {
        tokens,
        pos: 0,
        diags,
    };
    let mut file = DesignFile::default();
    while !p.at_eof() {
        if p.eat_kw(Kw::Library) {
            p.parse_library_clause();
        } else if p.eat_kw(Kw::Use) {
            p.parse_use_clause();
        } else if p.check_kw(Kw::Entity) {
            p.bump();
            if let Some(e) = p.parse_entity() {
                file.entities.push(std::sync::Arc::new(e));
            } else {
                p.skip_to_design_unit();
            }
        } else if p.check_kw(Kw::Architecture) {
            p.bump();
            if let Some(a) = p.parse_architecture() {
                file.architectures.push(std::sync::Arc::new(a));
            } else {
                p.skip_to_design_unit();
            }
        } else {
            let tok = p.peek().clone();
            p.error(
                format!(
                    "expected 'entity' or 'architecture', found {}",
                    tok.describe()
                ),
                tok.span,
            );
            p.bump();
            p.skip_to_design_unit();
        }
    }
    file
}

struct Parser<'d> {
    tokens: Vec<Token>,
    pos: usize,
    diags: &'d mut Diagnostics,
}

impl Parser<'_> {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn peek2(&self) -> &Token {
        &self.tokens[(self.pos + 1).min(self.tokens.len() - 1)]
    }

    fn at_eof(&self) -> bool {
        self.peek().kind == TokenKind::Eof
    }

    fn bump(&mut self) -> Token {
        let t = self.peek().clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn check(&self, p: Punct) -> bool {
        self.peek().kind == TokenKind::Punct(p)
    }

    fn check_kw(&self, k: Kw) -> bool {
        self.peek().kind == TokenKind::Keyword(k)
    }

    fn eat(&mut self, p: Punct) -> bool {
        if self.check(p) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn eat_kw(&mut self, k: Kw) -> bool {
        if self.check_kw(k) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn error(&mut self, message: String, span: Span) {
        if self.diags.error_count() < 20 {
            self.diags
                .push(Diagnostic::error(codes::VHDL_SYNTAX, message, span));
        }
    }

    fn expect(&mut self, p: Punct) -> Option<Token> {
        if self.check(p) {
            return Some(self.bump());
        }
        let tok = self.peek().clone();
        self.error(
            format!("expected '{p}', found {}", tok.describe()),
            tok.span,
        );
        None
    }

    fn expect_kw(&mut self, k: Kw) -> Option<()> {
        if self.eat_kw(k) {
            return Some(());
        }
        let tok = self.peek().clone();
        self.error(
            format!("expected '{}', found {}", k.as_str(), tok.describe()),
            tok.span,
        );
        None
    }

    fn expect_ident(&mut self) -> Option<(String, Span)> {
        if self.peek().kind == TokenKind::Ident {
            let t = self.bump();
            return Some((t.text, t.span));
        }
        let tok = self.peek().clone();
        self.error(
            format!("expected identifier, found {}", tok.describe()),
            tok.span,
        );
        None
    }

    fn skip_past_semi(&mut self) {
        while !self.at_eof() {
            if self.eat(Punct::Semi) {
                return;
            }
            self.bump();
        }
    }

    /// `library ident {, ident} ;` — names are recorded nowhere (only
    /// `work`/`ieee` exist here) but the syntax is checked strictly.
    fn parse_library_clause(&mut self) {
        if self.expect_ident().is_none() {
            self.skip_past_semi();
            return;
        }
        while self.eat(Punct::Comma) {
            if self.expect_ident().is_none() {
                self.skip_past_semi();
                return;
            }
        }
        self.expect(Punct::Semi);
    }

    /// `use name.name.all ;` — checked strictly, contents ignored.
    fn parse_use_clause(&mut self) {
        if self.expect_ident().is_none() {
            self.skip_past_semi();
            return;
        }
        while self.eat(Punct::Dot) {
            if self.eat_kw(Kw::All) {
                break;
            }
            if self.expect_ident().is_none() {
                self.skip_past_semi();
                return;
            }
        }
        self.expect(Punct::Semi);
    }

    fn skip_to_design_unit(&mut self) {
        while !self.at_eof() && !self.check_kw(Kw::Entity) && !self.check_kw(Kw::Architecture) {
            self.bump();
        }
    }

    // -------------------------------------------------------- entities

    fn parse_entity(&mut self) -> Option<Entity> {
        let (name, span) = self.expect_ident()?;
        self.expect_kw(Kw::Is)?;
        let mut generics = Vec::new();
        let mut ports = Vec::new();
        if self.eat_kw(Kw::Generic) {
            self.expect(Punct::LParen)?;
            loop {
                let mut names = vec![self.expect_ident()?];
                while self.eat(Punct::Comma) {
                    names.push(self.expect_ident()?);
                }
                self.expect(Punct::Colon)?;
                let _ty = self.parse_type_mark()?;
                let default = if self.eat(Punct::Assign) {
                    Some(self.parse_expr())
                } else {
                    None
                };
                for (n, s) in names {
                    generics.push(GenericDecl {
                        name: n,
                        default: default.clone(),
                        span: s,
                    });
                }
                if !self.eat(Punct::Semi) {
                    break;
                }
            }
            self.expect(Punct::RParen)?;
            self.expect(Punct::Semi)?;
        }
        if self.eat_kw(Kw::Port) {
            self.expect(Punct::LParen)?;
            loop {
                let mut names = vec![self.expect_ident()?];
                while self.eat(Punct::Comma) {
                    names.push(self.expect_ident()?);
                }
                self.expect(Punct::Colon)?;
                let dir = if self.eat_kw(Kw::In) {
                    PortDir::In
                } else if self.eat_kw(Kw::Out) {
                    PortDir::Out
                } else if self.eat_kw(Kw::Inout) {
                    PortDir::Inout
                } else {
                    let tok = self.peek().clone();
                    self.error(
                        format!("expected port direction, found {}", tok.describe()),
                        tok.span,
                    );
                    PortDir::In
                };
                let ty = self.parse_type_mark()?;
                for (n, s) in names {
                    ports.push(PortDecl {
                        name: n,
                        dir,
                        ty: ty.clone(),
                        span: s,
                    });
                }
                if !self.eat(Punct::Semi) {
                    break;
                }
            }
            self.expect(Punct::RParen)?;
            self.expect(Punct::Semi)?;
        }
        self.expect_kw(Kw::End)?;
        self.eat_kw(Kw::Entity);
        if self.peek().kind == TokenKind::Ident {
            self.bump();
        }
        self.expect(Punct::Semi)?;
        Some(Entity {
            name,
            generics,
            ports,
            span,
        })
    }

    fn parse_type_mark(&mut self) -> Option<TypeMark> {
        let (name, span) = self.expect_ident()?;
        match name.as_str() {
            "std_logic" | "std_ulogic" | "bit" => Some(TypeMark::StdLogic),
            "boolean" => Some(TypeMark::Boolean),
            "integer" | "natural" | "positive" => {
                // Optional range constraint: `integer range 0 to 255`.
                if self.peek().kind == TokenKind::Ident && self.peek().text == "range" {
                    self.bump();
                    let _ = self.parse_expr();
                    if !(self.eat_kw(Kw::To) || self.eat_kw(Kw::Downto)) {
                        let tok = self.peek().clone();
                        self.error(
                            format!("expected 'to' or 'downto', found {}", tok.describe()),
                            tok.span,
                        );
                    }
                    let _ = self.parse_expr();
                }
                Some(TypeMark::Integer)
            }
            "std_logic_vector" | "unsigned" | "signed" | "bit_vector" => {
                self.expect(Punct::LParen)?;
                let left = self.parse_expr();
                let downto = if self.eat_kw(Kw::Downto) {
                    true
                } else if self.eat_kw(Kw::To) {
                    false
                } else {
                    let tok = self.peek().clone();
                    self.error(
                        format!("expected 'downto' or 'to', found {}", tok.describe()),
                        tok.span,
                    );
                    true
                };
                let right = self.parse_expr();
                self.expect(Punct::RParen)?;
                let (high, low) = if downto { (left, right) } else { (right, left) };
                Some(TypeMark::Vector { high, low, downto })
            }
            other => {
                self.error(format!("unsupported type '{other}'"), span);
                None
            }
        }
    }

    // --------------------------------------------------- architectures

    fn parse_architecture(&mut self) -> Option<Architecture> {
        let (name, span) = self.expect_ident()?;
        self.expect_kw(Kw::Of)?;
        let (entity, _) = self.expect_ident()?;
        self.expect_kw(Kw::Is)?;
        let mut decls = Vec::new();
        while !self.check_kw(Kw::Begin) && !self.at_eof() {
            if self.eat_kw(Kw::Signal) {
                let mut names = vec![self.expect_ident()?];
                while self.eat(Punct::Comma) {
                    names.push(self.expect_ident()?);
                }
                self.expect(Punct::Colon)?;
                let ty = self.parse_type_mark()?;
                let init = if self.eat(Punct::Assign) {
                    Some(self.parse_expr())
                } else {
                    None
                };
                self.expect(Punct::Semi)?;
                decls.push(Decl::Signal { names, ty, init });
            } else if self.eat_kw(Kw::Constant) {
                let (cname, cspan) = self.expect_ident()?;
                self.expect(Punct::Colon)?;
                let _ty = self.parse_type_mark()?;
                self.expect(Punct::Assign)?;
                let value = self.parse_expr();
                self.expect(Punct::Semi)?;
                decls.push(Decl::Constant {
                    name: cname,
                    value,
                    span: cspan,
                });
            } else if self.eat_kw(Kw::Component) {
                // Component declarations are tolerated and skipped; only
                // direct entity instantiation is supported.
                while !self.at_eof() {
                    if self.eat_kw(Kw::End) && self.eat_kw(Kw::Component) {
                        if self.peek().kind == TokenKind::Ident {
                            self.bump();
                        }
                        self.expect(Punct::Semi)?;
                        break;
                    }
                    self.bump();
                }
            } else {
                let tok = self.peek().clone();
                self.error(
                    format!("expected declaration or 'begin', found {}", tok.describe()),
                    tok.span,
                );
                return None;
            }
        }
        self.expect_kw(Kw::Begin)?;
        let mut stmts = Vec::new();
        loop {
            if self.check_kw(Kw::End) {
                self.bump();
                self.eat_kw(Kw::Architecture);
                if self.peek().kind == TokenKind::Ident {
                    self.bump();
                }
                self.expect(Punct::Semi)?;
                break;
            }
            if self.at_eof() {
                self.error("expected 'end', found end of file".into(), span);
                break;
            }
            match self.parse_concurrent_stmt() {
                Some(s) => stmts.push(s),
                None => self.skip_past_semi(),
            }
        }
        Some(Architecture {
            name,
            entity,
            decls,
            stmts,
            span,
        })
    }

    fn parse_concurrent_stmt(&mut self) -> Option<ConcurrentStmt> {
        // Optional label.
        let label = if self.peek().kind == TokenKind::Ident
            && self.peek2().kind == TokenKind::Punct(Punct::Colon)
        {
            let (l, _) = self.expect_ident()?;
            self.bump(); // ':'
            Some(l)
        } else {
            None
        };
        if self.check_kw(Kw::Process) {
            let span = self.bump().span;
            let mut sensitivity = Vec::new();
            if self.eat(Punct::LParen) {
                loop {
                    sensitivity.push(self.expect_ident()?);
                    if !self.eat(Punct::Comma) {
                        break;
                    }
                }
                self.expect(Punct::RParen)?;
            }
            self.eat_kw(Kw::Is);
            // Process-declarative part: variable declarations.
            let mut variables = Vec::new();
            while !self.check_kw(Kw::Begin) && !self.at_eof() {
                let tok = self.peek().clone();
                if self.eat_kw(Kw::Variable) {
                    let mut names = vec![self.expect_ident()?];
                    while self.eat(Punct::Comma) {
                        names.push(self.expect_ident()?);
                    }
                    self.expect(Punct::Colon)?;
                    let ty = self.parse_type_mark()?;
                    let init = if self.eat(Punct::Assign) {
                        Some(self.parse_expr())
                    } else {
                        None
                    };
                    self.expect(Punct::Semi)?;
                    variables.push(VarDecl { names, ty, init });
                } else {
                    self.error(
                        format!("expected 'variable' or 'begin', found {}", tok.describe()),
                        tok.span,
                    );
                    return None;
                }
            }
            self.expect_kw(Kw::Begin)?;
            let body = self.parse_seq_stmts(&[Kw::End])?;
            self.expect_kw(Kw::End)?;
            self.expect_kw(Kw::Process)?;
            if self.peek().kind == TokenKind::Ident {
                self.bump();
            }
            self.expect(Punct::Semi)?;
            return Some(ConcurrentStmt::Process {
                label,
                sensitivity,
                variables,
                body,
                span,
            });
        }
        if self.check_kw(Kw::Entity) {
            let span = self.bump().span;
            let Some(label) = label else {
                self.error("entity instantiation requires a label".into(), span);
                return None;
            };
            // work.NAME
            let (lib, _) = self.expect_ident()?;
            let entity = if self.eat(Punct::Dot) {
                let (n, _) = self.expect_ident()?;
                n
            } else {
                lib
            };
            let mut generic_map = Vec::new();
            if self.eat_kw(Kw::Generic) {
                self.expect_kw(Kw::Map)?;
                self.expect(Punct::LParen)?;
                loop {
                    let (gname, _) = self.expect_ident()?;
                    self.expect(Punct::Arrow)?;
                    generic_map.push((gname, self.parse_expr()));
                    if !self.eat(Punct::Comma) {
                        break;
                    }
                }
                self.expect(Punct::RParen)?;
            }
            self.expect_kw(Kw::Port)?;
            self.expect_kw(Kw::Map)?;
            self.expect(Punct::LParen)?;
            let mut port_map = Vec::new();
            loop {
                let (pname, pspan) = self.expect_ident()?;
                self.expect(Punct::Arrow)?;
                // `open` connection.
                if self.peek().kind == TokenKind::Ident && self.peek().text == "open" {
                    self.bump();
                    port_map.push((pname, None, pspan));
                } else {
                    port_map.push((pname, Some(self.parse_expr()), pspan));
                }
                if !self.eat(Punct::Comma) {
                    break;
                }
            }
            self.expect(Punct::RParen)?;
            self.expect(Punct::Semi)?;
            return Some(ConcurrentStmt::Instance {
                label,
                entity,
                generic_map,
                port_map,
                span,
            });
        }
        // Concurrent signal assignment.
        let target = self.parse_name_expr()?;
        let span = target.span().unwrap_or_else(|| self.peek().span);
        self.expect(Punct::SigAssign)?;
        let value = self.parse_when_expr();
        self.expect(Punct::Semi)?;
        Some(ConcurrentStmt::Assign {
            target,
            value,
            span,
        })
    }

    // ----------------------------------------------------- sequentials

    /// Parses sequential statements until one of `stops` is the lookahead.
    fn parse_seq_stmts(&mut self, stops: &[Kw]) -> Option<Vec<SeqStmt>> {
        let mut out = Vec::new();
        loop {
            if self.at_eof() || stops.iter().any(|&k| self.check_kw(k)) {
                return Some(out);
            }
            match self.parse_seq_stmt() {
                Some(s) => out.push(s),
                None => {
                    self.skip_past_semi();
                    if self.at_eof() {
                        return Some(out);
                    }
                }
            }
        }
    }

    fn parse_seq_stmt(&mut self) -> Option<SeqStmt> {
        let tok = self.peek().clone();
        if self.eat_kw(Kw::If) {
            let mut arms = Vec::new();
            let cond = self.parse_expr();
            self.expect_kw(Kw::Then)?;
            let body = self.parse_seq_stmts(&[Kw::Elsif, Kw::Else, Kw::End])?;
            arms.push((cond, body));
            let mut els = None;
            loop {
                if self.eat_kw(Kw::Elsif) {
                    let c = self.parse_expr();
                    self.expect_kw(Kw::Then)?;
                    let b = self.parse_seq_stmts(&[Kw::Elsif, Kw::Else, Kw::End])?;
                    arms.push((c, b));
                } else if self.eat_kw(Kw::Else) {
                    els = Some(self.parse_seq_stmts(&[Kw::End])?);
                    break;
                } else {
                    break;
                }
            }
            self.expect_kw(Kw::End)?;
            self.expect_kw(Kw::If)?;
            self.expect(Punct::Semi)?;
            return Some(SeqStmt::If { arms, els });
        }
        if self.eat_kw(Kw::Case) {
            let subject = self.parse_expr();
            self.expect_kw(Kw::Is)?;
            let mut arms = Vec::new();
            while self.eat_kw(Kw::When) {
                let mut choices = Vec::new();
                if !self.eat_kw(Kw::Others) {
                    loop {
                        choices.push(self.parse_expr());
                        if !self.eat(Punct::Bar) {
                            break;
                        }
                    }
                }
                self.expect(Punct::Arrow)?;
                let body = self.parse_seq_stmts(&[Kw::When, Kw::End])?;
                arms.push((choices, body));
            }
            self.expect_kw(Kw::End)?;
            self.expect_kw(Kw::Case)?;
            self.expect(Punct::Semi)?;
            return Some(SeqStmt::Case {
                subject,
                arms,
                span: tok.span,
            });
        }
        if self.eat_kw(Kw::For) {
            let (var, _) = self.expect_ident()?;
            if !(self.peek().kind == TokenKind::Keyword(Kw::In)) {
                let t = self.peek().clone();
                self.error(format!("expected 'in', found {}", t.describe()), t.span);
                return None;
            }
            self.bump();
            let from = self.parse_expr();
            let downto = if self.eat_kw(Kw::Downto) {
                true
            } else {
                self.expect_kw(Kw::To)?;
                false
            };
            let to = self.parse_expr();
            self.expect_kw(Kw::Loop)?;
            let body = self.parse_seq_stmts(&[Kw::End])?;
            self.expect_kw(Kw::End)?;
            self.expect_kw(Kw::Loop)?;
            self.expect(Punct::Semi)?;
            return Some(SeqStmt::For {
                var,
                from,
                to,
                downto,
                body,
                span: tok.span,
            });
        }
        if self.eat_kw(Kw::While) {
            let cond = self.parse_expr();
            self.expect_kw(Kw::Loop)?;
            let body = self.parse_seq_stmts(&[Kw::End])?;
            self.expect_kw(Kw::End)?;
            self.expect_kw(Kw::Loop)?;
            self.expect(Punct::Semi)?;
            return Some(SeqStmt::While { cond, body });
        }
        if self.eat_kw(Kw::Wait) {
            if self.eat_kw(Kw::For) {
                let amount = self.parse_time_expr();
                self.expect(Punct::Semi)?;
                return Some(SeqStmt::WaitFor {
                    amount,
                    span: tok.span,
                });
            }
            if self.eat_kw(Kw::Until) {
                let cond = self.parse_expr();
                // Optional trailing `for <time>` is unsupported; tolerate.
                self.expect(Punct::Semi)?;
                return Some(SeqStmt::WaitUntil {
                    cond,
                    span: tok.span,
                });
            }
            self.expect(Punct::Semi)?;
            return Some(SeqStmt::WaitForever { span: tok.span });
        }
        if self.eat_kw(Kw::Assert) {
            let cond = self.parse_expr();
            let report = if self.eat_kw(Kw::Report) {
                Some(self.parse_message()?)
            } else {
                None
            };
            let severity = self.parse_severity(SeverityLevel::Error)?;
            self.expect(Punct::Semi)?;
            return Some(SeqStmt::Assert {
                cond,
                report,
                severity,
                span: tok.span,
            });
        }
        if self.eat_kw(Kw::Report) {
            let message = self.parse_message()?;
            let severity = self.parse_severity(SeverityLevel::Note)?;
            self.expect(Punct::Semi)?;
            return Some(SeqStmt::Report {
                message,
                severity,
                span: tok.span,
            });
        }
        if self.eat_kw(Kw::Null) {
            self.expect(Punct::Semi)?;
            return Some(SeqStmt::Null);
        }
        // Signal (`<=`) or variable (`:=`) assignment.
        let target = self.parse_name_expr()?;
        let span = target.span().unwrap_or(tok.span);
        if self.eat(Punct::Assign) {
            let value = self.parse_expr();
            self.expect(Punct::Semi)?;
            return Some(SeqStmt::VariableAssign {
                target,
                value,
                span,
            });
        }
        self.expect(Punct::SigAssign)?;
        let value = self.parse_expr();
        if self.eat_kw(Kw::After) {
            let t = self.peek().clone();
            self.error("'after' delays are not supported".into(), t.span);
            let _ = self.parse_time_expr();
        }
        self.expect(Punct::Semi)?;
        Some(SeqStmt::SignalAssign {
            target,
            value,
            span,
        })
    }

    fn parse_message(&mut self) -> Option<String> {
        if self.peek().kind == TokenKind::StrLit {
            return Some(self.bump().text);
        }
        let tok = self.peek().clone();
        self.error(
            format!("expected a string message, found {}", tok.describe()),
            tok.span,
        );
        None
    }

    fn parse_severity(&mut self, default: SeverityLevel) -> Option<SeverityLevel> {
        if !self.eat_kw(Kw::Severity) {
            return Some(default);
        }
        let (name, span) = self.expect_ident()?;
        match name.as_str() {
            "note" => Some(SeverityLevel::Note),
            "warning" => Some(SeverityLevel::Warning),
            "error" => Some(SeverityLevel::Error),
            "failure" => Some(SeverityLevel::Failure),
            other => {
                self.error(format!("unknown severity level '{other}'"), span);
                Some(default)
            }
        }
    }

    /// Parses an expression followed by an optional time unit, folding
    /// the unit's multiplier into integer literals (`10 ns` → `10`).
    fn parse_time_expr(&mut self) -> Expr {
        let e = self.parse_expr();
        if self.peek().kind == TokenKind::Ident {
            let unit = self.peek().text.clone();
            let mult: Option<i64> = match unit.as_str() {
                "ns" => Some(1),
                "us" => Some(1_000),
                "ms" => Some(1_000_000),
                "ps" | "fs" => Some(0),
                _ => None,
            };
            if let Some(m) = mult {
                self.bump();
                if let Expr::Int { value, span } = e {
                    return Expr::Int {
                        value: value * m,
                        span,
                    };
                }
                return e;
            }
        }
        e
    }

    // ------------------------------------------------------ expressions

    /// Concurrent conditional value: `a when c else b when c2 else d`.
    fn parse_when_expr(&mut self) -> Expr {
        let value = self.parse_expr();
        if self.eat_kw(Kw::When) {
            let cond = self.parse_expr();
            if self.expect_kw(Kw::Else).is_none() {
                return value;
            }
            let els = self.parse_when_expr();
            return Expr::When {
                value: Box::new(value),
                cond: Box::new(cond),
                els: Box::new(els),
            };
        }
        value
    }

    fn parse_expr(&mut self) -> Expr {
        // Logical operators (lowest precedence, left-assoc chain).
        let mut lhs = self.parse_relational();
        loop {
            let op = if self.eat_kw(Kw::And) {
                BinOp::And
            } else if self.eat_kw(Kw::Or) {
                BinOp::Or
            } else if self.eat_kw(Kw::Xor) {
                BinOp::Xor
            } else if self.eat_kw(Kw::Nand) {
                BinOp::Nand
            } else if self.eat_kw(Kw::Nor) {
                BinOp::Nor
            } else if self.eat_kw(Kw::Xnor) {
                BinOp::Xnor
            } else {
                return lhs;
            };
            let rhs = self.parse_relational();
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
    }

    fn parse_relational(&mut self) -> Expr {
        let lhs = self.parse_shift();
        let op = match self.peek().kind {
            TokenKind::Punct(Punct::Eq) => BinOp::Eq,
            TokenKind::Punct(Punct::Ne) => BinOp::Ne,
            TokenKind::Punct(Punct::Lt) => BinOp::Lt,
            TokenKind::Punct(Punct::SigAssign) => BinOp::Le,
            TokenKind::Punct(Punct::Gt) => BinOp::Gt,
            TokenKind::Punct(Punct::Ge) => BinOp::Ge,
            _ => return lhs,
        };
        self.bump();
        let rhs = self.parse_shift();
        Expr::Binary {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        }
    }

    fn parse_shift(&mut self) -> Expr {
        let lhs = self.parse_adding();
        let op = if self.eat_kw(Kw::Sll) {
            BinOp::Sll
        } else if self.eat_kw(Kw::Srl) {
            BinOp::Srl
        } else {
            return lhs;
        };
        let rhs = self.parse_adding();
        Expr::Binary {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        }
    }

    fn parse_adding(&mut self) -> Expr {
        let mut lhs = self.parse_term();
        loop {
            let op = match self.peek().kind {
                TokenKind::Punct(Punct::Plus) => BinOp::Add,
                TokenKind::Punct(Punct::Minus) => BinOp::Sub,
                TokenKind::Punct(Punct::Amp) => BinOp::Concat,
                _ => return lhs,
            };
            self.bump();
            let rhs = self.parse_term();
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
    }

    fn parse_term(&mut self) -> Expr {
        let mut lhs = self.parse_factor();
        loop {
            let op = match self.peek().kind {
                TokenKind::Punct(Punct::Star) => BinOp::Mul,
                TokenKind::Punct(Punct::Slash) => BinOp::Div,
                TokenKind::Keyword(Kw::Mod) => BinOp::Mod,
                TokenKind::Keyword(Kw::Rem) => BinOp::Rem,
                _ => return lhs,
            };
            self.bump();
            let rhs = self.parse_factor();
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
    }

    fn parse_factor(&mut self) -> Expr {
        if self.eat_kw(Kw::Not) {
            let operand = self.parse_factor();
            return Expr::Unary {
                op: UnOp::Not,
                operand: Box::new(operand),
            };
        }
        if self.eat(Punct::Minus) {
            let operand = self.parse_factor();
            return Expr::Unary {
                op: UnOp::Negate,
                operand: Box::new(operand),
            };
        }
        if self.eat(Punct::Plus) {
            let operand = self.parse_factor();
            return Expr::Unary {
                op: UnOp::Plus,
                operand: Box::new(operand),
            };
        }
        self.parse_primary()
    }

    fn parse_primary(&mut self) -> Expr {
        let tok = self.peek().clone();
        match &tok.kind {
            TokenKind::Number => {
                self.bump();
                let value = tok.text.parse::<i64>().unwrap_or({
                    // Lexer guarantees digits; overflow falls back to 0.
                    0
                });
                Expr::Int {
                    value,
                    span: tok.span,
                }
            }
            TokenKind::CharLit => {
                self.bump();
                Expr::CharLit {
                    ch: tok.text.chars().next().unwrap_or('0'),
                    span: tok.span,
                }
            }
            TokenKind::StrLit => {
                self.bump();
                let is_bits = !tok.text.is_empty()
                    && tok
                        .text
                        .chars()
                        .all(|c| matches!(c, '0' | '1' | 'x' | 'X' | 'z' | 'Z'));
                if is_bits {
                    Expr::BitString {
                        bits: tok.text,
                        span: tok.span,
                    }
                } else {
                    Expr::StrLit {
                        text: tok.text,
                        span: tok.span,
                    }
                }
            }
            TokenKind::HexString => {
                self.bump();
                Expr::HexString {
                    digits: tok.text,
                    span: tok.span,
                }
            }
            TokenKind::Keyword(Kw::True) => {
                self.bump();
                Expr::Bool {
                    value: true,
                    span: tok.span,
                }
            }
            TokenKind::Keyword(Kw::False) => {
                self.bump();
                Expr::Bool {
                    value: false,
                    span: tok.span,
                }
            }
            TokenKind::Keyword(Kw::Others) => {
                // Bare `others` only appears inside aggregates; handled in
                // the LParen branch. Reaching it here is an error.
                self.bump();
                self.error(
                    "'others' is only valid inside an aggregate".into(),
                    tok.span,
                );
                Expr::Int {
                    value: 0,
                    span: tok.span,
                }
            }
            TokenKind::Ident => {
                self.bump();
                let name = tok.text;
                // Attribute?
                if self.check(Punct::Tick) {
                    self.bump();
                    let (attr, _) = match self.expect_ident() {
                        Some(a) => a,
                        None => ("event".to_string(), tok.span),
                    };
                    return Expr::Attr {
                        name,
                        attr,
                        span: tok.span,
                    };
                }
                // Call / index / slice?
                if self.eat(Punct::LParen) {
                    let first = self.parse_expr();
                    if self.eat_kw(Kw::Downto) {
                        let right = self.parse_expr();
                        self.expect(Punct::RParen);
                        return Expr::Slice {
                            name,
                            left: Box::new(first),
                            right: Box::new(right),
                            downto: true,
                            span: tok.span,
                        };
                    }
                    if self.eat_kw(Kw::To) {
                        let right = self.parse_expr();
                        self.expect(Punct::RParen);
                        return Expr::Slice {
                            name,
                            left: Box::new(first),
                            right: Box::new(right),
                            downto: false,
                            span: tok.span,
                        };
                    }
                    let mut args = vec![first];
                    while self.eat(Punct::Comma) {
                        args.push(self.parse_expr());
                    }
                    self.expect(Punct::RParen);
                    return Expr::Call {
                        name,
                        args,
                        span: tok.span,
                    };
                }
                Expr::Ident {
                    name,
                    span: tok.span,
                }
            }
            TokenKind::Punct(Punct::LParen) => {
                self.bump();
                if self.eat_kw(Kw::Others) {
                    self.expect(Punct::Arrow);
                    let fill = self.parse_expr();
                    self.expect(Punct::RParen);
                    return Expr::Aggregate {
                        fill: Box::new(fill),
                        span: tok.span,
                    };
                }
                let e = self.parse_expr();
                self.expect(Punct::RParen);
                e
            }
            _ => {
                self.error(format!("syntax error near {}", tok.describe()), tok.span);
                self.bump();
                Expr::Int {
                    value: 0,
                    span: tok.span,
                }
            }
        }
    }

    /// Restricted name expression for assignment targets: identifier,
    /// index `a(3)`, or slice `a(7 downto 0)`.
    fn parse_name_expr(&mut self) -> Option<Expr> {
        let tok = self.peek().clone();
        if tok.kind != TokenKind::Ident {
            self.error(
                format!("expected a signal name, found {}", tok.describe()),
                tok.span,
            );
            return None;
        }
        match self.parse_primary() {
            e @ (Expr::Ident { .. } | Expr::Call { .. } | Expr::Slice { .. }) => Some(e),
            _ => {
                self.error("illegal assignment target".into(), tok.span);
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use aivril_hdl::source::SourceMap;

    fn parse_src(src: &str) -> (DesignFile, Diagnostics) {
        let mut sources = SourceMap::new();
        let file = sources.add_file("t.vhd", src);
        let mut diags = Diagnostics::new();
        let toks = lex(file, src, &mut diags);
        let unit = parse(toks, &mut diags);
        (unit, diags)
    }

    fn parse_clean(src: &str) -> DesignFile {
        let (unit, diags) = parse_src(src);
        assert!(!diags.has_errors(), "unexpected: {:?}", diags.all());
        unit
    }

    const COUNTER: &str = "\
library ieee;
use ieee.std_logic_1164.all;
use ieee.numeric_std.all;

entity counter is
  generic (WIDTH : integer := 4);
  port (
    clk : in std_logic;
    rst : in std_logic;
    q   : out std_logic_vector(WIDTH-1 downto 0)
  );
end entity;

architecture rtl of counter is
  signal count : unsigned(WIDTH-1 downto 0) := (others => '0');
begin
  process (clk, rst)
  begin
    if rst = '1' then
      count <= (others => '0');
    elsif rising_edge(clk) then
      count <= count + 1;
    end if;
  end process;
  q <= std_logic_vector(count);
end architecture;
";

    #[test]
    fn parses_counter() {
        let unit = parse_clean(COUNTER);
        assert_eq!(unit.entities.len(), 1);
        assert_eq!(unit.architectures.len(), 1);
        let e = &unit.entities[0];
        assert_eq!(e.name, "counter");
        assert_eq!(e.generics.len(), 1);
        assert_eq!(e.ports.len(), 3);
        assert_eq!(e.ports[2].dir, PortDir::Out);
        let a = &unit.architectures[0];
        assert_eq!(a.entity, "counter");
        assert_eq!(a.decls.len(), 1);
        assert_eq!(a.stmts.len(), 2);
    }

    #[test]
    fn process_if_elsif_shape() {
        let unit = parse_clean(COUNTER);
        match &unit.architectures[0].stmts[0] {
            ConcurrentStmt::Process {
                sensitivity, body, ..
            } => {
                assert_eq!(sensitivity.len(), 2);
                match &body[0] {
                    SeqStmt::If { arms, els } => {
                        assert_eq!(arms.len(), 2, "if + elsif");
                        assert!(els.is_none());
                    }
                    other => panic!("expected if, got {other:?}"),
                }
            }
            other => panic!("expected process, got {other:?}"),
        }
    }

    #[test]
    fn testbench_constructs() {
        let unit = parse_clean(
            "entity tb is end entity;\n\
             architecture sim of tb is\n  signal clk : std_logic := '0';\nbegin\n\
             clk <= not clk; -- placeholder\n\
             process\nbegin\n  wait for 10 ns;\n\
             assert clk = '1' report \"Test Case 1 Failed: clk should be 1\" severity error;\n\
             report \"All tests passed successfully!\" severity note;\n  wait;\nend process;\n\
             end architecture;\n",
        );
        match &unit.architectures[0].stmts[1] {
            ConcurrentStmt::Process {
                sensitivity, body, ..
            } => {
                assert!(sensitivity.is_empty());
                assert!(matches!(body[0], SeqStmt::WaitFor { .. }));
                assert!(matches!(
                    body[1],
                    SeqStmt::Assert {
                        severity: SeverityLevel::Error,
                        ..
                    }
                ));
                assert!(matches!(body[2], SeqStmt::Report { .. }));
                assert!(matches!(body[3], SeqStmt::WaitForever { .. }));
            }
            other => panic!("expected process, got {other:?}"),
        }
    }

    #[test]
    fn instance_with_maps() {
        let unit = parse_clean(
            "entity tb is end entity;\narchitecture sim of tb is\n\
             signal a, y : std_logic;\nbegin\n\
             dut: entity work.counter generic map (WIDTH => 8) port map (clk => a, q => open);\n\
             end architecture;\n",
        );
        match &unit.architectures[0].stmts[0] {
            ConcurrentStmt::Instance {
                label,
                entity,
                generic_map,
                port_map,
                ..
            } => {
                assert_eq!(label, "dut");
                assert_eq!(entity, "counter");
                assert_eq!(generic_map.len(), 1);
                assert_eq!(port_map.len(), 2);
                assert!(port_map[1].1.is_none(), "open connection");
            }
            other => panic!("expected instance, got {other:?}"),
        }
    }

    #[test]
    fn conditional_concurrent_assignment() {
        let unit = parse_clean(
            "entity m is end entity;\narchitecture a of m is\n\
             signal s, x, y, z : std_logic;\nbegin\n\
             z <= x when s = '1' else y;\nend architecture;\n",
        );
        match &unit.architectures[0].stmts[0] {
            ConcurrentStmt::Assign {
                value: Expr::When { .. },
                ..
            } => {}
            other => panic!("expected when-assign, got {other:?}"),
        }
    }

    #[test]
    fn case_with_others_and_alternatives() {
        let unit = parse_clean(
            "entity m is end entity;\narchitecture a of m is\n\
             signal s : std_logic_vector(1 downto 0);\n  signal y : std_logic;\nbegin\n\
             process (s)\n  begin\n    case s is\n\
             when \"00\" | \"11\" => y <= '1';\n      when others => y <= '0';\n\
             end case;\n  end process;\nend architecture;\n",
        );
        match &unit.architectures[0].stmts[0] {
            ConcurrentStmt::Process { body, .. } => match &body[0] {
                SeqStmt::Case { arms, .. } => {
                    assert_eq!(arms.len(), 2);
                    assert_eq!(arms[0].0.len(), 2, "two alternatives");
                    assert!(arms[1].0.is_empty(), "others = empty choices");
                }
                other => panic!("expected case, got {other:?}"),
            },
            other => panic!("expected process, got {other:?}"),
        }
    }

    #[test]
    fn missing_semicolon_is_error() {
        let (_, diags) = parse_src("entity e is\n  port (a : in std_logic)\nend entity;\n");
        assert!(diags.has_errors());
    }

    #[test]
    fn missing_end_if_is_error() {
        let (_, diags) = parse_src(
            "entity e is end entity;\narchitecture a of e is\nsignal x : std_logic;\nbegin\n\
             process (x)\nbegin\n  if x = '1' then\n    x <= '0';\nend process;\n\
             end architecture;\n",
        );
        assert!(diags.has_errors());
    }

    #[test]
    fn for_loop_in_testbench() {
        let unit = parse_clean(
            "entity tb is end entity;\narchitecture sim of tb is\n\
             signal v : std_logic_vector(3 downto 0);\nbegin\n\
             process\nbegin\n  for i in 0 to 15 loop\n    wait for 5 ns;\n  end loop;\n\
             wait;\nend process;\nend architecture;\n",
        );
        match &unit.architectures[0].stmts[0] {
            ConcurrentStmt::Process { body, .. } => {
                assert!(matches!(body[0], SeqStmt::For { downto: false, .. }));
            }
            other => panic!("expected process, got {other:?}"),
        }
    }
}
