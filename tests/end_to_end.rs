//! Full-stack integration tests spanning every crate: benchmark suite →
//! simulated LLM → agents/loops → EDA tools → metrics.

use aivril_bench::{build_library, Flow, Harness, HarnessConfig};
use aivril_core::{Aivril2, Aivril2Config, Stage, TaskInput};
use aivril_eda::XsimToolSuite;
use aivril_llm::{profiles, SimLlm};
use aivril_metrics::suite_metric;

fn harness(tasks: usize, samples: u32) -> Harness {
    Harness::new(HarnessConfig {
        samples,
        task_limit: tasks,
        threads: 0,
        ..HarnessConfig::default()
    })
}

#[test]
fn aivril2_strictly_improves_every_model_on_a_slice() {
    let h = harness(12, 3);
    for profile in profiles::all() {
        let base = h.evaluate(&profile, true, Flow::Baseline);
        let full = h.evaluate(&profile, true, Flow::Aivril2);
        let base_s = suite_metric(&base, 1, |s| s.syntax);
        let full_s = suite_metric(&full, 1, |s| s.syntax);
        let base_f = suite_metric(&base, 1, |s| s.functional);
        let full_f = suite_metric(&full, 1, |s| s.functional);
        assert!(
            full_s >= base_s,
            "{}: syntax degraded {base_s} -> {full_s}",
            profile.name
        );
        assert!(
            full_f >= base_f,
            "{}: functional degraded {base_f} -> {full_f}",
            profile.name
        );
        assert!(
            full_s > 0.95,
            "{}: syntax loop must converge, got {full_s}",
            profile.name
        );
    }
}

#[test]
fn whole_pipeline_is_deterministic() {
    let h = harness(4, 2);
    let profile = profiles::gpt4o();
    let a = h.evaluate(&profile, true, Flow::Aivril2);
    let b = h.evaluate(&profile, true, Flow::Aivril2);
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.task, y.task);
        for (sx, sy) in x.samples.iter().zip(&y.samples) {
            assert_eq!(sx.syntax, sy.syntax);
            assert_eq!(sx.functional, sy.functional);
            assert!((sx.total_latency - sy.total_latency).abs() < 1e-9);
        }
    }
}

#[test]
fn vhdl_flow_runs_the_same_pipeline() {
    let h = harness(8, 2);
    let profile = profiles::claude35_sonnet();
    let full = h.evaluate(&profile, false, Flow::Aivril2);
    let s = suite_metric(&full, 1, |x| x.syntax);
    assert!(s > 0.9, "VHDL syntax loop should converge with Claude: {s}");
}

#[test]
fn trace_latencies_are_consistent() {
    let h = harness(1, 1);
    let p = &h.problems()[0];
    let mut model = SimLlm::new(profiles::llama3_70b(), build_library(h.problems()));
    let tools = XsimToolSuite::new();
    let pipeline = Aivril2::new(&tools, Aivril2Config::default());
    let task = TaskInput {
        name: p.name.clone(),
        module_name: p.module_name.clone(),
        spec: p.spec.clone(),
        verilog: true,
        seed: 5,
    };
    let r = pipeline.run(&mut model, &task);
    let by_stage: f64 = [
        Stage::TbGeneration,
        Stage::TbSyntaxLoop,
        Stage::RtlGeneration,
        Stage::RtlSyntaxLoop,
        Stage::FunctionalLoop,
    ]
    .iter()
    .map(|&s| r.trace.stage_latency(s))
    .sum();
    assert!((by_stage - r.trace.total_latency()).abs() < 1e-9);
    assert!(r.trace.total_latency() > 0.0);
}

#[test]
fn golden_rtl_always_scores_perfect() {
    // Cross-crate invariant: the scorer accepts every golden design.
    let h = harness(156, 1);
    for p in h.problems() {
        let (s, f) = h.score(p, &p.verilog.dut, true);
        assert!(s && f, "verilog golden {} must score clean", p.name);
    }
}

#[test]
fn corrupted_rtl_never_scores_functional() {
    use aivril_llm::mutate::{
        apply_fault, count_occurrences, functional_templates, AppliedFault, Dialect, FaultKind,
    };
    // Sampled invariant: at least 90% of single functional faults are
    // caught by the reference testbenches (a few equivalent mutants are
    // tolerated and compensated by profile calibration).
    let h = harness(30, 1);
    let (mut total, mut caught) = (0, 0);
    for p in h.problems() {
        let golden = &p.verilog.dut;
        for t in functional_templates(Dialect::Verilog) {
            if count_occurrences(golden, t.pattern) == 0 {
                continue;
            }
            let fault = AppliedFault {
                template: t.clone(),
                occurrence: 0,
                kind: FaultKind::Functional,
            };
            let mutated = apply_fault(golden, &fault);
            if mutated == *golden {
                continue;
            }
            total += 1;
            let (_, f) = h.score(p, &mutated, true);
            if !f {
                caught += 1;
            }
        }
    }
    assert!(total > 30, "expected a meaningful sample, got {total}");
    assert!(
        f64::from(caught) / f64::from(total) > 0.9,
        "caught only {caught}/{total}"
    );
}
