//! Golden-file test for the Chrome `trace_event` exporter: pins down
//! attribute escaping (quotes, newlines, non-ASCII) and thread-track
//! labeling byte-for-byte. Regenerate the golden after an intentional
//! format change with `BLESS=1 cargo test -p aivril-obs --test
//! chrome_golden` and review the diff.

use aivril_obs::{chrome_trace, Recorder};

const GOLDEN_PATH: &str = "tests/golden/chrome_trace.json";

/// A deliberately hostile trace: multiple runs (thread tracks), a
/// context with spaces, and attribute values exercising every escape
/// path of the JSON writer.
fn hostile_trace() -> String {
    let r = Recorder::new();
    r.set_context(&[("model", "sim \"quoted\""), ("flow", "aivril2")]);
    r.begin_run(0, 0);
    {
        let s = r.span("llm.chat");
        r.advance(1.5);
        s.attr_str("kind", "generate");
        s.attr_str("quote", "say \"hi\" to C:\\rtl");
        s.attr_str("newline", "line1\nline2\ttabbed");
        s.attr_str("unicode", "héllo — 設計");
        s.attr_int("tokens", 412);
        s.attr_f64("latency_s", 1.5);
        s.attr_bool("fault", false);
    }
    r.end_run();
    r.begin_run(0, 1);
    {
        let outer = r.span("stage.rtl_syntax_loop");
        outer.attr_str("control", "bell\u{7}and\u{1}low");
        {
            let _inner = r.span("eda.compile");
            r.advance(0.25);
        }
    }
    r.end_run();
    // Unscoped events get their own labeled track too.
    {
        let _s = r.span("suite.setup");
        r.advance(0.125);
    }
    chrome_trace(&r)
}

#[test]
fn chrome_trace_matches_golden() {
    let trace = hostile_trace();
    if std::env::var_os("BLESS").is_some() {
        std::fs::write(GOLDEN_PATH, &trace).expect("write golden");
    }
    let golden = std::fs::read_to_string(GOLDEN_PATH).expect("golden file exists");
    assert_eq!(
        trace, golden,
        "chrome trace drifted from {GOLDEN_PATH}; if intentional, \
         regenerate with BLESS=1 and review the diff"
    );
}

#[test]
fn chrome_trace_escapes_and_labels_tracks() {
    let trace = hostile_trace();
    // Attr escaping: quotes, backslashes, newlines, controls survive
    // as valid JSON escapes; non-ASCII passes through raw.
    assert!(trace.contains("\"quote\":\"say \\\"hi\\\" to C:\\\\rtl\""));
    assert!(trace.contains("\"newline\":\"line1\\nline2\\ttabbed\""));
    assert!(trace.contains("\"unicode\":\"héllo — 設計\""));
    assert!(trace.contains("\"control\":\"bell\\u0007and\\u0001low\""));
    // Thread tracks: one metadata event per run, labeled with grid
    // coordinates + context (context keys sorted), distinct tids.
    assert!(trace.contains("\"name\":\"p0s0 flow=aivril2 model=sim \\\"quoted\\\"\""));
    assert!(trace.contains("\"name\":\"p0s1 flow=aivril2 model=sim \\\"quoted\\\"\""));
    assert!(trace.contains("\"name\":\"unscoped "));
    assert_eq!(trace.matches("\"thread_name\"").count(), 3);
    assert!(
        trace.contains("\"tid\":0") && trace.contains("\"tid\":1") && trace.contains("\"tid\":2")
    );
    // The export is a modeled-clock artifact: byte-stable run to run.
    assert_eq!(trace, hostile_trace());
    // And the whole trace round-trips through the reader: 3 metadata
    // events + 4 span events.
    let parsed = aivril_obs::json::parse(&trace).expect("trace is valid JSON");
    assert_eq!(parsed.arr().map(<[_]>::len), Some(3 + 4));
}
