//! Lexer for the VHDL-93 subset.
//!
//! VHDL is case-insensitive: identifiers and keywords are lowercased at
//! lexing time. Like the Verilog lexer, this one is *total* — corrupted
//! input produces located diagnostics, never panics.

use aivril_hdl::diag::{codes, Diagnostic, Diagnostics};
use aivril_hdl::source::{FileId, Span};
use std::fmt;

/// Kinds of token the VHDL lexer produces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier (lowercased). Keywords are [`TokenKind::Keyword`].
    Ident,
    /// Reserved word.
    Keyword(Keyword),
    /// Integer literal.
    Number,
    /// Character literal contents, e.g. `0` from `'0'`.
    CharLit,
    /// String literal contents (bit-string or report message).
    StrLit,
    /// Hex bit-string literal contents, e.g. `A5` from `x"A5"`.
    HexString,
    /// Operator / punctuation.
    Punct(Punct),
    /// End of input.
    Eof,
}

/// Reserved words of the supported subset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Keyword {
    Library,
    Use,
    Entity,
    Architecture,
    Of,
    Is,
    Begin,
    End,
    Port,
    Generic,
    Map,
    In,
    Out,
    Inout,
    Signal,
    Constant,
    Variable,
    Process,
    If,
    Then,
    Elsif,
    Else,
    Case,
    When,
    Others,
    For,
    Loop,
    To,
    Downto,
    While,
    Wait,
    Until,
    And,
    Or,
    Xor,
    Nand,
    Nor,
    Xnor,
    Not,
    Mod,
    Rem,
    Sll,
    Srl,
    Report,
    Severity,
    Assert,
    Null,
    After,
    All,
    Component,
    True,
    False,
}

impl Keyword {
    /// Looks up a keyword from lowercased identifier text.
    #[must_use]
    pub fn from_str(s: &str) -> Option<Keyword> {
        use Keyword::*;
        Some(match s {
            "library" => Library,
            "use" => Use,
            "entity" => Entity,
            "architecture" => Architecture,
            "of" => Of,
            "is" => Is,
            "begin" => Begin,
            "end" => End,
            "port" => Port,
            "generic" => Generic,
            "map" => Map,
            "in" => In,
            "out" => Out,
            "inout" => Inout,
            "signal" => Signal,
            "constant" => Constant,
            "variable" => Variable,
            "process" => Process,
            "if" => If,
            "then" => Then,
            "elsif" => Elsif,
            "else" => Else,
            "case" => Case,
            "when" => When,
            "others" => Others,
            "for" => For,
            "loop" => Loop,
            "to" => To,
            "downto" => Downto,
            "while" => While,
            "wait" => Wait,
            "until" => Until,
            "and" => And,
            "or" => Or,
            "xor" => Xor,
            "nand" => Nand,
            "nor" => Nor,
            "xnor" => Xnor,
            "not" => Not,
            "mod" => Mod,
            "rem" => Rem,
            "sll" => Sll,
            "srl" => Srl,
            "report" => Report,
            "severity" => Severity,
            "assert" => Assert,
            "null" => Null,
            "after" => After,
            "all" => All,
            "component" => Component,
            "true" => True,
            "false" => False,
            _ => return None,
        })
    }

    /// Canonical lowercase spelling.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        use Keyword::*;
        match self {
            Library => "library",
            Use => "use",
            Entity => "entity",
            Architecture => "architecture",
            Of => "of",
            Is => "is",
            Begin => "begin",
            End => "end",
            Port => "port",
            Generic => "generic",
            Map => "map",
            In => "in",
            Out => "out",
            Inout => "inout",
            Signal => "signal",
            Constant => "constant",
            Variable => "variable",
            Process => "process",
            If => "if",
            Then => "then",
            Elsif => "elsif",
            Else => "else",
            Case => "case",
            When => "when",
            Others => "others",
            For => "for",
            Loop => "loop",
            To => "to",
            Downto => "downto",
            While => "while",
            Wait => "wait",
            Until => "until",
            And => "and",
            Or => "or",
            Xor => "xor",
            Nand => "nand",
            Nor => "nor",
            Xnor => "xnor",
            Not => "not",
            Mod => "mod",
            Rem => "rem",
            Sll => "sll",
            Srl => "srl",
            Report => "report",
            Severity => "severity",
            Assert => "assert",
            Null => "null",
            After => "after",
            All => "all",
            Component => "component",
            True => "true",
            False => "false",
        }
    }
}

/// Operators and punctuation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Punct {
    LParen,
    RParen,
    Semi,
    Comma,
    Colon,
    Dot,
    Amp,
    Tick,
    Bar,
    Assign,    // :=
    SigAssign, // <=  (also relational less-equal; context decides)
    Arrow,     // =>
    Eq,        // =
    Ne,        // /=
    Lt,
    Gt,
    Ge,
    Plus,
    Minus,
    Star,
    Slash,
    Star2,
}

impl fmt::Display for Punct {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use Punct::*;
        let s = match self {
            LParen => "(",
            RParen => ")",
            Semi => ";",
            Comma => ",",
            Colon => ":",
            Dot => ".",
            Amp => "&",
            Tick => "'",
            Bar => "|",
            Assign => ":=",
            SigAssign => "<=",
            Arrow => "=>",
            Eq => "=",
            Ne => "/=",
            Lt => "<",
            Gt => ">",
            Ge => ">=",
            Plus => "+",
            Minus => "-",
            Star => "*",
            Slash => "/",
            Star2 => "**",
        };
        f.write_str(s)
    }
}

/// One lexed token.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Kind.
    pub kind: TokenKind,
    /// Text (lowercased identifiers; unquoted literal contents).
    pub text: String,
    /// Location.
    pub span: Span,
}

impl Token {
    /// Human-readable description for error messages.
    #[must_use]
    pub fn describe(&self) -> String {
        match &self.kind {
            TokenKind::Eof => "end of file".to_string(),
            TokenKind::StrLit => format!("\"{}\"", self.text),
            TokenKind::CharLit => format!("'{}'", self.text),
            _ => format!("'{}'", self.text),
        }
    }
}

/// Lexes VHDL `text` into tokens, appending errors to `diags`.
pub fn lex(file: FileId, text: &str, diags: &mut Diagnostics) -> Vec<Token> {
    let bytes = text.as_bytes();
    let mut tokens = Vec::new();
    let mut pos = 0usize;
    let span = |s: usize, e: usize| Span::new(file, s as u32, e as u32);
    while pos < bytes.len() {
        let start = pos;
        let c = bytes[pos];
        match c {
            b' ' | b'\t' | b'\r' | b'\n' => pos += 1,
            b'-' if bytes.get(pos + 1) == Some(&b'-') => {
                while pos < bytes.len() && bytes[pos] != b'\n' {
                    pos += 1;
                }
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                while matches!(
                    bytes.get(pos),
                    Some(b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'_')
                ) {
                    pos += 1;
                }
                let raw = &text[start..pos];
                // Hex bit-string: x"A5"
                if (raw == "x" || raw == "X") && bytes.get(pos) == Some(&b'"') {
                    pos += 1;
                    let content_start = pos;
                    while pos < bytes.len() && bytes[pos] != b'"' {
                        pos += 1;
                    }
                    let content = text[content_start..pos].to_string();
                    if pos < bytes.len() {
                        pos += 1;
                    } else {
                        diags.push(Diagnostic::error(
                            codes::VHDL_SYNTAX,
                            "unterminated bit-string literal",
                            span(start, pos),
                        ));
                    }
                    tokens.push(Token {
                        kind: TokenKind::HexString,
                        text: content,
                        span: span(start, pos),
                    });
                    continue;
                }
                let lower = raw.to_ascii_lowercase();
                let kind = match Keyword::from_str(&lower) {
                    Some(kw) => TokenKind::Keyword(kw),
                    None => TokenKind::Ident,
                };
                tokens.push(Token {
                    kind,
                    text: lower,
                    span: span(start, pos),
                });
            }
            b'0'..=b'9' => {
                while matches!(bytes.get(pos), Some(b'0'..=b'9' | b'_')) {
                    pos += 1;
                }
                tokens.push(Token {
                    kind: TokenKind::Number,
                    text: text[start..pos].replace('_', ""),
                    span: span(start, pos),
                });
            }
            b'"' => {
                pos += 1;
                let content_start = pos;
                while pos < bytes.len() && bytes[pos] != b'"' {
                    pos += 1;
                }
                let content = text[content_start..pos].to_string();
                if pos < bytes.len() {
                    pos += 1;
                } else {
                    diags.push(Diagnostic::error(
                        codes::VHDL_SYNTAX,
                        "unterminated string literal",
                        span(start, pos),
                    ));
                }
                tokens.push(Token {
                    kind: TokenKind::StrLit,
                    text: content,
                    span: span(start, pos),
                });
            }
            b'\'' => {
                // Character literal '0' vs attribute tick.
                if pos + 2 < bytes.len() && bytes[pos + 2] == b'\'' {
                    let ch = text[pos + 1..pos + 2].to_string();
                    pos += 3;
                    tokens.push(Token {
                        kind: TokenKind::CharLit,
                        text: ch,
                        span: span(start, pos),
                    });
                } else {
                    pos += 1;
                    tokens.push(Token {
                        kind: TokenKind::Punct(Punct::Tick),
                        text: "'".into(),
                        span: span(start, pos),
                    });
                }
            }
            _ => {
                use Punct::*;
                let two = bytes.get(pos + 1).copied();
                let (p, len) = match c {
                    b'(' => (LParen, 1),
                    b')' => (RParen, 1),
                    b';' => (Semi, 1),
                    b',' => (Comma, 1),
                    b':' if two == Some(b'=') => (Assign, 2),
                    b':' => (Colon, 1),
                    b'.' => (Dot, 1),
                    b'&' => (Amp, 1),
                    b'|' => (Bar, 1),
                    b'<' if two == Some(b'=') => (SigAssign, 2),
                    b'<' => (Lt, 1),
                    b'>' if two == Some(b'=') => (Ge, 2),
                    b'>' => (Gt, 1),
                    b'=' if two == Some(b'>') => (Arrow, 2),
                    b'=' => (Eq, 1),
                    b'/' if two == Some(b'=') => (Ne, 2),
                    b'/' => (Slash, 1),
                    b'+' => (Plus, 1),
                    b'-' => (Minus, 1),
                    b'*' if two == Some(b'*') => (Star2, 2),
                    b'*' => (Star, 1),
                    other => {
                        pos += 1;
                        diags.push(Diagnostic::error(
                            codes::VHDL_SYNTAX,
                            format!("unexpected character '{}'", other as char),
                            span(start, pos),
                        ));
                        continue;
                    }
                };
                pos += len;
                tokens.push(Token {
                    kind: TokenKind::Punct(p),
                    text: p.to_string(),
                    span: span(start, pos),
                });
            }
        }
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        text: String::new(),
        span: span(bytes.len(), bytes.len()),
    });
    tokens
}

#[cfg(test)]
mod tests {
    use super::*;
    use aivril_hdl::source::SourceMap;

    fn lex_ok(src: &str) -> Vec<Token> {
        let mut sources = SourceMap::new();
        let file = sources.add_file("t.vhd", src);
        let mut diags = Diagnostics::new();
        let toks = lex(file, src, &mut diags);
        assert!(!diags.has_errors(), "unexpected: {:?}", diags.all());
        toks
    }

    #[test]
    fn case_insensitive_keywords() {
        let toks = lex_ok("ENTITY foo IS End");
        assert_eq!(toks[0].kind, TokenKind::Keyword(Keyword::Entity));
        assert_eq!(toks[1].text, "foo");
        assert_eq!(toks[2].kind, TokenKind::Keyword(Keyword::Is));
        assert_eq!(toks[3].kind, TokenKind::Keyword(Keyword::End));
    }

    #[test]
    fn char_and_string_literals() {
        let toks = lex_ok("'0' \"0101\" \"Test Failed\"");
        assert_eq!(toks[0].kind, TokenKind::CharLit);
        assert_eq!(toks[0].text, "0");
        assert_eq!(toks[1].kind, TokenKind::StrLit);
        assert_eq!(toks[1].text, "0101");
        assert_eq!(toks[2].text, "Test Failed");
    }

    #[test]
    fn hex_bit_string() {
        let toks = lex_ok("x\"A5\"");
        assert_eq!(toks[0].kind, TokenKind::HexString);
        assert_eq!(toks[0].text, "A5");
    }

    #[test]
    fn attribute_tick_vs_char() {
        let toks = lex_ok("clk'event");
        assert_eq!(toks[0].text, "clk");
        assert_eq!(toks[1].kind, TokenKind::Punct(Punct::Tick));
        assert_eq!(toks[2].text, "event");
    }

    #[test]
    fn comments_skipped() {
        let toks = lex_ok("a -- comment\nb");
        assert_eq!(toks.len(), 3);
        assert_eq!(toks[1].text, "b");
    }

    #[test]
    fn compound_operators() {
        use Punct::*;
        let toks = lex_ok(":= <= => /= >= **");
        let kinds: Vec<_> = toks[..6].iter().map(|t| t.kind.clone()).collect();
        assert_eq!(
            kinds,
            vec![
                TokenKind::Punct(Assign),
                TokenKind::Punct(SigAssign),
                TokenKind::Punct(Arrow),
                TokenKind::Punct(Ne),
                TokenKind::Punct(Ge),
                TokenKind::Punct(Star2),
            ]
        );
    }

    #[test]
    fn numbers_with_underscores() {
        let toks = lex_ok("1_000");
        assert_eq!(toks[0].text, "1000");
    }

    #[test]
    fn bad_character_reported() {
        let mut sources = SourceMap::new();
        let file = sources.add_file("t.vhd", "a @ b");
        let mut diags = Diagnostics::new();
        let toks = lex(file, "a @ b", &mut diags);
        assert!(diags.has_errors());
        assert!(toks.iter().any(|t| t.text == "b"));
    }
}
