//! A tiny deterministic token codec for durable artifacts: on-disk EDA
//! cache entries and shard checkpoint records.
//!
//! # Format
//!
//! A payload is a single line of space-separated tokens:
//!
//! * integers — plain decimal (`u64`, `u32`, `i64`, `i128`);
//! * floats — their IEEE-754 bit pattern as a decimal `u64`, so values
//!   round-trip *exactly* (the fixed-precision JSON renderer in
//!   [`crate::json`] is lossy by design and unusable here);
//! * booleans — `0` / `1`;
//! * strings — a `$` sigil followed by a percent-encoding that escapes
//!   whitespace, `%` and every non-ASCII-printable byte, so any string
//!   (logs with newlines included) stays a single token.
//!
//! Decoding is **total**: every reader method returns `Option`, and a
//! `None` anywhere means the artifact is corrupt — callers treat that
//! as a cache miss / checkpoint truncation, never a panic. Integrity is
//! layered on top with [`fnv64`] checksums over the payload text.
//!
//! The format carries no self-description beyond what the caller
//! writes; both sides share a schema version in their headers and bump
//! it on layout changes.

use crate::metrics::{Histogram, MetricValue, MetricsRegistry};
use crate::recorder::{AttrValue, RunJournal, SpanEvent};

const FNV64_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV64_PRIME: u64 = 0x0000_0100_0000_01b3;

/// 64-bit FNV-1a over `bytes` — the checksum durable artifacts pair
/// with their payloads.
#[must_use]
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = FNV64_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV64_PRIME);
    }
    h
}

/// `true` for bytes a string token may carry unescaped.
fn plain(b: u8) -> bool {
    b.is_ascii_alphanumeric() || matches!(b, b'-' | b'_' | b'.' | b'~' | b':' | b'/' | b',' | b';')
}

/// Builds a payload by appending tokens.
#[derive(Debug, Default)]
pub struct Writer {
    out: String,
}

impl Writer {
    /// Creates an empty writer.
    #[must_use]
    pub fn new() -> Writer {
        Writer::default()
    }

    fn push(&mut self, token: &str) {
        if !self.out.is_empty() {
            self.out.push(' ');
        }
        self.out.push_str(token);
    }

    /// Appends an unsigned integer token.
    pub fn u64(&mut self, v: u64) {
        self.push(&v.to_string());
    }

    /// Appends a `u32` token.
    pub fn u32(&mut self, v: u32) {
        self.u64(u64::from(v));
    }

    /// Appends a signed integer token.
    pub fn i64(&mut self, v: i64) {
        self.push(&v.to_string());
    }

    /// Appends an `i128` token (histogram sums).
    pub fn i128(&mut self, v: i128) {
        self.push(&v.to_string());
    }

    /// Appends a float as its exact bit pattern.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Appends a boolean token.
    pub fn bool(&mut self, v: bool) {
        self.push(if v { "1" } else { "0" });
    }

    /// Appends a string token (`$`-sigiled, percent-escaped).
    pub fn str(&mut self, s: &str) {
        let mut tok = String::with_capacity(s.len() + 1);
        tok.push('$');
        for &b in s.as_bytes() {
            if plain(b) {
                tok.push(b as char);
            } else {
                tok.push_str(&format!("%{b:02X}"));
            }
        }
        self.push(&tok);
    }

    /// The accumulated payload.
    #[must_use]
    pub fn payload(&self) -> &str {
        &self.out
    }

    /// Consumes the writer, returning the payload.
    #[must_use]
    pub fn finish(self) -> String {
        self.out
    }
}

/// Reads tokens back out of a payload. Every method returns `None` on
/// malformed input — corruption is data, not a panic.
#[derive(Debug)]
pub struct Reader<'a> {
    toks: std::str::SplitAsciiWhitespace<'a>,
}

impl<'a> Reader<'a> {
    /// Creates a reader over `payload`.
    #[must_use]
    pub fn new(payload: &'a str) -> Reader<'a> {
        Reader {
            toks: payload.split_ascii_whitespace(),
        }
    }

    /// Next unsigned integer.
    pub fn u64(&mut self) -> Option<u64> {
        self.toks.next()?.parse().ok()
    }

    /// Next `u32`.
    pub fn u32(&mut self) -> Option<u32> {
        self.toks.next()?.parse().ok()
    }

    /// Next signed integer.
    pub fn i64(&mut self) -> Option<i64> {
        self.toks.next()?.parse().ok()
    }

    /// Next `i128`.
    pub fn i128(&mut self) -> Option<i128> {
        self.toks.next()?.parse().ok()
    }

    /// Next float (from its bit pattern).
    pub fn f64(&mut self) -> Option<f64> {
        self.u64().map(f64::from_bits)
    }

    /// Next boolean.
    pub fn bool(&mut self) -> Option<bool> {
        match self.toks.next()? {
            "0" => Some(false),
            "1" => Some(true),
            _ => None,
        }
    }

    /// Next string token.
    pub fn str(&mut self) -> Option<String> {
        let tok = self.toks.next()?.strip_prefix('$')?;
        let bytes = tok.as_bytes();
        let mut out = Vec::with_capacity(bytes.len());
        let mut i = 0;
        while i < bytes.len() {
            if bytes[i] == b'%' {
                let hex = tok.get(i + 1..i + 3)?;
                out.push(u8::from_str_radix(hex, 16).ok()?);
                i += 3;
            } else {
                out.push(bytes[i]);
                i += 1;
            }
        }
        String::from_utf8(out).ok()
    }

    /// `true` when every token has been consumed — decoders call this
    /// last so trailing garbage is detected.
    pub fn at_end(&mut self) -> bool {
        self.toks.next().is_none()
    }
}

/// A length guard for decoded collections: checkpoint/cache payloads
/// are checksummed, so a huge length is corruption (or an attack), not
/// data — refuse to allocate for it.
const MAX_ITEMS: u64 = 1 << 20;

fn checked_len(n: u64) -> Option<usize> {
    (n <= MAX_ITEMS).then_some(n as usize)
}

/// Encodes a histogram's exact merge state.
pub fn encode_histogram(w: &mut Writer, h: &Histogram) {
    let bounds = h.bounds();
    w.u64(bounds.len() as u64);
    for b in &bounds {
        w.f64(*b);
    }
    for b in h.buckets() {
        w.u64(*b);
    }
    w.u64(h.count());
    w.i128(h.sum_micros());
}

/// Decodes a histogram; `None` on any malformation.
pub fn decode_histogram(r: &mut Reader<'_>) -> Option<Histogram> {
    let nbounds = checked_len(r.u64()?)?;
    let mut bounds = Vec::with_capacity(nbounds);
    for _ in 0..nbounds {
        bounds.push(r.f64()?);
    }
    let mut buckets = Vec::with_capacity(nbounds + 1);
    for _ in 0..=nbounds {
        buckets.push(r.u64()?);
    }
    let count = r.u64()?;
    let sum_micros = r.i128()?;
    Histogram::from_parts(&bounds, buckets, count, sum_micros)
}

/// Encodes a full metrics registry (snapshot order, so deterministic).
pub fn encode_metrics(w: &mut Writer, m: &MetricsRegistry) {
    let series = m.snapshot();
    w.u64(series.len() as u64);
    for (key, value) in &series {
        w.str(&key.name);
        w.u64(key.labels.len() as u64);
        for (k, v) in &key.labels {
            w.str(k);
            w.str(v);
        }
        match value {
            MetricValue::Counter(c) => {
                w.u64(0);
                w.u64(*c);
            }
            MetricValue::Gauge(g) => {
                w.u64(1);
                w.f64(*g);
            }
            MetricValue::Histogram(h) => {
                w.u64(2);
                encode_histogram(w, h);
            }
        }
    }
}

/// Decodes a metrics registry; `None` on any malformation.
pub fn decode_metrics(r: &mut Reader<'_>) -> Option<MetricsRegistry> {
    let mut m = MetricsRegistry::new();
    let series = checked_len(r.u64()?)?;
    for _ in 0..series {
        let name = r.str()?;
        let nlabels = checked_len(r.u64()?)?;
        let mut labels = Vec::with_capacity(nlabels);
        for _ in 0..nlabels {
            labels.push((r.str()?, r.str()?));
        }
        let label_refs: Vec<(&str, &str)> = labels
            .iter()
            .map(|(k, v)| (k.as_str(), v.as_str()))
            .collect();
        match r.u64()? {
            0 => m.counter_add(&name, &label_refs, r.u64()?),
            1 => m.gauge_set(&name, &label_refs, r.f64()?),
            2 => {
                let h = decode_histogram(r)?;
                m.merge_histogram(&name, &label_refs, &h);
            }
            _ => return None,
        }
    }
    Some(m)
}

/// Encodes a set of run journals with exact (bit-level) timestamps and
/// *all* attributes — diagnostic ones included, so a replayed run feeds
/// the Chrome trace identically to a live one.
pub fn encode_runs(w: &mut Writer, runs: &[RunJournal]) {
    w.u64(runs.len() as u64);
    for run in runs {
        w.u32(run.problem);
        w.u32(run.sample);
        w.u64(run.context.len() as u64);
        for (k, v) in &run.context {
            w.str(k);
            w.str(v);
        }
        w.u64(run.events.len() as u64);
        for ev in &run.events {
            w.str(&ev.name);
            w.u32(ev.depth);
            w.f64(ev.t_start);
            w.f64(ev.t_end);
            w.u64(ev.attrs.len() as u64);
            for (k, v) in &ev.attrs {
                w.str(k);
                match v {
                    AttrValue::Str(s) => {
                        w.u64(0);
                        w.str(s);
                    }
                    AttrValue::Int(i) => {
                        w.u64(1);
                        w.i64(*i);
                    }
                    AttrValue::Float(f) => {
                        w.u64(2);
                        w.f64(*f);
                    }
                    AttrValue::Bool(b) => {
                        w.u64(3);
                        w.bool(*b);
                    }
                }
            }
        }
    }
}

/// Decodes a set of run journals; `None` on any malformation.
pub fn decode_runs(r: &mut Reader<'_>) -> Option<Vec<RunJournal>> {
    let nruns = checked_len(r.u64()?)?;
    let mut runs = Vec::with_capacity(nruns);
    for _ in 0..nruns {
        let problem = r.u32()?;
        let sample = r.u32()?;
        let nctx = checked_len(r.u64()?)?;
        let mut context = Vec::with_capacity(nctx);
        for _ in 0..nctx {
            context.push((r.str()?, r.str()?));
        }
        let nevents = checked_len(r.u64()?)?;
        let mut events = Vec::with_capacity(nevents);
        for _ in 0..nevents {
            let name = r.str()?;
            let depth = r.u32()?;
            let t_start = r.f64()?;
            let t_end = r.f64()?;
            let nattrs = checked_len(r.u64()?)?;
            let mut attrs = Vec::with_capacity(nattrs);
            for _ in 0..nattrs {
                let key = r.str()?;
                let value = match r.u64()? {
                    0 => AttrValue::Str(r.str()?),
                    1 => AttrValue::Int(r.i64()?),
                    2 => AttrValue::Float(r.f64()?),
                    3 => AttrValue::Bool(r.bool()?),
                    _ => return None,
                };
                attrs.push((key, value));
            }
            events.push(SpanEvent {
                name,
                depth,
                t_start,
                t_end,
                attrs,
            });
        }
        runs.push(RunJournal {
            problem,
            sample,
            context,
            events,
        });
    }
    Some(runs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        let mut w = Writer::new();
        w.u64(42);
        w.i64(-7);
        w.i128(-123_456_789_012_345_678_901_234_567);
        w.f64(0.1);
        w.f64(f64::NAN);
        w.bool(true);
        w.str("hello world\nwith % specials\t\u{e9}");
        w.str("");
        let payload = w.finish();
        let mut r = Reader::new(&payload);
        assert_eq!(r.u64(), Some(42));
        assert_eq!(r.i64(), Some(-7));
        assert_eq!(r.i128(), Some(-123_456_789_012_345_678_901_234_567));
        assert_eq!(r.f64().map(f64::to_bits), Some(0.1f64.to_bits()));
        assert!(r.f64().is_some_and(f64::is_nan), "NaN survives via bits");
        assert_eq!(r.bool(), Some(true));
        assert_eq!(
            r.str().as_deref(),
            Some("hello world\nwith % specials\t\u{e9}")
        );
        assert_eq!(r.str().as_deref(), Some(""));
        assert!(r.at_end());
    }

    #[test]
    fn malformed_tokens_decode_to_none() {
        assert_eq!(Reader::new("notanumber").u64(), None);
        assert_eq!(Reader::new("2").bool(), None);
        assert_eq!(Reader::new("nosigil").str(), None);
        assert_eq!(Reader::new("$%zz").str(), None, "bad hex escape");
        assert_eq!(Reader::new("$%F").str(), None, "truncated escape");
        assert_eq!(Reader::new("").u64(), None, "exhausted payload");
    }

    #[test]
    fn oversized_lengths_are_rejected_not_allocated() {
        let mut w = Writer::new();
        w.u64(u64::MAX); // claimed run count
        let payload = w.finish();
        assert!(decode_runs(&mut Reader::new(&payload)).is_none());
        assert!(decode_metrics(&mut Reader::new(&payload)).is_none());
    }

    #[test]
    fn fnv64_is_stable() {
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn metrics_round_trip_bitwise() {
        let mut m = MetricsRegistry::new();
        m.counter_add("hits", &[("phase", "compile")], 7);
        m.gauge_set("depth", &[], 0.1 + 0.2); // not exactly 0.3
        m.observe("lat", &[("q", "x")], &[0.5, 1.0], 0.1);
        m.observe("lat", &[("q", "x")], &[0.5, 1.0], 2.0);
        let mut w = Writer::new();
        encode_metrics(&mut w, &m);
        let payload = w.finish();
        let mut r = Reader::new(&payload);
        let back = decode_metrics(&mut r).expect("round trip");
        assert!(r.at_end());
        assert_eq!(back, m);
        assert_eq!(back.render(), m.render());
    }

    #[test]
    fn runs_round_trip_bitwise() {
        let runs = vec![RunJournal {
            problem: 3,
            sample: 1,
            context: vec![("model".into(), "sim a/b".into())],
            events: vec![SpanEvent {
                name: "llm.chat".into(),
                depth: 1,
                t_start: 0.1,
                t_end: 2.300_000_000_000_001,
                attrs: vec![
                    ("tokens".into(), AttrValue::Int(40)),
                    ("kind".into(), AttrValue::Str("generate".into())),
                    ("cache_hit".into(), AttrValue::Bool(true)),
                    ("ratio".into(), AttrValue::Float(0.1)),
                ],
            }],
        }];
        let mut w = Writer::new();
        encode_runs(&mut w, &runs);
        let payload = w.finish();
        let mut r = Reader::new(&payload);
        let back = decode_runs(&mut r).expect("round trip");
        assert!(r.at_end());
        assert_eq!(back, runs);
        // Bit-exact timestamps, not epsilon-equal.
        assert_eq!(
            back[0].events[0].t_end.to_bits(),
            runs[0].events[0].t_end.to_bits()
        );
    }

    #[test]
    fn truncated_payloads_decode_to_none() {
        let mut m = MetricsRegistry::new();
        m.counter_add("hits", &[], 1);
        let mut w = Writer::new();
        encode_metrics(&mut w, &m);
        let payload = w.finish();
        for cut in 0..payload.len() {
            let mut r = Reader::new(&payload[..cut]);
            // Either decodes to a shorter valid prefix (impossible here:
            // the leading count pins the length) or returns None — but
            // never panics.
            assert!(
                decode_metrics(&mut r).is_none() || cut == payload.len(),
                "cut at {cut} must not produce a phantom registry"
            );
        }
    }
}
