//! The Review Agent: turns compiler logs into corrective prompts.
//!
//! Per Sec. 3.2, the agent parses the EDA log, extracts each error's
//! line number, pulls the offending code snippet out of the source, and
//! distils everything into a highly detailed, actionable prompt — the
//! level of detail is what lets the Code Agent converge in few
//! iterations.

use aivril_eda::{CompileReport, ToolMessage};

/// One distilled syntax finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SyntaxFinding {
    /// Message id from the log (e.g. `VRFC 10-91`).
    pub code: String,
    /// Error text.
    pub message: String,
    /// File name, when located.
    pub file: Option<String>,
    /// 1-based line, when located.
    pub line: Option<u32>,
    /// The offending source line.
    pub snippet: Option<String>,
}

/// The Review Agent. Stateless: each report is analysed on its own.
#[derive(Debug, Clone, Copy, Default)]
pub struct ReviewAgent;

impl ReviewAgent {
    /// Creates the agent.
    #[must_use]
    pub fn new() -> ReviewAgent {
        ReviewAgent
    }

    /// Extracts structured findings from a compile report, resolving
    /// line numbers against `source` (the artefact under review).
    #[must_use]
    pub fn findings(&self, report: &CompileReport, source: &str) -> Vec<SyntaxFinding> {
        let lines: Vec<&str> = source.lines().collect();
        report
            .messages
            .iter()
            .filter(|m| m.is_error())
            .map(|m| {
                let snippet = m
                    .line
                    .and_then(|l| lines.get(l as usize - 1))
                    .map(|s| s.trim_end().to_string());
                SyntaxFinding {
                    code: m.code.clone(),
                    message: m.message.clone(),
                    file: m.file.clone(),
                    line: m.line,
                    snippet,
                }
            })
            .collect()
    }

    /// Builds the corrective prompt for the Code Agent. The prompt
    /// always contains the phrase `syntax error` (the protocol marker)
    /// plus per-error locations, snippets and fixing hints.
    #[must_use]
    pub fn corrective_prompt(
        &self,
        report: &CompileReport,
        source: &str,
        artifact: &str,
    ) -> String {
        let findings = self.findings(report, source);
        let mut p = format!(
            "The compiler reported {} syntax error(s) in your {artifact}. \
             Fix every issue and return the complete corrected file.\n\n",
            findings.len().max(1)
        );
        for (i, f) in findings.iter().take(8).enumerate() {
            p.push_str(&format!("{}. [{}] {}", i + 1, f.code, f.message));
            if let (Some(file), Some(line)) = (&f.file, f.line) {
                p.push_str(&format!(" at {file}:{line}"));
            }
            p.push('\n');
            if let Some(snippet) = &f.snippet {
                p.push_str(&format!("   offending line: `{snippet}`\n"));
            }
            if let Some(hint) = hint_for(&f.message) {
                p.push_str(&format!("   hint: {hint}\n"));
            }
        }
        if findings.len() > 8 {
            p.push_str(&format!("(and {} more)\n", findings.len() - 8));
        }
        p
    }

    /// Low-detail variant (error identifiers only) used by the
    /// prompt-detail ablation: no locations, snippets or hints, so the
    /// Code Agent has far less to work with.
    #[must_use]
    pub fn corrective_prompt_brief(&self, report: &CompileReport, artifact: &str) -> String {
        let errors: Vec<&ToolMessage> = report.messages.iter().filter(|m| m.is_error()).collect();
        let mut p = format!(
            "The compiler reported {} syntax error(s) in your {artifact}. Fix them.\n",
            errors.len().max(1)
        );
        for m in errors.iter().take(8) {
            p.push_str(&format!("- [{}]\n", m.code));
        }
        p
    }
}

/// Heuristic fixing hints keyed on common message shapes.
fn hint_for(message: &str) -> Option<&'static str> {
    if message.contains("expected ';'") {
        Some("a statement is probably missing its terminating semicolon")
    } else if message.contains("is not declared") {
        Some("check the identifier's spelling against the declarations")
    } else if message.contains("expected 'endmodule'") || message.contains("found end of file") {
        Some("a block or module is not closed properly")
    } else if message.contains("expected") {
        Some("check the syntax immediately before the reported location")
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aivril_eda::{HdlFile, ToolSuite, XsimToolSuite};

    const BROKEN: &str = "module m(input a, output y)\n  assign y = ~a;\nendmodule\n";

    #[test]
    fn findings_carry_line_and_snippet() {
        let tools = XsimToolSuite::new();
        let report = tools.compile(&[HdlFile::new("m.v", BROKEN)]);
        assert!(!report.success);
        let agent = ReviewAgent::new();
        let findings = agent.findings(&report, BROKEN);
        assert!(!findings.is_empty());
        let f = &findings[0];
        assert!(f.line.is_some());
        assert!(f.snippet.is_some());
        assert_eq!(f.file.as_deref(), Some("m.v"));
    }

    #[test]
    fn corrective_prompt_contains_marker_and_details() {
        let tools = XsimToolSuite::new();
        let report = tools.compile(&[HdlFile::new("m.v", BROKEN)]);
        let agent = ReviewAgent::new();
        let prompt = agent.corrective_prompt(&report, BROKEN, "RTL module");
        assert!(prompt.contains("syntax error"), "{prompt}");
        assert!(prompt.contains("m.v:"), "{prompt}");
        assert!(prompt.contains("offending line"), "{prompt}");
        assert!(prompt.contains("hint:"), "{prompt}");
    }

    #[test]
    fn clean_report_produces_minimal_prompt() {
        let tools = XsimToolSuite::new();
        let good = "module m(input a, output y);\n  assign y = ~a;\nendmodule\n";
        let report = tools.compile(&[HdlFile::new("m.v", good)]);
        assert!(report.success);
        let agent = ReviewAgent::new();
        assert!(agent.findings(&report, good).is_empty());
    }

    #[test]
    fn brief_prompt_omits_locations() {
        let tools = XsimToolSuite::new();
        let report = tools.compile(&[HdlFile::new("m.v", BROKEN)]);
        let agent = ReviewAgent::new();
        let prompt = agent.corrective_prompt_brief(&report, "RTL module");
        assert!(prompt.contains("syntax error"));
        assert!(!prompt.contains("offending line"));
        assert!(!prompt.contains("m.v:"));
    }

    #[test]
    fn hints_cover_common_messages() {
        assert!(hint_for("expected ';', found 'wire'").is_some());
        assert!(hint_for("'foo' is not declared").is_some());
        assert!(hint_for("totally novel message").is_none());
    }
}
