//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so the workspace
//! vendors the subset of proptest it actually uses: the [`proptest!`]
//! macro (with optional `#![proptest_config(..)]` header), the
//! [`strategy::Strategy`] trait with `prop_map`/`prop_flat_map`,
//! integer-range and [`strategy::Just`] strategies, [`prop_oneof!`],
//! [`collection::vec`], simple character-class string strategies
//! (`"[ -~\n\t]{0,400}"`-style patterns), and the
//! `prop_assert!`/`prop_assert_eq!` assertion macros.
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking.** A failing case reports the case number and the
//!   deterministic per-case seed instead of a minimized input.
//! * **Deterministic by default.** Case seeds derive from the test's
//!   module path + name + case index, so failures reproduce exactly on
//!   re-run. Set `PROPTEST_CASES` to change the case count.

#![warn(missing_docs)]

pub mod collection;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// The `use proptest::prelude::*` surface.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Fails the current property case with a message when `cond` is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Fails the current property case when the two values are unequal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), left, right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n {}",
            stringify!($left), stringify!($right), left, right, format!($($fmt)*)
        );
    }};
}

/// Fails the current property case when the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

/// Uniformly picks one of several strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Defines property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` running the body over many generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let cases = $crate::test_runner::resolve_cases(config.cases);
            let test_id = concat!(module_path!(), "::", stringify!($name));
            for case in 0..cases {
                let mut __rng = $crate::test_runner::case_rng(test_id, case);
                $(let $arg = $crate::strategy::Strategy::generate(&($strategy), &mut __rng);)*
                let outcome = (|| -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    ::core::result::Result::Ok(())
                })();
                if let ::core::result::Result::Err(e) = outcome {
                    panic!(
                        "[proptest] {} failed at case {}/{} (deterministic; rerun reproduces it):\n{}",
                        stringify!($name), case + 1, cases, e
                    );
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use crate::test_runner::case_rng;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(a in 3u32..17, b in 0usize..5, c in 1u64..=9) {
            prop_assert!((3..17).contains(&a));
            prop_assert!(b < 5);
            prop_assert!((1..=9).contains(&c));
        }

        #[test]
        fn maps_apply(v in (1u32..10).prop_map(|x| x * 2)) {
            prop_assert_eq!(v % 2, 0);
            prop_assert!((2..20).contains(&v));
        }

        #[test]
        fn flat_maps_chain(v in (1usize..5).prop_flat_map(|n| crate::collection::vec(0u32..10, n))) {
            prop_assert!(!v.is_empty() && v.len() < 5);
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        #[test]
        fn oneof_picks_all_variants(v in prop_oneof![Just(1u8), Just(2u8), Just(3u8)]) {
            prop_assert!((1..=3).contains(&v));
        }

        #[test]
        fn string_patterns_match_class(s in "[a-c]{2,5}") {
            prop_assert!((2..=5).contains(&s.len()));
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 7, ..ProptestConfig::default() })]
        #[test]
        fn config_header_is_accepted(x in 0u32..100) {
            prop_assert!(x < 100);
        }
    }

    #[test]
    fn case_rngs_are_deterministic() {
        use rand::RngCore;
        let mut a = case_rng("t", 3);
        let mut b = case_rng("t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = case_rng("t", 4);
        assert_ne!(case_rng("t", 3).next_u64(), c.next_u64());
    }

    #[test]
    fn oneof_eventually_picks_each_variant() {
        let strat = prop_oneof![Just(0u8), Just(1u8), Just(2u8)];
        let mut seen = [false; 3];
        for case in 0..200 {
            let mut rng = case_rng("oneof", case);
            seen[strat.generate(&mut rng) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }
}
