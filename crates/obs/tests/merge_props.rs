//! Property tests for the metrics determinism contract: histogram and
//! registry `merge` must be associative and commutative, so any
//! fold order the parallel harness produces yields identical bits.

use aivril_obs::{Histogram, MetricsRegistry};
use proptest::collection::vec;
use proptest::prelude::*;

const BOUNDS: &[f64] = &[0.5, 1.0, 2.0, 4.0, 8.0];

fn hist_of(values: &[f64]) -> Histogram {
    let mut h = Histogram::new(BOUNDS);
    for &v in values {
        h.observe(v);
    }
    h
}

fn registry_of(values: &[f64]) -> MetricsRegistry {
    let mut r = MetricsRegistry::new();
    for &v in values {
        r.observe("latency", &[("phase", "sim")], BOUNDS, v);
        r.counter_add("events", &[], 1);
        r.gauge_set("peak", &[], v);
    }
    r
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c), bit for bit.
    #[test]
    fn histogram_merge_is_associative(
        a in vec(0.0f64..12.0, 0..20),
        b in vec(0.0f64..12.0, 0..20),
        c in vec(0.0f64..12.0, 0..20),
    ) {
        let (ha, hb, hc) = (hist_of(&a), hist_of(&b), hist_of(&c));
        let mut left = ha.clone();
        left.merge(&hb);
        left.merge(&hc);
        let mut right_tail = hb.clone();
        right_tail.merge(&hc);
        let mut right = ha.clone();
        right.merge(&right_tail);
        prop_assert_eq!(&left, &right);
        prop_assert_eq!(left.sum_micros(), right.sum_micros());
    }

    /// a ⊕ b == b ⊕ a, bit for bit.
    #[test]
    fn histogram_merge_is_commutative(
        a in vec(0.0f64..12.0, 0..20),
        b in vec(0.0f64..12.0, 0..20),
    ) {
        let (ha, hb) = (hist_of(&a), hist_of(&b));
        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ba = hb.clone();
        ba.merge(&ha);
        prop_assert_eq!(&ab, &ba);
        prop_assert_eq!(ab.count(), (a.len() + b.len()) as u64);
    }

    /// Quantiles are a pure function of the merged integer bucket
    /// state: any partition of the observations into shards, merged in
    /// any order, yields bit-identical p50/p90/p99. This is what lets
    /// `inspect summary` report quantiles over artifacts that were
    /// produced by different worker counts.
    #[test]
    fn quantiles_are_merge_order_invariant(
        a in vec(0.0f64..12.0, 0..20),
        b in vec(0.0f64..12.0, 0..20),
        c in vec(0.0f64..12.0, 1..20),
    ) {
        let (ha, hb, hc) = (hist_of(&a), hist_of(&b), hist_of(&c));
        let mut left = ha.clone();
        left.merge(&hb);
        left.merge(&hc);
        let mut right = hc.clone();
        right.merge(&hb);
        right.merge(&ha);
        // One histogram over the concatenation, observed in yet
        // another order.
        let mut together: Vec<f64> = Vec::new();
        together.extend(&c);
        together.extend(&a);
        together.extend(&b);
        let whole = hist_of(&together);
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            let l = left.quantile(q).expect("c is non-empty");
            let r = right.quantile(q).expect("c is non-empty");
            let w = whole.quantile(q).expect("c is non-empty");
            prop_assert_eq!(l.to_bits(), r.to_bits(), "q={} {} vs {}", q, l, r);
            prop_assert_eq!(l.to_bits(), w.to_bits(), "q={} {} vs {}", q, l, w);
        }
    }

    /// Whole-registry merges (counters + gauges + histograms) are
    /// order-independent, including the rendered dump.
    #[test]
    fn registry_merge_is_order_independent(
        a in vec(0.0f64..12.0, 0..12),
        b in vec(0.0f64..12.0, 0..12),
        c in vec(0.0f64..12.0, 0..12),
    ) {
        let (ra, rb, rc) = (registry_of(&a), registry_of(&b), registry_of(&c));
        let mut left = ra.clone();
        left.merge(&rb);
        left.merge(&rc);
        let mut right = rc.clone();
        right.merge(&ra);
        right.merge(&rb);
        prop_assert_eq!(&left, &right);
        prop_assert_eq!(left.render(), right.render());
    }
}
