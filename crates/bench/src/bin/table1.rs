//! Regenerates the paper's **Table 1**: pass@1_S / pass@1_F / Δ_F for
//! three models × two languages × {baseline, AIVRIL2}.
//!
//! Scale with `AIVRIL_SAMPLES` (default 5), `AIVRIL_TASKS`
//! (default 156) and `AIVRIL_THREADS` (default: all cores; results are
//! bit-identical for any thread count). Run with `--release`; the full
//! table is ~19k pipeline executions.

use aivril_bench::{
    arg_value, results_json, write_json, Flow, Harness, HarnessConfig, ResultSection, Telemetry,
};
use aivril_llm::profiles;
use aivril_metrics::{delta_f, render_table1, suite_metric, suite_metric_with_se, Table1Row};

fn main() {
    let config = HarnessConfig::from_env();
    let telemetry = Telemetry::from_env();
    let harness = Harness::new(config.clone()).with_recorder(telemetry.recorder());
    println!(
        "Running Table 1: {} tasks x {} samples x 3 models x 2 languages x 2 flows \
         on {} thread(s)\n",
        harness.problems().len(),
        config.samples,
        config.effective_threads()
    );
    let start = std::time::Instant::now();

    let mut rows = Vec::new();
    let mut sections = Vec::new();
    let mut max_se: Option<f64> = None;
    for profile in profiles::all() {
        eprintln!("== {} ==", profile.name);
        let mut cells = [[0.0f64; 2]; 4]; // [base_s, base_f, a2_s, a2_f] x [verilog, vhdl]
        for (li, verilog) in [(0usize, true), (1usize, false)] {
            let lang = if verilog { "Verilog" } else { "VHDL" };
            eprintln!("   baseline / {lang} ...");
            let (base, base_stats) = harness.evaluate_with_stats(&profile, verilog, Flow::Baseline);
            eprintln!("   {base_stats}");
            eprintln!("   AIVRIL2  / {lang} ...");
            let (full, full_stats) = harness.evaluate_with_stats(&profile, verilog, Flow::Aivril2);
            eprintln!("   {full_stats}");
            cells[0][li] = suite_metric(&base, 1, |s| s.syntax) * 100.0;
            cells[1][li] = suite_metric(&base, 1, |s| s.functional) * 100.0;
            cells[2][li] = suite_metric(&full, 1, |s| s.syntax) * 100.0;
            let (f_mean, f_se) = suite_metric_with_se(&full, 1, |s| s.functional);
            cells[3][li] = f_mean * 100.0;
            max_se = Some(max_se.map_or(f_se, |m: f64| m.max(f_se)));
            sections.push(ResultSection {
                label: format!("{} {lang} baseline", profile.name),
                outcomes: base,
                stats: base_stats,
            });
            sections.push(ResultSection {
                label: format!("{} {lang} aivril2", profile.name),
                outcomes: full,
                stats: full_stats,
            });
        }
        rows.push(Table1Row {
            config: profile.name.clone(),
            verilog_s: cells[0][0],
            verilog_f: cells[1][0],
            vhdl_s: cells[0][1],
            vhdl_f: cells[1][1],
            delta_verilog: None,
            delta_vhdl: None,
        });
        rows.push(Table1Row {
            config: format!("AIVRIL2 ({})", profile.name),
            verilog_s: cells[2][0],
            verilog_f: cells[3][0],
            vhdl_s: cells[2][1],
            vhdl_f: cells[3][1],
            delta_verilog: delta_f(cells[3][0], cells[1][0]),
            delta_vhdl: delta_f(cells[3][1], cells[1][1]),
        });
    }

    println!(
        "Completed in {:.2}s wall on {} thread(s).\n",
        start.elapsed().as_secs_f64(),
        config.effective_threads()
    );
    println!("{}", render_table1(&rows));
    if let Some(se) = max_se {
        println!(
            "(max standard error across cells, from per-task variation: ±{:.2} points)\n",
            se * 100.0
        );
    }
    if let Some(stats) = harness.cache_stats() {
        println!("[cache] {stats}\n");
    }
    if let Some(path) = arg_value("--json") {
        write_json(&path, &results_json(&sections)).expect("write --json output");
        println!("results written to {path}\n");
    }
    match telemetry.finish() {
        Ok(summary) if !summary.is_empty() => println!("{summary}"),
        Ok(_) => {}
        Err(e) => eprintln!("[obs] export failed: {e}"),
    }
    println!("Paper reference (Table 1):");
    println!("  Llama3-70B           V 71.15/37.82      H  1.28/ 0.00");
    println!("  GPT-4o               V 71.79/51.29      H 39.10/27.56");
    println!("  Claude 3.5 Sonnet    V 91.03/60.23      H 88.46/53.85");
    println!("  AIVRIL2(Llama3)      V 100/55.13 d45.76 H 58.87/32.69 dN/A");
    println!("  AIVRIL2(GPT-4o)      V 100/72.44 d41.23 H 100/59.62 d116.32");
    println!("  AIVRIL2(Claude)      V 100/77.00 d27.84 H 100/66.00 d22.56");
}
