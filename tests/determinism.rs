//! Seed-stability suite: the parallel harness must be bit-identical to
//! the serial one, and any run must be bit-identical to itself.
//!
//! Floating-point comparison is deliberately `to_bits` equality — not
//! an epsilon — because the guarantee under test is that thread count
//! changes *nothing*, including summation order.

use aivril_bench::{run_seed, Flow, Harness, HarnessConfig};
use aivril_llm::profiles;
use aivril_metrics::EvalOutcome;

fn harness(threads: usize) -> Harness {
    Harness::new(HarnessConfig {
        samples: 3,
        task_limit: 8,
        threads,
        ..HarnessConfig::default()
    })
}

/// Bitwise equality of two outcome sets: every bool, every counter, and
/// every f64 bit pattern.
fn assert_bit_identical(a: &[EvalOutcome], b: &[EvalOutcome], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: task count differs");
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.task, y.task, "{what}: task order differs");
        assert_eq!(
            x.samples.len(),
            y.samples.len(),
            "{what}: sample count differs on {}",
            x.task
        );
        for (i, (s, t)) in x.samples.iter().zip(&y.samples).enumerate() {
            let ctx = format!("{what}: task {} sample {i}", x.task);
            assert_eq!(s.syntax, t.syntax, "{ctx}: syntax");
            assert_eq!(s.functional, t.functional, "{ctx}: functional");
            assert_eq!(s.syntax_iters, t.syntax_iters, "{ctx}: syntax_iters");
            assert_eq!(
                s.functional_iters, t.functional_iters,
                "{ctx}: functional_iters"
            );
            assert_eq!(
                s.total_latency.to_bits(),
                t.total_latency.to_bits(),
                "{ctx}: total_latency {} vs {}",
                s.total_latency,
                t.total_latency
            );
            assert_eq!(
                s.syntax_phase_latency.to_bits(),
                t.syntax_phase_latency.to_bits(),
                "{ctx}: syntax_phase_latency"
            );
            assert_eq!(
                s.functional_phase_latency.to_bits(),
                t.functional_phase_latency.to_bits(),
                "{ctx}: functional_phase_latency"
            );
        }
    }
}

#[test]
fn parallel_matches_serial_bitwise() {
    let profile = profiles::claude35_sonnet();
    for flow in [Flow::Aivril2, Flow::Baseline] {
        let serial = harness(1).evaluate(&profile, true, flow);
        let two = harness(2).evaluate(&profile, true, flow);
        let eight = harness(8).evaluate(&profile, true, flow);
        assert_bit_identical(&serial, &two, "serial vs 2 threads");
        assert_bit_identical(&serial, &eight, "serial vs 8 threads");
    }
}

#[test]
fn parallel_matches_serial_bitwise_vhdl() {
    // VHDL exercises the other frontend and the weakest model — the
    // most iteration-heavy (therefore most schedule-sensitive) path.
    let profile = profiles::llama3_70b();
    let serial = harness(1).evaluate(&profile, false, Flow::Aivril2);
    let eight = harness(8).evaluate(&profile, false, Flow::Aivril2);
    assert_bit_identical(&serial, &eight, "serial vs 8 threads (VHDL/Llama3)");
}

#[test]
fn same_seed_twice_is_bit_identical() {
    let profile = profiles::gpt4o();
    let first = harness(4).evaluate(&profile, true, Flow::Aivril2);
    let second = harness(4).evaluate(&profile, true, Flow::Aivril2);
    assert_bit_identical(&first, &second, "same configuration twice");
}

#[test]
fn oversubscribed_thread_count_is_harmless() {
    // More workers than grid cells: excess workers find the cursor
    // exhausted and exit; results are unchanged.
    let profile = profiles::claude35_sonnet();
    let serial = harness(1).evaluate(&profile, true, Flow::Aivril2);
    let many = harness(64).evaluate(&profile, true, Flow::Aivril2);
    assert_bit_identical(&serial, &many, "serial vs 64 threads on 24 runs");
}

#[test]
fn seed_formula_is_stable() {
    // The published derivation: seed = problem * 1_000_003 + sample * 7_919 + 17.
    // Pinned so a silent change to the formula (which would reshuffle
    // every published number) fails loudly.
    assert_eq!(run_seed(0, 0), 17);
    assert_eq!(run_seed(0, 1), 7_936);
    assert_eq!(run_seed(1, 0), 1_000_020);
    assert_eq!(run_seed(155, 4), 155 * 1_000_003 + 4 * 7_919 + 17);
}
