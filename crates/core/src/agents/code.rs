//! The Code Agent: the system's only source of generated code.
//!
//! It translates the user spec into a testbench and then RTL, ingests
//! corrective prompts from the other two agents, and keeps every
//! version it produced so the orchestrator can roll back (Sec. 3.1).

use crate::task::TaskInput;
use aivril_llm::{
    extract_code, protocol, task_header, ChatRequest, GenParams, LanguageModel, LlmError, Message,
};

/// A generated artefact with its modeled latency.
#[derive(Debug, Clone, PartialEq)]
pub struct Generation {
    /// Extracted source code.
    pub code: String,
    /// Modeled LLM seconds for the call.
    pub latency_s: f64,
    /// `true` when the response contained a fenced code block. An
    /// unfenced reply means the model answered in prose (it does not
    /// know the task) — corrective iteration cannot recover from that.
    pub fenced: bool,
}

/// The Code Agent: owns the conversation with the underlying model.
pub struct CodeAgent<'m> {
    model: &'m mut dyn LanguageModel,
    messages: Vec<Message>,
    params: GenParams,
    versions: Vec<String>,
}

impl<'m> CodeAgent<'m> {
    /// Starts a conversation for `task` on top of `model`.
    pub fn new(model: &'m mut dyn LanguageModel, task: &TaskInput, params: GenParams) -> Self {
        let language = if task.verilog { "Verilog" } else { "VHDL" };
        let system = format!(
            "You are the Code Agent of the AIVRIL2 RTL design framework. \
             You write complete, synthesizable {language} and comprehensive \
             self-checking testbenches. Always answer with a single fenced \
             code block containing the full file."
        );
        let mut params = params;
        params.seed = task.seed;
        CodeAgent {
            model,
            messages: vec![Message::system(system)],
            params,
            versions: Vec::new(),
        }
    }

    /// Sets the transport-retry counter mixed into the next request's
    /// [`GenParams`]. The resilience layer bumps this per retry so a
    /// failed attempt re-rolls its fault; content plans ignore it.
    pub fn set_attempt(&mut self, attempt: u32) {
        self.params.attempt = attempt;
    }

    /// One prompt/response exchange. Commit-on-success: a transport
    /// fault leaves the conversation and version history untouched, so
    /// the caller can retry the same exchange (with a bumped attempt
    /// counter) without corrupting state.
    fn roundtrip(&mut self, prompt: String) -> Result<Generation, LlmError> {
        let mut messages = self.messages.clone();
        messages.push(Message::user(prompt.clone()));
        let request = ChatRequest {
            messages,
            params: self.params,
        };
        let response = self.model.chat(&request)?;
        self.messages.push(Message::user(prompt));
        self.messages
            .push(Message::assistant(response.content.clone()));
        let fenced = response.content.contains("```");
        let code = extract_code(&response.content);
        self.versions.push(code.clone());
        Ok(Generation {
            code,
            latency_s: response.latency_s,
            fenced,
        })
    }

    /// Step ②: generate the testbench from the spec, before any RTL
    /// exists (the testbench-first methodology).
    pub fn generate_testbench(&mut self, task: &TaskInput) -> Result<Generation, LlmError> {
        let prompt = format!(
            "{}{} named `tb` for the design described below. Cover every \
             behaviour a correct implementation must exhibit; report each \
             mismatch as a numbered failing test case and print \
             \"All tests passed successfully!\" when everything passes.\n\n\
             Specification:\n{}",
            task_header(&task.name, task.verilog),
            protocol::REQ_TB,
            task.spec
        );
        self.roundtrip(prompt)
    }

    /// Step ③: generate the RTL, with the (frozen) testbench as an
    /// additional reference.
    pub fn generate_rtl(
        &mut self,
        task: &TaskInput,
        testbench: &str,
    ) -> Result<Generation, LlmError> {
        let prompt = format!(
            "{}{} `{}` implementing the specification below. The testbench \
             that will verify it is attached for reference; do not modify \
             it.\n\nSpecification:\n{}\nReference testbench:\n```\n{}```",
            task_header(&task.name, task.verilog),
            protocol::REQ_RTL,
            task.module_name,
            task.spec,
            testbench
        );
        self.roundtrip(prompt)
    }

    /// Applies a corrective prompt from the Review or Verification
    /// agent and returns the revised artefact.
    pub fn revise(&mut self, corrective_prompt: String) -> Result<Generation, LlmError> {
        self.roundtrip(corrective_prompt)
    }

    /// All versions produced so far, oldest first — the implicit version
    /// history Sec. 3.1 describes.
    #[must_use]
    pub fn versions(&self) -> &[String] {
        &self.versions
    }

    /// Rolls the conversation back to just after version `index` was
    /// produced, discarding later exchanges (used when a revision made
    /// things worse).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn rollback_to(&mut self, index: usize) {
        assert!(index < self.versions.len(), "rollback index out of range");
        self.versions.truncate(index + 1);
        // Each version corresponds to one (user, assistant) pair after
        // the system message.
        self.messages.truncate(1 + 2 * (index + 1));
    }
}

impl std::fmt::Debug for CodeAgent<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CodeAgent")
            .field("model", &self.model.name())
            .field("messages", &self.messages.len())
            .field("versions", &self.versions.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aivril_llm::{ChatResponse, TokenUsage};

    /// A scripted fake model for agent-level tests.
    struct Scripted {
        replies: Vec<String>,
        at: usize,
    }

    impl LanguageModel for Scripted {
        fn name(&self) -> &str {
            "scripted"
        }
        fn chat(&mut self, _request: &ChatRequest) -> Result<ChatResponse, LlmError> {
            let content = self.replies[self.at.min(self.replies.len() - 1)].clone();
            self.at += 1;
            Ok(ChatResponse {
                content,
                usage: TokenUsage::default(),
                latency_s: 1.0,
            })
        }
    }

    /// Fails the first `fail_first` calls with a timeout, then delegates.
    struct Flaky {
        inner: Scripted,
        fail_first: usize,
        calls: usize,
    }

    impl LanguageModel for Flaky {
        fn name(&self) -> &str {
            "flaky"
        }
        fn chat(&mut self, request: &ChatRequest) -> Result<ChatResponse, LlmError> {
            self.calls += 1;
            if self.calls <= self.fail_first {
                return Err(LlmError::Timeout { elapsed_s: 30.0 });
            }
            self.inner.chat(request)
        }
    }

    fn task() -> TaskInput {
        TaskInput {
            name: "t".into(),
            module_name: "m".into(),
            spec: "do things".into(),
            verilog: true,
            seed: 9,
        }
    }

    #[test]
    fn generation_tracks_versions_and_extracts_code() {
        let mut model = Scripted {
            replies: vec![
                "```verilog\nmodule tb;\nendmodule\n```".into(),
                "```verilog\nmodule m;\nendmodule\n```".into(),
                "```verilog\nmodule m2;\nendmodule\n```".into(),
            ],
            at: 0,
        };
        let t = task();
        let mut agent = CodeAgent::new(&mut model, &t, GenParams::default());
        let tb = agent.generate_testbench(&t).expect("scripted never faults");
        assert_eq!(tb.code, "module tb;\nendmodule\n");
        assert!(tb.fenced);
        let rtl = agent
            .generate_rtl(&t, &tb.code)
            .expect("scripted never faults");
        assert_eq!(rtl.code, "module m;\nendmodule\n");
        let fixed = agent
            .revise("There is a syntax error.".into())
            .expect("scripted never faults");
        assert_eq!(fixed.code, "module m2;\nendmodule\n");
        assert_eq!(agent.versions().len(), 3);
    }

    #[test]
    fn rollback_discards_later_versions() {
        let mut model = Scripted {
            replies: vec![
                "```verilog\nv0\n```".into(),
                "```verilog\nv1\n```".into(),
                "```verilog\nv2\n```".into(),
            ],
            at: 0,
        };
        let t = task();
        let mut agent = CodeAgent::new(&mut model, &t, GenParams::default());
        agent.generate_testbench(&t).expect("scripted never faults");
        agent.revise("fix".into()).expect("scripted never faults");
        agent
            .revise("fix again".into())
            .expect("scripted never faults");
        assert_eq!(agent.versions().len(), 3);
        agent.rollback_to(0);
        assert_eq!(agent.versions().len(), 1);
        assert_eq!(agent.versions()[0], "v0\n");
    }

    #[test]
    fn prompts_carry_protocol_headers() {
        let mut model = Scripted {
            replies: vec!["```verilog\nx\n```".into()],
            at: 0,
        };
        let t = task();
        let mut agent = CodeAgent::new(&mut model, &t, GenParams::default());
        agent.generate_testbench(&t).expect("scripted never faults");
        let prompt = &agent.messages[1].content;
        assert!(prompt.contains("Design task: t."));
        assert!(prompt.contains("Target language: Verilog."));
        assert!(prompt.contains(protocol::REQ_TB));
    }

    #[test]
    fn seed_comes_from_task() {
        let mut model = Scripted {
            replies: vec!["x".into()],
            at: 0,
        };
        let t = task();
        let agent = CodeAgent::new(&mut model, &t, GenParams::default());
        assert_eq!(agent.params.seed, 9);
    }

    #[test]
    fn failed_exchange_leaves_conversation_retryable() {
        let mut model = Flaky {
            inner: Scripted {
                replies: vec!["```verilog\nmodule tb;\nendmodule\n```".into()],
                at: 0,
            },
            fail_first: 2,
            calls: 0,
        };
        let t = task();
        let mut agent = CodeAgent::new(&mut model, &t, GenParams::default());
        for attempt in 0..2u32 {
            agent.set_attempt(attempt);
            let err = agent
                .generate_testbench(&t)
                .expect_err("first calls time out");
            assert_eq!(err.class(), "timeout");
            // Commit-on-success: no user message, no version recorded.
            assert_eq!(agent.messages.len(), 1, "attempt {attempt}");
            assert!(agent.versions().is_empty(), "attempt {attempt}");
        }
        agent.set_attempt(2);
        let tb = agent.generate_testbench(&t).expect("third attempt works");
        assert_eq!(tb.code, "module tb;\nendmodule\n");
        assert_eq!(agent.messages.len(), 3);
        assert_eq!(agent.versions().len(), 1);
    }

    #[test]
    fn unfenced_reply_is_flagged() {
        let mut model = Scripted {
            replies: vec!["I could not identify the design task; please restate it.".into()],
            at: 0,
        };
        let t = task();
        let mut agent = CodeAgent::new(&mut model, &t, GenParams::default());
        let gen = agent.generate_testbench(&t).expect("no transport fault");
        assert!(!gen.fenced);
    }
}
