//! Regenerates the paper's **Figure 3**: average end-to-end latency per
//! model × language, split into baseline vs AIVRIL2's syntax-loop and
//! functional-loop phases, plus the convergence cycle counts quoted in
//! Sec. 4.2 (e.g. Llama3/VHDL ≈ 3.95 syntax and 4.7 functional cycles;
//! Claude/Verilog ≈ 2 and 3).

use aivril_bench::{
    arg_value, results_json, write_json, Flow, Harness, HarnessConfig, ResultSection, Telemetry,
};
use aivril_llm::profiles;
use aivril_metrics::{figure3, render_figure3};

fn main() {
    let config = HarnessConfig::from_env();
    let telemetry = Telemetry::from_env();
    let harness = Harness::new(config.clone()).with_recorder(telemetry.recorder());
    println!(
        "Running Figure 3: {} tasks x {} samples x 3 models x 2 languages x 2 flows \
         on {} thread(s)\n",
        harness.problems().len(),
        config.samples,
        config.effective_threads()
    );

    let mut rows = Vec::new();
    let mut sections = Vec::new();
    for profile in profiles::all() {
        for verilog in [true, false] {
            let lang = if verilog { "Verilog" } else { "VHDL" };
            eprintln!("== {} / {lang} ==", profile.name);
            let (base, base_stats) = harness.evaluate_with_stats(&profile, verilog, Flow::Baseline);
            let (full, stats) = harness.evaluate_with_stats(&profile, verilog, Flow::Aivril2);
            eprintln!("   {stats}");
            rows.push(figure3(format!("{} / {lang}", profile.name), &base, &full));
            sections.push(ResultSection {
                label: format!("{} {lang} baseline", profile.name),
                outcomes: base,
                stats: base_stats,
            });
            sections.push(ResultSection {
                label: format!("{} {lang} aivril2", profile.name),
                outcomes: full,
                stats,
            });
        }
    }

    if let Some(stats) = harness.cache_stats() {
        println!("[cache] {stats}\n");
    }
    if let Some(path) = arg_value("--json") {
        write_json(&path, &results_json(&sections)).expect("write --json output");
        println!("results written to {path}\n");
    }
    match telemetry.finish() {
        Ok(summary) if !summary.is_empty() => println!("{summary}"),
        Ok(_) => {}
        Err(e) => eprintln!("[obs] export failed: {e}"),
    }
    println!("{}", render_figure3(&rows));
    let worst = rows.iter().map(|r| r.total()).fold(0.0f64, f64::max);
    println!("Worst-case average AIVRIL2 latency: {worst:.2}s (paper: did not exceed 42s).");
    println!(
        "Paper reference points: Llama3/VHDL baseline 6.68s vs ~39.29s AIVRIL2 (~6x);\n\
         Claude/Verilog ~2x; Llama3/VHDL cycles ~3.95 syntax + 4.7 functional;\n\
         Claude/Verilog cycles ~2 syntax + 3 functional."
    );
}
