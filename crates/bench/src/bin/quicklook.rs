//! Smoke-test harness: a miniature Table-1-shaped run (few tasks, few
//! samples, one model) that finishes in seconds. Useful for sanity
//! checking after changes, before committing to the full table runs.
//!
//! Observability: honours `AIVRIL_TRACE_JSON`, `AIVRIL_TRACE_CHROME`
//! and `AIVRIL_METRICS` (see README), and `--json <path>` writes the
//! outcomes and stats as schema-versioned JSON.

use aivril_bench::{
    arg_value, results_json, write_json, Flow, Harness, HarnessConfig, ResultSection, Telemetry,
};
use aivril_llm::profiles;
use aivril_metrics::suite_metric;

fn main() {
    let config = HarnessConfig {
        samples: 2,
        task_limit: 10,
        ..HarnessConfig::from_env()
    };
    let telemetry = Telemetry::from_env();
    let harness = Harness::new(config.clone()).with_recorder(telemetry.recorder());
    let profile = profiles::claude35_sonnet();
    println!(
        "quicklook: {} tasks x {} samples on {} thread(s), {}",
        harness.problems().len(),
        config.samples,
        config.effective_threads(),
        profile.name
    );

    let mut sections = Vec::new();
    for verilog in [true, false] {
        let lang = if verilog { "Verilog" } else { "VHDL" };
        let (base, base_stats) = harness.evaluate_with_stats(&profile, verilog, Flow::Baseline);
        let (full, stats) = harness.evaluate_with_stats(&profile, verilog, Flow::Aivril2);
        println!(
            "  {lang:8}  baseline S {:5.1}% F {:5.1}%   AIVRIL2 S {:5.1}% F {:5.1}%",
            suite_metric(&base, 1, |s| s.syntax) * 100.0,
            suite_metric(&base, 1, |s| s.functional) * 100.0,
            suite_metric(&full, 1, |s| s.syntax) * 100.0,
            suite_metric(&full, 1, |s| s.functional) * 100.0,
        );
        println!("  {stats}");
        sections.push(ResultSection {
            label: format!("{} {lang} baseline", profile.name),
            outcomes: base,
            stats: base_stats,
        });
        sections.push(ResultSection {
            label: format!("{} {lang} aivril2", profile.name),
            outcomes: full,
            stats,
        });
    }

    if let Some(stats) = harness.cache_stats() {
        println!("[cache] {stats}");
    }
    if let Some(path) = arg_value("--json") {
        write_json(&path, &results_json(&sections)).expect("write --json output");
        println!("results written to {path}");
    }
    match telemetry.finish() {
        Ok(summary) if !summary.is_empty() => println!("{summary}"),
        Ok(_) => {}
        Err(e) => eprintln!("[obs] export failed: {e}"),
    }
    println!("ok");
}
