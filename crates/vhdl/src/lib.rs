//! VHDL-93 subset frontend: lexer, parser, AST and elaborator.
//!
//! The `xvhdl` analog in the AIVRIL2 reproduction. Both this crate and
//! `aivril-verilog` lower to the same [`aivril_hdl::ir::Design`], which
//! is what makes the toolchain — like the Vivado flow the paper uses —
//! language-agnostic: the agent loops never care which frontend produced
//! the design they compile and simulate.
//!
//! Supported subset: entities with generics/ports over `std_logic`,
//! `std_logic_vector`/`unsigned`/`signed`, `integer` and `boolean`;
//! architectures with signal/constant declarations; processes
//! (sensitivity lists, `if`/`elsif`, `case`, `for`/`while` loops, `wait
//! for`/`wait until`/`wait`, `assert`/`report`); concurrent and
//! conditional assignments; direct entity instantiation with generic and
//! port maps; `rising_edge`/`falling_edge` and the common numeric_std
//! conversions.
//!
//! # Example
//!
//! ```
//! use aivril_hdl::source::SourceMap;
//! use aivril_vhdl::compile;
//!
//! let mut sources = SourceMap::new();
//! sources.add_file(
//!     "inv.vhd",
//!     "entity inv is port (a : in std_logic; y : out std_logic); end entity;\n\
//!      architecture rtl of inv is begin y <= not a; end architecture;\n",
//! );
//! let design = compile(&sources, "inv").map_err(|d| d.render(&sources))?;
//! assert_eq!(design.nets.len(), 2);
//! # Ok::<(), String>(())
//! ```

#![warn(missing_docs)]

pub mod ast;
mod elab;
mod lexer;
mod parser;

pub use elab::elaborate;
pub use lexer::{lex, Token, TokenKind};
pub use parser::parse;

use aivril_hdl::diag::Diagnostics;
use aivril_hdl::ir::Design;
use aivril_hdl::source::{FileId, SourceMap};

/// Lexes and parses a single source file.
///
/// The per-file granularity exists so callers (the EDA layer's
/// incremental compile path) can memoize parse results keyed by file
/// content; [`analyze`] is a loop over this function.
#[must_use]
pub fn analyze_file(file: FileId, text: &str) -> (ast::DesignFile, Diagnostics) {
    let mut diags = Diagnostics::new();
    let tokens = lexer::lex(file, text, &mut diags);
    let unit = parser::parse(tokens, &mut diags);
    (unit, diags)
}

/// Lexes and parses every file in `sources` (the `xvhdl` analysis step).
#[must_use]
pub fn analyze(sources: &SourceMap) -> (ast::DesignFile, Diagnostics) {
    let mut diags = Diagnostics::new();
    let mut file = ast::DesignFile::default();
    for (id, source) in sources.iter() {
        let (mut part, part_diags) = analyze_file(id, source.text());
        file.entities.append(&mut part.entities);
        file.architectures.append(&mut part.architectures);
        diags.extend(part_diags);
    }
    (file, diags)
}

/// Compiles `sources` and elaborates entity `top` into a simulatable
/// design.
///
/// # Errors
///
/// Returns the accumulated diagnostics when any syntax or semantic error
/// occurs.
pub fn compile(sources: &SourceMap, top: &str) -> Result<Design, Diagnostics> {
    let (file, mut diags) = analyze(sources);
    if diags.has_errors() {
        return Err(diags);
    }
    match elab::elaborate(&file, top, &mut diags) {
        Some(design) if !diags.has_errors() => Ok(design),
        _ => Err(diags),
    }
}

/// Picks a plausible top entity: one never instantiated by another
/// architecture, preferring later definitions (testbench convention).
#[must_use]
pub fn find_top(file: &ast::DesignFile) -> Option<String> {
    let mut instantiated = std::collections::HashSet::new();
    for a in &file.architectures {
        for s in &a.stmts {
            if let ast::ConcurrentStmt::Instance { entity, .. } = s {
                instantiated.insert(entity.to_ascii_lowercase());
            }
        }
    }
    file.entities
        .iter()
        .rev()
        .find(|e| !instantiated.contains(&e.name))
        .map(|e| e.name.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use aivril_sim::{SimConfig, Simulator};

    fn sim(src: &str, top: &str) -> (aivril_sim::SimResult, Design) {
        let mut sources = SourceMap::new();
        sources.add_file("t.vhd", src);
        let design = match compile(&sources, top) {
            Ok(d) => d,
            Err(diags) => panic!("compile failed:\n{}", diags.render(&sources)),
        };
        let result = Simulator::new(&design, SimConfig::default()).run();
        (result, design)
    }

    #[test]
    fn end_to_end_combinational() {
        let (r, _) = sim(
            "entity andgate is port (a, b : in std_logic; y : out std_logic); end entity;\n\
             architecture rtl of andgate is begin y <= a and b; end architecture;\n\
             entity tb is end entity;\n\
             architecture sim of tb is\n  signal a, b, y : std_logic;\nbegin\n\
             dut: entity work.andgate port map (a => a, b => b, y => y);\n\
             process\nbegin\n  a <= '1'; b <= '1';\n  wait for 1 ns;\n\
             assert y = '1' report \"Test Case 1 Failed: y should be 1\" severity error;\n\
             a <= '0';\n  wait for 1 ns;\n\
             assert y = '0' report \"Test Case 2 Failed: y should be 0\" severity error;\n\
             report \"All tests passed successfully!\" severity note;\n  wait;\nend process;\n\
             end architecture;\n",
            "tb",
        );
        assert_eq!(r.error_count, 0, "log: {}", r.log_text());
        assert!(r.log_text().contains("All tests passed successfully!"));
    }

    #[test]
    fn end_to_end_counter_with_async_reset() {
        let (r, _) = sim(
            "entity counter is\n  generic (width : integer := 4);\n\
             port (clk, rst : in std_logic; q : out std_logic_vector(width-1 downto 0));\n\
             end entity;\n\
             architecture rtl of counter is\n\
             signal count : unsigned(width-1 downto 0) := (others => '0');\nbegin\n\
             process (clk, rst)\n  begin\n    if rst = '1' then\n\
             count <= (others => '0');\n    elsif rising_edge(clk) then\n\
             count <= count + 1;\n    end if;\n  end process;\n\
             q <= std_logic_vector(count);\nend architecture;\n\
             entity tb is end entity;\n\
             architecture sim of tb is\n\
             signal clk : std_logic := '0';\n  signal rst : std_logic := '1';\n\
             signal q : std_logic_vector(3 downto 0);\n  signal done : std_logic := '0';\nbegin\n\
             dut: entity work.counter port map (clk => clk, rst => rst, q => q);\n\
             clkgen: process\nbegin\n  while done = '0' loop\n    clk <= '0';\n\
             wait for 5 ns;\n    clk <= '1';\n    wait for 5 ns;\n  end loop;\n  wait;\n\
             end process;\n\
             stim: process\nbegin\n  wait for 12 ns;\n  rst <= '0';\n  wait for 100 ns;\n\
             assert q = \"1010\" report \"Test Case 1 Failed: q should be 10\" severity error;\n\
             report \"All tests passed successfully!\" severity note;\n  done <= '1';\n  wait;\n\
             end process;\nend architecture;\n",
            "tb",
        );
        assert_eq!(r.error_count, 0, "log: {}", r.log_text());
        assert!(r.log_text().contains("All tests passed"));
    }

    #[test]
    fn async_reset_fires_between_edges() {
        // Reset asserted away from any clock edge must clear the counter,
        // and releasing it must not count as a clock.
        let (r, _) = sim(
            "entity c is port (clk, rst : in std_logic; q : out std_logic_vector(3 downto 0));\n\
             end entity;\n\
             architecture rtl of c is\n  signal n : unsigned(3 downto 0) := (others => '0');\n\
             begin\n  process (clk, rst)\n  begin\n    if rst = '1' then\n      n <= (others => '0');\n\
             elsif rising_edge(clk) then\n      n <= n + 1;\n    end if;\n  end process;\n\
             q <= std_logic_vector(n);\nend architecture;\n\
             entity tb is end entity;\narchitecture sim of tb is\n\
             signal clk, rst : std_logic := '0';\n  signal q : std_logic_vector(3 downto 0);\n\
             begin\n  dut: entity work.c port map (clk => clk, rst => rst, q => q);\n\
             process\nbegin\n\
             clk <= '1'; wait for 1 ns; clk <= '0'; wait for 1 ns;\n\
             clk <= '1'; wait for 1 ns; clk <= '0'; wait for 1 ns;\n\
             assert q = \"0010\" report \"Test Case 1 Failed\" severity error;\n\
             rst <= '1'; wait for 1 ns;\n\
             assert q = \"0000\" report \"Test Case 2 Failed: async reset\" severity error;\n\
             rst <= '0'; wait for 1 ns;\n\
             assert q = \"0000\" report \"Test Case 3 Failed: reset release must not clock\" severity error;\n\
             report \"ok\"; wait;\nend process;\nend architecture;\n",
            "tb",
        );
        assert_eq!(r.error_count, 0, "log: {}", r.log_text());
    }

    #[test]
    fn case_statement_mux() {
        let (r, _) = sim(
            "entity mux is port (s : in std_logic_vector(1 downto 0);\n\
             d : in std_logic_vector(3 downto 0); y : out std_logic); end entity;\n\
             architecture rtl of mux is begin\n\
             process (s, d)\n  begin\n    case s is\n\
             when \"00\" => y <= d(0);\n      when \"01\" => y <= d(1);\n\
             when \"10\" => y <= d(2);\n      when others => y <= d(3);\n\
             end case;\n  end process;\nend architecture;\n\
             entity tb is end entity;\narchitecture sim of tb is\n\
             signal s : std_logic_vector(1 downto 0);\n\
             signal d : std_logic_vector(3 downto 0) := \"1010\";\n  signal y : std_logic;\n\
             begin\n  dut: entity work.mux port map (s => s, d => d, y => y);\n\
             process\nbegin\n  s <= \"00\"; wait for 1 ns;\n\
             assert y = '0' report \"tc0\" severity error;\n\
             s <= \"01\"; wait for 1 ns;\n  assert y = '1' report \"tc1\" severity error;\n\
             s <= \"10\"; wait for 1 ns;\n  assert y = '0' report \"tc2\" severity error;\n\
             s <= \"11\"; wait for 1 ns;\n  assert y = '1' report \"tc3\" severity error;\n\
             wait;\nend process;\nend architecture;\n",
            "tb",
        );
        assert_eq!(r.error_count, 0, "log: {}", r.log_text());
    }

    #[test]
    fn failing_assert_counts_errors() {
        let (r, _) = sim(
            "entity tb is end entity;\narchitecture sim of tb is\n\
             signal x : std_logic := '0';\nbegin\n  process\nbegin\n  wait for 1 ns;\n\
             assert x = '1' report \"Test Case 1 Failed: x should be 1\" severity error;\n\
             wait;\nend process;\nend architecture;\n",
            "tb",
        );
        assert_eq!(r.error_count, 1);
        assert!(r.log_text().contains("Test Case 1 Failed"));
    }

    #[test]
    fn severity_failure_stops_simulation() {
        let (r, _) = sim(
            "entity tb is end entity;\narchitecture sim of tb is\nbegin\n  process\nbegin\n\
             report \"fatal condition\" severity failure;\n  wait for 100 ns;\n\
             report \"unreachable\";\n  wait;\nend process;\nend architecture;\n",
            "tb",
        );
        assert!(r.finished);
        assert_eq!(r.error_count, 1);
        assert!(!r.log_text().contains("unreachable"));
    }

    #[test]
    fn undeclared_signal_is_error() {
        let mut sources = SourceMap::new();
        sources.add_file(
            "t.vhd",
            "entity e is port (y : out std_logic); end entity;\n\
             architecture a of e is begin y <= ghost; end architecture;\n",
        );
        let err = compile(&sources, "e").expect_err("must fail");
        let log = err.render(&sources);
        assert!(log.contains("ghost"), "{log}");
        assert!(log.contains("[t.vhd:2]"), "{log}");
    }

    #[test]
    fn missing_semicolon_reports_line() {
        let mut sources = SourceMap::new();
        sources.add_file(
            "c.vhd",
            "entity e is\n  port (a : in std_logic)\nend entity;\n",
        );
        let err = compile(&sources, "e").expect_err("must fail");
        let log = err.render(&sources);
        assert!(log.contains("ERROR: [VRFC"), "{log}");
        assert!(log.contains("c.vhd"), "{log}");
    }

    #[test]
    fn wait_until_rising_edge() {
        let (r, _) = sim(
            "entity tb is end entity;\narchitecture sim of tb is\n\
             signal clk : std_logic := '0';\n  signal hits : integer := 0;\nbegin\n\
             clkgen: process\nbegin\n  wait for 5 ns;\n  clk <= not clk;\n\
             wait for 5 ns;\n  clk <= not clk;\n  wait for 5 ns;\n  clk <= not clk;\n  wait;\n\
             end process;\n\
             watcher: process\nbegin\n  wait until rising_edge(clk);\n  hits <= hits + 1;\n\
             wait until rising_edge(clk);\n  hits <= hits + 1;\n\
             wait for 1 ns;\n\
             assert hits = 2 report \"Test Case 1 Failed: expected 2 rising edges\" severity error;\n\
             report \"done\";\n  wait;\nend process;\nend architecture;\n",
            "tb",
        );
        assert_eq!(r.error_count, 0, "log: {}", r.log_text());
        assert!(r.log_text().contains("done"));
    }

    #[test]
    fn generics_and_maps_apply() {
        let (r, design) = sim(
            "entity wideand is\n  generic (w : integer := 2);\n\
             port (a : in std_logic_vector(w-1 downto 0); y : out std_logic);\nend entity;\n\
             architecture rtl of wideand is\nbegin\n\
             y <= '1' when a = \"11111111\" else '0';\nend architecture;\n\
             entity tb is end entity;\narchitecture sim of tb is\n\
             signal a : std_logic_vector(7 downto 0);\n  signal y : std_logic;\nbegin\n\
             dut: entity work.wideand generic map (w => 8) port map (a => a, y => y);\n\
             process\nbegin\n  a <= x\"FF\";\n  wait for 1 ns;\n\
             assert y = '1' report \"tc1\" severity error;\n\
             a <= x\"7F\";\n  wait for 1 ns;\n  assert y = '0' report \"tc2\" severity error;\n\
             wait;\nend process;\nend architecture;\n",
            "tb",
        );
        assert_eq!(r.error_count, 0, "log: {}", r.log_text());
        assert!(design.find_net("dut.a").is_some());
    }

    #[test]
    fn find_top_prefers_testbench() {
        let mut sources = SourceMap::new();
        sources.add_file(
            "t.vhd",
            "entity leaf is end entity;\narchitecture a of leaf is begin end architecture;\n\
             entity tb is end entity;\narchitecture s of tb is begin\n\
             u: entity work.leaf port map (x => '0');\nend architecture;\n",
        );
        let (file, _) = analyze(&sources);
        assert_eq!(find_top(&file).as_deref(), Some("tb"));
    }

    #[test]
    fn for_loop_accumulates() {
        let (r, _) = sim(
            "entity tb is end entity;\narchitecture sim of tb is\n\
             signal acc : integer := 0;\nbegin\n  process\n  begin\n\
             for i in 1 to 4 loop\n      acc <= acc + i;\n      wait for 1 ns;\n\
             end loop;\n\
             assert acc = 10 report \"Test Case 1 Failed: sum 1..4\" severity error;\n\
             wait;\n  end process;\nend architecture;\n",
            "tb",
        );
        assert_eq!(r.error_count, 0, "log: {}", r.log_text());
    }
}

#[cfg(test)]
mod variable_tests {
    use super::*;
    use aivril_sim::{SimConfig, Simulator};

    #[test]
    fn process_variables_have_immediate_semantics() {
        // A variable updates immediately within the activation; a signal
        // would not. The classic popcount-with-variable idiom.
        let src = "\
entity ones is
  port (d : in std_logic_vector(3 downto 0); n : out std_logic_vector(2 downto 0));
end entity;
architecture rtl of ones is
begin
  process (d)
    variable acc : std_logic_vector(2 downto 0);
  begin
    acc := \"000\";
    for i in 0 to 3 loop
      if d(i) = '1' then
        acc := acc + 1;
      end if;
    end loop;
    n <= acc;
  end process;
end architecture;
entity tb is end entity;
architecture sim of tb is
  signal d : std_logic_vector(3 downto 0);
  signal n : std_logic_vector(2 downto 0);
begin
  dut: entity work.ones port map (d => d, n => n);
  process
  begin
    d <= \"1011\"; wait for 1 ns;
    assert n = \"011\" report \"Test Case 1 Failed: expected 3\" severity error;
    d <= \"0000\"; wait for 1 ns;
    assert n = \"000\" report \"Test Case 2 Failed: expected 0\" severity error;
    d <= \"1111\"; wait for 1 ns;
    assert n = \"100\" report \"Test Case 3 Failed: expected 4\" severity error;
    report \"All tests passed successfully!\";
    wait;
  end process;
end architecture;
";
        let mut sources = SourceMap::new();
        sources.add_file("t.vhd", src);
        let design = match compile(&sources, "tb") {
            Ok(d) => d,
            Err(e) => panic!("{}", e.render(&sources)),
        };
        let r = Simulator::new(&design, SimConfig::default()).run();
        assert_eq!(r.error_count, 0, "log: {}", r.log_text());
        assert!(r.log_text().contains("All tests passed"));
    }

    #[test]
    fn variables_persist_across_activations() {
        // A variable keeps its value between process runs (LRM 10.x):
        // count rising edges into a variable, expose via a signal.
        let src = "\
entity tb is end entity;
architecture sim of tb is
  signal clk : std_logic := '0';
  signal total : std_logic_vector(3 downto 0);
begin
  counterp: process (clk)
    variable seen : std_logic_vector(3 downto 0) := \"0000\";
  begin
    if rising_edge(clk) then
      seen := seen + 1;
    end if;
    total <= seen;
  end process;
  stim: process
  begin
    clk <= '1'; wait for 1 ns; clk <= '0'; wait for 1 ns;
    clk <= '1'; wait for 1 ns; clk <= '0'; wait for 1 ns;
    clk <= '1'; wait for 1 ns;
    assert total = \"0011\" report \"Test Case 1 Failed: three rising edges seen\" severity error;
    wait for 1 ns;
    assert total = \"0011\" report \"Test Case 2 Failed: count must hold\" severity error;
    report \"All tests passed successfully!\";
    wait;
  end process;
end architecture;
";
        let mut sources = SourceMap::new();
        sources.add_file("t.vhd", src);
        let design = match compile(&sources, "tb") {
            Ok(d) => d,
            Err(e) => panic!("{}", e.render(&sources)),
        };
        let r = Simulator::new(&design, SimConfig::default()).run();
        assert_eq!(r.error_count, 0, "log: {}", r.log_text());
    }
}
