//! Bounded per-connection send queues: the backpressure boundary
//! between job execution and client sockets.
//!
//! Submission handling and job execution must never perform socket I/O
//! themselves — the `ack`/`reject` frame is emitted under the
//! [`crate::queue::JobQueue`] state lock (to pin its ordering before
//! the job becomes claimable), and a blocking write there would let one
//! stalled client freeze every tenant's admission path; a blocking
//! write from a worker thread would pin the worker for as long as the
//! client dawdles. Instead every frame producer pushes into the
//! connection's [`Outbox`] — a bounded in-memory queue drained by a
//! dedicated writer thread that owns all socket writes for that
//! connection.
//!
//! Overload policy: a client that stops reading fills first its socket
//! buffers (the writer blocks, bounded by the configured write
//! timeout), then the outbox. On overflow — or on any write error or
//! timeout — the connection is *condemned*: the socket is shut down,
//! queued frames are dropped, and every later push becomes a no-op.
//! The jobs themselves still run to completion and feed the admission
//! accounting; only their frames vanish, exactly like writing to a
//! disconnected client before this layer existed. Memory per
//! connection is bounded by `cap` frames — which must exceed the
//! largest single-job frame burst, because a completed job's whole
//! transcript is enqueued faster than the writer can drain it and
//! overflow condemns reading clients just the same.

use std::collections::VecDeque;
use std::io::Write;
use std::net::{Shutdown, TcpStream};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::Duration;

#[derive(Default)]
struct OutboxState {
    frames: VecDeque<String>,
    /// The writer has popped a frame and is writing it to the socket.
    writing: bool,
    /// No further pushes will arrive; the writer drains and exits.
    closed: bool,
    /// Connection condemned (overflow / write failure): drop
    /// everything, every push is a no-op, the writer exits.
    dead: bool,
}

/// One connection's bounded send queue plus the socket its writer
/// thread drains into. Shared (`Arc`) between the connection handler,
/// the job sinks and the writer thread.
pub struct Outbox {
    cap: usize,
    stream: TcpStream,
    state: Mutex<OutboxState>,
    cvar: Condvar,
}

impl Outbox {
    /// Wraps `stream` in an outbox holding at most `cap` frames, sets
    /// the socket write timeout to `send_timeout_s`, and spawns the
    /// writer thread. Frames pushed before the writer is condemned are
    /// written in push order, one line each.
    pub fn spawn(stream: TcpStream, cap: usize, send_timeout_s: f64) -> Arc<Outbox> {
        // A zero timeout would disable the guard entirely; clamp into a
        // sane floor instead (config validates this upstream too).
        let timeout = Duration::from_secs_f64(send_timeout_s.max(0.01));
        let _ = stream.set_write_timeout(Some(timeout));
        let outbox = Arc::new(Outbox {
            cap: cap.max(1),
            stream,
            state: Mutex::new(OutboxState::default()),
            cvar: Condvar::new(),
        });
        let writer = Arc::clone(&outbox);
        let _ = std::thread::Builder::new()
            .name("serve-outbox".to_string())
            .spawn(move || writer.run_writer());
        outbox
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, OutboxState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Enqueues one frame. Never blocks beyond the brief state mutex —
    /// safe to call under the queue lock. Pushing past `cap` condemns
    /// the connection (the client has demonstrably stopped reading).
    pub fn push(&self, frame: &str) {
        let mut g = self.lock();
        if g.dead || g.closed {
            return;
        }
        if g.frames.len() >= self.cap {
            Self::condemn_locked(&mut g, &self.stream);
        } else {
            g.frames.push_back(frame.to_string());
        }
        drop(g);
        self.cvar.notify_all();
    }

    /// Announces that no further frames will be pushed: the writer
    /// drains what is queued and exits. Called when the last sink
    /// handle for the connection drops.
    pub fn close(&self) {
        self.lock().closed = true;
        self.cvar.notify_all();
    }

    /// `true` once the connection has been condemned (overflow, write
    /// error or timeout).
    #[must_use]
    pub fn is_dead(&self) -> bool {
        self.lock().dead
    }

    /// Blocks until every queued frame has been written to the socket,
    /// the connection is condemned, or `timeout` elapses. The one
    /// caller that needs a delivery guarantee is the `shutdown`
    /// request's `bye` frame: the process exits right after, which
    /// would race the writer thread.
    pub fn drain(&self, timeout: Duration) {
        let deadline = std::time::Instant::now() + timeout;
        let mut g = self.lock();
        while !g.dead && (!g.frames.is_empty() || g.writing) {
            let now = std::time::Instant::now();
            let Some(left) = deadline
                .checked_duration_since(now)
                .filter(|d| !d.is_zero())
            else {
                return;
            };
            g = self
                .cvar
                .wait_timeout(g, left)
                .unwrap_or_else(PoisonError::into_inner)
                .0;
        }
    }

    /// Marks the connection dead, drops queued frames and shuts the
    /// socket down (which also pops the connection's reader out of its
    /// blocking read).
    fn condemn_locked(g: &mut OutboxState, stream: &TcpStream) {
        g.dead = true;
        g.frames.clear();
        let _ = stream.shutdown(Shutdown::Both);
    }

    /// The writer thread: pops frames in order and performs the only
    /// socket writes for this connection. Exits when the outbox is
    /// closed and drained, or as soon as it is condemned.
    fn run_writer(&self) {
        loop {
            let frame = {
                let mut g = self.lock();
                loop {
                    if g.dead {
                        return;
                    }
                    if let Some(frame) = g.frames.pop_front() {
                        g.writing = true;
                        break frame;
                    }
                    if g.closed {
                        return;
                    }
                    g = self.cvar.wait(g).unwrap_or_else(PoisonError::into_inner);
                }
            };
            // Write outside the state lock: pushes stay non-blocking
            // while the socket dawdles. A failed or timed-out write
            // condemns the connection; remaining frames are dropped.
            let mut sock = &self.stream;
            let written = writeln!(sock, "{frame}")
                .and_then(|()| sock.flush())
                .is_ok();
            let mut g = self.lock();
            g.writing = false;
            if !written {
                Self::condemn_locked(&mut g, &self.stream);
            }
            drop(g);
            self.cvar.notify_all();
            if !written {
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader, Read};
    use std::net::TcpListener;

    /// A connected localhost socket pair.
    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let client = TcpStream::connect(addr).expect("connect");
        let (server, _) = listener.accept().expect("accept");
        (server, client)
    }

    #[test]
    fn frames_arrive_in_push_order_and_close_drains() {
        let (server, client) = pair();
        let outbox = Outbox::spawn(server, 64, 5.0);
        for i in 0..10 {
            outbox.push(&format!("frame-{i}"));
        }
        outbox.close();
        let mut reader = BufReader::new(client);
        for i in 0..10 {
            let mut line = String::new();
            reader.read_line(&mut line).expect("read");
            assert_eq!(line.trim_end(), format!("frame-{i}"));
        }
        assert!(!outbox.is_dead(), "a clean drain is not a condemnation");
        // The stream lives as long as the outbox: once the writer has
        // exited and the last handle drops, the client sees EOF.
        drop(outbox);
        let mut rest = String::new();
        assert_eq!(reader.read_line(&mut rest).expect("eof"), 0);
    }

    /// Regression: the `bye` frame used to race process exit once
    /// writes moved onto the writer thread — `drain` must not return
    /// before queued frames are on the wire.
    #[test]
    fn drain_blocks_until_frames_hit_the_wire() {
        let (server, client) = pair();
        let outbox = Outbox::spawn(server, 64, 5.0);
        for i in 0..5 {
            outbox.push(&format!("d-{i}"));
        }
        outbox.drain(Duration::from_secs(10));
        // Every frame is in the kernel buffer already: reads complete
        // even though the outbox is still open.
        client
            .set_read_timeout(Some(Duration::from_secs(5)))
            .expect("timeout");
        let mut reader = BufReader::new(client);
        for i in 0..5 {
            let mut line = String::new();
            reader.read_line(&mut line).expect("read");
            assert_eq!(line.trim_end(), format!("d-{i}"));
        }
    }

    /// Regression (review): a client that bursts submits without
    /// draining responses used to block the ack write — while the
    /// global queue lock was held. Now the stall is absorbed by the
    /// bounded outbox: pushes stay non-blocking, the connection is
    /// condemned on overflow, and memory stays bounded.
    #[test]
    fn stalled_client_overflows_and_is_condemned_without_blocking() {
        let (server, client) = pair();
        // Tiny queue, short write timeout, and a payload large enough
        // to fill the kernel socket buffers quickly.
        let outbox = Outbox::spawn(server, 4, 0.2);
        let big = "x".repeat(1 << 20);
        let start = std::time::Instant::now();
        for _ in 0..64 {
            outbox.push(&big); // never blocks, whatever the socket does
            if outbox.is_dead() {
                break;
            }
        }
        // The writer hits the send timeout (or the queue overflows)
        // and condemns the connection promptly.
        while !outbox.is_dead() {
            assert!(
                start.elapsed() < Duration::from_secs(10),
                "condemnation must arrive in bounded time"
            );
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(
            start.elapsed() < Duration::from_secs(10),
            "pushes must not block on a stalled client"
        );
        // Pushes after death are silent no-ops.
        outbox.push("late");
        outbox.close();
        // The client side sees the connection shut down.
        let mut sink = Vec::new();
        let mut client = client;
        let _ = client.read_to_end(&mut sink);
        drop(client);
    }
}
