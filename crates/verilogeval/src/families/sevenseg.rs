//! Seven-segment and character decoders (6 problems).

use crate::builders::{comb_problem, CombSpec};
use crate::port::Port;
use crate::{Difficulty, Family, Problem};

/// Segment patterns for hex digits 0-F, active-high, bit order gfedcba.
const SEGMENTS: [u64; 16] = [
    0x3F, 0x06, 0x5B, 0x4F, 0x66, 0x6D, 0x7D, 0x07, 0x7F, 0x6F, 0x77, 0x7C, 0x39, 0x5E, 0x79, 0x71,
];

fn table_case(values: &[(u64, u64)], in_w: u32, out_w: u32) -> (String, String) {
    let mut varms = String::new();
    let mut harms = String::new();
    for (k, v) in values {
        varms.push_str(&format!(
            "      {in_w}'b{:0iw$b}: seg = {out_w}'b{:0ow$b};\n",
            k,
            v,
            iw = in_w as usize,
            ow = out_w as usize
        ));
        harms.push_str(&format!(
            "      when \"{:0iw$b}\" => seg <= \"{:0ow$b}\";\n",
            k,
            v,
            iw = in_w as usize,
            ow = out_w as usize
        ));
    }
    let zero_v = format!("{out_w}'b{}", "0".repeat(out_w as usize));
    let zero_h = format!("\"{}\"", "0".repeat(out_w as usize));
    (
        format!(
            "  always @* begin\n    case (digit)\n{varms}      default: seg = {zero_v};\n    endcase\n  end\n"
        ),
        format!(
            "  process (digit)\n  begin\n    case digit is\n{harms}      when others => seg <= {zero_h};\n    end case;\n  end process;\n"
        ),
    )
}

fn hex7seg(active_low: bool) -> CombSpec {
    let name = if active_low { "hex7seg_low" } else { "hex7seg" };
    let values: Vec<(u64, u64)> = (0..16)
        .map(|d| {
            let seg = SEGMENTS[d as usize];
            (d, if active_low { !seg & 0x7F } else { seg })
        })
        .collect();
    let (vlog_body, vhdl_body) = table_case(&values, 4, 7);
    let pol = if active_low {
        "active-low (common anode)"
    } else {
        "active-high (common cathode)"
    };
    CombSpec {
        name: name.into(),
        family: Family::SevenSegment,
        difficulty: Difficulty::Medium,
        description: format!(
            "A hexadecimal seven-segment decoder: seg drives segments gfedcba (bit 6 = g .. bit 0 = a), {pol}, for the 4-bit digit 0-F."
        ),
        inputs: vec![Port::new("digit", 4)],
        outputs: vec![Port::new("seg", 7)],
        vlog_body,
        vlog_out_reg: true,
        vhdl_body,
        vhdl_decls: String::new(),
        eval: Box::new(move |v| {
            let seg = SEGMENTS[v[0] as usize];
            vec![if active_low { !seg & 0x7F } else { seg }]
        }),
    }
}

fn bcd7seg() -> CombSpec {
    let values: Vec<(u64, u64)> = (0..10).map(|d| (d, SEGMENTS[d as usize])).collect();
    let (vlog_body, vhdl_body) = table_case(&values, 4, 7);
    CombSpec {
        name: "bcd7seg".into(),
        family: Family::SevenSegment,
        difficulty: Difficulty::Medium,
        description: "A BCD seven-segment decoder (segments gfedcba, active-high): digits 0-9 light the usual patterns; inputs 10-15 blank the display (all segments 0).".into(),
        inputs: vec![Port::new("digit", 4)],
        outputs: vec![Port::new("seg", 7)],
        vlog_body,
        vlog_out_reg: true,
        vhdl_body,
        vhdl_decls: String::new(),
        eval: Box::new(|v| {
            vec![if v[0] < 10 { SEGMENTS[v[0] as usize] } else { 0 }]
        }),
    }
}

fn bcd_valid() -> CombSpec {
    CombSpec {
        name: "bcd_valid".into(),
        family: Family::SevenSegment,
        difficulty: Difficulty::Easy,
        description: "valid is 1 when the 4-bit input digit is a legal BCD digit (0-9).".into(),
        inputs: vec![Port::new("digit", 4)],
        outputs: vec![Port::new("valid", 1)],
        vlog_body: "  assign valid = (digit < 4'b1010);\n".into(),
        vlog_out_reg: false,
        vhdl_body: "  valid <= '1' when unsigned(digit) < 10 else '0';\n".into(),
        vhdl_decls: String::new(),
        eval: Box::new(|v| vec![u64::from(v[0] < 10)]),
    }
}

fn nibble_to_ascii(uppercase: bool) -> CombSpec {
    let name = if uppercase {
        "hex_ascii_upper"
    } else {
        "hex_ascii_lower"
    };
    let letter_base = if uppercase { b'A' } else { b'a' } as u64;
    let values: Vec<(u64, u64)> = (0..16)
        .map(|d| {
            (
                d,
                if d < 10 {
                    b'0' as u64 + d
                } else {
                    letter_base + d - 10
                },
            )
        })
        .collect();
    let mut varms = String::new();
    let mut harms = String::new();
    for (k, v) in &values {
        varms.push_str(&format!("      4'b{:04b}: ch = 8'b{:08b};\n", k, v));
        harms.push_str(&format!(
            "      when \"{:04b}\" => ch <= \"{:08b}\";\n",
            k, v
        ));
    }
    CombSpec {
        name: name.into(),
        family: Family::SevenSegment,
        difficulty: Difficulty::Medium,
        description: format!(
            "ch is the 8-bit ASCII code of the hex digit in the 4-bit input nibble, using {} letters for A-F.",
            if uppercase { "uppercase" } else { "lowercase" }
        ),
        inputs: vec![Port::new("nibble", 4)],
        outputs: vec![Port::new("ch", 8)],
        vlog_body: format!(
            "  always @* begin\n    case (nibble)\n{varms}      default: ch = 8'b00000000;\n    endcase\n  end\n"
        ),
        vhdl_body: format!(
            "  process (nibble)\n  begin\n    case nibble is\n{harms}      when others => ch <= \"00000000\";\n    end case;\n  end process;\n"
        ),
        vlog_out_reg: true,
        vhdl_decls: String::new(),
        eval: Box::new(move |v| {
            let d = v[0];
            vec![if d < 10 { b'0' as u64 + d } else { letter_base + d - 10 }]
        }),
    }
}

/// Appends the family's problems.
pub fn extend(problems: &mut Vec<Problem>) {
    problems.push(comb_problem(hex7seg(false)));
    problems.push(comb_problem(hex7seg(true)));
    problems.push(comb_problem(bcd7seg()));
    problems.push(comb_problem(bcd_valid()));
    problems.push(comb_problem(nibble_to_ascii(true)));
    problems.push(comb_problem(nibble_to_ascii(false)));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contributes_6_problems() {
        let mut v = Vec::new();
        extend(&mut v);
        assert_eq!(v.len(), 6);
    }

    #[test]
    fn zero_digit_pattern() {
        let s = hex7seg(false);
        assert_eq!((s.eval)(&[0]), vec![0x3F]);
        let low = hex7seg(true);
        assert_eq!((low.eval)(&[0]), vec![0x40]);
    }

    #[test]
    fn ascii_codes() {
        let up = nibble_to_ascii(true);
        assert_eq!((up.eval)(&[9]), vec![b'9' as u64]);
        assert_eq!((up.eval)(&[0xA]), vec![b'A' as u64]);
        let lo = nibble_to_ascii(false);
        assert_eq!((lo.eval)(&[0xF]), vec![b'f' as u64]);
    }
}
