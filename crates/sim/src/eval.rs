//! Expression evaluation against current net values.

use aivril_hdl::ir::{BinaryOp, Expr, NetId, UnaryOp};
use aivril_hdl::logic::Logic;
use aivril_hdl::vec::LogicVec;

/// Read-only view the evaluator needs: current net values and time.
pub(crate) struct EvalCtx<'a> {
    pub values: &'a [LogicVec],
    pub time: u64,
    /// The net whose change resumed the executing process, when known.
    pub last_wake: Option<NetId>,
}

impl EvalCtx<'_> {
    fn net(&self, id: NetId) -> &LogicVec {
        &self.values[id.0 as usize]
    }

    /// Evaluates `expr` with Verilog four-state semantics.
    pub(crate) fn eval(&self, expr: &Expr) -> LogicVec {
        match expr {
            Expr::Const(v) => v.clone(),
            Expr::Net(id) => self.net(*id).clone(),
            Expr::Index { net, index } => {
                let value = self.net(*net);
                let idx = self.eval(index);
                match idx.to_u64() {
                    Some(i) if i < u64::from(value.width()) => {
                        LogicVec::from_logic(value.get(i as u32))
                    }
                    _ => LogicVec::from_logic(Logic::X),
                }
            }
            Expr::Range { net, msb, lsb } => self.net(*net).slice(*msb, *lsb),
            Expr::Unary { op, operand } => self.eval_unary(*op, operand),
            Expr::Binary { op, lhs, rhs } => self.eval_binary(*op, lhs, rhs),
            Expr::Ternary { cond, then, els } => {
                let c = self.eval(cond);
                match c.to_bool() {
                    Some(true) => self.eval(then),
                    Some(false) => self.eval(els),
                    None => {
                        // IEEE 1364: merge both arms; disagreeing bits go X.
                        let t = self.eval(then);
                        let e = self.eval(els);
                        let width = t.width().max(e.width());
                        let t = t.resize(width);
                        let e = e.resize(width);
                        let mut out = LogicVec::zeros(width);
                        for i in 0..width {
                            let (a, b) = (t.get(i), e.get(i));
                            out.set(
                                i,
                                if a == b && !a.is_unknown() {
                                    a
                                } else {
                                    Logic::X
                                },
                            );
                        }
                        out
                    }
                }
            }
            Expr::Concat(parts) => {
                let mut it = parts.iter();
                let first = it
                    .next()
                    .map(|p| self.eval(p))
                    .unwrap_or_else(|| LogicVec::zeros(1));
                it.fold(first, |acc, p| acc.concat(&self.eval(p)))
            }
            Expr::Repeat { count, operand } => self.eval(operand).replicate((*count).max(1)),
            Expr::Time => LogicVec::from_u64(64, self.time),
            Expr::EdgeFlag { net, rising } => {
                let fired = self.last_wake == Some(*net) && {
                    let bit = self.net(*net).get(0);
                    if *rising {
                        bit == Logic::One
                    } else {
                        bit == Logic::Zero
                    }
                };
                LogicVec::from_logic(Logic::from_bool(fired))
            }
        }
    }

    fn eval_unary(&self, op: UnaryOp, operand: &Expr) -> LogicVec {
        let v = self.eval(operand);
        match op {
            UnaryOp::Not => v.not(),
            UnaryOp::LogicalNot => {
                let b = match v.to_bool() {
                    Some(b) => Logic::from_bool(!b),
                    None => Logic::X,
                };
                LogicVec::from_logic(b)
            }
            UnaryOp::Negate => v.negate(),
            UnaryOp::ReduceAnd => LogicVec::from_logic(v.reduce_and()),
            UnaryOp::ReduceOr => LogicVec::from_logic(v.reduce_or()),
            UnaryOp::ReduceXor => LogicVec::from_logic(v.reduce_xor()),
            UnaryOp::ReduceNand => LogicVec::from_logic(v.reduce_and().not()),
            UnaryOp::ReduceNor => LogicVec::from_logic(v.reduce_or().not()),
            UnaryOp::ReduceXnor => LogicVec::from_logic(v.reduce_xor().not()),
        }
    }

    fn eval_binary(&self, op: BinaryOp, lhs: &Expr, rhs: &Expr) -> LogicVec {
        // Logical && / || short-circuit on known operands.
        if matches!(op, BinaryOp::LogicalAnd | BinaryOp::LogicalOr) {
            let a = self.eval(lhs).to_bool();
            let b = self.eval(rhs).to_bool();
            let r = match (op, a, b) {
                (BinaryOp::LogicalAnd, Some(false), _) | (BinaryOp::LogicalAnd, _, Some(false)) => {
                    Logic::Zero
                }
                (BinaryOp::LogicalAnd, Some(true), Some(true)) => Logic::One,
                (BinaryOp::LogicalOr, Some(true), _) | (BinaryOp::LogicalOr, _, Some(true)) => {
                    Logic::One
                }
                (BinaryOp::LogicalOr, Some(false), Some(false)) => Logic::Zero,
                _ => Logic::X,
            };
            return LogicVec::from_logic(r);
        }
        let a = self.eval(lhs);
        let b = self.eval(rhs);
        match op {
            BinaryOp::And => a.and(&b),
            BinaryOp::Or => a.or(&b),
            BinaryOp::Xor => a.xor(&b),
            BinaryOp::Xnor => a.xnor(&b),
            BinaryOp::Add => a.add(&b),
            BinaryOp::Sub => a.sub(&b),
            BinaryOp::Mul => a.mul(&b),
            BinaryOp::Div => a.div(&b),
            BinaryOp::Rem => a.rem(&b),
            BinaryOp::Shl => a.shl(&b),
            BinaryOp::Shr => a.shr(&b),
            BinaryOp::Eq => LogicVec::from_logic(a.logic_eq(&b)),
            BinaryOp::Ne => LogicVec::from_logic(a.logic_eq(&b).not()),
            BinaryOp::CaseEq => LogicVec::from_logic(Logic::from_bool(a.case_eq(&b))),
            BinaryOp::CaseNe => LogicVec::from_logic(Logic::from_bool(!a.case_eq(&b))),
            BinaryOp::Lt => LogicVec::from_logic(a.lt(&b)),
            BinaryOp::Le => LogicVec::from_logic(a.le(&b)),
            BinaryOp::Gt => LogicVec::from_logic(a.gt(&b)),
            BinaryOp::Ge => LogicVec::from_logic(a.ge(&b)),
            BinaryOp::LogicalAnd | BinaryOp::LogicalOr => unreachable!("handled above"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(values: &[LogicVec]) -> EvalCtx<'_> {
        EvalCtx {
            values,
            time: 42,
            last_wake: None,
        }
    }

    #[test]
    fn eval_net_and_const() {
        let values = vec![LogicVec::from_u64(8, 0x3C)];
        let c = ctx(&values);
        assert_eq!(c.eval(&Expr::Net(NetId(0))).to_u64(), Some(0x3C));
        assert_eq!(c.eval(&Expr::constant(4, 9)).to_u64(), Some(9));
    }

    #[test]
    fn eval_index_in_and_out_of_range() {
        let values = vec![LogicVec::from_u64(4, 0b1010)];
        let c = ctx(&values);
        let bit = |i: u64| Expr::Index {
            net: NetId(0),
            index: Box::new(Expr::constant(8, i)),
        };
        assert_eq!(c.eval(&bit(1)).get(0), Logic::One);
        assert_eq!(c.eval(&bit(0)).get(0), Logic::Zero);
        assert_eq!(c.eval(&bit(9)).get(0), Logic::X);
    }

    #[test]
    fn eval_ternary_merges_on_x() {
        let values = vec![LogicVec::xes(1)];
        let c = ctx(&values);
        let e = Expr::Ternary {
            cond: Box::new(Expr::Net(NetId(0))),
            then: Box::new(Expr::constant(2, 0b01)),
            els: Box::new(Expr::constant(2, 0b11)),
        };
        let v = c.eval(&e);
        assert_eq!(v.get(0), Logic::One, "both arms agree on bit 0");
        assert_eq!(v.get(1), Logic::X, "arms disagree on bit 1");
    }

    #[test]
    fn short_circuit_logical_ops() {
        let values = vec![LogicVec::xes(1)];
        let c = ctx(&values);
        let x = Expr::Net(NetId(0));
        let and_false = Expr::Binary {
            op: BinaryOp::LogicalAnd,
            lhs: Box::new(x.clone()),
            rhs: Box::new(Expr::constant(1, 0)),
        };
        assert_eq!(c.eval(&and_false).get(0), Logic::Zero);
        let or_true = Expr::Binary {
            op: BinaryOp::LogicalOr,
            lhs: Box::new(x.clone()),
            rhs: Box::new(Expr::constant(1, 1)),
        };
        assert_eq!(c.eval(&or_true).get(0), Logic::One);
        let and_x = Expr::Binary {
            op: BinaryOp::LogicalAnd,
            lhs: Box::new(x),
            rhs: Box::new(Expr::constant(1, 1)),
        };
        assert_eq!(c.eval(&and_x).get(0), Logic::X);
    }

    #[test]
    fn eval_time() {
        let values = vec![];
        let c = ctx(&values);
        assert_eq!(c.eval(&Expr::Time).to_u64(), Some(42));
    }

    #[test]
    fn eval_concat_order() {
        let values = vec![LogicVec::from_u64(4, 0xA), LogicVec::from_u64(4, 0x5)];
        let c = ctx(&values);
        let e = Expr::Concat(vec![Expr::Net(NetId(0)), Expr::Net(NetId(1))]);
        assert_eq!(c.eval(&e).to_u64(), Some(0xA5));
    }

    #[test]
    fn case_eq_with_x_operands() {
        let values = vec![LogicVec::xes(2), LogicVec::xes(2)];
        let c = ctx(&values);
        let e = Expr::Binary {
            op: BinaryOp::CaseEq,
            lhs: Box::new(Expr::Net(NetId(0))),
            rhs: Box::new(Expr::Net(NetId(1))),
        };
        assert_eq!(c.eval(&e).get(0), Logic::One);
        let e = Expr::Binary {
            op: BinaryOp::Eq,
            lhs: Box::new(Expr::Net(NetId(0))),
            rhs: Box::new(Expr::Net(NetId(1))),
        };
        assert_eq!(c.eval(&e).get(0), Logic::X);
    }
}
