//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// Anything usable as a vec-length specification: a fixed `usize`, a
/// `Range<usize>`, or a `RangeInclusive<usize>`.
pub trait IntoSizeRange {
    /// Converts to inclusive `(min, max)` bounds.
    fn bounds(&self) -> (usize, usize);
}

impl IntoSizeRange for usize {
    fn bounds(&self) -> (usize, usize) {
        (*self, *self)
    }
}

impl IntoSizeRange for Range<usize> {
    fn bounds(&self) -> (usize, usize) {
        assert!(self.start < self.end, "empty vec size range");
        (self.start, self.end - 1)
    }
}

impl IntoSizeRange for RangeInclusive<usize> {
    fn bounds(&self) -> (usize, usize) {
        assert!(self.start() <= self.end(), "empty vec size range");
        (*self.start(), *self.end())
    }
}

/// Generates `Vec`s whose elements come from `element` and whose length
/// falls in `size`.
pub fn vec<S: Strategy, Z: IntoSizeRange>(element: S, size: Z) -> VecStrategy<S> {
    let (min, max) = size.bounds();
    VecStrategy { element, min, max }
}

/// See [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    min: usize,
    max: usize,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = rng.gen_range(self.min..=self.max);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::case_rng;

    #[test]
    fn fixed_and_ranged_sizes() {
        let mut rng = case_rng("vec", 0);
        let fixed = vec(0u32..5, 3usize).generate(&mut rng);
        assert_eq!(fixed.len(), 3);
        for case in 0..100 {
            let mut rng = case_rng("vec", case);
            let v = vec(0u32..5, 1usize..4).generate(&mut rng);
            assert!((1..=3).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }
}
