//! Service configuration, read from `AIVRIL_SERVE_*` environment
//! variables on top of the harness knobs [`HarnessConfig`] already
//! understands (resilience, faults, EDA cache, pipeline budgets).

use aivril_bench::HarnessConfig;
use aivril_llm::{profiles, ModelProfile};

/// `aivril-serve` configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address (`AIVRIL_SERVE_ADDR`); port `0` binds an
    /// ephemeral port, printed on startup.
    pub addr: String,
    /// Worker threads executing jobs (`AIVRIL_SERVE_WORKERS`); `0`
    /// auto-detects the machine's parallelism.
    pub workers: usize,
    /// Per-tenant cap on jobs executing at once
    /// (`AIVRIL_SERVE_MAX_INFLIGHT`).
    pub max_inflight: usize,
    /// Per-tenant cap on jobs *waiting* beyond the in-flight cap
    /// (`AIVRIL_SERVE_MAX_QUEUE`); a tenant's total admitted-but-
    /// unfinished jobs are bounded by `max_inflight + max_queue`.
    pub max_queue: usize,
    /// Global cap on distinct tenant states
    /// (`AIVRIL_SERVE_MAX_TENANTS`). Tenant identity is client-asserted
    /// and untrusted, so the tenant table must be bounded; idle tenants
    /// are evicted to make room, and `tenant_limit` rejects past that.
    pub max_tenants: usize,
    /// Global cap on admitted-but-unfinished jobs across all tenants
    /// (`AIVRIL_SERVE_MAX_JOBS`); submissions past it are rejected
    /// `server_full`.
    pub max_jobs: usize,
    /// Per-connection bound on response frames queued for transmission
    /// (`AIVRIL_SERVE_OUTBOX_CAP`). A connection whose client stops
    /// reading overflows its outbox and is dropped; workers never block
    /// on a client socket. Size it above the largest single-job frame
    /// burst: a completed job's whole transcript is enqueued faster
    /// than the writer thread can drain it, so a too-small cap would
    /// condemn clients that are reading perfectly well.
    pub outbox_cap: usize,
    /// Socket write timeout in wall seconds
    /// (`AIVRIL_SERVE_SEND_TIMEOUT_S`); a write stalled past it
    /// condemns the connection as vanished.
    pub send_timeout_s: f64,
    /// Directory of the crash-safe admission journal
    /// (`AIVRIL_SERVE_JOURNAL_DIR`); unset disables journaling. A
    /// server restarted over the same directory re-admits every job
    /// that was accepted but never finished — and replays it
    /// byte-identically, since job seeds are pure functions of
    /// identity.
    pub journal_dir: Option<String>,
    /// Per-job wall-clock deadline in seconds
    /// (`AIVRIL_SERVE_DEADLINE_S`); `0` disables. A job claimed by a
    /// worker later than this many seconds after admission is not
    /// executed: it receives a terminal `expired` frame
    /// (`deadline_exceeded`) and frees its slot instead of pinning the
    /// worker on stale work.
    pub deadline_s: f64,
    /// Name of the simulated model profile serving requests
    /// (`AIVRIL_SERVE_MODEL`, matched against
    /// [`profiles::all`]).
    pub model: String,
    /// The underlying harness knobs (resilience policy, fault plan,
    /// EDA cache, pipeline budgets), parsed from the same environment.
    /// The service defaults the EDA cache *on* — cross-job compile
    /// batching is the point — unless `AIVRIL_EDA_CACHE=0` opts out.
    pub harness: HarnessConfig,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        let harness = HarnessConfig {
            eda_cache: true,
            ..HarnessConfig::default()
        };
        ServeConfig {
            addr: "127.0.0.1:4117".to_string(),
            workers: 0,
            max_inflight: 2,
            max_queue: 8,
            max_tenants: crate::queue::DEFAULT_MAX_TENANTS,
            max_jobs: crate::queue::DEFAULT_MAX_TOTAL_JOBS,
            outbox_cap: 4096,
            send_timeout_s: 30.0,
            journal_dir: None,
            deadline_s: 0.0,
            model: profiles::claude35_sonnet().name,
            harness,
        }
    }
}

impl ServeConfig {
    /// Reads the configuration from the process environment, printing
    /// warnings about malformed values to stderr.
    #[must_use]
    pub fn from_env() -> ServeConfig {
        let (c, warnings) = Self::from_vars_checked(|key| std::env::var(key).ok());
        for w in warnings {
            eprintln!("[config] {w}");
        }
        c
    }

    /// Like [`ServeConfig::from_env`] with an injectable lookup,
    /// returning warnings instead of printing them. Malformed values
    /// are warned about and ignored — the
    /// [`HarnessConfig::from_vars_checked`] discipline.
    #[must_use]
    pub fn from_vars_checked(get: impl Fn(&str) -> Option<String>) -> (ServeConfig, Vec<String>) {
        let (mut harness, mut warnings) = HarnessConfig::from_vars_checked(&get);
        if get("AIVRIL_EDA_CACHE").is_none() {
            // Service default: cache on (shared compile batching).
            harness.eda_cache = true;
        }
        let mut c = ServeConfig {
            harness,
            ..ServeConfig::default()
        };
        if let Some(addr) = get("AIVRIL_SERVE_ADDR").filter(|v| !v.is_empty()) {
            c.addr = addr;
        }
        let mut parse_usize = |key: &'static str, slot: &mut usize| {
            if let Some(v) = get(key) {
                match v.parse() {
                    Ok(n) => *slot = n,
                    Err(_) => {
                        warnings.push(format!("ignoring {key} (want a non-negative integer): {v}"))
                    }
                }
            }
        };
        parse_usize("AIVRIL_SERVE_WORKERS", &mut c.workers);
        parse_usize("AIVRIL_SERVE_MAX_INFLIGHT", &mut c.max_inflight);
        parse_usize("AIVRIL_SERVE_MAX_QUEUE", &mut c.max_queue);
        parse_usize("AIVRIL_SERVE_MAX_TENANTS", &mut c.max_tenants);
        parse_usize("AIVRIL_SERVE_MAX_JOBS", &mut c.max_jobs);
        parse_usize("AIVRIL_SERVE_OUTBOX_CAP", &mut c.outbox_cap);
        if let Some(v) = get("AIVRIL_SERVE_SEND_TIMEOUT_S") {
            match v.parse::<f64>() {
                Ok(s) if s.is_finite() && s > 0.0 => c.send_timeout_s = s,
                _ => warnings.push(format!(
                    "ignoring AIVRIL_SERVE_SEND_TIMEOUT_S (want a finite, positive number): {v}"
                )),
            }
        }
        if let Some(dir) = get("AIVRIL_SERVE_JOURNAL_DIR").filter(|v| !v.is_empty()) {
            c.journal_dir = Some(dir);
        }
        if let Some(v) = get("AIVRIL_SERVE_DEADLINE_S") {
            match v.parse::<f64>() {
                Ok(s) if s.is_finite() && s >= 0.0 => c.deadline_s = s,
                _ => warnings.push(format!(
                    "ignoring AIVRIL_SERVE_DEADLINE_S (want a finite, non-negative number): {v}"
                )),
            }
        }
        if let Some(name) = get("AIVRIL_SERVE_MODEL") {
            if profiles::all().iter().any(|p| p.name == name) {
                c.model = name;
            } else {
                let known: Vec<String> = profiles::all().into_iter().map(|p| p.name).collect();
                warnings.push(format!(
                    "ignoring AIVRIL_SERVE_MODEL (want one of {known:?}): {name}"
                ));
            }
        }
        // A tenant must be able to run at least one job, and the
        // global bounds must admit at least one tenant / job / frame.
        for (key, slot) in [
            ("AIVRIL_SERVE_MAX_INFLIGHT", &mut c.max_inflight),
            ("AIVRIL_SERVE_MAX_TENANTS", &mut c.max_tenants),
            ("AIVRIL_SERVE_MAX_JOBS", &mut c.max_jobs),
            ("AIVRIL_SERVE_OUTBOX_CAP", &mut c.outbox_cap),
        ] {
            if *slot == 0 {
                warnings.push(format!("{key}=0 would admit nothing; using 1"));
                *slot = 1;
            }
        }
        (c, warnings)
    }

    /// The resolved model profile for [`ServeConfig::model`].
    #[must_use]
    pub fn profile(&self) -> ModelProfile {
        profiles::all()
            .into_iter()
            .find(|p| p.name == self.model)
            .unwrap_or_else(profiles::claude35_sonnet)
    }

    /// The worker count the server will actually spawn: `workers`, or
    /// the machine's available parallelism when `0`.
    #[must_use]
    pub fn effective_workers(&self) -> usize {
        if self.workers == 0 {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        } else {
            self.workers
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_enable_the_shared_cache() {
        let (c, warnings) = ServeConfig::from_vars_checked(|_| None);
        assert!(warnings.is_empty(), "{warnings:?}");
        assert!(c.harness.eda_cache, "service batches through the cache");
        assert_eq!(c.max_inflight, 2);
        assert_eq!(c.max_queue, 8);
        assert_eq!(c.max_tenants, 64);
        assert_eq!(c.max_jobs, 256);
        assert_eq!(c.outbox_cap, 4096);
        assert!((c.send_timeout_s - 30.0).abs() < 1e-12);
        assert_eq!(c.journal_dir, None, "journaling is opt-in");
        assert!(c.deadline_s == 0.0, "deadlines are off by default");
        assert!(c.effective_workers() >= 1);
        assert_eq!(c.profile().name, c.model);
    }

    #[test]
    fn env_knobs_parse_and_cache_can_opt_out() {
        let (c, warnings) = ServeConfig::from_vars_checked(|key| match key {
            "AIVRIL_SERVE_ADDR" => Some("127.0.0.1:0".into()),
            "AIVRIL_SERVE_WORKERS" => Some("3".into()),
            "AIVRIL_SERVE_MAX_INFLIGHT" => Some("1".into()),
            "AIVRIL_SERVE_MAX_QUEUE" => Some("0".into()),
            "AIVRIL_EDA_CACHE" => Some("0".into()),
            "AIVRIL_RETRY_MAX" => Some("2".into()),
            _ => None,
        });
        assert!(warnings.is_empty(), "{warnings:?}");
        assert_eq!(c.addr, "127.0.0.1:0");
        assert_eq!(c.workers, 3);
        assert_eq!(c.effective_workers(), 3);
        assert_eq!((c.max_inflight, c.max_queue), (1, 0));
        assert!(!c.harness.eda_cache, "explicit opt-out wins");
        assert_eq!(c.harness.pipeline.resilience.retry_max, 2);
    }

    #[test]
    fn malformed_serve_knobs_warn_and_fall_back() {
        for (key, value) in [
            ("AIVRIL_SERVE_WORKERS", "lots"),
            ("AIVRIL_SERVE_MAX_INFLIGHT", "-1"),
            ("AIVRIL_SERVE_MAX_QUEUE", "1.5"),
            ("AIVRIL_SERVE_MAX_TENANTS", "many"),
            ("AIVRIL_SERVE_MAX_JOBS", "-3"),
            ("AIVRIL_SERVE_OUTBOX_CAP", "big"),
            ("AIVRIL_SERVE_SEND_TIMEOUT_S", "NaN"),
            ("AIVRIL_SERVE_SEND_TIMEOUT_S", "-1"),
            ("AIVRIL_SERVE_SEND_TIMEOUT_S", "0"),
            ("AIVRIL_SERVE_DEADLINE_S", "NaN"),
            ("AIVRIL_SERVE_DEADLINE_S", "inf"),
            ("AIVRIL_SERVE_DEADLINE_S", "-1"),
            ("AIVRIL_SERVE_DEADLINE_S", "soon"),
            ("AIVRIL_SERVE_MODEL", "GPT-9000"),
        ] {
            let (c, warnings) =
                ServeConfig::from_vars_checked(|k| (k == key).then(|| value.into()));
            assert_eq!(warnings.len(), 1, "{key}: {warnings:?}");
            assert!(warnings[0].contains(key), "{warnings:?}");
            let d = ServeConfig::default();
            assert_eq!(c.workers, d.workers);
            assert_eq!(c.max_inflight, d.max_inflight);
            assert_eq!(c.max_queue, d.max_queue);
            assert_eq!(c.max_tenants, d.max_tenants);
            assert_eq!(c.max_jobs, d.max_jobs);
            assert_eq!(c.outbox_cap, d.outbox_cap);
            assert!((c.send_timeout_s - d.send_timeout_s).abs() < 1e-12, "{key}");
            assert!(c.deadline_s == d.deadline_s, "{key}");
            assert_eq!(c.journal_dir, d.journal_dir);
            assert_eq!(c.model, d.model);
        }
    }

    #[test]
    fn backpressure_and_global_cap_knobs_parse() {
        let (c, warnings) = ServeConfig::from_vars_checked(|key| match key {
            "AIVRIL_SERVE_MAX_TENANTS" => Some("5".into()),
            "AIVRIL_SERVE_MAX_JOBS" => Some("17".into()),
            "AIVRIL_SERVE_OUTBOX_CAP" => Some("32".into()),
            "AIVRIL_SERVE_SEND_TIMEOUT_S" => Some("2.5".into()),
            "AIVRIL_SERVE_JOURNAL_DIR" => Some("/tmp/aivril-wal".into()),
            "AIVRIL_SERVE_DEADLINE_S" => Some("12.5".into()),
            _ => None,
        });
        assert!(warnings.is_empty(), "{warnings:?}");
        assert_eq!(c.max_tenants, 5);
        assert_eq!(c.max_jobs, 17);
        assert_eq!(c.outbox_cap, 32);
        assert!((c.send_timeout_s - 2.5).abs() < 1e-12);
        assert_eq!(c.journal_dir.as_deref(), Some("/tmp/aivril-wal"));
        assert!((c.deadline_s - 12.5).abs() < 1e-12);
    }

    #[test]
    fn zero_global_caps_are_bumped_to_one() {
        for key in [
            "AIVRIL_SERVE_MAX_TENANTS",
            "AIVRIL_SERVE_MAX_JOBS",
            "AIVRIL_SERVE_OUTBOX_CAP",
        ] {
            let (c, warnings) = ServeConfig::from_vars_checked(|k| (k == key).then(|| "0".into()));
            assert_eq!(warnings.len(), 1, "{key}: {warnings:?}");
            assert!(warnings[0].contains(key), "{warnings:?}");
            assert!(c.max_tenants >= 1 && c.max_jobs >= 1 && c.outbox_cap >= 1);
        }
    }

    #[test]
    fn zero_inflight_is_bumped_to_one() {
        let (c, warnings) = ServeConfig::from_vars_checked(|k| {
            (k == "AIVRIL_SERVE_MAX_INFLIGHT").then(|| "0".into())
        });
        assert_eq!(c.max_inflight, 1);
        assert_eq!(warnings.len(), 1);
    }
}
