//! Adders, subtractors and incrementers (12 problems).

use crate::builders::{comb_problem, CombSpec};
use crate::port::Port;
use crate::{Difficulty, Family, Problem};

fn mask(w: u32) -> u64 {
    if w >= 64 {
        u64::MAX
    } else {
        (1 << w) - 1
    }
}

fn adder_cout(width: u32) -> CombSpec {
    let m = mask(width);
    CombSpec {
        name: format!("adder_cout_w{width}"),
        family: Family::Adder,
        difficulty: if width > 8 { Difficulty::Hard } else { Difficulty::Medium },
        description: format!(
            "A {width}-bit unsigned adder: {{cout, sum}} = a + b, where cout is the carry out of the most significant bit."
        ),
        inputs: vec![Port::new("a", width), Port::new("b", width)],
        outputs: vec![Port::new("sum", width), Port::new("cout", 1)],
        vlog_body: "  assign {cout, sum} = a + b;\n".into(),
        vlog_out_reg: false,
        vhdl_body: format!(
            "  t <= ('0' & a) + ('0' & b);\n  sum <= t({} downto 0);\n  cout <= t({});\n",
            width - 1,
            width
        ),
        vhdl_decls: format!("  signal t : std_logic_vector({} downto 0);\n", width),
        eval: Box::new(move |v| {
            let s = v[0] + v[1];
            vec![s & m, s >> width & 1]
        }),
    }
}

fn adder_plain(width: u32) -> CombSpec {
    let m = mask(width);
    CombSpec {
        name: format!("adder_w{width}"),
        family: Family::Adder,
        difficulty: Difficulty::Easy,
        description: format!(
            "A {width}-bit unsigned adder with wraparound: sum = (a + b) modulo 2^{width}."
        ),
        inputs: vec![Port::new("a", width), Port::new("b", width)],
        outputs: vec![Port::new("sum", width)],
        vlog_body: "  assign sum = a + b;\n".into(),
        vlog_out_reg: false,
        vhdl_body: "  sum <= std_logic_vector(unsigned(a) + unsigned(b));\n".into(),
        vhdl_decls: String::new(),
        eval: Box::new(move |v| vec![(v[0] + v[1]) & m]),
    }
}

fn subtractor(width: u32) -> CombSpec {
    let m = mask(width);
    CombSpec {
        name: format!("subtractor_w{width}"),
        family: Family::Adder,
        difficulty: Difficulty::Medium,
        description: format!(
            "A {width}-bit unsigned subtractor with two's-complement wraparound: diff = (a - b) modulo 2^{width}."
        ),
        inputs: vec![Port::new("a", width), Port::new("b", width)],
        outputs: vec![Port::new("diff", width)],
        vlog_body: "  assign diff = a - b;\n".into(),
        vlog_out_reg: false,
        vhdl_body: "  diff <= std_logic_vector(unsigned(a) - unsigned(b));\n".into(),
        vhdl_decls: String::new(),
        eval: Box::new(move |v| vec![v[0].wrapping_sub(v[1]) & m]),
    }
}

fn addsub(width: u32) -> CombSpec {
    let m = mask(width);
    CombSpec {
        name: format!("addsub_w{width}"),
        family: Family::Adder,
        difficulty: Difficulty::Medium,
        description: format!(
            "A {width}-bit adder/subtractor: result = a + b when mode is 0, and a - b (wraparound) when mode is 1."
        ),
        inputs: vec![Port::new("a", width), Port::new("b", width), Port::new("mode", 1)],
        outputs: vec![Port::new("result", width)],
        vlog_body: "  assign result = mode ? (a - b) : (a + b);\n".into(),
        vlog_out_reg: false,
        vhdl_body: "  result <= std_logic_vector(unsigned(a) - unsigned(b)) when mode = '1' else std_logic_vector(unsigned(a) + unsigned(b));\n".into(),
        vhdl_decls: String::new(),
        eval: Box::new(move |v| {
            vec![if v[2] == 1 {
                v[0].wrapping_sub(v[1]) & m
            } else {
                (v[0] + v[1]) & m
            }]
        }),
    }
}

fn incrementer(width: u32) -> CombSpec {
    let m = mask(width);
    CombSpec {
        name: format!("incrementer_w{width}"),
        family: Family::Adder,
        difficulty: Difficulty::Easy,
        description: format!("y = a + 1 with wraparound at 2^{width}."),
        inputs: vec![Port::new("a", width)],
        outputs: vec![Port::new("y", width)],
        vlog_body: "  assign y = a + 1;\n".into(),
        vlog_out_reg: false,
        vhdl_body: "  y <= std_logic_vector(unsigned(a) + 1);\n".into(),
        vhdl_decls: String::new(),
        eval: Box::new(move |v| vec![(v[0] + 1) & m]),
    }
}

fn half_adder() -> CombSpec {
    CombSpec {
        name: "half_adder".into(),
        family: Family::Adder,
        difficulty: Difficulty::Easy,
        description: "A half adder: sum = a XOR b, carry = a AND b.".into(),
        inputs: vec![Port::new("a", 1), Port::new("b", 1)],
        outputs: vec![Port::new("sum", 1), Port::new("carry", 1)],
        vlog_body: "  assign sum = a ^ b;\n  assign carry = a & b;\n".into(),
        vlog_out_reg: false,
        vhdl_body: "  sum <= a xor b;\n  carry <= a and b;\n".into(),
        vhdl_decls: String::new(),
        eval: Box::new(|v| vec![v[0] ^ v[1], v[0] & v[1]]),
    }
}

fn full_adder() -> CombSpec {
    CombSpec {
        name: "full_adder".into(),
        family: Family::Adder,
        difficulty: Difficulty::Easy,
        description: "A full adder over a, b and carry-in cin: sum and carry-out cout.".into(),
        inputs: vec![Port::new("a", 1), Port::new("b", 1), Port::new("cin", 1)],
        outputs: vec![Port::new("sum", 1), Port::new("cout", 1)],
        vlog_body:
            "  assign sum = a ^ b ^ cin;\n  assign cout = (a & b) | (a & cin) | (b & cin);\n".into(),
        vlog_out_reg: false,
        vhdl_body:
            "  sum <= a xor b xor cin;\n  cout <= (a and b) or (a and cin) or (b and cin);\n".into(),
        vhdl_decls: String::new(),
        eval: Box::new(|v| {
            let s = v[0] + v[1] + v[2];
            vec![s & 1, s >> 1]
        }),
    }
}

/// Appends the family's problems.
pub fn extend(problems: &mut Vec<Problem>) {
    for w in [4, 8, 16] {
        problems.push(comb_problem(adder_cout(w)));
    }
    for w in [4, 8] {
        problems.push(comb_problem(adder_plain(w)));
    }
    for w in [4, 8] {
        problems.push(comb_problem(subtractor(w)));
    }
    problems.push(comb_problem(addsub(4)));
    for w in [4, 8] {
        problems.push(comb_problem(incrementer(w)));
    }
    problems.push(comb_problem(half_adder()));
    problems.push(comb_problem(full_adder()));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contributes_12_problems() {
        let mut v = Vec::new();
        extend(&mut v);
        assert_eq!(v.len(), 12);
    }

    #[test]
    fn adder_cout_golden() {
        let s = adder_cout(8);
        assert_eq!((s.eval)(&[200, 100]), vec![44, 1]);
        assert_eq!((s.eval)(&[1, 2]), vec![3, 0]);
    }

    #[test]
    fn subtractor_wraps() {
        let s = subtractor(4);
        assert_eq!((s.eval)(&[3, 5]), vec![0xE]);
    }
}
