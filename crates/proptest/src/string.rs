//! String strategies from simple regex-like patterns.
//!
//! Real proptest compiles full regexes; this stand-in supports the
//! subset the workspace's tests use — sequences of character classes
//! (`[a-z]`, `[ -~\n\t]`, with ranges, escapes and literal members) and
//! literal characters, each optionally followed by a `{min,max}` or
//! `{n}` repetition. Unsupported syntax panics at generation time with
//! a clear message, so silent mis-generation is impossible.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

#[derive(Debug, Clone)]
struct Piece {
    /// Candidate characters (uniformly chosen).
    chars: Vec<char>,
    min: usize,
    max: usize,
}

fn unescape(c: char) -> char {
    match c {
        'n' => '\n',
        't' => '\t',
        'r' => '\r',
        '0' => '\0',
        other => other, // \\, \-, \], \. and friends: the char itself
    }
}

fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars<'_>>, pattern: &str) -> Vec<char> {
    let mut members = Vec::new();
    loop {
        let c = chars
            .next()
            .unwrap_or_else(|| panic!("unterminated character class in pattern {pattern:?}"));
        match c {
            ']' => break,
            '\\' => {
                let e = chars
                    .next()
                    .unwrap_or_else(|| panic!("dangling escape in pattern {pattern:?}"));
                members.push(unescape(e));
            }
            _ => {
                if chars.peek() == Some(&'-') {
                    let mut ahead = chars.clone();
                    ahead.next(); // the '-'
                    match ahead.peek() {
                        Some(&']') | None => members.push(c), // trailing literal '-'
                        Some(&end) => {
                            chars.next();
                            chars.next();
                            let end = if end == '\\' {
                                unescape(chars.next().unwrap_or_else(|| {
                                    panic!("dangling escape in pattern {pattern:?}")
                                }))
                            } else {
                                end
                            };
                            assert!(
                                c <= end,
                                "inverted range {c:?}-{end:?} in pattern {pattern:?}"
                            );
                            members.extend(c..=end);
                        }
                    }
                } else {
                    members.push(c);
                }
            }
        }
    }
    assert!(
        !members.is_empty(),
        "empty character class in pattern {pattern:?}"
    );
    members
}

fn parse_repeat(
    chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
    pattern: &str,
) -> (usize, usize) {
    if chars.peek() != Some(&'{') {
        return (1, 1);
    }
    chars.next();
    let mut spec = String::new();
    for c in chars.by_ref() {
        if c == '}' {
            let (min, max) = match spec.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().unwrap_or_else(|_| bad_repeat(pattern)),
                    hi.trim().parse().unwrap_or_else(|_| bad_repeat(pattern)),
                ),
                None => {
                    let n = spec.trim().parse().unwrap_or_else(|_| bad_repeat(pattern));
                    (n, n)
                }
            };
            assert!(min <= max, "inverted repetition in pattern {pattern:?}");
            return (min, max);
        }
        spec.push(c);
    }
    panic!("unterminated repetition in pattern {pattern:?}");
}

fn bad_repeat(pattern: &str) -> usize {
    panic!("malformed repetition count in pattern {pattern:?}")
}

fn parse_pattern(pattern: &str) -> Vec<Piece> {
    let mut pieces = Vec::new();
    let mut chars = pattern.chars().peekable();
    while let Some(c) = chars.next() {
        let members = match c {
            '[' => parse_class(&mut chars, pattern),
            '\\' => {
                let e = chars
                    .next()
                    .unwrap_or_else(|| panic!("dangling escape in pattern {pattern:?}"));
                vec![unescape(e)]
            }
            '{' | '}' | '*' | '+' | '?' | '|' | '(' | ')' | '^' | '$' | '.' => {
                panic!("unsupported regex syntax {c:?} in pattern {pattern:?} (vendored proptest supports only classes, literals and {{m,n}} repetitions)")
            }
            literal => vec![literal],
        };
        let (min, max) = parse_repeat(&mut chars, pattern);
        pieces.push(Piece {
            chars: members,
            min,
            max,
        });
    }
    pieces
}

/// Generates strings matching the supported pattern subset; this is the
/// `Strategy` impl behind `"[a-z]{0,40}"`-style expressions.
impl Strategy for str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for piece in parse_pattern(self) {
            let n = rng.gen_range(piece.min..=piece.max);
            for _ in 0..n {
                out.push(piece.chars[rng.gen_range(0..piece.chars.len())]);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::case_rng;

    fn gen(pattern: &str, case: u64) -> String {
        pattern.generate(&mut case_rng(pattern, case))
    }

    #[test]
    fn printable_noise_pattern() {
        for case in 0..200 {
            let s = gen("[ -~\\n\\t]{0,400}", case);
            assert!(s.len() <= 400);
            assert!(s
                .chars()
                .all(|c| c == '\n' || c == '\t' || (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn length_bounds_are_inclusive() {
        let mut lens = std::collections::HashSet::new();
        for case in 0..300 {
            lens.insert(gen("[ab]{2,4}", case).len());
        }
        assert_eq!(lens, [2usize, 3, 4].into_iter().collect());
    }

    #[test]
    fn literals_and_fixed_counts() {
        assert_eq!(gen("abc", 0), "abc");
        assert_eq!(gen("a{3}", 0), "aaa");
    }

    #[test]
    fn class_ranges_and_escapes() {
        for case in 0..100 {
            let s = gen("[a-c\\n]{1,8}", case);
            assert!(s.chars().all(|c| ('a'..='c').contains(&c) || c == '\n'));
        }
    }

    #[test]
    #[should_panic(expected = "unsupported regex syntax")]
    fn unsupported_syntax_is_loud() {
        let _ = gen("a|b", 0);
    }
}
