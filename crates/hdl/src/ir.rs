//! Elaborated design intermediate representation.
//!
//! Both the Verilog and VHDL frontends lower their ASTs into this single
//! IR, which the event-driven simulator executes directly. Sharing one IR
//! is what gives the toolchain mixed-language simulation — the property
//! the paper exploited by running Vivado's unified HLx flow.
//!
//! A [`Design`] is a flat list of [`Net`]s (four-state vectors) plus a
//! list of [`Process`]es. Statement-level constructs (`if`, `case`,
//! loops, delays, event controls) are compiled into a small linear
//! instruction program ([`Instr`]) per process, so that processes can be
//! suspended at `#delay` / `wait` points and resumed by the scheduler —
//! the standard coroutine-free technique used by interpreted HDL kernels.

use crate::vec::LogicVec;
use std::fmt;

/// Index of a net in [`Design::nets`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NetId(pub u32);

/// Index of a process in [`Design::processes`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProcessId(pub u32);

/// How a net may be driven; informational for linting and log messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NetKind {
    /// Driven by continuous assignments / port connections (`wire`,
    /// VHDL signal driven concurrently).
    Wire,
    /// Driven by procedural code (`reg`, VHDL signal driven in a process).
    Reg,
}

/// A state-holding vector signal in the elaborated design.
#[derive(Debug, Clone)]
pub struct Net {
    /// Hierarchical name, e.g. `tb.u_dut.count`.
    pub name: String,
    /// Bit width (>= 1).
    pub width: u32,
    /// Driving discipline.
    pub kind: NetKind,
    /// Optional initial value; nets without one start all-`X`.
    pub init: Option<LogicVec>,
}

/// Unary operators over [`LogicVec`] operands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnaryOp {
    /// Bitwise NOT (`~`, VHDL `not`).
    Not,
    /// Logical NOT (`!`): 1-bit result.
    LogicalNot,
    /// Two's-complement negation (`-`).
    Negate,
    /// Reduction AND (`&v`).
    ReduceAnd,
    /// Reduction OR (`|v`).
    ReduceOr,
    /// Reduction XOR (`^v`).
    ReduceXor,
    /// Reduction NAND (`~&v`).
    ReduceNand,
    /// Reduction NOR (`~|v`).
    ReduceNor,
    /// Reduction XNOR (`~^v`).
    ReduceXnor,
}

/// Binary operators over [`LogicVec`] operands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinaryOp {
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Bitwise XNOR.
    Xnor,
    /// Logical AND (`&&`): 1-bit result.
    LogicalAnd,
    /// Logical OR (`||`): 1-bit result.
    LogicalOr,
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
    /// Remainder.
    Rem,
    /// Logical shift left.
    Shl,
    /// Logical shift right.
    Shr,
    /// Logical equality (`==`): may yield `X`.
    Eq,
    /// Logical inequality (`!=`): may yield `X`.
    Ne,
    /// Case equality (`===`): always `0`/`1`.
    CaseEq,
    /// Case inequality (`!==`): always `0`/`1`.
    CaseNe,
    /// Unsigned less-than.
    Lt,
    /// Unsigned less-or-equal.
    Le,
    /// Unsigned greater-than.
    Gt,
    /// Unsigned greater-or-equal.
    Ge,
}

/// An expression tree evaluated against current net values.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A constant vector value.
    Const(LogicVec),
    /// The full value of a net.
    Net(NetId),
    /// Dynamic bit-select `net[expr]`.
    Index {
        /// Source net.
        net: NetId,
        /// Bit index expression (out-of-range reads yield `X`).
        index: Box<Expr>,
    },
    /// Constant part-select `net[msb:lsb]`.
    Range {
        /// Source net.
        net: NetId,
        /// Most-significant selected bit.
        msb: u32,
        /// Least-significant selected bit.
        lsb: u32,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnaryOp,
        /// Operand.
        operand: Box<Expr>,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinaryOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Conditional `cond ? then : else`; an unknown condition merges both
    /// arms bit-wise into `X` where they disagree.
    Ternary {
        /// Selector.
        cond: Box<Expr>,
        /// Value when true.
        then: Box<Expr>,
        /// Value when false.
        els: Box<Expr>,
    },
    /// Concatenation `{a, b, ...}`, first element most significant.
    Concat(Vec<Expr>),
    /// Replication `{count{v}}`.
    Repeat {
        /// Replication count (elaboration-time constant).
        count: u32,
        /// Replicated operand.
        operand: Box<Expr>,
    },
    /// Current simulation time (`$time`), 64-bit.
    Time,
    /// VHDL `rising_edge(sig)` / `falling_edge(sig)`: true exactly when
    /// the executing process was resumed by a change of `net` whose new
    /// low bit matches the requested direction. Evaluates false in
    /// contexts with no wake information (continuous assigns, time
    /// wake-ups, initial execution).
    EdgeFlag {
        /// Observed signal.
        net: NetId,
        /// `true` for a rising edge, `false` for a falling edge.
        rising: bool,
    },
}

impl Expr {
    /// Convenience constructor for a sized constant.
    #[must_use]
    pub fn constant(width: u32, value: u64) -> Expr {
        Expr::Const(LogicVec::from_u64(width, value))
    }

    /// Computes this expression's self-determined width in bits, given
    /// an oracle for net widths.
    #[must_use]
    pub fn width_with(&self, net_width: &dyn Fn(NetId) -> u32) -> u32 {
        match self {
            Expr::Const(v) => v.width(),
            Expr::Net(id) => net_width(*id),
            Expr::Index { .. } | Expr::EdgeFlag { .. } => 1,
            Expr::Range { msb, lsb, .. } => msb - lsb + 1,
            Expr::Unary { op, operand } => match op {
                UnaryOp::Not | UnaryOp::Negate => operand.width_with(net_width),
                _ => 1,
            },
            Expr::Binary { op, lhs, rhs } => match op {
                BinaryOp::Eq
                | BinaryOp::Ne
                | BinaryOp::CaseEq
                | BinaryOp::CaseNe
                | BinaryOp::Lt
                | BinaryOp::Le
                | BinaryOp::Gt
                | BinaryOp::Ge
                | BinaryOp::LogicalAnd
                | BinaryOp::LogicalOr => 1,
                BinaryOp::Shl | BinaryOp::Shr => lhs.width_with(net_width),
                _ => lhs.width_with(net_width).max(rhs.width_with(net_width)),
            },
            Expr::Ternary { then, els, .. } => {
                then.width_with(net_width).max(els.width_with(net_width))
            }
            Expr::Concat(parts) => parts.iter().map(|p| p.width_with(net_width)).sum(),
            Expr::Repeat { count, operand } => count * operand.width_with(net_width),
            Expr::Time => 64,
        }
    }

    /// Recursively widens context-determined operators (arithmetic,
    /// bitwise, shifts, ternaries, constants) to `w` bits, zero-padding
    /// self-determined subexpressions — the IEEE 1364 context-determined
    /// sizing rule shared by both frontends.
    #[must_use]
    pub fn widened_to(self, w: u32, net_width: &dyn Fn(NetId) -> u32) -> Expr {
        // No early return at equal width: context sizing must still reach
        // narrower inner operands (e.g. `a + (flag << 1)` with 1-bit
        // `flag`), exactly as in IEEE 1364.
        match self {
            Expr::Const(v) if v.width() >= w => Expr::Const(v),
            Expr::Const(v) => Expr::Const(v.resize(w)),
            Expr::Binary {
                op: op @ (BinaryOp::Shl | BinaryOp::Shr),
                lhs,
                rhs,
            } => Expr::Binary {
                op,
                lhs: Box::new(lhs.widened_to(w, net_width)),
                rhs,
            },
            Expr::Binary {
                op:
                    op @ (BinaryOp::Add
                    | BinaryOp::Sub
                    | BinaryOp::Mul
                    | BinaryOp::Div
                    | BinaryOp::Rem
                    | BinaryOp::And
                    | BinaryOp::Or
                    | BinaryOp::Xor
                    | BinaryOp::Xnor),
                lhs,
                rhs,
            } => Expr::Binary {
                op,
                lhs: Box::new(lhs.widened_to(w, net_width)),
                rhs: Box::new(rhs.widened_to(w, net_width)),
            },
            Expr::Unary {
                op: op @ (UnaryOp::Not | UnaryOp::Negate),
                operand,
            } => Expr::Unary {
                op,
                operand: Box::new(operand.widened_to(w, net_width)),
            },
            Expr::Ternary { cond, then, els } => Expr::Ternary {
                cond,
                then: Box::new(then.widened_to(w, net_width)),
                els: Box::new(els.widened_to(w, net_width)),
            },
            other => other.padded_to(w, net_width),
        }
    }

    /// Zero-extends a self-determined expression to `w` bits by
    /// concatenating leading zeros.
    #[must_use]
    pub fn padded_to(self, w: u32, net_width: &dyn Fn(NetId) -> u32) -> Expr {
        let cur = self.width_with(net_width);
        if cur >= w {
            return self;
        }
        Expr::Concat(vec![Expr::Const(LogicVec::zeros(w - cur)), self])
    }

    /// Collects every net read by this expression into `out`.
    pub fn collect_reads(&self, out: &mut Vec<NetId>) {
        match self {
            Expr::Const(_) | Expr::Time => {}
            Expr::EdgeFlag { net, .. } => out.push(*net),
            Expr::Net(id) => out.push(*id),
            Expr::Index { net, index } => {
                out.push(*net);
                index.collect_reads(out);
            }
            Expr::Range { net, .. } => out.push(*net),
            Expr::Unary { operand, .. } => operand.collect_reads(out),
            Expr::Binary { lhs, rhs, .. } => {
                lhs.collect_reads(out);
                rhs.collect_reads(out);
            }
            Expr::Ternary { cond, then, els } => {
                cond.collect_reads(out);
                then.collect_reads(out);
                els.collect_reads(out);
            }
            Expr::Concat(parts) => {
                for p in parts {
                    p.collect_reads(out);
                }
            }
            Expr::Repeat { operand, .. } => operand.collect_reads(out),
        }
    }
}

/// Assignment target.
#[derive(Debug, Clone, PartialEq)]
pub enum LValue {
    /// Whole net.
    Net(NetId),
    /// Constant part-select `net[msb:lsb]`.
    Range(NetId, u32, u32),
    /// Dynamic bit-select `net[expr]`.
    Index(NetId, Expr),
    /// Concatenated target `{a, b} = ...`, first element most significant.
    Concat(Vec<LValue>),
}

impl LValue {
    /// The nets written by this l-value.
    pub fn collect_writes(&self, out: &mut Vec<NetId>) {
        match self {
            LValue::Net(id) | LValue::Range(id, _, _) | LValue::Index(id, _) => out.push(*id),
            LValue::Concat(parts) => {
                for p in parts {
                    p.collect_writes(out);
                }
            }
        }
    }
}

/// An event that can resume a waiting process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Trigger {
    /// Any value change on the net.
    AnyChange(NetId),
    /// `0→1` (or `X/Z→1`) transition of bit 0.
    Posedge(NetId),
    /// `1→0` (or `X/Z→0`) transition of bit 0.
    Negedge(NetId),
}

impl Trigger {
    /// The net this trigger observes.
    #[must_use]
    pub fn net(self) -> NetId {
        match self {
            Trigger::AnyChange(n) | Trigger::Posedge(n) | Trigger::Negedge(n) => n,
        }
    }
}

/// Which system task a [`Instr::SysCall`] performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SysTaskKind {
    /// `$display` — formatted line to the simulation log.
    Display,
    /// `$write` — formatted text without trailing newline.
    Write,
    /// `$error` / VHDL `assert ... severity error` — formatted line with
    /// an error marker; counted by the simulator.
    Error,
    /// `$fatal` / `severity failure` — error marker plus immediate stop.
    Fatal,
    /// `$finish` — orderly end of simulation.
    Finish,
    /// `$monitor` — registers a format; the simulator prints it at the
    /// end of every time step in which any argument changed (IEEE 1364
    /// §17.1; a later `$monitor` replaces the active one).
    Monitor,
}

/// One instruction of a compiled process program.
///
/// Instructions are addressed by their index; `Jump`/`BranchIfFalse`
/// targets are absolute indices within the owning process.
#[derive(Debug, Clone, PartialEq)]
pub enum Instr {
    /// Blocking assignment: takes effect immediately.
    BlockingAssign {
        /// Target.
        lvalue: LValue,
        /// Source expression.
        expr: Expr,
    },
    /// Nonblocking assignment: value is computed now, committed in the
    /// NBA phase of the current time step.
    NonblockingAssign {
        /// Target.
        lvalue: LValue,
        /// Source expression.
        expr: Expr,
    },
    /// Suspend for `amount` time units (`#n` / `wait for n ns`).
    Delay {
        /// Delay amount expression (evaluated when reached).
        amount: Expr,
    },
    /// Suspend until one of `triggers` fires (`@(...)` / process
    /// sensitivity / `wait until`).
    WaitEvent {
        /// Resuming events.
        triggers: Vec<Trigger>,
    },
    /// Unconditional branch to an absolute instruction index.
    Jump(usize),
    /// Branch to `target` when `cond` is false or unknown.
    BranchIfFalse {
        /// Condition.
        cond: Expr,
        /// Absolute branch target.
        target: usize,
    },
    /// System task / report statement.
    SysCall {
        /// Which task.
        kind: SysTaskKind,
        /// Format string with `%b %h %d %0d %s %t %%` directives; when
        /// `None`, arguments print space-separated in decimal.
        format: Option<String>,
        /// Format arguments.
        args: Vec<Expr>,
    },
    /// Terminate this process permanently.
    Halt,
}

/// How a process starts and restarts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProcessKind {
    /// Runs once from instruction 0 at time zero (`initial`, VHDL process
    /// ending in `wait;`).
    Initial,
    /// Runs at time zero and loops forever (its program re-arms itself by
    /// jumping back to its `WaitEvent` header).
    Always,
}

/// A compiled process: straight-line instruction program plus metadata.
#[derive(Debug, Clone)]
pub struct Process {
    /// Debug name, e.g. `tb.stimulus` or `dut.always@12`.
    pub name: String,
    /// Start/restart behaviour.
    pub kind: ProcessKind,
    /// Compiled instruction program.
    pub body: Vec<Instr>,
}

/// A fully elaborated, simulatable design.
///
/// # Example
///
/// Building a tiny design by hand (frontends normally do this):
///
/// ```
/// use aivril_hdl::ir::*;
/// use aivril_hdl::vec::LogicVec;
///
/// let mut d = Design::new("toggler");
/// let q = d.add_net(Net {
///     name: "q".into(),
///     width: 1,
///     kind: NetKind::Reg,
///     init: Some(LogicVec::zeros(1)),
/// });
/// d.add_process(Process {
///     name: "flip".into(),
///     kind: ProcessKind::Always,
///     body: vec![
///         Instr::Delay { amount: Expr::constant(32, 5) },
///         Instr::BlockingAssign {
///             lvalue: LValue::Net(q),
///             expr: Expr::Unary { op: UnaryOp::Not, operand: Box::new(Expr::Net(q)) },
///         },
///         Instr::Jump(0),
///     ],
/// });
/// assert_eq!(d.nets.len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Design {
    /// Name of the top-level unit this design was elaborated from.
    pub top: String,
    /// All nets, indexed by [`NetId`].
    pub nets: Vec<Net>,
    /// All processes, indexed by [`ProcessId`].
    pub processes: Vec<Process>,
}

impl Design {
    /// Creates an empty design for top-level unit `top`.
    #[must_use]
    pub fn new(top: impl Into<String>) -> Design {
        Design {
            top: top.into(),
            nets: Vec::new(),
            processes: Vec::new(),
        }
    }

    /// Adds a net and returns its id.
    pub fn add_net(&mut self, net: Net) -> NetId {
        let id = NetId(self.nets.len() as u32);
        self.nets.push(net);
        id
    }

    /// Adds a process and returns its id.
    pub fn add_process(&mut self, process: Process) -> ProcessId {
        let id = ProcessId(self.processes.len() as u32);
        self.processes.push(process);
        id
    }

    /// Adds a continuous assignment, compiled into an always-process that
    /// evaluates once at time zero and then re-evaluates whenever any net
    /// read by `expr` (or by dynamic indices in `lvalue`) changes.
    pub fn add_continuous_assign(&mut self, lvalue: LValue, expr: Expr) -> ProcessId {
        let mut reads = Vec::new();
        expr.collect_reads(&mut reads);
        if let LValue::Index(_, idx) = &lvalue {
            idx.collect_reads(&mut reads);
        }
        reads.sort_unstable();
        reads.dedup();
        let triggers: Vec<Trigger> = reads.into_iter().map(Trigger::AnyChange).collect();
        let name = format!("assign#{}", self.processes.len());
        let body = if triggers.is_empty() {
            // Pure-constant RHS: assign once and halt.
            vec![Instr::BlockingAssign { lvalue, expr }, Instr::Halt]
        } else {
            vec![
                Instr::BlockingAssign { lvalue, expr },
                Instr::WaitEvent { triggers },
                Instr::Jump(0),
            ]
        };
        self.add_process(Process {
            name,
            kind: ProcessKind::Always,
            body,
        })
    }

    /// Finds a net by exact hierarchical name.
    #[must_use]
    pub fn find_net(&self, name: &str) -> Option<NetId> {
        self.nets
            .iter()
            .position(|n| n.name == name)
            .map(|i| NetId(i as u32))
    }

    /// Looks up a net definition.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this design.
    #[must_use]
    pub fn net(&self, id: NetId) -> &Net {
        &self.nets[id.0 as usize]
    }

    /// Total number of process instructions — a rough design-size measure
    /// used by the EDA latency model.
    #[must_use]
    pub fn instruction_count(&self) -> usize {
        self.processes.iter().map(|p| p.body.len()).sum()
    }
}

impl fmt::Display for Design {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "design '{}' ({} nets, {} processes)",
            self.top,
            self.nets.len(),
            self.processes.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reg(name: &str, width: u32) -> Net {
        Net {
            name: name.into(),
            width,
            kind: NetKind::Reg,
            init: None,
        }
    }

    #[test]
    fn expr_collect_reads_dedup_at_assign() {
        let mut d = Design::new("t");
        let a = d.add_net(reg("a", 4));
        let b = d.add_net(reg("b", 4));
        let y = d.add_net(reg("y", 4));
        let expr = Expr::Binary {
            op: BinaryOp::Add,
            lhs: Box::new(Expr::Net(a)),
            rhs: Box::new(Expr::Binary {
                op: BinaryOp::Xor,
                lhs: Box::new(Expr::Net(a)),
                rhs: Box::new(Expr::Net(b)),
            }),
        };
        let pid = d.add_continuous_assign(LValue::Net(y), expr);
        let proc = &d.processes[pid.0 as usize];
        match &proc.body[1] {
            Instr::WaitEvent { triggers } => {
                assert_eq!(triggers.len(), 2, "a deduplicated, b present");
            }
            other => panic!("expected WaitEvent, got {other:?}"),
        }
    }

    #[test]
    fn constant_assign_halts() {
        let mut d = Design::new("t");
        let y = d.add_net(reg("y", 1));
        let pid = d.add_continuous_assign(LValue::Net(y), Expr::constant(1, 1));
        let proc = &d.processes[pid.0 as usize];
        assert_eq!(proc.body.last(), Some(&Instr::Halt));
    }

    #[test]
    fn find_net_by_name() {
        let mut d = Design::new("t");
        let a = d.add_net(reg("tb.u.a", 1));
        assert_eq!(d.find_net("tb.u.a"), Some(a));
        assert_eq!(d.find_net("missing"), None);
    }

    #[test]
    fn trigger_net_accessor() {
        let n = NetId(3);
        assert_eq!(Trigger::Posedge(n).net(), n);
        assert_eq!(Trigger::Negedge(n).net(), n);
        assert_eq!(Trigger::AnyChange(n).net(), n);
    }

    #[test]
    fn display_summary() {
        let mut d = Design::new("top");
        d.add_net(reg("x", 8));
        assert_eq!(d.to_string(), "design 'top' (1 nets, 0 processes)");
    }
}
