//! Flip-flops and shift registers (10 problems).

use crate::builders::{seq_problem, SeqSpec};
use crate::port::{Port, SplitMix};
use crate::{Difficulty, Family, Problem};

fn mask(w: u32) -> u64 {
    (1u64 << w) - 1
}

fn bit_stim(extra_bits: usize, cycles: usize, seed: u64) -> Vec<Vec<u64>> {
    let mut rng = SplitMix::new(seed);
    (0..cycles)
        .map(|c| {
            let mut v = vec![u64::from(c < 2)];
            for _ in 0..extra_bits {
                v.push(rng.next_u64() & 1);
            }
            v
        })
        .collect()
}

fn dff(with_enable: bool) -> SeqSpec {
    let name = if with_enable { "dff_en" } else { "dff" };
    let mut inputs = vec![Port::new("rst", 1), Port::new("d", 1)];
    if with_enable {
        inputs.push(Port::new("en", 1));
    }
    let stim = bit_stim(inputs.len() - 1, 20, 5);
    let mut q = 0u64;
    let expected = stim
        .iter()
        .map(|v| {
            q = if v[0] == 1 {
                0
            } else if !with_enable || v[2] == 1 {
                v[1]
            } else {
                q
            };
            Some(vec![q])
        })
        .collect();
    let (vlog_body, vhdl_body) = if with_enable {
        (
            "  always @(posedge clk) begin\n    if (rst) q <= 0;\n    else if (en) q <= d;\n  end\n".to_string(),
            "  process (clk)\n  begin\n    if rising_edge(clk) then\n      if rst = '1' then\n        q <= '0';\n      elsif en = '1' then\n        q <= d;\n      end if;\n    end if;\n  end process;\n".to_string(),
        )
    } else {
        (
            "  always @(posedge clk) begin\n    if (rst) q <= 0;\n    else q <= d;\n  end\n".to_string(),
            "  process (clk)\n  begin\n    if rising_edge(clk) then\n      if rst = '1' then\n        q <= '0';\n      else\n        q <= d;\n      end if;\n    end if;\n  end process;\n".to_string(),
        )
    };
    SeqSpec {
        name: name.into(),
        family: Family::ShiftRegister,
        difficulty: Difficulty::Easy,
        description: if with_enable {
            "A D flip-flop with synchronous reset and clock enable: q captures d on rising clock edges where en is 1; rst clears q.".into()
        } else {
            "A D flip-flop with synchronous reset: q captures d on every rising clock edge; rst clears q.".into()
        },
        inputs,
        outputs: vec![Port::new("q", 1)],
        vlog_body,
        vhdl_body,
        vhdl_decls: String::new(),
        stimulus: stim,
        expected,
    }
}

/// Serial-in serial-out: `dout` is `din` delayed by `width` cycles.
fn siso(width: u32) -> SeqSpec {
    let stim = bit_stim(1, 30, u64::from(width) * 3 + 1);
    let mut sr = 0u64;
    let expected = stim
        .iter()
        .map(|v| {
            sr = if v[0] == 1 {
                0
            } else {
                (sr << 1 | v[1]) & mask(width)
            };
            Some(vec![sr >> (width - 1) & 1])
        })
        .collect();
    let hi = width - 1;
    SeqSpec {
        name: format!("siso_w{width}"),
        family: Family::ShiftRegister,
        difficulty: Difficulty::Medium,
        description: format!(
            "A {width}-stage serial-in serial-out shift register: dout equals din delayed by {width} clock cycles (rst synchronously clears the pipeline)."
        ),
        inputs: vec![Port::new("rst", 1), Port::new("din", 1)],
        outputs: vec![Port::new("dout", 1)],
        vlog_body: format!(
            "  reg [{hi}:0] sr;\n  always @(posedge clk) begin\n    if (rst) sr <= 0;\n    else sr <= {{sr[{}:0], din}};\n  end\n  always @(posedge clk) begin\n    if (rst) dout <= 0;\n    else dout <= sr[{}];\n  end\n",
            hi - 1,
            hi - 1
        ),
        vhdl_body: format!(
            "  process (clk)\n  begin\n    if rising_edge(clk) then\n      if rst = '1' then\n        sr <= (others => '0');\n        dout <= '0';\n      else\n        sr <= sr({} downto 0) & din;\n        dout <= sr({});\n      end if;\n    end if;\n  end process;\n",
            hi - 1,
            hi - 1
        ),
        vhdl_decls: format!("  signal sr : std_logic_vector({hi} downto 0) := (others => '0');\n"),
        stimulus: stim,
        expected,
    }
}

/// Serial-in parallel-out, MSB-first (new bit enters at the LSB).
fn sipo(width: u32, lsb_first: bool) -> SeqSpec {
    let dir = if lsb_first { "_lsb" } else { "" };
    let stim = bit_stim(1, 28, u64::from(width) * 5 + 2);
    let mut q = 0u64;
    let m = mask(width);
    let expected = stim
        .iter()
        .map(|v| {
            q = if v[0] == 1 {
                0
            } else if lsb_first {
                (q >> 1 | v[1] << (width - 1)) & m
            } else {
                (q << 1 | v[1]) & m
            };
            Some(vec![q])
        })
        .collect();
    let hi = width - 1;
    let (vupd, hupd) = if lsb_first {
        (
            format!("q <= {{din, q[{hi}:1]}};"),
            format!("r <= din & r({hi} downto 1);"),
        )
    } else {
        (
            format!("q <= {{q[{}:0], din}};", hi - 1),
            format!("r <= r({} downto 0) & din;", hi - 1),
        )
    };
    SeqSpec {
        name: format!("sipo{dir}_w{width}"),
        family: Family::ShiftRegister,
        difficulty: Difficulty::Medium,
        description: format!(
            "A {width}-bit serial-in parallel-out shift register: each cycle din shifts in at the {}; rst synchronously clears q.",
            if lsb_first { "MSB end (contents move toward the LSB)" } else { "LSB end (contents move toward the MSB)" }
        ),
        inputs: vec![Port::new("rst", 1), Port::new("din", 1)],
        outputs: vec![Port::new("q", width)],
        vlog_body: format!(
            "  always @(posedge clk) begin\n    if (rst) q <= 0;\n    else {vupd}\n  end\n"
        ),
        vhdl_body: format!(
            "  process (clk)\n  begin\n    if rising_edge(clk) then\n      if rst = '1' then\n        r <= (others => '0');\n      else\n        {hupd}\n      end if;\n    end if;\n  end process;\n  q <= r;\n"
        ),
        vhdl_decls: format!("  signal r : std_logic_vector({hi} downto 0) := (others => '0');\n"),
        stimulus: stim,
        expected,
    }
}

/// Parallel load + shift-left with serial input.
fn load_shift() -> SeqSpec {
    let mut rng = SplitMix::new(41);
    let stim: Vec<Vec<u64>> = (0..26)
        .map(|c| {
            vec![
                u64::from(c < 2 || c == 13),
                u64::from(c % 6 == 2),
                rng.bits(4),
                rng.next_u64() & 1,
            ]
        })
        .collect();
    let mut q = 0u64;
    let expected = stim
        .iter()
        .map(|v| {
            q = if v[0] == 1 {
                0
            } else if v[1] == 1 {
                v[2]
            } else {
                (q << 1 | v[3]) & 0xF
            };
            Some(vec![q])
        })
        .collect();
    SeqSpec {
        name: "load_shift_w4".into(),
        family: Family::ShiftRegister,
        difficulty: Difficulty::Hard,
        description: "A 4-bit load/shift register: when load is 1, q takes d; otherwise q shifts left one position with din entering at the LSB. rst is a synchronous reset with priority over load.".into(),
        inputs: vec![
            Port::new("rst", 1),
            Port::new("load", 1),
            Port::new("d", 4),
            Port::new("din", 1),
        ],
        outputs: vec![Port::new("q", 4)],
        vlog_body: "  always @(posedge clk) begin\n    if (rst) q <= 0;\n    else if (load) q <= d;\n    else q <= {q[2:0], din};\n  end\n".into(),
        vhdl_body: "  process (clk)\n  begin\n    if rising_edge(clk) then\n      if rst = '1' then\n        r <= (others => '0');\n      elsif load = '1' then\n        r <= d;\n      else\n        r <= r(2 downto 0) & din;\n      end if;\n    end if;\n  end process;\n  q <= r;\n".into(),
        vhdl_decls: "  signal r : std_logic_vector(3 downto 0) := (others => '0');\n".into(),
        stimulus: stim,
        expected,
    }
}

/// Shift with enable.
fn shift_en() -> SeqSpec {
    let stim = bit_stim(2, 24, 9);
    let mut q = 0u64;
    let expected = stim
        .iter()
        .map(|v| {
            q = if v[0] == 1 {
                0
            } else if v[2] == 1 {
                (q << 1 | v[1]) & 0xF
            } else {
                q
            };
            Some(vec![q])
        })
        .collect();
    SeqSpec {
        name: "shift_en_w4".into(),
        family: Family::ShiftRegister,
        difficulty: Difficulty::Medium,
        description: "A 4-bit shift register with enable: on cycles where en is 1, q shifts left with din entering at the LSB; otherwise q holds. rst synchronously clears q.".into(),
        inputs: vec![Port::new("rst", 1), Port::new("din", 1), Port::new("en", 1)],
        outputs: vec![Port::new("q", 4)],
        vlog_body: "  always @(posedge clk) begin\n    if (rst) q <= 0;\n    else if (en) q <= {q[2:0], din};\n  end\n".into(),
        vhdl_body: "  process (clk)\n  begin\n    if rising_edge(clk) then\n      if rst = '1' then\n        r <= (others => '0');\n      elsif en = '1' then\n        r <= r(2 downto 0) & din;\n      end if;\n    end if;\n  end process;\n  q <= r;\n".into(),
        vhdl_decls: "  signal r : std_logic_vector(3 downto 0) := (others => '0');\n".into(),
        stimulus: stim,
        expected,
    }
}

/// Bidirectional shift.
fn bidir() -> SeqSpec {
    let stim = bit_stim(2, 24, 13);
    let mut q = 0u64;
    let expected = stim
        .iter()
        .map(|v| {
            q = if v[0] == 1 {
                0
            } else if v[2] == 1 {
                (q << 1 | v[1]) & 0xF
            } else {
                q >> 1 | v[1] << 3
            };
            Some(vec![q])
        })
        .collect();
    SeqSpec {
        name: "bidir_shift_w4".into(),
        family: Family::ShiftRegister,
        difficulty: Difficulty::Hard,
        description: "A 4-bit bidirectional shift register: when dir is 1, q shifts left (din enters at the LSB); when dir is 0, q shifts right (din enters at the MSB). rst is a synchronous reset.".into(),
        inputs: vec![Port::new("rst", 1), Port::new("din", 1), Port::new("dir", 1)],
        outputs: vec![Port::new("q", 4)],
        vlog_body: "  always @(posedge clk) begin\n    if (rst) q <= 0;\n    else if (dir) q <= {q[2:0], din};\n    else q <= {din, q[3:1]};\n  end\n".into(),
        vhdl_body: "  process (clk)\n  begin\n    if rising_edge(clk) then\n      if rst = '1' then\n        r <= (others => '0');\n      elsif dir = '1' then\n        r <= r(2 downto 0) & din;\n      else\n        r <= din & r(3 downto 1);\n      end if;\n    end if;\n  end process;\n  q <= r;\n".into(),
        vhdl_decls: "  signal r : std_logic_vector(3 downto 0) := (others => '0');\n".into(),
        stimulus: stim,
        expected,
    }
}

/// Appends the family's problems.
pub fn extend(problems: &mut Vec<Problem>) {
    problems.push(seq_problem(dff(false)));
    problems.push(seq_problem(dff(true)));
    problems.push(seq_problem(siso(4)));
    problems.push(seq_problem(siso(8)));
    problems.push(seq_problem(sipo(4, false)));
    problems.push(seq_problem(sipo(8, false)));
    problems.push(seq_problem(sipo(4, true)));
    problems.push(seq_problem(load_shift()));
    problems.push(seq_problem(shift_en()));
    problems.push(seq_problem(bidir()));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contributes_10_problems() {
        let mut v = Vec::new();
        extend(&mut v);
        assert_eq!(v.len(), 10);
    }

    #[test]
    fn siso_delays_by_width() {
        // Feed 1 once after reset; it must surface `width` cycles later.
        let s = siso(4);
        // Golden is embedded in `expected`; sanity-check the testbench
        // mentions the serial ports.
        assert!(s.vlog_body.contains("sr"));
        assert_eq!(s.stimulus.len(), s.expected.len());
    }
}
