//! Chat message and request/response types.

/// Who authored a message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Role {
    /// System instructions (agent persona).
    System,
    /// The agent's prompt.
    User,
    /// Model output.
    Assistant,
}

/// One chat message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    /// Author.
    pub role: Role,
    /// Text content.
    pub content: String,
}

impl Message {
    /// Creates a system message.
    #[must_use]
    pub fn system(content: impl Into<String>) -> Message {
        Message {
            role: Role::System,
            content: content.into(),
        }
    }

    /// Creates a user message.
    #[must_use]
    pub fn user(content: impl Into<String>) -> Message {
        Message {
            role: Role::User,
            content: content.into(),
        }
    }

    /// Creates an assistant message.
    #[must_use]
    pub fn assistant(content: impl Into<String>) -> Message {
        Message {
            role: Role::Assistant,
            content: content.into(),
        }
    }
}

/// Sampling parameters; the paper fixes `temperature = 0.2` and
/// `top_p = 0.1` for every model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GenParams {
    /// Sampling temperature.
    pub temperature: f64,
    /// Nucleus sampling mass.
    pub top_p: f64,
    /// Determinism seed (per task × sample).
    pub seed: u64,
    /// Retry attempt counter for this request (0 = first try). Fault
    /// injection mixes this into its decision stream so a retried
    /// request re-rolls instead of deterministically failing forever;
    /// the content plans ignore it, so a retry reproduces the same code.
    pub attempt: u32,
    /// Generation cap.
    pub max_tokens: u32,
}

impl Default for GenParams {
    fn default() -> GenParams {
        GenParams {
            temperature: 0.2,
            top_p: 0.1,
            seed: 0,
            attempt: 0,
            max_tokens: 4096,
        }
    }
}

/// A chat-completion request: full history plus parameters, exactly the
/// stateless shape of production LLM APIs.
#[derive(Debug, Clone, PartialEq)]
pub struct ChatRequest {
    /// Conversation so far (system + alternating user/assistant).
    pub messages: Vec<Message>,
    /// Sampling parameters.
    pub params: GenParams,
}

impl ChatRequest {
    /// The most recent user message, if any.
    #[must_use]
    pub fn last_user(&self) -> Option<&Message> {
        self.messages.iter().rev().find(|m| m.role == Role::User)
    }
}

/// Token accounting for a response.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TokenUsage {
    /// Tokens consumed by the prompt.
    pub prompt_tokens: u64,
    /// Tokens generated.
    pub completion_tokens: u64,
}

/// The model's reply.
#[derive(Debug, Clone, PartialEq)]
pub struct ChatResponse {
    /// Assistant message text.
    pub content: String,
    /// Token accounting.
    pub usage: TokenUsage,
    /// Modeled wall-clock latency in seconds.
    pub latency_s: f64,
}

/// Rough token estimate used for latency and usage accounting
/// (≈ 4 characters per token, the usual English-code average).
#[must_use]
pub fn estimate_tokens(text: &str) -> u64 {
    (text.len() as u64).div_ceil(4)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_params_match_paper() {
        let p = GenParams::default();
        assert!((p.temperature - 0.2).abs() < 1e-9);
        assert!((p.top_p - 0.1).abs() < 1e-9);
    }

    #[test]
    fn last_user_finds_most_recent() {
        let req = ChatRequest {
            messages: vec![
                Message::system("s"),
                Message::user("first"),
                Message::assistant("a"),
                Message::user("second"),
            ],
            params: GenParams::default(),
        };
        assert_eq!(req.last_user().map(|m| m.content.as_str()), Some("second"));
    }

    #[test]
    fn token_estimate_rounds_up() {
        assert_eq!(estimate_tokens(""), 0);
        assert_eq!(estimate_tokens("abcd"), 1);
        assert_eq!(estimate_tokens("abcde"), 2);
    }
}
