//! Abstract syntax tree for the VHDL-93 subset.

use aivril_hdl::source::Span;
use std::sync::Arc;

/// A parsed design file: entities and architectures.
///
/// Design units are `Arc`-shared so per-file parse results can be
/// memoized (the EDA parse cache) and stitched into fresh files without
/// cloning the AST bodies.
#[derive(Debug, Clone, Default)]
pub struct DesignFile {
    /// Entity declarations.
    pub entities: Vec<Arc<Entity>>,
    /// Architecture bodies.
    pub architectures: Vec<Arc<Architecture>>,
}

/// `entity NAME is [generic(...)] [port(...)] end;`
#[derive(Debug, Clone)]
pub struct Entity {
    /// Entity name (lowercased).
    pub name: String,
    /// Generic declarations.
    pub generics: Vec<GenericDecl>,
    /// Port declarations.
    pub ports: Vec<PortDecl>,
    /// Location of the header.
    pub span: Span,
}

/// One generic constant.
#[derive(Debug, Clone)]
pub struct GenericDecl {
    /// Name (lowercased).
    pub name: String,
    /// Default value.
    pub default: Option<Expr>,
    /// Location.
    pub span: Span,
}

/// Port direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PortDir {
    /// `in`
    In,
    /// `out`
    Out,
    /// `inout` (rejected at elaboration)
    Inout,
}

/// A subtype indication of the supported type universe.
#[derive(Debug, Clone)]
pub enum TypeMark {
    /// `std_logic`
    StdLogic,
    /// `std_logic_vector(h downto l)` / `unsigned(...)` / `signed(...)`
    Vector {
        /// High bound expression.
        high: Expr,
        /// Low bound expression.
        low: Expr,
        /// `true` for `downto`, `false` for `to`.
        downto: bool,
    },
    /// `integer` (32 bits here)
    Integer,
    /// `boolean`
    Boolean,
}

/// One port.
#[derive(Debug, Clone)]
pub struct PortDecl {
    /// Name (lowercased).
    pub name: String,
    /// Direction.
    pub dir: PortDir,
    /// Type.
    pub ty: TypeMark,
    /// Location.
    pub span: Span,
}

/// `architecture NAME of ENTITY is DECLS begin STMTS end;`
#[derive(Debug, Clone)]
pub struct Architecture {
    /// Architecture name.
    pub name: String,
    /// Target entity name.
    pub entity: String,
    /// Declarative part.
    pub decls: Vec<Decl>,
    /// Concurrent statements.
    pub stmts: Vec<ConcurrentStmt>,
    /// Location.
    pub span: Span,
}

/// A declaration in an architecture's declarative part.
#[derive(Debug, Clone)]
pub enum Decl {
    /// `signal a, b : TYPE [:= init];`
    Signal {
        /// Declared names.
        names: Vec<(String, Span)>,
        /// Type.
        ty: TypeMark,
        /// Optional initial value.
        init: Option<Expr>,
    },
    /// `constant C : TYPE := value;`
    Constant {
        /// Name.
        name: String,
        /// Value expression.
        value: Expr,
        /// Location.
        span: Span,
    },
}

/// A concurrent statement.
#[derive(Debug, Clone)]
pub enum ConcurrentStmt {
    /// `target <= value;` or `target <= a when c else b;`
    Assign {
        /// Target signal expression.
        target: Expr,
        /// Value (possibly a when/else chain lowered to [`Expr::When`]).
        value: Expr,
        /// Location.
        span: Span,
    },
    /// `process (sens) [variable decls] begin ... end process;`
    Process {
        /// Optional label.
        label: Option<String>,
        /// Sensitivity list signal names.
        sensitivity: Vec<(String, Span)>,
        /// Process-local variable declarations.
        variables: Vec<VarDecl>,
        /// Sequential body.
        body: Vec<SeqStmt>,
        /// Location.
        span: Span,
    },
    /// `label: entity work.NAME [generic map (...)] port map (...);`
    Instance {
        /// Instance label.
        label: String,
        /// Instantiated entity name.
        entity: String,
        /// Generic associations.
        generic_map: Vec<(String, Expr)>,
        /// Port associations (`open` = `None`).
        port_map: Vec<(String, Option<Expr>, Span)>,
        /// Location.
        span: Span,
    },
}

/// Severity of an `assert`/`report`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeverityLevel {
    /// `note`
    Note,
    /// `warning`
    Warning,
    /// `error`
    Error,
    /// `failure`
    Failure,
}

/// One process-local variable declaration.
#[derive(Debug, Clone)]
pub struct VarDecl {
    /// Declared names.
    pub names: Vec<(String, Span)>,
    /// Type.
    pub ty: TypeMark,
    /// Optional initial value.
    pub init: Option<Expr>,
}

/// A sequential statement inside a process.
#[derive(Debug, Clone)]
pub enum SeqStmt {
    /// `target := value;` — immediate (variable) assignment.
    VariableAssign {
        /// Target variable.
        target: Expr,
        /// Value.
        value: Expr,
        /// Location.
        span: Span,
    },
    /// `target <= value;`
    SignalAssign {
        /// Target.
        target: Expr,
        /// Value.
        value: Expr,
        /// Location.
        span: Span,
    },
    /// `if c1 then .. elsif c2 then .. else .. end if;`
    If {
        /// `(condition, body)` arms: the `if` plus each `elsif`.
        arms: Vec<(Expr, Vec<SeqStmt>)>,
        /// `else` body.
        els: Option<Vec<SeqStmt>>,
    },
    /// `case subject is when ... end case;`
    Case {
        /// Scrutinee.
        subject: Expr,
        /// `(choices, body)` arms; an empty choice list = `when others`.
        arms: Vec<(Vec<Expr>, Vec<SeqStmt>)>,
        /// Location.
        span: Span,
    },
    /// `for i in A to|downto B loop ... end loop;`
    For {
        /// Loop variable name.
        var: String,
        /// Start bound.
        from: Expr,
        /// End bound.
        to: Expr,
        /// Direction.
        downto: bool,
        /// Body.
        body: Vec<SeqStmt>,
        /// Location.
        span: Span,
    },
    /// `while cond loop ... end loop;`
    While {
        /// Condition.
        cond: Expr,
        /// Body.
        body: Vec<SeqStmt>,
    },
    /// `wait for N ns;`
    WaitFor {
        /// Amount in time units.
        amount: Expr,
        /// Location.
        span: Span,
    },
    /// `wait until cond;`
    WaitUntil {
        /// Resume condition.
        cond: Expr,
        /// Location.
        span: Span,
    },
    /// `wait;` — suspend forever.
    WaitForever {
        /// Location.
        span: Span,
    },
    /// `assert cond [report "msg"] [severity level];`
    Assert {
        /// Condition (message fires when it is false).
        cond: Expr,
        /// Message.
        report: Option<String>,
        /// Severity (defaults to error).
        severity: SeverityLevel,
        /// Location.
        span: Span,
    },
    /// `report "msg" [severity level];`
    Report {
        /// Message.
        message: String,
        /// Severity (defaults to note).
        severity: SeverityLevel,
        /// Location.
        span: Span,
    },
    /// `null;`
    Null,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum BinOp {
    And,
    Or,
    Xor,
    Nand,
    Nor,
    Xnor,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    Add,
    Sub,
    Concat,
    Mul,
    Div,
    Mod,
    Rem,
    Sll,
    Srl,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum UnOp {
    Not,
    Negate,
    Plus,
}

/// An expression.
#[derive(Debug, Clone)]
pub enum Expr {
    /// Integer literal.
    Int {
        /// Value.
        value: i64,
        /// Location.
        span: Span,
    },
    /// Character literal `'0'`, `'1'`, `'X'`, `'Z'`.
    CharLit {
        /// The character.
        ch: char,
        /// Location.
        span: Span,
    },
    /// Bit-string literal `"0101"`.
    BitString {
        /// Binary digit text.
        bits: String,
        /// Location.
        span: Span,
    },
    /// Hex bit-string `x"A5"`.
    HexString {
        /// Hex digit text.
        digits: String,
        /// Location.
        span: Span,
    },
    /// String literal used as a report message.
    StrLit {
        /// Text.
        text: String,
        /// Location.
        span: Span,
    },
    /// `true` / `false`
    Bool {
        /// Value.
        value: bool,
        /// Location.
        span: Span,
    },
    /// Name reference.
    Ident {
        /// Name (lowercased).
        name: String,
        /// Location.
        span: Span,
    },
    /// `name(arg1, arg2, ...)` — call, index, or conversion; resolved at
    /// elaboration.
    Call {
        /// Called/indexed name.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
        /// Location.
        span: Span,
    },
    /// `name(H downto L)` / `name(L to H)` slice.
    Slice {
        /// Sliced name.
        name: String,
        /// High/left bound.
        left: Box<Expr>,
        /// Low/right bound.
        right: Box<Expr>,
        /// Direction.
        downto: bool,
        /// Location.
        span: Span,
    },
    /// `name'attr` (only `'event` is supported).
    Attr {
        /// Base name.
        name: String,
        /// Attribute name (lowercased).
        attr: String,
        /// Location.
        span: Span,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnOp,
        /// Operand.
        operand: Box<Expr>,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// `(others => FILL)` aggregate.
    Aggregate {
        /// Fill value.
        fill: Box<Expr>,
        /// Location.
        span: Span,
    },
    /// `V when COND else W [when ... else ...]` conditional value.
    When {
        /// Value when the condition holds.
        value: Box<Expr>,
        /// Condition.
        cond: Box<Expr>,
        /// Fallback.
        els: Box<Expr>,
    },
}

impl Expr {
    /// Best-effort source anchor.
    #[must_use]
    pub fn span(&self) -> Option<Span> {
        match self {
            Expr::Int { span, .. }
            | Expr::CharLit { span, .. }
            | Expr::BitString { span, .. }
            | Expr::HexString { span, .. }
            | Expr::StrLit { span, .. }
            | Expr::Bool { span, .. }
            | Expr::Ident { span, .. }
            | Expr::Call { span, .. }
            | Expr::Slice { span, .. }
            | Expr::Attr { span, .. }
            | Expr::Aggregate { span, .. } => Some(*span),
            Expr::Unary { operand, .. } => operand.span(),
            Expr::Binary { lhs, .. } => lhs.span(),
            Expr::When { value, .. } => value.span(),
        }
    }
}
