//! Benchmark harness: runs the AIVRIL2 pipeline and the zero-shot
//! baseline over the 156-problem suite and scores them exactly as the
//! paper does — pass@1_S from the compiler, pass@1_F from the
//! benchmark's *reference* testbenches (not the self-generated ones).
//!
//! The binaries in `src/bin` regenerate each table/figure:
//!
//! * `table1` — pass-rate summary (paper Table 1)
//! * `table2` — state-of-the-art comparison (paper Table 2)
//! * `figure3` — latency breakdown (paper Figure 3)
//! * `ablation` — extension experiments DESIGN.md calls out
//! * `quicklook` — tiny smoke run for CI-speed sanity checks

#![warn(missing_docs)]

use aivril_core::{Aivril2, Aivril2Config, BaselineFlow, RunResult, Stage, TaskInput};
use aivril_eda::{HdlFile, ToolSuite, XsimToolSuite};
use aivril_llm::{ModelProfile, SimLlm, TaskLibrary};
use aivril_metrics::{EvalOutcome, SampleOutcome};
use aivril_verilogeval::{suite, Problem};

/// Which pipeline to evaluate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Flow {
    /// Zero-shot single generation.
    Baseline,
    /// The full AIVRIL2 loop architecture.
    Aivril2,
}

/// Harness configuration.
#[derive(Debug, Clone, Copy)]
pub struct HarnessConfig {
    /// Samples per task (n of the pass@k estimator).
    pub samples: u32,
    /// Cap on the number of tasks (156 = full suite); useful for quick
    /// runs.
    pub task_limit: usize,
    /// Pipeline budgets.
    pub pipeline: Aivril2Config,
}

impl Default for HarnessConfig {
    fn default() -> HarnessConfig {
        HarnessConfig {
            samples: 5,
            task_limit: usize::MAX,
            pipeline: Aivril2Config::default(),
        }
    }
}

impl HarnessConfig {
    /// Reads `AIVRIL_SAMPLES` / `AIVRIL_TASKS` from the environment so
    /// the table binaries can be scaled without recompiling.
    #[must_use]
    pub fn from_env() -> HarnessConfig {
        let mut c = HarnessConfig::default();
        if let Ok(v) = std::env::var("AIVRIL_SAMPLES") {
            if let Ok(n) = v.parse() {
                c.samples = n;
            }
        }
        if let Ok(v) = std::env::var("AIVRIL_TASKS") {
            if let Ok(n) = v.parse() {
                c.task_limit = n;
            }
        }
        c
    }
}

/// Builds the simulated models' task knowledge from the benchmark
/// suite's golden solutions.
#[must_use]
pub fn build_library(problems: &[Problem]) -> TaskLibrary {
    let mut lib = TaskLibrary::new();
    for p in problems {
        lib.add_task(
            &p.name,
            &p.verilog.dut,
            &p.verilog.tb,
            &p.vhdl.dut,
            &p.vhdl.tb,
        );
    }
    lib
}

/// The evaluation harness: tools + suite + model knowledge.
pub struct Harness {
    tools: XsimToolSuite,
    problems: Vec<Problem>,
    config: HarnessConfig,
}

impl Harness {
    /// Creates a harness over the full 156-problem suite.
    #[must_use]
    pub fn new(config: HarnessConfig) -> Harness {
        Harness { tools: XsimToolSuite::new(), problems: suite(), config }
    }

    /// The benchmark problems in use (after the task cap).
    #[must_use]
    pub fn problems(&self) -> &[Problem] {
        &self.problems[..self.problems.len().min(self.config.task_limit)]
    }

    /// Scores a final RTL source: compiles it alone for pass@1_S, then
    /// simulates it against the *reference* testbench for pass@1_F —
    /// the paper's methodology ("executing the testbenches provided in
    /// the benchmark suite").
    #[must_use]
    pub fn score(&self, problem: &Problem, rtl: &str, verilog: bool) -> (bool, bool) {
        self.score_with_latency(problem, rtl, verilog).0
    }

    /// Like [`Harness::score`], also returning the modeled EDA seconds
    /// of the evaluation run (baseline latency accounting: the paper's
    /// Figure 3 "accounts for the execution times of EDA tools").
    #[must_use]
    pub fn score_with_latency(
        &self,
        problem: &Problem,
        rtl: &str,
        verilog: bool,
    ) -> ((bool, bool), f64) {
        let ext = if verilog { "v" } else { "vhd" };
        let dut = HdlFile::new(format!("{}.{ext}", problem.module_name), rtl.to_string());
        let compile = self
            .tools
            .compile_to_design(std::slice::from_ref(&dut), Some(&problem.module_name));
        let syntax = compile.0.success;
        if !syntax {
            return ((false, false), compile.0.modeled_latency);
        }
        let golden = problem.golden(verilog);
        let report = self.tools.simulate(
            &[dut, HdlFile::new(format!("tb.{ext}"), golden.tb.clone())],
            Some("tb"),
        );
        ((true, report.passed), compile.0.modeled_latency + report.modeled_latency)
    }

    /// Runs one flow over the suite for one model × language, returning
    /// per-task outcomes ready for the metrics crate.
    pub fn evaluate(&self, profile: &ModelProfile, verilog: bool, flow: Flow) -> Vec<EvalOutcome> {
        let library = build_library(self.problems());
        let mut model = SimLlm::new(profile.clone(), library);
        let pipeline = Aivril2::new(&self.tools, self.config.pipeline);
        let baseline = BaselineFlow::new();
        let mut outcomes = Vec::new();
        for problem in self.problems() {
            let mut samples = Vec::new();
            for sample in 0..self.config.samples {
                let task = TaskInput {
                    name: problem.name.clone(),
                    module_name: problem.module_name.clone(),
                    spec: problem.spec.clone(),
                    verilog,
                    seed: u64::from(sample) * 7919 + 17,
                };
                let result: RunResult = match flow {
                    Flow::Baseline => baseline.run(&mut model, &task, &self.config.pipeline),
                    Flow::Aivril2 => pipeline.run(&mut model, &task),
                };
                let ((syntax, functional), score_latency) =
                    self.score_with_latency(problem, &result.final_rtl, verilog);
                // Baseline latency includes its single EDA evaluation pass
                // (the paper's baseline bars include EDA tool time);
                // AIVRIL2's tool time is already inside its trace.
                let extra = if flow == Flow::Baseline { score_latency } else { 0.0 };
                samples.push(SampleOutcome {
                    syntax,
                    functional,
                    total_latency: result.trace.total_latency() + extra,
                    syntax_phase_latency: result.trace.syntax_phase_latency(),
                    functional_phase_latency: result.trace.functional_phase_latency(),
                    syntax_iters: result.trace.iterations(Stage::TbSyntaxLoop)
                        + result.trace.iterations(Stage::RtlSyntaxLoop),
                    functional_iters: result.trace.iterations(Stage::FunctionalLoop),
                });
            }
            outcomes.push(EvalOutcome { task: problem.name.clone(), samples });
        }
        outcomes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aivril_llm::profiles;
    use aivril_metrics::suite_metric;

    fn small() -> Harness {
        Harness::new(HarnessConfig {
            samples: 3,
            task_limit: 6,
            pipeline: Aivril2Config::default(),
        })
    }

    #[test]
    fn scoring_accepts_golden_and_rejects_garbage() {
        let h = small();
        let p = &h.problems()[0];
        let (s, f) = h.score(p, &p.verilog.dut, true);
        assert!(s && f, "golden must score clean");
        let (s, f) = h.score(p, "module broken(", true);
        assert!(!s && !f);
        let (s, f) = h.score(p, &p.vhdl.dut, false);
        assert!(s && f, "golden VHDL must score clean");
    }

    #[test]
    fn aivril2_beats_baseline_on_small_slice() {
        let h = small();
        let profile = profiles::claude35_sonnet();
        let base = h.evaluate(&profile, true, Flow::Baseline);
        let full = h.evaluate(&profile, true, Flow::Aivril2);
        let base_f = suite_metric(&base, 1, |s| s.functional);
        let full_f = suite_metric(&full, 1, |s| s.functional);
        let full_s = suite_metric(&full, 1, |s| s.syntax);
        assert!(full_s > 0.9, "syntax loop should converge: {full_s}");
        assert!(full_f >= base_f, "aivril2 {full_f} vs baseline {base_f}");
    }

    #[test]
    fn latencies_accumulate_in_aivril2() {
        let h = small();
        let profile = profiles::gpt4o();
        let base = h.evaluate(&profile, true, Flow::Baseline);
        let full = h.evaluate(&profile, true, Flow::Aivril2);
        let avg = |o: &[EvalOutcome]| {
            let (mut t, mut n) = (0.0, 0);
            for e in o {
                for s in &e.samples {
                    t += s.total_latency;
                    n += 1;
                }
            }
            t / f64::from(n)
        };
        assert!(avg(&full) > avg(&base));
    }

    #[test]
    fn env_config_parsing() {
        std::env::set_var("AIVRIL_SAMPLES", "2");
        std::env::set_var("AIVRIL_TASKS", "4");
        let c = HarnessConfig::from_env();
        assert_eq!(c.samples, 2);
        assert_eq!(c.task_limit, 4);
        std::env::remove_var("AIVRIL_SAMPLES");
        std::env::remove_var("AIVRIL_TASKS");
    }
}
