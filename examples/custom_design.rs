//! Extending AIVRIL2 to a user-defined design outside the benchmark
//! suite: register a custom task in the model's [`TaskLibrary`], write a
//! spec, and run the pipeline.
//!
//! (With a hosted LLM the library step disappears — the simulated model
//! needs golden knowledge to degrade; see the crate docs of
//! `aivril-llm` for the substitution argument.)
//!
//! Run with:
//! ```text
//! cargo run --release -p aivril-bench --example custom_design
//! ```

use aivril_core::{Aivril2, Aivril2Config, TaskInput};
use aivril_eda::XsimToolSuite;
use aivril_llm::{profiles, SimLlm, TaskLibrary};

const SPEC: &str = "A 4-bit linear-feedback shift register (LFSR) with taps at \
bits 3 and 2 (polynomial x^4 + x^3 + 1): on each rising clock edge the \
register shifts left and the XOR of its two top bits enters at the LSB. A \
synchronous active-high reset loads the seed value 0001.";

const GOLDEN_V: &str = "module lfsr4(
  input wire clk,
  input wire rst,
  output reg [3:0] q
);
  always @(posedge clk) begin
    if (rst) q <= 4'b0001;
    else q <= {q[2:0], q[3] ^ q[2]};
  end
endmodule
";

const GOLDEN_TB: &str = "module tb;
  reg clk;
  reg rst;
  wire [3:0] q;
  lfsr4 dut(.clk(clk), .rst(rst), .q(q));
  integer errors;
  initial begin
    errors = 0;
    clk = 0;
    rst = 1;
    #4; clk = 1; #5; clk = 0; #1;
    rst = 0;
    #4; clk = 1; #5; clk = 0; #1;
    if (q !== 4'b0010) begin $error(\"Test Case 1 Failed: q should be 0010, got %b\", q); errors = errors + 1; end
    #4; clk = 1; #5; clk = 0; #1;
    if (q !== 4'b0100) begin $error(\"Test Case 2 Failed: q should be 0100, got %b\", q); errors = errors + 1; end
    #4; clk = 1; #5; clk = 0; #1;
    if (q !== 4'b1001) begin $error(\"Test Case 3 Failed: q should be 1001, got %b\", q); errors = errors + 1; end
    #4; clk = 1; #5; clk = 0; #1;
    if (q !== 4'b0011) begin $error(\"Test Case 4 Failed: q should be 0011, got %b\", q); errors = errors + 1; end
    if (errors == 0) $display(\"All tests passed successfully!\");
    $finish;
  end
endmodule
";

fn main() {
    // Register the custom task as part of the simulated model's
    // knowledge (VHDL golden omitted: this demo targets Verilog only).
    let mut library = TaskLibrary::new();
    library.add_task("custom_lfsr4", GOLDEN_V, GOLDEN_TB, "", "");
    let mut model = SimLlm::new(profiles::gpt4o(), library);

    let tools = XsimToolSuite::new();
    let pipeline = Aivril2::new(&tools, Aivril2Config::default());

    let mut pass = 0;
    for seed in 0..6u64 {
        let task = TaskInput {
            name: "custom_lfsr4".into(),
            module_name: "lfsr4".into(),
            spec: format!("Design task: custom_lfsr4.\n{SPEC}"),
            verilog: true,
            seed,
        };
        let result = pipeline.run(&mut model, &task);
        println!(
            "sample {seed}: syntax {} functional {} in {} events",
            result.syntax_pass,
            result.functional_pass,
            result.trace.events.len()
        );
        pass += u32::from(result.functional_pass);
        if seed == 0 {
            println!("--- final RTL of sample 0 ---\n{}", result.final_rtl);
        }
    }
    println!("{pass}/6 samples functionally verified against the self-generated testbench");
}
