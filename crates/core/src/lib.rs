//! AIVRIL2: a self-verifying, LLM-agnostic multi-agent framework for
//! RTL code generation.
//!
//! This crate is the paper's primary contribution — the two-stage,
//! testbench-first pipeline of Fig. 1:
//!
//! 1. The **Code Agent** ([`agents::CodeAgent`]) first generates a
//!    comprehensive self-checking testbench from the user spec (step ②
//!    of Fig. 2), then the RTL implementation (step ③). It is the only
//!    source of code in the system and keeps every version for rollback.
//! 2. The **Syntax Optimization loop**, supervised by the **Review
//!    Agent** ([`agents::ReviewAgent`]): the EDA compiler's log is
//!    distilled into a corrective prompt with exact line numbers and
//!    code snippets, and the Code Agent revises until the code compiles
//!    (or the iteration budget runs out). The loop runs once for the
//!    testbench and once for the RTL.
//! 3. The **Functional Optimization loop**, supervised by the
//!    **Verification Agent** ([`agents::VerificationAgent`]): the design
//!    is simulated against the *frozen* testbench; failing test cases
//!    (step ⑤) become corrective prompts until all tests pass (step ⑧)
//!    or the budget runs out. The testbench never changes during this
//!    loop, keeping evaluation unbiased across RTL revisions.
//!
//! The pipeline is **language-agnostic** (the agents only route sources
//! and logs; Verilog vs VHDL is a flag) and **LLM-agnostic** (models are
//! a [`aivril_llm::LanguageModel`] trait object).
//!
//! [`BaselineFlow`] implements the paper's comparison point: one
//! zero-shot generation, no loops.
//!
//! # Example
//!
//! ```
//! use aivril_core::{Aivril2, Aivril2Config, TaskInput};
//! use aivril_eda::XsimToolSuite;
//! use aivril_llm::{profiles, SimLlm, TaskLibrary};
//!
//! let mut lib = TaskLibrary::new();
//! lib.add_task(
//!     "inv",
//!     "module inv(\n  input wire a,\n  output wire y\n);\n  assign y = ~a;\nendmodule\n",
//!     "module tb;\n  reg a;\n  wire y;\n  inv dut(.a(a), .y(y));\n  initial begin\n    a = 0; #1;\n    if (y !== 1'b1) $error(\"Test Case 1 Failed: y should be 1\");\n    $display(\"All tests passed successfully!\");\n    $finish;\n  end\nendmodule\n",
//!     "entity inv is end entity;\n",
//!     "entity tb is end entity;\n",
//! );
//! let mut model = SimLlm::new(profiles::claude35_sonnet(), lib);
//! let tools = XsimToolSuite::new();
//! let pipeline = Aivril2::new(&tools, Aivril2Config::default());
//! let task = TaskInput {
//!     name: "inv".into(),
//!     module_name: "inv".into(),
//!     spec: "y is the inverse of a".into(),
//!     verilog: true,
//!     seed: 1,
//! };
//! let result = pipeline.run(&mut model, &task);
//! assert!(result.syntax_pass);
//! ```

#![warn(missing_docs)]

pub mod agents;
mod config;
mod flow;
mod resilience;
mod task;
mod trace;
mod user;

pub use config::{Aivril2Config, PromptDetail};
pub use flow::{Aivril2, BaselineFlow, RunResult};
pub use resilience::{
    BreakerBank, CircuitBreaker, ResilienceCounters, ResiliencePolicy, MAX_RETRY_AFTER_S,
};
pub use task::TaskInput;
pub use trace::{RunTrace, Stage, TraceEvent, TraceEventKind};
pub use user::{spec_is_sufficient, NoClarification, StaticUser, UserProxy};
