//! The three specialised agents of the AIVRIL2 architecture.

mod code;
mod review;
mod verify;

pub use code::{CodeAgent, Generation};
pub use review::ReviewAgent;
pub use verify::VerificationAgent;
