//! Shard checkpoint store: crash-safe, append-only logs of completed
//! grid cells.
//!
//! Every shard of an evaluation writes one log file into the shared
//! checkpoint directory (`AIVRIL_CHECKPOINT_DIR`); each line is one
//! finished cell — its [`RunRecord`] (floats as bit patterns), the
//! cell's journal runs and its metrics delta, all in the `aivril_obs`
//! codec with an FNV-64 checksum. On startup a shard replays every
//! cell it finds (from *any* shard's file with a matching evaluation
//! fingerprint) and computes only the rest, so:
//!
//! * a killed shard resumes where it stopped, bit-identically;
//! * the multi-process merge pass (`aivril-shard`) is simply a
//!   full-range run over a directory the shards already filled — it
//!   replays everything and renders through the normal single-process
//!   path, which is what makes merged artifacts byte-identical.
//!
//! Torn tails (a line cut mid-write by `kill -9`) are detected by the
//! checksum/newline and dropped; on reopen the file is truncated back
//! to its valid prefix so subsequent appends stay parseable. A file
//! whose header names a different fingerprint (other config, suite
//! size, telemetry mode…) is ignored entirely. See DESIGN.md §9.

use crate::{RunRecord, ShardRange};
use aivril_core::ResilienceCounters;
use aivril_eda::faults::{CkptFault, EdaFaultPlan};
use aivril_metrics::SampleOutcome;
use aivril_obs::codec::{self, Reader, Writer};
use aivril_obs::{MetricsRegistry, RunJournal};
use std::collections::{BTreeMap, HashMap};
use std::fmt::Write as _;
use std::fs::{self, File, OpenOptions};
use std::io::{Seek, SeekFrom, Write as _};
use std::path::Path;
use std::sync::Mutex;

const MAGIC: &str = "aivril.ckpt";
const VERSION: u32 = 1;

/// Everything the harness must persist to replay one finished cell:
/// the scored record plus the telemetry (journal runs, metrics) the
/// cell produced.
#[derive(Debug, Clone)]
pub struct CellRecord {
    /// The scored run record.
    pub record: RunRecord,
    /// The cell's journal runs, replayed into the recorder on resume.
    pub runs: Vec<RunJournal>,
    /// The cell's metrics delta.
    pub metrics: MetricsRegistry,
}

/// One shard's view of the checkpoint directory: the cells restored
/// from disk plus this shard's own append log.
pub(crate) struct ShardCheckpoint {
    restored: HashMap<usize, CellRecord>,
    writer: Option<Mutex<File>>,
    fingerprint: u64,
    faults: EdaFaultPlan,
}

impl ShardCheckpoint {
    /// Scans `dir` for checkpoint logs carrying `fingerprint`, restores
    /// their cells, and opens this shard's own log (named by its cell
    /// range, so concurrent shards never share a file) for appending.
    /// All I/O failures degrade to "nothing restored / nothing
    /// persisted" — checkpointing is an accelerator, never a gate.
    pub fn open(dir: &Path, fingerprint: u64, range: ShardRange) -> ShardCheckpoint {
        let _ = fs::create_dir_all(dir);
        let own_name = format!("ckpt-{fingerprint:016x}-{}-{}.log", range.start, range.end);
        let prefix = format!("ckpt-{fingerprint:016x}-");
        let mut restored = HashMap::new();
        let mut own_valid_len = None;
        if let Ok(entries) = fs::read_dir(dir) {
            for entry in entries.flatten() {
                let name = entry.file_name();
                let Some(name) = name.to_str() else { continue };
                if !name.starts_with(&prefix) || !name.ends_with(".log") {
                    continue;
                }
                let Ok(text) = fs::read_to_string(entry.path()) else {
                    continue;
                };
                let (cells, valid_len) = parse_log(&text, fingerprint);
                if name == own_name {
                    own_valid_len = Some(valid_len as u64);
                }
                for (idx, cell) in cells {
                    // Duplicate cells across files are identical by
                    // construction (same fingerprint, coordinate-derived
                    // seeds), so first-wins is safe.
                    restored.entry(idx).or_insert(cell);
                }
            }
        }
        let writer = open_writer(&dir.join(&own_name), fingerprint, own_valid_len);
        ShardCheckpoint {
            restored,
            writer: writer.map(Mutex::new),
            fingerprint,
            faults: EdaFaultPlan::off(),
        }
    }

    /// Installs the deterministic fault plan for the checkpoint plane
    /// (`AIVRIL_EDA_FAULTS` `ckpt_*` classes): torn tails and checksum
    /// flips on append. An injected fault loses only durability — the
    /// loader rejects the damaged line and the cell recomputes
    /// bit-identically on resume.
    pub fn with_faults(mut self, plan: EdaFaultPlan) -> ShardCheckpoint {
        self.faults = plan;
        self
    }

    /// The restored record of `cell`, if a checkpoint covered it.
    pub fn restored(&self, cell: usize) -> Option<&CellRecord> {
        self.restored.get(&cell)
    }

    /// Appends one freshly computed cell. Flushes per line: a killed
    /// shard loses at most the line being written, and the loader drops
    /// any torn tail.
    pub fn append(&self, cell: usize, rec: &CellRecord) {
        let Some(writer) = &self.writer else { return };
        let payload = encode_cell(rec);
        let mut sum = codec::fnv64(payload.as_bytes());
        let fault = self.faults.roll_ckpt(self.fingerprint, cell, sum);
        if fault == Some(CkptFault::ChecksumFlip) {
            // Bit-rot on the checksum: the loader must reject the line.
            sum ^= 1;
        }
        let mut line = format!("cell {cell} {sum:016x} {payload}\n");
        if fault == Some(CkptFault::TornTail) {
            // A writer killed mid-append: only a prefix lands. The cut
            // point is a pure hash of the same identity as the roll.
            let frac = EdaFaultPlan::shape("ckpt.tear", "append", u128::from(sum), cell as u32);
            let mut cut = (line.len() as f64 * (0.2 + 0.6 * frac)) as usize;
            while cut > 0 && !line.is_char_boundary(cut) {
                cut -= 1;
            }
            line.truncate(cut);
        }
        if let Ok(mut f) = writer.lock() {
            let _ = f.write_all(line.as_bytes()).and_then(|()| f.flush());
        }
    }
}

/// Opens (or creates) this shard's own log. `valid_len` is the byte
/// length of the file's valid prefix when it already exists with a
/// matching header; the file is truncated back to it so appends after
/// a torn tail stay readable.
fn open_writer(path: &Path, fingerprint: u64, valid_len: Option<u64>) -> Option<File> {
    match valid_len {
        Some(len) if len > 0 => {
            let mut f = OpenOptions::new().write(true).open(path).ok()?;
            f.set_len(len).ok()?;
            f.seek(SeekFrom::End(0)).ok()?;
            Some(f)
        }
        // Absent, or unreadable header (other version/fingerprint):
        // start over with a fresh header.
        _ => {
            let mut f = File::create(path).ok()?;
            f.write_all(format!("{MAGIC} {VERSION} {fingerprint:016x}\n").as_bytes())
                .ok()?;
            f.flush().ok()?;
            Some(f)
        }
    }
}

/// Parses one checkpoint log: the decoded cells plus the byte length
/// of the valid prefix (0 when the header itself is bad). Parsing
/// stops at the first malformed line, so a torn tail never corrupts
/// the cells before it.
fn parse_log(text: &str, fingerprint: u64) -> (Vec<(usize, CellRecord)>, usize) {
    let mut cells = Vec::new();
    let mut lines = text.split_inclusive('\n');
    let Some(header) = lines.next() else {
        return (cells, 0);
    };
    let mut parts = header.trim_end_matches('\n').split(' ');
    let header_ok = header.ends_with('\n')
        && parts.next() == Some(MAGIC)
        && parts.next().and_then(|v| v.parse().ok()) == Some(VERSION)
        && parts.next().and_then(|v| u64::from_str_radix(v, 16).ok()) == Some(fingerprint)
        && parts.next().is_none();
    if !header_ok {
        return (cells, 0);
    }
    let mut valid_len = header.len();
    for line in lines {
        if !line.ends_with('\n') {
            break;
        }
        let Some(cell) = parse_cell_line(line.trim_end_matches('\n')) else {
            break;
        };
        cells.push(cell);
        valid_len += line.len();
    }
    (cells, valid_len)
}

fn parse_cell_line(line: &str) -> Option<(usize, CellRecord)> {
    let rest = line.strip_prefix("cell ")?;
    let (idx, rest) = rest.split_once(' ')?;
    let idx: usize = idx.parse().ok()?;
    let (sum, payload) = rest.split_once(' ')?;
    if u64::from_str_radix(sum, 16).ok()? != codec::fnv64(payload.as_bytes()) {
        return None;
    }
    let mut r = Reader::new(payload);
    let cell = decode_cell(&mut r)?;
    r.at_end().then_some((idx, cell))
}

fn encode_cell(rec: &CellRecord) -> String {
    let mut w = Writer::new();
    let o = &rec.record.outcome;
    w.bool(o.syntax);
    w.bool(o.functional);
    w.f64(o.total_latency);
    w.f64(o.syntax_phase_latency);
    w.f64(o.functional_phase_latency);
    w.u32(o.syntax_iters);
    w.u32(o.functional_iters);
    w.bool(o.crashed);
    w.f64(rec.record.llm_seconds);
    w.f64(rec.record.tool_seconds);
    let res = &rec.record.resilience;
    w.u32(res.llm_faults);
    w.u32(res.retries);
    w.f64(res.backoff_s);
    w.u32(res.breaker_opens);
    w.u32(res.degraded);
    w.u32(res.sim_diverged);
    codec::encode_runs(&mut w, &rec.runs);
    codec::encode_metrics(&mut w, &rec.metrics);
    w.finish()
}

fn decode_cell(r: &mut Reader<'_>) -> Option<CellRecord> {
    let outcome = SampleOutcome {
        syntax: r.bool()?,
        functional: r.bool()?,
        total_latency: r.f64()?,
        syntax_phase_latency: r.f64()?,
        functional_phase_latency: r.f64()?,
        syntax_iters: r.u32()?,
        functional_iters: r.u32()?,
        crashed: r.bool()?,
    };
    let llm_seconds = r.f64()?;
    let tool_seconds = r.f64()?;
    let resilience = ResilienceCounters {
        llm_faults: r.u32()?,
        retries: r.u32()?,
        backoff_s: r.f64()?,
        breaker_opens: r.u32()?,
        degraded: r.u32()?,
        sim_diverged: r.u32()?,
    };
    let runs = codec::decode_runs(r)?;
    let metrics = codec::decode_metrics(r)?;
    Some(CellRecord {
        record: RunRecord {
            outcome,
            llm_seconds,
            tool_seconds,
            resilience,
        },
        runs,
        metrics,
    })
}

// ---------------------------------------------------------------------
// Read-only progress scanning (`aivril-inspect tail`)
// ---------------------------------------------------------------------

/// One shard log file, as seen by a read-only scan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogInfo {
    /// File name within the checkpoint directory.
    pub name: String,
    /// The cell range encoded in the file name.
    pub range: ShardRange,
    /// Cells decoded from the file's valid prefix.
    pub cells: usize,
    /// `true` when the file ends in a torn tail (a line cut mid-write);
    /// the bytes past the valid prefix were ignored, exactly as resume
    /// would drop them.
    pub torn: bool,
}

/// Progress snapshot of one evaluation (one fingerprint) in a
/// checkpoint directory, assembled by [`scan_dir`].
#[derive(Debug)]
pub struct EvalProgress {
    /// The evaluation fingerprint the logs carry.
    pub fingerprint: u64,
    /// Grid size, inferred as the largest range end among the shard
    /// log names — exact once every planned shard has opened its log.
    pub total_cells: usize,
    /// Restored cells keyed by grid index (duplicates across files are
    /// identical by construction; first wins).
    pub cells: BTreeMap<usize, CellRecord>,
    /// The shard log files scanned, sorted by name.
    pub logs: Vec<LogInfo>,
}

impl EvalProgress {
    /// True when this snapshot proves the evaluation finished: every
    /// cell of the grid has been restored.
    ///
    /// With `expected` (the planned grid size, problems × samples —
    /// `aivril-inspect tail --expect-cells`) the check is exact.
    /// Without it the grid size must be inferred from the shard log
    /// names, and `total_cells` is only a lower bound until every
    /// planned shard has opened its log — so the inferred size is
    /// trusted only when the discovered ranges tile `0..total_cells`
    /// with no gap, and a gap keeps the caller polling.
    #[must_use]
    pub fn complete(&self, expected: Option<usize>) -> bool {
        let total = match expected {
            Some(n) => n,
            None if self.coverage_is_contiguous() => self.total_cells,
            None => return false,
        };
        total > 0 && (0..total).all(|i| self.cells.contains_key(&i))
    }

    /// Whether the shard log ranges cover `0..total_cells` gap-free.
    fn coverage_is_contiguous(&self) -> bool {
        let mut ranges: Vec<ShardRange> = self.logs.iter().map(|l| l.range).collect();
        ranges.sort_by_key(|r| (r.start, r.end));
        let mut covered = 0;
        for r in ranges {
            if r.start > covered {
                return false;
            }
            covered = covered.max(r.end);
        }
        covered == self.total_cells
    }
}

/// Parses a shard log file name, `ckpt-{fingerprint:016x}-{start}-{end}.log`.
fn parse_log_name(name: &str) -> Option<(u64, ShardRange)> {
    let rest = name.strip_prefix("ckpt-")?.strip_suffix(".log")?;
    let mut parts = rest.splitn(3, '-');
    let fingerprint = u64::from_str_radix(parts.next()?, 16).ok()?;
    let start = parts.next()?.parse().ok()?;
    let end = parts.next()?.parse().ok()?;
    (start <= end).then_some((fingerprint, ShardRange { start, end }))
}

/// Scans a checkpoint directory **read-only** — the running shards own
/// the files, so unlike resume this never truncates a torn tail, it
/// just skips it. Returns one [`EvalProgress`] per fingerprint found,
/// sorted by fingerprint; within a group, logs are sorted by name. The
/// snapshot is a pure function of the directory contents.
#[must_use]
pub fn scan_dir(dir: &Path) -> Vec<EvalProgress> {
    let mut names: Vec<String> = Vec::new();
    if let Ok(entries) = fs::read_dir(dir) {
        for entry in entries.flatten() {
            if let Some(name) = entry.file_name().to_str() {
                if parse_log_name(name).is_some() {
                    names.push(name.to_string());
                }
            }
        }
    }
    names.sort();
    let mut groups: BTreeMap<u64, EvalProgress> = BTreeMap::new();
    for name in names {
        let Some((fingerprint, range)) = parse_log_name(&name) else {
            continue;
        };
        let Ok(text) = fs::read_to_string(dir.join(&name)) else {
            continue;
        };
        // A header naming a different fingerprint than the file name
        // yields an empty valid prefix, so the file contributes nothing
        // but is still listed (torn from byte 0).
        let (cells, valid_len) = parse_log(&text, fingerprint);
        let group = groups.entry(fingerprint).or_insert(EvalProgress {
            fingerprint,
            total_cells: 0,
            cells: BTreeMap::new(),
            logs: Vec::new(),
        });
        group.total_cells = group.total_cells.max(range.end);
        group.logs.push(LogInfo {
            name,
            range,
            cells: cells.len(),
            torn: valid_len < text.len(),
        });
        for (idx, cell) in cells {
            group.cells.entry(idx).or_insert(cell);
        }
    }
    groups.into_values().collect()
}

/// Renders the `aivril-inspect tail` progress report for a checkpoint
/// directory: per evaluation, cells done/remaining, rolling pass
/// rates, corrective-iteration pressure and resilience counters, with
/// torn tails tolerated exactly like resume tolerates them. Read-only
/// and a pure function of the directory contents.
#[must_use]
pub fn tail_report(dir: &Path) -> String {
    render_progress(dir, &scan_dir(dir))
}

/// Renders the progress report for an already-scanned snapshot, so a
/// polling caller can print and judge completion from the *same*
/// directory state (see [`scan_dir`]; `dir` only labels the
/// nothing-found message).
#[must_use]
pub fn render_progress(dir: &Path, groups: &[EvalProgress]) -> String {
    if groups.is_empty() {
        return format!("[tail] no checkpoint logs in {} (yet?)\n", dir.display());
    }
    let mut out = String::new();
    for g in groups {
        let done = g.cells.len();
        let total = g.total_cells.max(done);
        let remaining = total - done;
        let pct = 100.0 * done as f64 / total.max(1) as f64;
        let _ = writeln!(
            out,
            "[tail] evaluation {:016x}: {done}/{total} cell(s) done ({pct:.1}%), \
             {remaining} remaining",
            g.fingerprint
        );
        let torn = g.logs.iter().filter(|l| l.torn).count();
        let _ = writeln!(
            out,
            "  shard logs: {}{}",
            g.logs.len(),
            if torn > 0 {
                format!(" ({torn} with a torn tail dropped)")
            } else {
                String::new()
            }
        );
        for log in &g.logs {
            let _ = writeln!(
                out,
                "    {} cells {}..{}: {} restored{}",
                log.name,
                log.range.start,
                log.range.end,
                log.cells,
                if log.torn { ", torn tail" } else { "" }
            );
        }
        let (mut functional, mut syntax, mut crashed) = (0usize, 0usize, 0usize);
        let (mut syn_iters, mut fun_iters) = (0u64, 0u64);
        let mut resilience = ResilienceCounters::default();
        for cell in g.cells.values() {
            let o = &cell.record.outcome;
            functional += usize::from(o.functional);
            syntax += usize::from(o.syntax);
            crashed += usize::from(o.crashed);
            syn_iters += u64::from(o.syntax_iters);
            fun_iters += u64::from(o.functional_iters);
            resilience.merge(&cell.record.resilience);
        }
        if done > 0 {
            let rate = |k: usize| 100.0 * k as f64 / done as f64;
            let _ = writeln!(
                out,
                "  rolling pass rate: functional {functional}/{done} ({:.1}%), \
                 syntax {syntax}/{done} ({:.1}%), {crashed} crashed",
                rate(functional),
                rate(syntax)
            );
            let _ = writeln!(
                out,
                "  iterations so far: {syn_iters} syntax, {fun_iters} functional"
            );
            if resilience.any() {
                let _ = writeln!(
                    out,
                    "  resilience: {} fault(s), {} retrie(s) ({:.1}s backoff), \
                     {} breaker open(s), {} degraded, {} sim-diverged",
                    resilience.llm_faults,
                    resilience.retries,
                    resilience.backoff_s,
                    resilience.breaker_opens,
                    resilience.degraded,
                    resilience.sim_diverged
                );
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crashed_record;

    fn cell() -> CellRecord {
        let mut record = crashed_record();
        record.outcome.crashed = false;
        record.outcome.syntax = true;
        record.outcome.total_latency = 12.75;
        // An awkward, bit-pattern-sensitive float for round-trip tests.
        record.llm_seconds = std::f64::consts::PI / 3.0;
        record.resilience.retries = 3;
        record.resilience.backoff_s = 0.125;
        let mut metrics = MetricsRegistry::new();
        metrics.counter_add("pipeline_runs_total", &[("flow", "aivril2")], 1);
        CellRecord {
            record,
            runs: Vec::new(),
            metrics,
        }
    }

    #[test]
    fn cell_lines_round_trip() {
        let c = cell();
        let payload = encode_cell(&c);
        let line = format!("cell 7 {:016x} {payload}", codec::fnv64(payload.as_bytes()));
        let (idx, back) = parse_cell_line(&line).expect("round trip");
        assert_eq!(idx, 7);
        assert_eq!(
            back.record.llm_seconds.to_bits(),
            c.record.llm_seconds.to_bits()
        );
        assert_eq!(back.record.outcome, c.record.outcome);
        assert_eq!(back.record.resilience, c.record.resilience);
        assert_eq!(back.metrics, c.metrics);
    }

    #[test]
    fn tampered_or_torn_lines_are_rejected() {
        let c = cell();
        let payload = encode_cell(&c);
        let sum = codec::fnv64(payload.as_bytes());
        assert!(parse_cell_line(&format!("cell 7 {:016x} {payload}", sum ^ 1)).is_none());
        let line = format!("cell 7 {sum:016x} {payload}");
        assert!(parse_cell_line(&line[..line.len() - 4]).is_none());
        assert!(parse_cell_line(&format!("{line} trailing")).is_none());
        assert!(parse_cell_line("not a cell line").is_none());
    }

    #[test]
    fn logs_restore_resume_and_drop_torn_tails() {
        let dir = std::env::temp_dir().join(format!("aivril-ckpt-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let range = ShardRange { start: 0, end: 4 };

        let ckpt = ShardCheckpoint::open(&dir, 0xabcd, range);
        assert!(ckpt.restored(0).is_none());
        ckpt.append(0, &cell());
        ckpt.append(1, &cell());
        drop(ckpt);

        // Simulate a kill mid-write: append garbage with no newline.
        let path = dir.join("ckpt-000000000000abcd-0-4.log");
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"cell 2 deadbeef torn").unwrap();
        drop(f);

        let ckpt = ShardCheckpoint::open(&dir, 0xabcd, range);
        assert!(ckpt.restored(0).is_some() && ckpt.restored(1).is_some());
        assert!(ckpt.restored(2).is_none(), "torn tail must be dropped");
        ckpt.append(2, &cell());
        drop(ckpt);

        // The torn bytes were truncated away, so the resumed file is
        // fully parseable again.
        let ckpt = ShardCheckpoint::open(&dir, 0xabcd, range);
        assert!(ckpt.restored(2).is_some());
        // A different fingerprint sees none of it.
        let other = ShardCheckpoint::open(&dir, 0x1234, range);
        assert!(other.restored(0).is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_append_faults_lose_durability_not_correctness() {
        let dir = std::env::temp_dir().join(format!("aivril-ckpt-faults-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let range = ShardRange { start: 0, end: 8 };

        // A checksum flip on every append: nothing it writes survives
        // replay, and the loader never panics on the damage.
        let flip = ShardCheckpoint::open(&dir, 0xfeed, range)
            .with_faults(EdaFaultPlan::parse("ckpt_checksum_flip=1.0").unwrap());
        flip.append(0, &cell());
        flip.append(1, &cell());
        drop(flip);
        let back = ShardCheckpoint::open(&dir, 0xfeed, range);
        assert!(back.restored(0).is_none() && back.restored(1).is_none());
        // The reopened (fault-free) writer truncated the damage away and
        // can append cells that do survive.
        back.append(2, &cell());
        drop(back);
        let back = ShardCheckpoint::open(&dir, 0xfeed, range);
        assert!(back.restored(2).is_some());
        drop(back);
        let _ = fs::remove_dir_all(&dir);

        // A torn tail: the damaged line (and anything after it in that
        // log) is dropped; reopening truncates back to the valid prefix.
        let _ = fs::remove_dir_all(&dir);
        let torn = ShardCheckpoint::open(&dir, 0xfeed, range)
            .with_faults(EdaFaultPlan::parse("ckpt_torn_tail=1.0").unwrap());
        torn.append(0, &cell());
        drop(torn);
        let back = ShardCheckpoint::open(&dir, 0xfeed, range);
        assert!(back.restored(0).is_none(), "torn cell is not restored");
        back.append(0, &cell());
        drop(back);
        let back = ShardCheckpoint::open(&dir, 0xfeed, range);
        assert!(back.restored(0).is_some(), "recomputed cell lands cleanly");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn log_names_parse_and_reject_garbage() {
        let (fp, range) = parse_log_name("ckpt-000000000000abcd-0-4.log").expect("parses");
        assert_eq!(fp, 0xabcd);
        assert_eq!(range, ShardRange { start: 0, end: 4 });
        for bad in [
            "ckpt-zz-0-4.log",
            "ckpt-000000000000abcd-0-4",
            "other-000000000000abcd-0-4.log",
            "ckpt-000000000000abcd-4-0.log",
            "ckpt-000000000000abcd-0.log",
        ] {
            assert!(parse_log_name(bad).is_none(), "{bad} must not parse");
        }
    }

    #[test]
    fn completion_needs_expected_size_or_gap_free_coverage() {
        let log = |start: usize, end: usize| LogInfo {
            name: format!("ckpt-0000000000000001-{start}-{end}.log"),
            range: ShardRange { start, end },
            cells: 0,
            torn: false,
        };
        let progress = |logs: Vec<LogInfo>, done: usize| EvalProgress {
            fingerprint: 1,
            total_cells: logs.iter().map(|l| l.range.end).max().unwrap_or(0),
            cells: (0..done).map(|i| (i, cell())).collect(),
            logs,
        };
        // A planned shard that has not opened its log yet leaves a gap:
        // keep polling even though every restored cell is in.
        let gap = progress(vec![log(0, 2), log(4, 6)], 2);
        assert!(!gap.complete(None));
        assert!(!gap.complete(Some(6)));
        // Gap-free tiling with every cell restored: complete.
        let full = progress(vec![log(0, 2), log(2, 4)], 4);
        assert!(full.complete(None));
        assert!(full.complete(Some(4)));
        // The planned size overrides the inferred one: a finished first
        // shard alone is not a finished 6-cell grid.
        let first = progress(vec![log(0, 2)], 2);
        assert!(!first.complete(Some(6)));
        // Covered ranges with missing cells: not complete.
        let partial = progress(vec![log(0, 2), log(2, 4)], 3);
        assert!(!partial.complete(None));
        assert!(!partial.complete(Some(4)));
        // Nothing discovered yet is never "complete".
        assert!(!progress(Vec::new(), 0).complete(None));
    }

    #[test]
    fn scan_is_read_only_and_tolerates_torn_tails() {
        let dir = std::env::temp_dir().join(format!("aivril-tail-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let range = ShardRange { start: 0, end: 6 };

        // Nothing yet: the report says so instead of erroring.
        assert!(tail_report(&dir).contains("no checkpoint logs"));

        // A half-finished shard: two cells done, one passing, then a
        // torn tail from a kill mid-write.
        let ckpt = ShardCheckpoint::open(&dir, 0xfeed, range);
        let mut pass = cell();
        pass.record.outcome.functional = true;
        pass.record.resilience.llm_faults = 2;
        ckpt.append(0, &pass);
        ckpt.append(1, &cell());
        drop(ckpt);
        let path = dir.join("ckpt-000000000000feed-0-6.log");
        let before = fs::read(&path).unwrap();
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"cell 2 0123 torn-mid-wri").unwrap();
        drop(f);
        let torn_bytes = fs::read(&path).unwrap();

        let groups = scan_dir(&dir);
        assert_eq!(groups.len(), 1);
        let g = &groups[0];
        assert_eq!(g.fingerprint, 0xfeed);
        assert_eq!(g.total_cells, 6);
        assert_eq!(g.cells.len(), 2, "torn cell 2 must be dropped");
        assert!(g.logs[0].torn);
        assert!(g.cells[&0].record.outcome.functional && !g.cells[&1].record.outcome.functional);

        let report = tail_report(&dir);
        assert!(
            report.contains("2/6 cell(s) done (33.3%), 4 remaining"),
            "{report}"
        );
        assert!(report.contains("torn tail"), "{report}");
        assert!(report.contains("functional 1/2 (50.0%)"), "{report}");
        assert!(report.contains("2 fault(s)"), "{report}");
        // Deterministic: same directory state, same bytes.
        assert_eq!(report, tail_report(&dir));
        // Read-only: the torn bytes are still there, untruncated —
        // scanning a live run must never race its writers.
        assert_eq!(fs::read(&path).unwrap(), torn_bytes);
        assert_ne!(torn_bytes, before);
        let _ = fs::remove_dir_all(&dir);
    }
}
