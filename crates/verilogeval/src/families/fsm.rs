//! Finite-state machines: sequence detectors and small controllers
//! (13 problems).

use crate::builders::{seq_problem, SeqSpec};
use crate::port::{Port, SplitMix};
use crate::{Difficulty, Family, Problem};

fn bit_stim(cycles: usize, seed: u64, extra: usize) -> Vec<Vec<u64>> {
    let mut rng = SplitMix::new(seed);
    (0..cycles)
        .map(|c| {
            let mut v = vec![u64::from(c < 2)];
            for _ in 0..extra {
                v.push(rng.next_u64() & 1);
            }
            v
        })
        .collect()
}

/// Serial sequence detector over `din`, built as a history register plus
/// comparator — the canonical RTL for overlapping detection; the
/// non-overlapping variant clears its history after each match.
fn detector(pattern: &str, overlapping: bool) -> SeqSpec {
    let k = pattern.len() as u32;
    let pat_val = u64::from_str_radix(pattern, 2).expect("binary pattern");
    let mode = if overlapping { "" } else { "_no" };
    let name = format!("seq{pattern}{mode}");
    let stim = bit_stim(40, pat_val * 31 + k as u64 * 7 + u64::from(overlapping), 1);
    let m_hist = (1u64 << (k - 1)) - 1;
    let (mut hist, mut det) = (0u64, 0u64);
    let expected = stim
        .iter()
        .map(|v| {
            if v[0] == 1 {
                hist = 0;
                det = 0;
            } else {
                let next = (hist << 1 | v[1]) & ((1 << k) - 1);
                if next == pat_val {
                    det = 1;
                    hist = if overlapping { next & m_hist } else { 0 };
                } else {
                    det = 0;
                    hist = next & m_hist;
                }
            }
            Some(vec![det])
        })
        .collect();
    let hk = k - 1; // history register width
    let on_match_v = if overlapping {
        format!("hist <= next[{}:0];", hk - 1)
    } else {
        "hist <= 0;".to_string()
    };
    let on_match_h = if overlapping {
        format!("hist <= nxt({} downto 0);", hk - 1)
    } else {
        "hist <= (others => '0');".to_string()
    };
    let vlog_body = format!(
        "  reg [{}:0] hist;\n  wire [{}:0] next;\n  assign next = {{hist, din}};\n\
         \x20 always @(posedge clk) begin\n    if (rst) begin hist <= 0; det <= 0; end\n\
         \x20   else if (next == {k}'b{pattern}) begin det <= 1; {on_match_v} end\n\
         \x20   else begin det <= 0; hist <= next[{}:0]; end\n  end\n",
        hk - 1,
        k - 1,
        hk - 1
    );
    let vhdl_body = format!(
        "  nxt <= hist & din;\n  process (clk)\n  begin\n    if rising_edge(clk) then\n\
         \x20     if rst = '1' then\n        hist <= (others => '0');\n        det <= '0';\n\
         \x20     elsif nxt = \"{pattern}\" then\n        det <= '1';\n        {on_match_h}\n\
         \x20     else\n        det <= '0';\n        hist <= nxt({} downto 0);\n      end if;\n\
         \x20   end if;\n  end process;\n",
        hk - 1
    );
    SeqSpec {
        name,
        family: Family::Fsm,
        difficulty: Difficulty::Hard,
        description: format!(
            "A serial sequence detector: det pulses high for one clock cycle each time the last {k} values of din (newest bit last) match the pattern {pattern}. Matches are {}. rst synchronously clears the detector.",
            if overlapping { "allowed to overlap (the matched suffix is kept)" } else { "non-overlapping (history restarts after each match)" }
        ),
        inputs: vec![Port::new("rst", 1), Port::new("din", 1)],
        outputs: vec![Port::new("det", 1)],
        vlog_body,
        vhdl_body,
        vhdl_decls: format!(
            "  signal hist : std_logic_vector({} downto 0) := (others => '0');\n  signal nxt : std_logic_vector({} downto 0);\n",
            hk - 1,
            k - 1
        ),
        stimulus: stim,
        expected,
    }
}

fn parity_fsm() -> SeqSpec {
    let stim = bit_stim(30, 57, 1);
    let mut odd = 0u64;
    let expected = stim
        .iter()
        .map(|v| {
            odd = if v[0] == 1 { 0 } else { odd ^ v[1] };
            Some(vec![odd])
        })
        .collect();
    SeqSpec {
        name: "parity_fsm".into(),
        family: Family::Fsm,
        difficulty: Difficulty::Medium,
        description: "A two-state parity tracker: odd is 1 when an odd number of 1s has arrived on din since the last synchronous reset.".into(),
        inputs: vec![Port::new("rst", 1), Port::new("din", 1)],
        outputs: vec![Port::new("odd", 1)],
        vlog_body: "  always @(posedge clk) begin\n    if (rst) odd <= 0;\n    else odd <= odd ^ din;\n  end\n".into(),
        vhdl_body: "  process (clk)\n  begin\n    if rising_edge(clk) then\n      if rst = '1' then\n        s <= '0';\n      else\n        s <= s xor din;\n      end if;\n    end if;\n  end process;\n  odd <= s;\n".into(),
        vhdl_decls: "  signal s : std_logic := '0';\n".into(),
        stimulus: stim,
        expected,
    }
}

fn turnstile() -> SeqSpec {
    let stim = bit_stim(34, 61, 2);
    let mut unlocked = 0u64;
    let expected = stim
        .iter()
        .map(|v| {
            // inputs: rst, coin, push. coin unlocks; push re-locks (coin
            // wins when both).
            unlocked = if v[0] == 1 {
                0
            } else if v[1] == 1 {
                1
            } else if v[2] == 1 {
                0
            } else {
                unlocked
            };
            Some(vec![unlocked])
        })
        .collect();
    SeqSpec {
        name: "turnstile".into(),
        family: Family::Fsm,
        difficulty: Difficulty::Hard,
        description: "A turnstile controller with two states: inserting a coin (coin=1) unlocks it; pushing through (push=1) locks it again. When both happen in the same cycle the coin wins. unlocked reports the state; rst synchronously locks the turnstile.".into(),
        inputs: vec![Port::new("rst", 1), Port::new("coin", 1), Port::new("push", 1)],
        outputs: vec![Port::new("unlocked", 1)],
        vlog_body: "  always @(posedge clk) begin\n    if (rst) unlocked <= 0;\n    else if (coin) unlocked <= 1;\n    else if (push) unlocked <= 0;\n  end\n".into(),
        vhdl_body: "  process (clk)\n  begin\n    if rising_edge(clk) then\n      if rst = '1' then\n        s <= '0';\n      elsif coin = '1' then\n        s <= '1';\n      elsif push = '1' then\n        s <= '0';\n      end if;\n    end if;\n  end process;\n  unlocked <= s;\n".into(),
        vhdl_decls: "  signal s : std_logic := '0';\n".into(),
        stimulus: stim,
        expected,
    }
}

fn pattern_gen() -> SeqSpec {
    let stim = bit_stim(28, 67, 1);
    // 2-bit Gray sequence 00 -> 01 -> 11 -> 10, advancing when en=1.
    const NEXT: [u64; 4] = [0b01, 0b11, 0b00, 0b10];
    let mut s = 0u64;
    let expected = stim
        .iter()
        .map(|v| {
            s = if v[0] == 1 {
                0
            } else if v[1] == 1 {
                NEXT[s as usize]
            } else {
                s
            };
            Some(vec![s])
        })
        .collect();
    SeqSpec {
        name: "gray_pattern_gen".into(),
        family: Family::Fsm,
        difficulty: Difficulty::Medium,
        description: "A 2-bit Gray-code pattern generator: q steps through 00, 01, 11, 10 (then wraps) on cycles where en is 1, and holds otherwise. rst synchronously returns q to 00.".into(),
        inputs: vec![Port::new("rst", 1), Port::new("en", 1)],
        outputs: vec![Port::new("q", 2)],
        vlog_body: "  always @(posedge clk) begin\n    if (rst) q <= 2'b00;\n    else if (en) begin\n      case (q)\n        2'b00: q <= 2'b01;\n        2'b01: q <= 2'b11;\n        2'b11: q <= 2'b10;\n        default: q <= 2'b00;\n      endcase\n    end\n  end\n".into(),
        vhdl_body: "  process (clk)\n  begin\n    if rising_edge(clk) then\n      if rst = '1' then\n        s <= \"00\";\n      elsif en = '1' then\n        case s is\n          when \"00\" => s <= \"01\";\n          when \"01\" => s <= \"11\";\n          when \"11\" => s <= \"10\";\n          when others => s <= \"00\";\n        end case;\n      end if;\n    end if;\n  end process;\n  q <= s;\n".into(),
        vhdl_decls: "  signal s : std_logic_vector(1 downto 0) := \"00\";\n".into(),
        stimulus: stim,
        expected,
    }
}

fn vending() -> SeqSpec {
    let stim = bit_stim(36, 71, 2);
    // inputs: rst, nickel (worth 1), dime (worth 2); dispense at >= 3,
    // then restart from the excess discarded (credit clears).
    let (mut credit, mut dispense) = (0u64, 0u64);
    let expected = stim
        .iter()
        .map(|v| {
            if v[0] == 1 {
                credit = 0;
                dispense = 0;
            } else {
                let add = v[1] + 2 * v[2];
                let total = credit + add;
                if total >= 3 {
                    dispense = 1;
                    credit = 0;
                } else {
                    dispense = 0;
                    credit = total;
                }
            }
            Some(vec![dispense])
        })
        .collect();
    SeqSpec {
        name: "vending".into(),
        family: Family::Fsm,
        difficulty: Difficulty::Hard,
        description: "A vending-machine controller: nickel adds 1 credit, dime adds 2 (both may be 1 in the same cycle, adding 3). When accumulated credit reaches 3 or more, dispense pulses for one cycle and the credit clears. rst synchronously clears everything.".into(),
        inputs: vec![Port::new("rst", 1), Port::new("nickel", 1), Port::new("dime", 1)],
        outputs: vec![Port::new("dispense", 1)],
        vlog_body: "  reg [2:0] credit;\n  wire [2:0] total;\n  assign total = credit + nickel + (dime << 1);\n  always @(posedge clk) begin\n    if (rst) begin credit <= 0; dispense <= 0; end\n    else if (total >= 3'd3) begin dispense <= 1; credit <= 0; end\n    else begin dispense <= 0; credit <= total; end\n  end\n".into(),
        vhdl_body: "  total <= credit + (\"00\" & nickel) + (\"0\" & dime & \"0\");\n  process (clk)\n  begin\n    if rising_edge(clk) then\n      if rst = '1' then\n        credit <= (others => '0');\n        d <= '0';\n      elsif unsigned(total) >= 3 then\n        d <= '1';\n        credit <= (others => '0');\n      else\n        d <= '0';\n        credit <= total;\n      end if;\n    end if;\n  end process;\n  dispense <= d;\n".into(),
        vhdl_decls: "  signal credit : std_logic_vector(2 downto 0) := (others => '0');\n  signal total : std_logic_vector(2 downto 0);\n  signal d : std_logic := '0';\n".into(),
        stimulus: stim,
        expected,
    }
}

fn serial_eq() -> SeqSpec {
    let stim = bit_stim(30, 79, 2);
    let mut equal = 1u64;
    let expected = stim
        .iter()
        .map(|v| {
            equal = if v[0] == 1 {
                1
            } else if v[1] != v[2] {
                0
            } else {
                equal
            };
            Some(vec![equal])
        })
        .collect();
    SeqSpec {
        name: "serial_eq".into(),
        family: Family::Fsm,
        difficulty: Difficulty::Medium,
        description: "A serial word comparator: eq starts at 1 after a synchronous reset and falls to 0 permanently as soon as the bit streams a and b disagree in any cycle.".into(),
        inputs: vec![Port::new("rst", 1), Port::new("a", 1), Port::new("b", 1)],
        outputs: vec![Port::new("eq", 1)],
        vlog_body: "  always @(posedge clk) begin\n    if (rst) eq <= 1;\n    else if (a != b) eq <= 0;\n  end\n".into(),
        vhdl_body: "  process (clk)\n  begin\n    if rising_edge(clk) then\n      if rst = '1' then\n        s <= '1';\n      elsif a /= b then\n        s <= '0';\n      end if;\n    end if;\n  end process;\n  eq <= s;\n".into(),
        vhdl_decls: "  signal s : std_logic := '1';\n".into(),
        stimulus: stim,
        expected,
    }
}

/// Appends the family's problems.
pub fn extend(problems: &mut Vec<Problem>) {
    for pat in ["101", "110", "111", "010", "1001"] {
        problems.push(seq_problem(detector(pat, true)));
    }
    problems.push(seq_problem(detector("101", false)));
    problems.push(seq_problem(detector("11", false)));
    problems.push(seq_problem(parity_fsm()));
    problems.push(seq_problem(turnstile()));
    problems.push(seq_problem(pattern_gen()));
    problems.push(seq_problem(vending()));
    problems.push(seq_problem(serial_eq()));
    problems.push(seq_problem(detector("0110", true)));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contributes_13_problems() {
        let mut v = Vec::new();
        extend(&mut v);
        assert_eq!(v.len(), 13);
        assert!(v.iter().all(|p| p.family == Family::Fsm));
    }

    #[test]
    fn overlap_vs_non_overlap_differ() {
        // For pattern "11" and input 111: overlapping detects at cycles
        // 2 and 3; non-overlapping only at 2 (history restarts).
        let make = |overlap: bool| {
            let k = 2u32;
            let pat = 0b11u64;
            let mut hist = 0u64;
            let mut dets = Vec::new();
            for bit in [1u64, 1, 1] {
                let next = (hist << 1 | bit) & ((1 << k) - 1);
                if next == pat {
                    dets.push(1);
                    hist = if overlap { next & 1 } else { 0 };
                } else {
                    dets.push(0);
                    hist = next & 1;
                }
            }
            dets
        };
        assert_eq!(make(true), vec![0, 1, 1]);
        assert_eq!(make(false), vec![0, 1, 0]);
    }
}
