//! The three specialised agents of the AIVRIL2 architecture.

mod code;
mod review;
mod verify;

pub use code::CodeAgent;
pub use review::ReviewAgent;
pub use verify::VerificationAgent;
