//! Mini Table 1: compares all three model profiles, baseline vs
//! AIVRIL2, on a slice of the benchmark suite.
//!
//! Run with:
//! ```text
//! cargo run --release -p aivril-bench --example sweep_models
//! ```
//! (set `AIVRIL_TASKS` / `AIVRIL_SAMPLES` for larger sweeps).

use aivril_bench::{Flow, Harness, HarnessConfig};
use aivril_llm::profiles;
use aivril_metrics::suite_metric;

fn main() {
    let mut config = HarnessConfig::from_env();
    if config.task_limit == usize::MAX {
        config.task_limit = 30;
    }
    let harness = Harness::new(config.clone());
    println!(
        "model sweep: {} tasks x {} samples (Verilog)\n",
        harness.problems().len(),
        config.samples
    );
    println!(
        "{:<22}{:>12}{:>12}{:>12}{:>12}",
        "model", "base S%", "base F%", "aivril2 S%", "aivril2 F%"
    );
    for profile in profiles::all() {
        let base = harness.evaluate(&profile, true, Flow::Baseline);
        let full = harness.evaluate(&profile, true, Flow::Aivril2);
        println!(
            "{:<22}{:>12.1}{:>12.1}{:>12.1}{:>12.1}",
            profile.name,
            suite_metric(&base, 1, |s| s.syntax) * 100.0,
            suite_metric(&base, 1, |s| s.functional) * 100.0,
            suite_metric(&full, 1, |s| s.syntax) * 100.0,
            suite_metric(&full, 1, |s| s.functional) * 100.0,
        );
    }
    println!("\nAIVRIL2 lifts every model; the weakest models gain the most syntax");
    println!("recovery, the strongest gain the most functional repair — the");
    println!("pattern of the paper's Table 1.");
}
