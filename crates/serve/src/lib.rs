//! # aivril-serve — the multi-tenant RTL-generation job service
//!
//! The paper frames the EDA-in-the-loop flow as an interactive service;
//! this crate is that front-end over the batch machinery: a persistent
//! TCP server (`aivril-serve`) speaking a newline-delimited JSON
//! protocol ([`protocol`]), with a command-line client
//! (`aivril-submit`).
//!
//! Architecture, bottom up:
//!
//! * **Execution** reuses [`aivril_bench::Harness::run_job`]: one
//!   submitted job is one pipeline run over the shared tool suite, so
//!   concurrent jobs from every tenant batch their EDA compiles through
//!   the one content-addressed [`aivril_eda::EdaCache`] (and its disk
//!   tier), and the simulated models share one task library.
//! * **Admission** ([`queue`]) is per tenant: at most
//!   `AIVRIL_SERVE_MAX_INFLIGHT` jobs executing and
//!   `AIVRIL_SERVE_MAX_QUEUE` more waiting. Beyond that the service
//!   answers with a structured `reject` frame carrying `retry_after_s`
//!   — the queue is bounded by construction, overload can never grow
//!   it. Tenant identity is client-asserted and untrusted, so global
//!   caps back the per-tenant ones: `AIVRIL_SERVE_MAX_JOBS` bounds
//!   admitted work service-wide (`server_full`) and
//!   `AIVRIL_SERVE_MAX_TENANTS` bounds distinct tenant states
//!   (`tenant_limit`, with idle-tenant eviction), so forged tenant
//!   names cannot grow memory or queue depth without bound. A
//!   [`aivril_core::BreakerBank`] gives each tenant its own circuit
//!   breaker at the admission boundary, so one tenant's fault storm
//!   cannot trip another tenant's breaker.
//! * **Backpressure** ([`outbox`]): all socket writes happen on a
//!   per-connection writer thread draining a bounded frame queue, so
//!   neither admission (which pins ack ordering under the queue lock)
//!   nor workers ever block on a client socket; a client that stops
//!   reading is dropped on outbox overflow or write timeout while its
//!   jobs still complete.
//! * **Durability** ([`journal`]): with `AIVRIL_SERVE_JOURNAL_DIR`
//!   set, every accepted admission is written ahead to a checksummed
//!   append-only journal under the queue lock, and every terminal
//!   outcome appends a matching `done`. A crashed server restarted
//!   over the same directory re-admits the unfinished jobs — and
//!   because seeds are pure functions of `(tenant, job)`, replays them
//!   byte-identically. Submission is idempotent on that identity:
//!   resubmitting a still-running job re-attaches the client to it,
//!   and resubmitting a recently finished one replays its memoized
//!   frames without a second execution.
//! * **Determinism** is per job: [`job_seed`] derives the run seed
//!   purely from `(tenant, job)` — the grid harness's
//!   [`aivril_bench::run_seed`] discipline with job identity as the
//!   coordinates — and every response frame is rendered from modeled
//!   time only. Progress frames replay the job's journal events
//!   ([`aivril_obs::render_event`]) *after* the run completes, in
//!   span-close order, so resubmitting a job yields byte-identical
//!   frames however other jobs interleave and however many workers the
//!   server runs. Admission verdicts (`ack`/`reject`) are the one
//!   schedule-dependent plane and carry no volatile fields beyond
//!   `retry_after_s`.

#![warn(missing_docs)]

pub mod config;
pub mod journal;
pub mod outbox;
pub mod protocol;
pub mod queue;
pub mod server;

pub use config::ServeConfig;
pub use journal::JobJournal;
pub use protocol::{Request, SubmitRequest, PROTOCOL_VERSION};
pub use queue::{Admission, FrameSink, Job, JobQueue, QueueStats, SinkSlot};
pub use server::Server;

use aivril_obs::codec;

/// The seed of a submitted job, derived purely from its identity:
/// the `(tenant, job)` pair is codec-encoded (length-delimited, so
/// `("ab", "c")` and `("a", "bc")` differ) and FNV-64 hashed. The
/// [`aivril_bench::run_seed`] discipline with job identity as the grid
/// coordinates — replaying a job replays its seed, and therefore its
/// entire run.
#[must_use]
pub fn job_seed(tenant: &str, job: &str) -> u64 {
    let mut w = codec::Writer::new();
    w.str(tenant);
    w.str(job);
    codec::fnv64(w.payload().as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_seeds_are_stable_and_identity_sensitive() {
        assert_eq!(job_seed("acme", "j1"), job_seed("acme", "j1"));
        assert_ne!(job_seed("acme", "j1"), job_seed("acme", "j2"));
        assert_ne!(job_seed("acme", "j1"), job_seed("globex", "j1"));
        // Length-delimited encoding: moving a byte across the
        // tenant/job boundary changes the seed.
        assert_ne!(job_seed("ab", "c"), job_seed("a", "bc"));
    }
}
