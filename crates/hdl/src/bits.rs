//! Borrowed bit-plane views and reusable four-state scratch buffers.
//!
//! [`LogicVec`](crate::vec::LogicVec) owns its `(aval, bval)` planes and
//! spills to the heap above 64 bits. The evaluation hot path wants
//! neither ownership nor spilling: a compiled expression's slot widths
//! are known at lowering time, so the simulator sizes a scratch arena
//! once and executes every operation in place against borrowed plane
//! slices. This module provides the two pieces of that discipline:
//!
//! * [`BitsRef`] — a cheap read-only view of `(width, aval, bval)`
//!   planes, usable over both `LogicVec` storage and scratch storage;
//! * [`ScratchBuf`] — an owned, capacity-retaining plane pair with
//!   in-place word-parallel four-state operations (`dst = dst op rhs`).
//!
//! All operations process 64 lanes per word over the packed planes and
//! follow the exact IEEE 1364 semantics of their `LogicVec`
//! counterparts; `crates/hdl/tests/logicvec_diff.rs` pins the two
//! implementations against a scalar per-bit oracle.
//!
//! # Invariant
//!
//! Plane bits at positions `>= width` in the top word are always zero.
//! Every mutating operation re-establishes this via [`ScratchBuf`]'s
//! top-word masking, mirroring `LogicVec::mask_top`.

use crate::logic::Logic;
use crate::vec::LogicVec;
use std::cmp::Ordering;

/// Number of 64-bit words needed for `width` bits.
pub(crate) fn words_for(width: u32) -> usize {
    (width as usize).div_ceil(64)
}

/// Mask covering the low `width` bits of a word (`width` clamped to 64).
pub(crate) fn low_mask(width: u32) -> u64 {
    if width >= 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

/// Word `i` of a plane, reading zero beyond its end (the implicit
/// zero-extension every width-mixing operation relies on).
pub(crate) fn word_at(plane: &[u64], i: usize) -> u64 {
    plane.get(i).copied().unwrap_or(0)
}

/// The 64 plane bits starting at bit position `bit`, zero-extended.
pub(crate) fn extract_word(plane: &[u64], bit: u32) -> u64 {
    let (ws, bs) = ((bit / 64) as usize, bit % 64);
    let lo = word_at(plane, ws) >> bs;
    let hi = if bs > 0 {
        word_at(plane, ws + 1) << (64 - bs)
    } else {
        0
    };
    lo | hi
}

/// ORs `src` shifted left by `shift` bits into `dst` (bits falling
/// beyond `dst` are dropped). Used by concatenation and replication.
pub(crate) fn or_shifted(dst: &mut [u64], src: &[u64], shift: u32) {
    let (ws, bs) = ((shift / 64) as usize, shift % 64);
    for (i, &w) in src.iter().enumerate() {
        let pos = ws + i;
        if pos < dst.len() {
            dst[pos] |= w << bs;
        }
        if bs > 0 && pos + 1 < dst.len() {
            dst[pos + 1] |= w >> (64 - bs);
        }
    }
}

/// Word-parallel four-state AND over one word of each operand's planes:
/// 0 where either operand is known-0, 1 where both are known-1, X
/// otherwise.
pub(crate) fn and_words(a1: u64, b1: u64, a2: u64, b2: u64) -> (u64, u64) {
    let r0 = (!a1 & !b1) | (!a2 & !b2);
    let r1 = (a1 & !b1) & (a2 & !b2);
    (!r0, !r0 & !r1)
}

/// Word-parallel four-state OR: 1 where either operand is known-1, 0
/// where both are known-0, X otherwise.
pub(crate) fn or_words(a1: u64, b1: u64, a2: u64, b2: u64) -> (u64, u64) {
    let r1 = (a1 & !b1) | (a2 & !b2);
    let r0 = (!a1 & !b1) & (!a2 & !b2);
    (r1 | !(r0 | r1), !(r0 | r1))
}

/// Word-parallel four-state XOR: X wherever either operand is unknown.
pub(crate) fn xor_words(a1: u64, b1: u64, a2: u64, b2: u64) -> (u64, u64) {
    let unk = b1 | b2;
    ((a1 ^ a2) | unk, unk)
}

/// Word-parallel four-state XNOR: X wherever either operand is unknown.
pub(crate) fn xnor_words(a1: u64, b1: u64, a2: u64, b2: u64) -> (u64, u64) {
    let unk = b1 | b2;
    (!(a1 ^ a2) | unk, unk)
}

/// A borrowed read-only view of a four-state vector's packed planes.
///
/// Works identically over [`LogicVec`] storage (via
/// [`LogicVec::as_bits`]) and [`ScratchBuf`] storage (via
/// [`ScratchBuf::as_bits`]), so consumers of evaluation results never
/// need to know where a value lives.
#[derive(Debug, Clone, Copy)]
pub struct BitsRef<'a> {
    width: u32,
    aval: &'a [u64],
    bval: &'a [u64],
}

impl<'a> BitsRef<'a> {
    /// Wraps pre-packed planes. `aval`/`bval` must hold exactly
    /// `width.div_ceil(64)` words with zero bits above `width`.
    #[must_use]
    pub fn new(width: u32, aval: &'a [u64], bval: &'a [u64]) -> BitsRef<'a> {
        debug_assert_eq!(aval.len(), words_for(width));
        debug_assert_eq!(bval.len(), words_for(width));
        BitsRef { width, aval, bval }
    }

    /// Width in bits.
    #[must_use]
    pub fn width(self) -> u32 {
        self.width
    }

    /// Word `i` of both planes, zero-extended beyond the end.
    pub(crate) fn word(self, i: usize) -> (u64, u64) {
        (word_at(self.aval, i), word_at(self.bval, i))
    }

    /// The underlying planes.
    pub(crate) fn planes(self) -> (&'a [u64], &'a [u64]) {
        (self.aval, self.bval)
    }

    /// Returns the bit at `index` (LSB = 0), or `Logic::X` out of range.
    #[must_use]
    pub fn get(self, index: u32) -> Logic {
        if index >= self.width {
            return Logic::X;
        }
        let (w, b) = ((index / 64) as usize, index % 64);
        Logic::from_avab(self.aval[w] >> b & 1 == 1, self.bval[w] >> b & 1 == 1)
    }

    /// `true` if any bit is `X` or `Z`.
    #[must_use]
    pub fn has_unknown(self) -> bool {
        self.bval.iter().any(|&w| w != 0)
    }

    /// Unsigned integer value; `None` on unknown bits or non-zero high
    /// words beyond 64 bits.
    #[must_use]
    pub fn to_u64(self) -> Option<u64> {
        if self.has_unknown() {
            return None;
        }
        if self.aval.iter().skip(1).any(|&w| w != 0) {
            return None;
        }
        Some(word_at(self.aval, 0))
    }

    /// Verilog truthiness: `Some(true)` when any bit is a known `1`,
    /// `Some(false)` when all bits are known `0`, else `None`.
    #[must_use]
    pub fn to_bool(self) -> Option<bool> {
        let any_one = self.aval.iter().zip(self.bval).any(|(&a, &b)| a & !b != 0);
        if any_one {
            return Some(true);
        }
        if self.has_unknown() {
            return None;
        }
        Some(false)
    }

    /// Valid-bit mask for word `i` of these planes.
    fn word_mask(self, i: usize) -> u64 {
        word_mask_for(self.width, i)
    }

    /// Reduction AND over all bits (same fold as `LogicVec::reduce_and`).
    #[must_use]
    pub fn reduce_and(self) -> Logic {
        let mut unknown = false;
        for (i, (&a, &b)) in self.aval.iter().zip(self.bval).enumerate() {
            if !a & !b & self.word_mask(i) != 0 {
                return Logic::Zero;
            }
            unknown |= b != 0;
        }
        if unknown {
            Logic::X
        } else {
            Logic::One
        }
    }

    /// Reduction OR over all bits.
    #[must_use]
    pub fn reduce_or(self) -> Logic {
        let mut unknown = false;
        for (&a, &b) in self.aval.iter().zip(self.bval) {
            if a & !b != 0 {
                return Logic::One;
            }
            unknown |= b != 0;
        }
        if unknown {
            Logic::X
        } else {
            Logic::Zero
        }
    }

    /// Reduction XOR (parity) over all bits.
    #[must_use]
    pub fn reduce_xor(self) -> Logic {
        if self.has_unknown() {
            return Logic::X;
        }
        let ones: u32 = self.aval.iter().map(|w| w.count_ones()).sum();
        Logic::from_bool(ones % 2 == 1)
    }

    /// Logical equality (`==`): `X` if either side has unknown bits.
    #[must_use]
    pub fn logic_eq(self, rhs: BitsRef<'_>) -> Logic {
        if self.has_unknown() || rhs.has_unknown() {
            return Logic::X;
        }
        let n = self.aval.len().max(rhs.aval.len());
        Logic::from_bool((0..n).all(|i| word_at(self.aval, i) == word_at(rhs.aval, i)))
    }

    /// Case equality (`===`): exact four-state comparison with implicit
    /// zero-extension of the shorter operand.
    #[must_use]
    pub fn case_eq(self, rhs: BitsRef<'_>) -> bool {
        let n = self.aval.len().max(rhs.aval.len());
        (0..n).all(|i| {
            word_at(self.aval, i) == word_at(rhs.aval, i)
                && word_at(self.bval, i) == word_at(rhs.bval, i)
        })
    }

    /// Unsigned value comparison; `None` when unknown bits are present.
    #[must_use]
    pub fn value_cmp(self, rhs: BitsRef<'_>) -> Option<Ordering> {
        if self.has_unknown() || rhs.has_unknown() {
            return None;
        }
        let n = self.aval.len().max(rhs.aval.len());
        for i in (0..n).rev() {
            match word_at(self.aval, i).cmp(&word_at(rhs.aval, i)) {
                Ordering::Equal => continue,
                ord => return Some(ord),
            }
        }
        Some(Ordering::Equal)
    }
}

/// Valid-bit mask for word `i` of a `width`-bit vector's planes.
fn word_mask_for(width: u32, i: usize) -> u64 {
    let rem = width % 64;
    if rem != 0 && i == words_for(width) - 1 {
        (1u64 << rem) - 1
    } else {
        u64::MAX
    }
}

/// An owned, reusable four-state plane pair executing in place.
///
/// A `ScratchBuf` never shrinks its heap capacity and never
/// canonicalises to an inline form: once sized for the widest value it
/// will hold, re-use is allocation-free. The [`grows`](Self::grows)
/// counter records every time an operation outgrew the current
/// capacity — on a correctly pre-sized arena it stays at zero, which is
/// exactly what the kernel's `eval_allocs` telemetry asserts.
///
/// All binary operations are `dst = dst op rhs` with `rhs` borrowed,
/// so aliasing between operands is impossible by construction.
#[derive(Debug, Default)]
pub struct ScratchBuf {
    width: u32,
    aval: Vec<u64>,
    bval: Vec<u64>,
    grows: u64,
}

impl ScratchBuf {
    /// An empty buffer (width 0). Any operation will size it on first
    /// use, counting a growth event.
    #[must_use]
    pub fn new() -> ScratchBuf {
        ScratchBuf::default()
    }

    /// A buffer pre-sized for `width` bits, holding all zeros.
    /// Construction is not counted as a growth event.
    #[must_use]
    pub fn with_width(width: u32) -> ScratchBuf {
        let n = words_for(width);
        ScratchBuf {
            width,
            aval: vec![0; n],
            bval: vec![0; n],
            grows: 0,
        }
    }

    /// Current width in bits.
    #[must_use]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Number of times an operation outgrew the pre-sized capacity.
    #[must_use]
    pub fn grows(&self) -> u64 {
        self.grows
    }

    /// Per-plane capacity in 64-bit words.
    #[must_use]
    pub fn capacity_words(&self) -> usize {
        self.aval.capacity()
    }

    /// A read-only view of the current value.
    #[must_use]
    pub fn as_bits(&self) -> BitsRef<'_> {
        BitsRef::new(self.width, &self.aval, &self.bval)
    }

    /// An owned canonical [`LogicVec`] copy of the current value
    /// (allocates for widths above 64 — test and cold-path use only).
    #[must_use]
    pub fn to_logic_vec(&self) -> LogicVec {
        LogicVec::from_bits(self.as_bits())
    }

    /// Resizes to `width` bits, zero-extending or truncating the held
    /// value. Counts a growth event when the word count exceeds the
    /// retained capacity.
    pub fn set_width(&mut self, width: u32) {
        let n = words_for(width);
        if n > self.aval.capacity() || n > self.bval.capacity() {
            self.grows += 1;
        }
        self.aval.resize(n, 0);
        self.bval.resize(n, 0);
        self.width = width;
        self.mask_top();
    }

    fn mask_top(&mut self) {
        let rem = self.width % 64;
        if rem != 0 {
            let mask = (1u64 << rem) - 1;
            let last = self.aval.len() - 1;
            self.aval[last] &= mask;
            self.bval[last] &= mask;
        }
    }

    /// Copies `src` in, adopting its width.
    pub fn load(&mut self, src: BitsRef<'_>) {
        self.load_resized(src, src.width());
    }

    /// Copies `src` in at `width` bits (zero-extending or truncating).
    pub fn load_resized(&mut self, src: BitsRef<'_>, width: u32) {
        self.set_width(width);
        for i in 0..self.aval.len() {
            let (a, b) = src.word(i);
            self.aval[i] = a;
            self.bval[i] = b;
        }
        self.mask_top();
    }

    /// Loads the low bits of `value` at `width` bits.
    pub fn load_u64(&mut self, width: u32, value: u64) {
        self.set_width(width);
        self.aval.fill(0);
        self.bval.fill(0);
        if !self.aval.is_empty() {
            self.aval[0] = value;
        }
        self.mask_top();
    }

    /// Loads a single-bit scalar.
    pub fn load_logic(&mut self, value: Logic) {
        self.set_width(1);
        let (a, b) = value.to_avab();
        self.aval[0] = u64::from(a);
        self.bval[0] = u64::from(b);
    }

    /// Sets every bit to `fill` at `width` bits.
    pub fn fill(&mut self, width: u32, fill: Logic) {
        self.set_width(width);
        let (a, b) = fill.to_avab();
        self.aval.fill(if a { u64::MAX } else { 0 });
        self.bval.fill(if b { u64::MAX } else { 0 });
        self.mask_top();
    }

    fn bitwise_assign(&mut self, rhs: BitsRef<'_>, f: impl Fn(u64, u64, u64, u64) -> (u64, u64)) {
        let width = self.width.max(rhs.width());
        self.set_width(width);
        for i in 0..self.aval.len() {
            let (a2, b2) = rhs.word(i);
            let (av, bv) = f(self.aval[i], self.bval[i], a2, b2);
            self.aval[i] = av;
            self.bval[i] = bv;
        }
        self.mask_top();
    }

    /// `self = self & rhs` with four-state resolution.
    pub fn and_assign(&mut self, rhs: BitsRef<'_>) {
        self.bitwise_assign(rhs, and_words);
    }

    /// `self = self | rhs` with four-state resolution.
    pub fn or_assign(&mut self, rhs: BitsRef<'_>) {
        self.bitwise_assign(rhs, or_words);
    }

    /// `self = self ^ rhs` with four-state resolution.
    pub fn xor_assign(&mut self, rhs: BitsRef<'_>) {
        self.bitwise_assign(rhs, xor_words);
    }

    /// `self = self ~^ rhs` with four-state resolution.
    pub fn xnor_assign(&mut self, rhs: BitsRef<'_>) {
        self.bitwise_assign(rhs, xnor_words);
    }

    /// `self = ~self`: known bits invert, X/Z become X.
    pub fn not_self(&mut self) {
        for i in 0..self.aval.len() {
            let unk = self.bval[i];
            self.aval[i] = !self.aval[i] | unk;
            self.bval[i] = unk;
        }
        self.mask_top();
    }

    /// `self = self + rhs` at the max operand width, all-X on any
    /// unknown operand bit.
    pub fn add_assign(&mut self, rhs: BitsRef<'_>) {
        let width = self.width.max(rhs.width());
        if self.as_bits().has_unknown() || rhs.has_unknown() {
            self.fill(width, Logic::X);
            return;
        }
        self.set_width(width);
        let mut carry = 0u128;
        for i in 0..self.aval.len() {
            let sum = self.aval[i] as u128 + rhs.word(i).0 as u128 + carry;
            self.aval[i] = sum as u64;
            carry = sum >> 64;
        }
        self.mask_top();
    }

    /// `self = self - rhs` (two's-complement wraparound), all-X on any
    /// unknown operand bit. Mirrors `LogicVec::sub`'s `a + !b + 1`
    /// formulation so the borrow chain wraps identically.
    pub fn sub_assign(&mut self, rhs: BitsRef<'_>) {
        let width = self.width.max(rhs.width());
        if self.as_bits().has_unknown() || rhs.has_unknown() {
            self.fill(width, Logic::X);
            return;
        }
        self.set_width(width);
        let last = self.aval.len() - 1;
        let mut carry = 1u128;
        for i in 0..self.aval.len() {
            let m = if i == last {
                low_mask(((width - 1) % 64) + 1)
            } else {
                u64::MAX
            };
            let sum = self.aval[i] as u128 + (!rhs.word(i).0 & m) as u128 + carry;
            self.aval[i] = sum as u64;
            carry = sum >> 64;
        }
        self.mask_top();
    }

    /// `self = -self` (two's complement), all-X on unknown bits.
    pub fn neg_self(&mut self) {
        let width = self.width;
        if self.as_bits().has_unknown() {
            self.fill(width, Logic::X);
            return;
        }
        // 0 - self via the same `0 + !self + 1` chain as `sub_assign`.
        let last = self.aval.len() - 1;
        let mut carry = 1u128;
        for i in 0..self.aval.len() {
            let m = if i == last {
                low_mask(((width - 1) % 64) + 1)
            } else {
                u64::MAX
            };
            let sum = ((!self.aval[i]) & m) as u128 + carry;
            self.aval[i] = sum as u64;
            carry = sum >> 64;
        }
        self.mask_top();
    }

    /// `self = self * rhs` (low 64 bits, like `LogicVec::mul`), all-X on
    /// unknown operands.
    pub fn mul_assign(&mut self, rhs: BitsRef<'_>) {
        let width = self.width.max(rhs.width());
        if self.as_bits().has_unknown() || rhs.has_unknown() {
            self.fill(width, Logic::X);
            return;
        }
        let low = word_at(&self.aval, 0).wrapping_mul(rhs.word(0).0);
        self.load_u64(width, low);
    }

    /// `self = self / rhs`; division by zero or unknown operands yield
    /// all-X.
    pub fn div_assign(&mut self, rhs: BitsRef<'_>) {
        let width = self.width.max(rhs.width());
        match (self.as_bits().to_u64(), rhs.to_u64()) {
            (Some(a), Some(b)) if b != 0 => self.load_u64(width, a / b),
            _ => self.fill(width, Logic::X),
        }
    }

    /// `self = self % rhs`; modulo zero or unknown operands yield all-X.
    pub fn rem_assign(&mut self, rhs: BitsRef<'_>) {
        let width = self.width.max(rhs.width());
        match (self.as_bits().to_u64(), rhs.to_u64()) {
            (Some(a), Some(b)) if b != 0 => self.load_u64(width, a % b),
            _ => self.fill(width, Logic::X),
        }
    }

    /// `self = self << amount`; unknown amount yields all-X at the
    /// current width.
    pub fn shl_assign(&mut self, amount: BitsRef<'_>) {
        match amount.to_u64() {
            Some(n) => self.shl_assign_const(n as u32),
            None => {
                let w = self.width;
                self.fill(w, Logic::X);
            }
        }
    }

    /// `self = self >> amount`; unknown amount yields all-X at the
    /// current width.
    pub fn shr_assign(&mut self, amount: BitsRef<'_>) {
        match amount.to_u64() {
            Some(n) => self.shr_assign_const(n as u32),
            None => {
                let w = self.width;
                self.fill(w, Logic::X);
            }
        }
    }

    /// Shift left by a constant, filling with zeros. Runs top-down so
    /// every word is read before it is overwritten.
    pub fn shl_assign_const(&mut self, n: u32) {
        if n >= self.width {
            let w = self.width;
            self.fill(w, Logic::Zero);
            return;
        }
        let (ws, bs) = ((n / 64) as usize, n % 64);
        for i in (ws..self.aval.len()).rev() {
            let lo_a = self.aval[i - ws] << bs;
            let lo_b = self.bval[i - ws] << bs;
            let (hi_a, hi_b) = if bs > 0 && i > ws {
                (
                    self.aval[i - ws - 1] >> (64 - bs),
                    self.bval[i - ws - 1] >> (64 - bs),
                )
            } else {
                (0, 0)
            };
            self.aval[i] = lo_a | hi_a;
            self.bval[i] = lo_b | hi_b;
        }
        for i in 0..ws {
            self.aval[i] = 0;
            self.bval[i] = 0;
        }
        self.mask_top();
    }

    /// Shift right by a constant, filling with zeros. Runs bottom-up so
    /// every word is read before it is overwritten.
    pub fn shr_assign_const(&mut self, n: u32) {
        if n >= self.width {
            let w = self.width;
            self.fill(w, Logic::Zero);
            return;
        }
        for i in 0..self.aval.len() {
            let bit = n + 64 * i as u32;
            self.aval[i] = extract_word(&self.aval, bit);
            self.bval[i] = extract_word(&self.bval, bit);
        }
        self.mask_top();
    }

    /// `self = src[msb:lsb]` (inclusive, LSB-0). Out-of-range bits read
    /// as X, matching `LogicVec::slice`.
    pub fn slice_from(&mut self, src: BitsRef<'_>, msb: u32, lsb: u32) {
        let (msb, lsb) = if msb >= lsb { (msb, lsb) } else { (lsb, msb) };
        let width = msb - lsb + 1;
        let known = src.width().saturating_sub(lsb);
        self.set_width(width);
        let (src_a, src_b) = src.planes();
        for i in 0..self.aval.len() {
            let bit = lsb + 64 * i as u32;
            self.aval[i] = extract_word(src_a, bit);
            self.bval[i] = extract_word(src_b, bit);
        }
        if known < width {
            let (ws, bs) = ((known / 64) as usize, known % 64);
            for i in ws..self.aval.len() {
                let m = if i == ws { u64::MAX << bs } else { u64::MAX };
                self.aval[i] |= m;
                self.bval[i] |= m;
            }
        }
        self.mask_top();
    }

    /// `self = {self, low}` — `self` supplies the high bits, as in the
    /// Verilog concatenation `{a, b}` where `a` is written first.
    pub fn concat_low(&mut self, low: BitsRef<'_>) {
        let low_width = low.width();
        let width = self.width + low_width;
        self.set_width(width);
        self.shl_assign_const(low_width);
        let (low_a, low_b) = low.planes();
        for (i, (&a, &b)) in low_a.iter().zip(low_b).enumerate() {
            self.aval[i] |= a;
            self.bval[i] |= b;
        }
    }

    /// `self = {count{self}}`, staging the source pattern in `spare`.
    ///
    /// # Panics
    ///
    /// Panics (debug) if `count` is zero.
    pub fn replicate_self(&mut self, count: u32, spare: &mut ScratchBuf) {
        debug_assert!(count > 0, "replication count must be non-zero");
        spare.load(self.as_bits());
        let w = self.width;
        self.fill(w * count, Logic::Zero);
        for k in 0..count {
            or_shifted(&mut self.aval, &spare.aval, k * w);
            or_shifted(&mut self.bval, &spare.bval, k * w);
        }
    }

    /// Ternary merge under an unknown condition: for each bit of the
    /// zero-extended arms, the result is the shared value where both
    /// arms agree and are known, X otherwise.
    pub fn select_merge(&mut self, then: BitsRef<'_>, els: BitsRef<'_>) {
        let width = then.width().max(els.width());
        self.set_width(width);
        for i in 0..self.aval.len() {
            let (a1, b1) = then.word(i);
            let (a2, b2) = els.word(i);
            let same = !(a1 ^ a2) & !b1 & !b2;
            self.aval[i] = (a1 & same) | !same;
            self.bval[i] = !same;
        }
        self.mask_top();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lv(s: &str) -> LogicVec {
        LogicVec::parse_binary(s).expect("valid literal")
    }

    #[test]
    fn presized_buffer_never_grows() {
        let mut buf = ScratchBuf::with_width(256);
        let a = LogicVec::from_u64(200, 0xDEAD_BEEF);
        let b = LogicVec::from_u64(256, 0x1234);
        buf.load(a.as_bits());
        buf.add_assign(b.as_bits());
        buf.xor_assign(a.as_bits());
        buf.shl_assign_const(77);
        buf.not_self();
        assert_eq!(buf.grows(), 0);
        assert_eq!(buf.width(), 256);
    }

    #[test]
    fn growth_is_counted() {
        let mut buf = ScratchBuf::with_width(64);
        buf.load(LogicVec::zeros(64).as_bits());
        assert_eq!(buf.grows(), 0);
        buf.load(LogicVec::zeros(640).as_bits());
        assert_eq!(buf.grows(), 1);
        // Capacity is retained: shrinking and re-growing is free.
        buf.load(LogicVec::zeros(64).as_bits());
        buf.load(LogicVec::zeros(640).as_bits());
        assert_eq!(buf.grows(), 1);
    }

    #[test]
    fn in_place_ops_match_logicvec() {
        let a = lv("1x01zzz010110x01");
        let b = lv("0110x01z01101010");
        let mut buf = ScratchBuf::with_width(64);

        buf.load(a.as_bits());
        buf.and_assign(b.as_bits());
        assert_eq!(buf.to_logic_vec(), a.and(&b));

        buf.load(a.as_bits());
        buf.or_assign(b.as_bits());
        assert_eq!(buf.to_logic_vec(), a.or(&b));

        buf.load(a.as_bits());
        buf.xor_assign(b.as_bits());
        assert_eq!(buf.to_logic_vec(), a.xor(&b));

        buf.load(a.as_bits());
        buf.xnor_assign(b.as_bits());
        assert_eq!(buf.to_logic_vec(), a.xnor(&b));

        buf.load(a.as_bits());
        buf.not_self();
        assert_eq!(buf.to_logic_vec(), a.not());
    }

    #[test]
    fn wide_arithmetic_matches_logicvec() {
        let a = LogicVec::filled(129, Logic::One);
        let b = LogicVec::from_u64(129, 1);
        let mut buf = ScratchBuf::with_width(129);

        buf.load(a.as_bits());
        buf.add_assign(b.as_bits());
        assert_eq!(buf.to_logic_vec(), a.add(&b));

        buf.load(a.as_bits());
        buf.sub_assign(b.as_bits());
        assert_eq!(buf.to_logic_vec(), a.sub(&b));

        buf.load(b.as_bits());
        buf.neg_self();
        assert_eq!(buf.to_logic_vec(), b.negate());
    }

    #[test]
    fn concat_replicate_slice_roundtrip() {
        let hi = LogicVec::from_u64(40, 0xAB_CDEF_0123);
        let lo = LogicVec::from_u64(40, 0x45_6789_ABCD);
        let mut buf = ScratchBuf::new();
        buf.load(hi.as_bits());
        buf.concat_low(lo.as_bits());
        assert_eq!(buf.to_logic_vec(), hi.concat(&lo));

        let mut spare = ScratchBuf::new();
        let pat = lv("10x");
        buf.load(pat.as_bits());
        buf.replicate_self(5, &mut spare);
        assert_eq!(buf.to_logic_vec(), pat.replicate(5));

        let src = hi.concat(&lo);
        buf.slice_from(src.as_bits(), 70, 9);
        assert_eq!(buf.to_logic_vec(), src.slice(70, 9));
        // Out-of-range slices read X.
        buf.slice_from(src.as_bits(), 100, 70);
        assert_eq!(buf.to_logic_vec(), src.slice(100, 70));
    }

    #[test]
    fn select_merge_matches_per_bit_rule() {
        let t = lv("1x0z10");
        let e = lv("110z00");
        let mut buf = ScratchBuf::new();
        buf.select_merge(t.as_bits(), e.as_bits());
        let out = buf.to_logic_vec();
        for i in 0..6 {
            let (tb, eb) = (t.get(i), e.get(i));
            let expect = if tb == eb && !tb.is_unknown() {
                tb
            } else {
                Logic::X
            };
            assert_eq!(out.get(i), expect, "bit {i}");
        }
    }
}
