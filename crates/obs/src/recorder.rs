//! The [`Recorder`]: a cheap-to-clone handle threading spans, metrics
//! and per-run journals through every layer of the pipeline.
//!
//! # Model
//!
//! * A recorder is either **disabled** (the default; every call is a
//!   branch-on-`None` no-op, so uninstrumented hot paths pay nothing)
//!   or **enabled** (an `Arc<Mutex<..>>` shared by everything
//!   instrumenting one worker).
//! * **Spans** are hierarchical: [`Recorder::span`] pushes onto a
//!   stack, the returned guard pops on drop and emits a [`SpanEvent`].
//!   Timestamps come from a per-run **modeled clock** — leaf
//!   instrumentation calls [`Recorder::advance`] with modeled seconds
//!   (LLM latency, tool latency), so enclosing spans acquire modeled
//!   durations and the whole journal is reproducible: no wall clock
//!   anywhere.
//! * **Runs** group events by evaluation-grid coordinates
//!   ([`Recorder::begin_run`]/[`Recorder::end_run`]); the journal is
//!   exported run-by-run so output is identical for every worker
//!   count.
//! * **Fork/absorb**: each harness worker gets a [`Recorder::fork`]
//!   (fresh state, same context); [`Recorder::absorb`] folds a fork
//!   back in, sorting its runs by grid coordinates — combined with the
//!   order-independent [`MetricsRegistry::merge`] this makes every
//!   export bit-identical for any `AIVRIL_THREADS`.

use crate::metrics::{Histogram, MetricsRegistry};
use std::sync::{Arc, Mutex};

/// Grid coordinate marking events recorded outside any explicit run.
pub const UNSCOPED: u32 = u32::MAX;

/// One attribute value on a span.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// Text.
    Str(String),
    /// Integer.
    Int(i64),
    /// Float (rendered with fixed precision in exports).
    Float(f64),
    /// Boolean.
    Bool(bool),
}

/// One closed span, as stored in a run journal. Events appear in
/// close order (children before parents), each carrying its depth.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanEvent {
    /// Span name, e.g. `stage.rtl_syntax_loop` or `llm.chat`.
    pub name: String,
    /// Nesting depth at open time (0 = top level).
    pub depth: u32,
    /// Modeled start time within the run, seconds.
    pub t_start: f64,
    /// Modeled end time within the run, seconds.
    pub t_end: f64,
    /// Attributes in insertion order.
    pub attrs: Vec<(String, AttrValue)>,
}

/// All events of one pipeline run, tagged with its evaluation-grid
/// coordinates and the evaluation context (model/language/flow).
#[derive(Debug, Clone, PartialEq)]
pub struct RunJournal {
    /// Problem index within the suite ([`UNSCOPED`] outside a run).
    pub problem: u32,
    /// Sample index within the problem ([`UNSCOPED`] outside a run).
    pub sample: u32,
    /// Context pairs (sorted by key), e.g. model/lang/flow.
    pub context: Vec<(String, String)>,
    /// Closed spans in close order.
    pub events: Vec<SpanEvent>,
}

#[derive(Debug)]
struct OpenSpan {
    name: String,
    depth: u32,
    t_start: f64,
    attrs: Vec<(String, AttrValue)>,
}

#[derive(Debug, Default)]
struct Inner {
    metrics: MetricsRegistry,
    context: Vec<(String, String)>,
    runs: Vec<RunJournal>,
    current: Option<RunJournal>,
    stack: Vec<OpenSpan>,
    clock: f64,
}

impl Inner {
    fn ensure_run(&mut self) -> &mut RunJournal {
        if self.current.is_none() {
            self.current = Some(RunJournal {
                problem: UNSCOPED,
                sample: UNSCOPED,
                context: self.context.clone(),
                events: Vec::new(),
            });
        }
        self.current.as_mut().expect("just ensured")
    }

    fn flush_run(&mut self) {
        if let Some(run) = self.current.take() {
            if !run.events.is_empty() {
                self.runs.push(run);
            }
        }
        self.stack.clear();
        self.clock = 0.0;
    }
}

/// The observability handle. See the module docs for the model.
#[derive(Debug, Clone, Default)]
pub struct Recorder(Option<Arc<Mutex<Inner>>>);

impl Recorder {
    /// Creates an **enabled** recorder.
    #[must_use]
    pub fn new() -> Recorder {
        Recorder(Some(Arc::new(Mutex::new(Inner::default()))))
    }

    /// Creates a **disabled** recorder: every method is a no-op.
    #[must_use]
    pub fn disabled() -> Recorder {
        Recorder(None)
    }

    /// `true` when recording; use to skip attribute/label construction
    /// on hot paths.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    // Telemetry survives a panicking worker: the harness isolates
    // pipeline panics with `catch_unwind`, so a recorder mutex may be
    // poisoned mid-update. The inner state is a journal — a partially
    // written run is still valid data — so recover the guard instead of
    // propagating the poison into every later instrumentation call.
    fn lock(&self) -> Option<std::sync::MutexGuard<'_, Inner>> {
        self.0.as_ref().map(|inner| {
            inner
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
        })
    }

    /// Replaces the context pairs attached to subsequent runs (sorted
    /// by key for deterministic export).
    pub fn set_context(&self, pairs: &[(&str, &str)]) {
        if let Some(mut g) = self.lock() {
            let mut ctx: Vec<(String, String)> = pairs
                .iter()
                .map(|(k, v)| ((*k).to_string(), (*v).to_string()))
                .collect();
            ctx.sort();
            g.context = ctx;
        }
    }

    /// A fresh recorder with the same enablement and context but empty
    /// state — one per harness worker.
    #[must_use]
    pub fn fork(&self) -> Recorder {
        match self.lock() {
            None => Recorder::disabled(),
            Some(g) => {
                let ctx = g.context.clone();
                drop(g);
                let child = Recorder::new();
                if let Some(mut c) = child.lock() {
                    c.context = ctx;
                }
                child
            }
        }
    }

    /// Folds a fork back in: metrics merge order-independently, the
    /// fork's runs are sorted by grid coordinates and appended. Safe
    /// (and a no-op) when either side is disabled or both are the same
    /// recorder.
    pub fn absorb(&self, other: &Recorder) {
        let (Some(mine), Some(theirs)) = (&self.0, &other.0) else {
            return;
        };
        if Arc::ptr_eq(mine, theirs) {
            return;
        }
        let (mut runs, metrics) = {
            let mut o = theirs
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            o.flush_run();
            (std::mem::take(&mut o.runs), std::mem::take(&mut o.metrics))
        };
        runs.sort_by_key(|r| (r.problem, r.sample));
        let mut m = mine
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        m.runs.extend(runs);
        m.metrics.merge(&metrics);
    }

    /// Sorts the accumulated runs by grid coordinates. Call after
    /// absorbing a set of worker forks whose absorb order raced (within
    /// one evaluation the coordinates are unique, so this yields one
    /// deterministic total order for any worker count).
    pub fn sort_runs(&self) {
        if let Some(mut g) = self.lock() {
            g.flush_run();
            g.runs.sort_by_key(|r| (r.problem, r.sample));
        }
    }

    /// Starts a run at grid coordinates `(problem, sample)`: flushes
    /// any open run and resets the modeled clock.
    pub fn begin_run(&self, problem: u32, sample: u32) {
        if let Some(mut g) = self.lock() {
            g.flush_run();
            let context = g.context.clone();
            g.current = Some(RunJournal {
                problem,
                sample,
                context,
                events: Vec::new(),
            });
        }
    }

    /// Closes the current run, making it part of the journal.
    pub fn end_run(&self) {
        if let Some(mut g) = self.lock() {
            g.flush_run();
        }
    }

    /// Advances the modeled clock by `seconds` — leaf instrumentation
    /// calls this with modeled LLM/tool latencies.
    pub fn advance(&self, seconds: f64) {
        if let Some(mut g) = self.lock() {
            g.clock += seconds;
        }
    }

    /// Opens a span; the returned guard closes it (emitting a
    /// [`SpanEvent`]) on drop.
    #[must_use = "dropping the guard immediately closes the span"]
    pub fn span(&self, name: &str) -> Span<'_> {
        match self.lock() {
            None => Span {
                rec: self,
                live: false,
            },
            Some(mut g) => {
                let t_start = g.clock;
                let depth = g.stack.len() as u32;
                g.stack.push(OpenSpan {
                    name: name.to_string(),
                    depth,
                    t_start,
                    attrs: Vec::new(),
                });
                Span {
                    rec: self,
                    live: true,
                }
            }
        }
    }

    fn close_span(&self) {
        if let Some(mut g) = self.lock() {
            if let Some(open) = g.stack.pop() {
                let event = SpanEvent {
                    name: open.name,
                    depth: open.depth,
                    t_start: open.t_start,
                    t_end: g.clock,
                    attrs: open.attrs,
                };
                g.ensure_run().events.push(event);
            }
        }
    }

    fn span_attr(&self, key: &str, value: AttrValue) {
        if let Some(mut g) = self.lock() {
            if let Some(open) = g.stack.last_mut() {
                open.attrs.push((key.to_string(), value));
            }
        }
    }

    /// Adds `delta` to a counter series.
    pub fn counter_add(&self, name: &str, labels: &[(&str, &str)], delta: u64) {
        if let Some(mut g) = self.lock() {
            g.metrics.counter_add(name, labels, delta);
        }
    }

    /// Sets a gauge series.
    pub fn gauge_set(&self, name: &str, labels: &[(&str, &str)], value: f64) {
        if let Some(mut g) = self.lock() {
            g.metrics.gauge_set(name, labels, value);
        }
    }

    /// Records one observation into a histogram series.
    pub fn observe(&self, name: &str, labels: &[(&str, &str)], bounds: &[f64], value: f64) {
        if let Some(mut g) = self.lock() {
            g.metrics.observe(name, labels, bounds, value);
        }
    }

    /// Folds a locally-accumulated histogram into a series — the bulk
    /// path for kernel statistics.
    pub fn record_histogram(&self, name: &str, labels: &[(&str, &str)], hist: &Histogram) {
        if let Some(mut g) = self.lock() {
            g.metrics.merge_histogram(name, labels, hist);
        }
    }

    /// Appends an already-finished run journal — the replay path for
    /// checkpointed cells, whose runs were captured by [`Recorder::runs`]
    /// before being persisted. No-op when disabled. Call
    /// [`Recorder::sort_runs`] after a batch of injections to restore
    /// the canonical grid order.
    pub fn push_run(&self, run: RunJournal) {
        if let Some(mut g) = self.lock() {
            g.runs.push(run);
        }
    }

    /// Folds an already-aggregated registry into this recorder's
    /// metrics — the replay path for checkpointed cells. Uses the same
    /// associative+commutative [`MetricsRegistry::merge`] as
    /// [`Recorder::absorb`], so replayed and live cells mix in any
    /// order. No-op when disabled.
    ///
    /// # Panics
    ///
    /// Panics when a shared series has mismatched types or bounds.
    pub fn merge_metrics(&self, other: &MetricsRegistry) {
        if let Some(mut g) = self.lock() {
            g.metrics.merge(other);
        }
    }

    /// A deterministic clone of the aggregated metrics (empty when
    /// disabled).
    #[must_use]
    pub fn metrics(&self) -> MetricsRegistry {
        self.lock().map(|g| g.metrics.clone()).unwrap_or_default()
    }

    /// All finished runs plus the open one (if it has events), in
    /// journal order. Empty when disabled.
    #[must_use]
    pub fn runs(&self) -> Vec<RunJournal> {
        match self.lock() {
            None => Vec::new(),
            Some(g) => {
                let mut runs = g.runs.clone();
                if let Some(cur) = &g.current {
                    if !cur.events.is_empty() {
                        runs.push(cur.clone());
                    }
                }
                runs
            }
        }
    }
}

/// RAII guard for an open span; closes (and records) it on drop.
#[must_use = "a span records itself when this guard drops"]
#[derive(Debug)]
pub struct Span<'r> {
    rec: &'r Recorder,
    live: bool,
}

impl Span<'_> {
    /// `true` when the span will actually be recorded — use to skip
    /// attribute construction on hot paths.
    #[must_use]
    pub fn is_recording(&self) -> bool {
        self.live
    }

    /// Attaches a text attribute.
    pub fn attr_str(&self, key: &str, value: &str) {
        if self.live {
            self.rec.span_attr(key, AttrValue::Str(value.to_string()));
        }
    }

    /// Attaches an integer attribute.
    pub fn attr_int(&self, key: &str, value: i64) {
        if self.live {
            self.rec.span_attr(key, AttrValue::Int(value));
        }
    }

    /// Attaches a float attribute.
    pub fn attr_f64(&self, key: &str, value: f64) {
        if self.live {
            self.rec.span_attr(key, AttrValue::Float(value));
        }
    }

    /// Attaches a boolean attribute.
    pub fn attr_bool(&self, key: &str, value: bool) {
        if self.live {
            self.rec.span_attr(key, AttrValue::Bool(value));
        }
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if self.live {
            self.rec.close_span();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_is_a_noop() {
        let r = Recorder::disabled();
        assert!(!r.is_enabled());
        let s = r.span("x");
        assert!(!s.is_recording());
        s.attr_int("k", 1);
        drop(s);
        r.advance(1.0);
        r.counter_add("c", &[], 1);
        assert!(r.runs().is_empty());
        assert!(r.metrics().is_empty());
    }

    #[test]
    fn spans_nest_and_clock_advances() {
        let r = Recorder::new();
        r.begin_run(3, 1);
        {
            let outer = r.span("stage");
            outer.attr_str("which", "rtl");
            {
                let inner = r.span("llm.chat");
                r.advance(2.5);
                inner.attr_int("tokens", 40);
            }
            r.advance(0.5);
        }
        r.end_run();
        let runs = r.runs();
        assert_eq!(runs.len(), 1);
        let run = &runs[0];
        assert_eq!((run.problem, run.sample), (3, 1));
        // Close order: inner first.
        assert_eq!(run.events[0].name, "llm.chat");
        assert_eq!(run.events[0].depth, 1);
        assert!((run.events[0].t_end - run.events[0].t_start - 2.5).abs() < 1e-12);
        assert_eq!(run.events[1].name, "stage");
        assert_eq!(run.events[1].depth, 0);
        assert!((run.events[1].t_end - 3.0).abs() < 1e-12);
    }

    #[test]
    fn clock_resets_per_run() {
        let r = Recorder::new();
        r.begin_run(0, 0);
        {
            let _s = r.span("a");
            r.advance(1.0);
        }
        r.begin_run(0, 1); // implicit end of run 0
        {
            let _s = r.span("b");
        }
        r.end_run();
        let runs = r.runs();
        assert_eq!(runs.len(), 2);
        assert!((runs[1].events[0].t_start).abs() < 1e-12);
    }

    #[test]
    fn unscoped_events_form_a_run() {
        let r = Recorder::new();
        {
            let _s = r.span("loose");
        }
        let runs = r.runs();
        assert_eq!(runs.len(), 1);
        assert_eq!(runs[0].problem, UNSCOPED);
    }

    #[test]
    fn fork_absorb_sorts_runs_and_merges_metrics() {
        let parent = Recorder::new();
        parent.set_context(&[("model", "m")]);
        let a = parent.fork();
        let b = parent.fork();
        for (rec, problem) in [(&a, 1u32), (&b, 0u32)] {
            rec.begin_run(problem, 0);
            {
                let _s = rec.span("run");
            }
            rec.end_run();
            rec.counter_add("runs", &[], 1);
        }
        // Absorb in "wrong" order; runs still come out grid-sorted per
        // absorbed group.
        parent.absorb(&a);
        parent.absorb(&b);
        let runs = parent.runs();
        assert_eq!(runs.len(), 2);
        assert_eq!(
            runs[0].context,
            vec![("model".to_string(), "m".to_string())]
        );
        match parent.metrics().get("runs", &[]) {
            Some(crate::metrics::MetricValue::Counter(2)) => {}
            other => panic!("unexpected: {other:?}"),
        }
        // Self-absorb and disabled-absorb are harmless.
        parent.absorb(&parent.clone());
        parent.absorb(&Recorder::disabled());
        assert_eq!(parent.runs().len(), 2);
    }
}
