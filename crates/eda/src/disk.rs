//! The persistent tier of the EDA result cache: one file per
//! content-addressed key under `AIVRIL_EDA_CACHE_DIR`, shared across
//! processes, shards and runs.
//!
//! # Entry format
//!
//! Every entry is a single line of [`aivril_obs::codec`] tokens:
//!
//! ```text
//! aivril.edacache <version> <op> <fnv64-of-payload:016x> <payload ...>
//! ```
//!
//! The payload serialises the complete report — including the modeled
//! latency and, for simulation entries, the kernel telemetry — with
//! floats as exact bit patterns, so a disk hit is byte-identical to a
//! live run, exactly like a memory hit.
//!
//! # Robustness contract
//!
//! A disk entry can be truncated (killed writer), garbage (corrupted
//! storage), or from a different format version. All such entries must
//! **degrade to a miss**: the magic/version/op header, the checksum,
//! and the total decoding of the codec each independently reject bad
//! bytes, and every I/O error is swallowed (and counted) rather than
//! propagated. The cache never panics on disk content and never
//! returns a wrong report — `tests/disk_cache.rs` enforces this.
//!
//! # Concurrency
//!
//! Writers stage the entry in a process-unique tempfile and `rename`
//! it into place — atomic on POSIX — so readers only ever observe
//! absent or complete files. Two processes racing on the same key both
//! write the same content (results are pure functions of the key), so
//! whichever rename lands last is a no-op in value terms.
//!
//! # What is persisted
//!
//! Only the `analyze` and `simulate` shards. A `compile` entry carries
//! the elaborated `Arc<Design>` — process-local IR that is cheap to
//! rebuild and has no serial form — so compile results stay
//! memory-only (see DESIGN.md §9).

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use crate::cache::SimEntry;
use crate::faults::{DiskWriteFault, EdaFaultPlan};
use crate::report::{CompileReport, SimDiverged, SimReport, TestFailure, ToolMessage};
use aivril_hdl::diag::Severity;
use aivril_obs::codec::{fnv64, Reader, Writer};
use aivril_sim::{KernelTelemetry, LimitKind};

const MAGIC: &str = "aivril.edacache";
/// Bump on any change to the payload layout below.
const VERSION: u64 = 1;

/// Diagnostic counters for the disk tier. Like the in-memory
/// [`CacheStats`](crate::CacheStats) they are monotone, but unlike them
/// they are *not* schedule-independent across process topologies (a
/// shard that starts later finds more entries on disk), so they are
/// surfaced for operators and never folded into canonical artifacts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DiskStats {
    /// Memory misses answered from the disk store.
    pub hits: u64,
    /// Memory misses that also missed on disk (and ran the tools).
    pub misses: u64,
    /// Entries written (one per computed analyze/simulate result).
    pub writes: u64,
    /// I/O or decode failures swallowed as misses.
    pub errors: u64,
}

#[derive(Debug, Default)]
pub(crate) struct DiskStore {
    dir: PathBuf,
    hits: AtomicU64,
    misses: AtomicU64,
    writes: AtomicU64,
    errors: AtomicU64,
    faults: EdaFaultPlan,
}

impl DiskStore {
    pub(crate) fn new(dir: &Path) -> DiskStore {
        // A writer killed between staging and rename leaves a `.tmp-*`
        // file behind. Sweep them on open: the rename never happened,
        // so no reader can be holding one, and a live writer that loses
        // its tempfile merely counts an error and recomputes.
        if let Ok(entries) = fs::read_dir(dir) {
            for entry in entries.flatten() {
                let name = entry.file_name();
                if name.to_string_lossy().starts_with(".tmp-") {
                    let _ = fs::remove_file(entry.path());
                }
            }
        }
        DiskStore {
            dir: dir.to_path_buf(),
            ..DiskStore::default()
        }
    }

    /// Installs the deterministic fault plan for this store's disk
    /// classes (short writes, probe EIO, stale tempfiles).
    pub(crate) fn with_faults(mut self, plan: EdaFaultPlan) -> DiskStore {
        self.faults = plan;
        self
    }

    pub(crate) fn stats(&self) -> DiskStats {
        DiskStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
        }
    }

    fn entry_path(&self, op: &str, key: u128) -> PathBuf {
        self.dir.join(format!("{op}-{key:032x}.entry"))
    }

    /// Loads and decodes one entry; any failure is a miss.
    fn load(&self, op: &str, key: u128) -> Option<String> {
        if self.faults.roll_disk_probe(op, key) {
            // Injected EIO on the probe: exactly the I/O-error path
            // below — counted, degraded to a miss, never propagated.
            self.errors.fetch_add(1, Ordering::Relaxed);
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let text = match fs::read_to_string(self.entry_path(op, key)) {
            Ok(text) => text,
            Err(e) => {
                if e.kind() != std::io::ErrorKind::NotFound {
                    self.errors.fetch_add(1, Ordering::Relaxed);
                }
                self.misses.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        };
        match decode_header(&text, op) {
            Some(payload) => Some(payload.to_string()),
            None => {
                self.errors.fetch_add(1, Ordering::Relaxed);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Atomically writes one entry; failures are counted and ignored
    /// (the disk tier is an accelerator, never a correctness
    /// dependency).
    fn store(&self, op: &str, key: u128, payload: &str) {
        let mut line = format!(
            "{MAGIC} {VERSION} {op} {:016x} {payload}\n",
            fnv64(payload.as_bytes())
        );
        let fault = self.faults.roll_disk_store(op, key);
        if fault == Some(DiskWriteFault::ShortWrite) {
            // A writer killed mid-`write` that still got renamed into
            // place by a wrapper: the entry is committed but truncated,
            // and every later load must reject it on the checksum.
            line.truncate(line.len() / 2);
        }
        // Process-unique staging name: within one process, slot
        // insertion already guarantees at most one writer per key.
        let tmp = self
            .dir
            .join(format!(".tmp-{op}-{key:032x}.{}", std::process::id()));
        if fault == Some(DiskWriteFault::StaleTmp) {
            // The writer dies between staging and rename: the tempfile
            // stays behind (the next store open sweeps it) and the
            // entry never lands.
            let _ = fs::create_dir_all(&self.dir);
            let _ = fs::File::create(&tmp).and_then(|mut f| f.write_all(line.as_bytes()));
            self.errors.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let committed = fs::create_dir_all(&self.dir).is_ok()
            && fs::File::create(&tmp)
                .and_then(|mut f| f.write_all(line.as_bytes()))
                .is_ok()
            && fs::rename(&tmp, self.entry_path(op, key)).is_ok();
        if committed {
            self.writes.fetch_add(1, Ordering::Relaxed);
        } else {
            let _ = fs::remove_file(&tmp);
            self.errors.fetch_add(1, Ordering::Relaxed);
        }
    }

    pub(crate) fn load_analyze(&self, key: u128) -> Option<CompileReport> {
        let payload = self.load("analyze", key)?;
        let mut r = Reader::new(&payload);
        match decode_compile_report(&mut r).filter(|_| r.at_end()) {
            Some(report) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(report)
            }
            None => {
                // Checksummed but undecodable: a version-1 writer never
                // produces this, but the contract is miss, not panic.
                self.errors.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    pub(crate) fn store_analyze(&self, key: u128, report: &CompileReport) {
        let mut w = Writer::new();
        encode_compile_report(&mut w, report);
        self.store("analyze", key, w.payload());
    }

    pub(crate) fn load_sim(&self, key: u128) -> Option<SimEntry> {
        let payload = self.load("simulate", key)?;
        let mut r = Reader::new(&payload);
        match decode_sim_entry(&mut r).filter(|_| r.at_end()) {
            Some(entry) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(entry)
            }
            None => {
                self.errors.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    pub(crate) fn store_sim(&self, key: u128, entry: &SimEntry) {
        let mut w = Writer::new();
        encode_sim_entry(&mut w, entry);
        self.store("simulate", key, w.payload());
    }
}

/// Validates `MAGIC version op checksum` and returns the payload slice.
fn decode_header<'a>(text: &'a str, op: &str) -> Option<&'a str> {
    let rest = text.strip_prefix(MAGIC)?.strip_prefix(' ')?;
    let (version, rest) = rest.split_once(' ')?;
    if version.parse::<u64>().ok()? != VERSION {
        return None;
    }
    let (entry_op, rest) = rest.split_once(' ')?;
    if entry_op != op {
        return None;
    }
    let (sum, payload) = rest.split_once(' ')?;
    let payload = payload.strip_suffix('\n').unwrap_or(payload);
    (u64::from_str_radix(sum, 16).ok()? == fnv64(payload.as_bytes())).then_some(payload)
}

fn encode_severity(w: &mut Writer, s: Severity) {
    w.u64(match s {
        Severity::Note => 0,
        Severity::Warning => 1,
        Severity::Error => 2,
        Severity::Fatal => 3,
    });
}

fn decode_severity(r: &mut Reader<'_>) -> Option<Severity> {
    Some(match r.u64()? {
        0 => Severity::Note,
        1 => Severity::Warning,
        2 => Severity::Error,
        3 => Severity::Fatal,
        _ => return None,
    })
}

fn encode_messages(w: &mut Writer, messages: &[ToolMessage]) {
    w.u64(messages.len() as u64);
    for m in messages {
        encode_severity(w, m.severity);
        w.str(&m.code);
        w.str(&m.message);
        match &m.file {
            None => w.bool(false),
            Some(f) => {
                w.bool(true);
                w.str(f);
            }
        }
        match m.line {
            None => w.bool(false),
            Some(l) => {
                w.bool(true);
                w.u32(l);
            }
        }
    }
}

fn decode_messages(r: &mut Reader<'_>) -> Option<Vec<ToolMessage>> {
    let n = r.u64()?;
    if n > 1 << 20 {
        return None;
    }
    let mut out = Vec::with_capacity(n as usize);
    for _ in 0..n {
        out.push(ToolMessage {
            severity: decode_severity(r)?,
            code: r.str()?,
            message: r.str()?,
            file: if r.bool()? { Some(r.str()?) } else { None },
            line: if r.bool()? { Some(r.u32()?) } else { None },
        });
    }
    Some(out)
}

fn encode_compile_report(w: &mut Writer, report: &CompileReport) {
    w.bool(report.success);
    w.str(&report.log);
    encode_messages(w, &report.messages);
    w.f64(report.modeled_latency);
}

fn decode_compile_report(r: &mut Reader<'_>) -> Option<CompileReport> {
    Some(CompileReport {
        success: r.bool()?,
        log: r.str()?,
        messages: decode_messages(r)?,
        modeled_latency: r.f64()?,
    })
}

fn encode_sim_entry(w: &mut Writer, entry: &SimEntry) {
    let report = &entry.report;
    w.bool(report.compiled);
    w.bool(report.passed);
    w.str(&report.log);
    w.u64(report.failures.len() as u64);
    for f in &report.failures {
        match f.case {
            None => w.bool(false),
            Some(c) => {
                w.bool(true);
                w.u32(c);
            }
        }
        w.str(&f.message);
    }
    encode_messages(w, &report.compile_messages);
    w.u64(report.end_time);
    w.bool(report.finished);
    match &report.diverged {
        None => w.bool(false),
        Some(d) => {
            w.bool(true);
            w.u64(match d.limit {
                LimitKind::DeltaCycles => 0,
                LimitKind::ProcessInstructions => 1,
                LimitKind::TotalInstructions => 2,
            });
            w.u64(d.at_time);
            w.u64(d.instructions);
        }
    }
    w.f64(report.modeled_latency);
    w.f64(entry.sim_latency);
    match &entry.kernel {
        None => w.bool(false),
        Some(k) => {
            w.bool(true);
            k.encode(w);
        }
    }
}

fn decode_sim_entry(r: &mut Reader<'_>) -> Option<SimEntry> {
    let compiled = r.bool()?;
    let passed = r.bool()?;
    let log = r.str()?;
    let nfails = r.u64()?;
    if nfails > 1 << 20 {
        return None;
    }
    let mut failures = Vec::with_capacity(nfails as usize);
    for _ in 0..nfails {
        failures.push(TestFailure {
            case: if r.bool()? { Some(r.u32()?) } else { None },
            message: r.str()?,
        });
    }
    let compile_messages = decode_messages(r)?;
    let end_time = r.u64()?;
    let finished = r.bool()?;
    let diverged = if r.bool()? {
        Some(SimDiverged {
            limit: match r.u64()? {
                0 => LimitKind::DeltaCycles,
                1 => LimitKind::ProcessInstructions,
                2 => LimitKind::TotalInstructions,
                _ => return None,
            },
            at_time: r.u64()?,
            instructions: r.u64()?,
        })
    } else {
        None
    };
    let modeled_latency = r.f64()?;
    let sim_latency = r.f64()?;
    let kernel = if r.bool()? {
        Some(KernelTelemetry::decode(r)?)
    } else {
        None
    };
    Some(SimEntry {
        report: SimReport {
            compiled,
            passed,
            log,
            failures,
            compile_messages,
            end_time,
            finished,
            diverged,
            modeled_latency,
        },
        sim_latency,
        kernel,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("aivril-disk-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    fn report() -> CompileReport {
        CompileReport {
            success: false,
            log: "ERROR: [VRFC 10-91] syntax error\nsecond line\n".into(),
            messages: vec![ToolMessage {
                severity: Severity::Error,
                code: "VRFC 10-91".into(),
                message: "syntax error near 'endmodule'".into(),
                file: Some("adder.v".into()),
                line: Some(7),
            }],
            modeled_latency: 0.1 + 0.2,
        }
    }

    #[test]
    fn analyze_round_trip_is_exact() {
        let store = DiskStore::new(&dir("ana"));
        store.store_analyze(42, &report());
        let back = store.load_analyze(42).expect("disk hit");
        let want = report();
        assert_eq!(back.success, want.success);
        assert_eq!(back.log, want.log);
        assert_eq!(back.messages, want.messages);
        assert_eq!(
            back.modeled_latency.to_bits(),
            want.modeled_latency.to_bits()
        );
        let s = store.stats();
        assert_eq!((s.hits, s.misses, s.writes, s.errors), (1, 0, 1, 0));
        let _ = fs::remove_dir_all(&store.dir);
    }

    #[test]
    fn absent_wrong_version_and_corrupt_entries_miss() {
        let store = DiskStore::new(&dir("bad"));
        assert!(store.load_analyze(7).is_none(), "absent file");
        store.store_analyze(7, &report());
        let path = store.entry_path("analyze", 7);

        let good = fs::read_to_string(&path).expect("entry");
        fs::write(
            &path,
            good.replace("aivril.edacache 1 ", "aivril.edacache 999 "),
        )
        .unwrap();
        assert!(store.load_analyze(7).is_none(), "wrong version");

        fs::write(&path, &good[..good.len() / 2]).unwrap();
        assert!(store.load_analyze(7).is_none(), "truncated entry");

        fs::write(&path, b"total garbage\0\xff bytes").unwrap();
        assert!(store.load_analyze(7).is_none(), "garbage bytes");

        // Valid checksum over a tampered payload is still rejected by
        // the checksum (sum was computed over the original payload).
        fs::write(&path, good.replace("$adder.v", "$evil.v")).unwrap();
        assert!(store.load_analyze(7).is_none(), "checksum mismatch");
        let _ = fs::remove_dir_all(&store.dir);
    }

    #[test]
    fn stale_tempfiles_are_swept_on_open_and_never_decoded() {
        let d = dir("tmp");
        fs::create_dir_all(&d).unwrap();
        // A dead writer's staging file with a fully valid entry line in
        // it: it must be removed on open, and until then it must never
        // be served as an entry (loads go through `entry_path` only).
        let mut w = Writer::new();
        encode_compile_report(&mut w, &report());
        let line = format!(
            "{MAGIC} {VERSION} analyze {:016x} {}\n",
            fnv64(w.payload().as_bytes()),
            w.payload()
        );
        let stale = d.join(".tmp-analyze-00000000000000000000000000000007.99999");
        fs::write(&stale, line).unwrap();
        let store = DiskStore::new(&d);
        assert!(!stale.exists(), "open sweeps dead writers' tempfiles");
        assert!(
            store.load_analyze(7).is_none(),
            "a tempfile is not an entry"
        );
        // Real entries survive the sweep.
        store.store_analyze(7, &report());
        let store2 = DiskStore::new(&d);
        assert!(store2.load_analyze(7).is_some());
        let _ = fs::remove_dir_all(&d);
    }

    #[test]
    fn injected_disk_faults_degrade_to_misses() {
        // Probe EIO: the entry is on disk and intact, but the faulted
        // store cannot read it; a clean store can.
        let d = dir("eio");
        let clean = DiskStore::new(&d);
        clean.store_analyze(3, &report());
        let faulted =
            DiskStore::new(&d).with_faults(EdaFaultPlan::parse("disk_probe_eio=1.0").unwrap());
        assert!(faulted.load_analyze(3).is_none());
        let s = faulted.stats();
        assert_eq!((s.misses, s.errors), (1, 1));
        assert!(clean.load_analyze(3).is_some());
        let _ = fs::remove_dir_all(&d);

        // Short write: the entry lands truncated; loads reject it on
        // the checksum and degrade to a miss.
        let d = dir("short");
        let short =
            DiskStore::new(&d).with_faults(EdaFaultPlan::parse("disk_short_write=1.0").unwrap());
        short.store_analyze(3, &report());
        assert!(short.entry_path("analyze", 3).exists());
        assert!(DiskStore::new(&d).load_analyze(3).is_none());
        let _ = fs::remove_dir_all(&d);

        // Stale tmp: the entry never lands, the tempfile stays behind,
        // and the next open sweeps it.
        let d = dir("stale");
        let stale =
            DiskStore::new(&d).with_faults(EdaFaultPlan::parse("disk_stale_tmp=1.0").unwrap());
        stale.store_analyze(3, &report());
        assert!(!stale.entry_path("analyze", 3).exists());
        let tmps = fs::read_dir(&d)
            .unwrap()
            .flatten()
            .filter(|e| e.file_name().to_string_lossy().starts_with(".tmp-"))
            .count();
        assert_eq!(tmps, 1, "the dead writer's tempfile is left behind");
        let _ = DiskStore::new(&d);
        let tmps = fs::read_dir(&d)
            .unwrap()
            .flatten()
            .filter(|e| e.file_name().to_string_lossy().starts_with(".tmp-"))
            .count();
        assert_eq!(tmps, 0, "reopening sweeps it");
        let _ = fs::remove_dir_all(&d);
    }

    #[test]
    fn sim_entry_round_trip_with_divergence() {
        let store = DiskStore::new(&dir("sim"));
        let entry = SimEntry {
            report: SimReport {
                compiled: true,
                passed: false,
                log: "Test Case 2 Failed: q stuck (at time 52)\n".into(),
                failures: vec![TestFailure {
                    case: Some(2),
                    message: "Test Case 2 Failed: q stuck (at time 52)".into(),
                }],
                compile_messages: Vec::new(),
                end_time: 52,
                finished: false,
                diverged: Some(SimDiverged {
                    limit: LimitKind::DeltaCycles,
                    at_time: 52,
                    instructions: 1234,
                }),
                modeled_latency: 1.5,
            },
            sim_latency: 0.75,
            kernel: None,
        };
        store.store_sim(9, &entry);
        let back = store.load_sim(9).expect("disk hit");
        assert_eq!(back.report.failures, entry.report.failures);
        assert_eq!(back.report.diverged, entry.report.diverged);
        assert_eq!(back.sim_latency.to_bits(), entry.sim_latency.to_bits());
        assert!(back.kernel.is_none());
        // An analyze lookup on a simulate key's file name misses (op
        // tag mismatch can't alias shards even on disk).
        assert!(store.load_analyze(9).is_none());
        let _ = fs::remove_dir_all(&store.dir);
    }
}
