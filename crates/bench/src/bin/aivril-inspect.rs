//! `aivril-inspect` — the read side of the observability stack: query,
//! diff and attribute existing run artifacts without re-running
//! anything.
//!
//! ```text
//! aivril-inspect summary <artifact>
//! aivril-inspect diff <artifact-a> <artifact-b>
//! aivril-inspect flame <journal>
//! aivril-inspect tail <checkpoint-dir> [--follow [--interval <secs>]
//!                                       [--expect-cells <n>]]
//! aivril-inspect regress --baseline <BENCH_SIM.json> [--current <criterion.jsonl>]
//!                        [--tolerance <frac>] [--absolute]
//! ```
//!
//! * `summary` — per-stage/per-problem modeled-time attribution tree
//!   and outcome/error-class breakdown from a JSONL run journal
//!   (`AIVRIL_TRACE_JSON`) or an `aivril.results` JSON (`--json`).
//! * `diff` — two artifacts of the same kind: metric deltas and
//!   per-cell outcome flips for results, first-divergence pinpointing
//!   down to the first differing line for journals. Exit 0 means
//!   byte-identical ("no divergence"), 1 means diverged.
//! * `flame` — collapsed-stack export of the journal's span tree
//!   (`stack;path microseconds` lines for flamegraph.pl / inferno /
//!   speedscope), byte-identical across thread counts.
//! * `tail` — read-only progress view of a live `AIVRIL_CHECKPOINT_DIR`
//!   (cells done/remaining, rolling pass rate, resilience counters),
//!   tolerating torn tails exactly like resume does. `--follow` polls
//!   until the grid completes: exactly when `--expect-cells` gives the
//!   planned grid size (problems × samples), otherwise against a size
//!   inferred from the shard log names, trusted only once the
//!   discovered ranges tile the grid gap-free (a gap means a planned
//!   shard has not opened its log yet).
//! * `regress` — compares a fresh criterion/kernel report against the
//!   committed `BENCH_SIM.json` baseline; exit 1 on regression (the CI
//!   perf gate). Relative mode (the default) normalises out uniform
//!   machine-speed differences; `--absolute` compares raw ratios.
//!
//! Every subcommand is read-only and deterministic: same artifacts in,
//! byte-identical report out (`tests/inspect.rs` enforces this).
//! Reports go to stdout; diagnostics to stderr.

use aivril_bench::checkpoint;
use aivril_obs::analyze;
use std::path::Path;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: aivril-inspect <summary|diff|flame|tail|regress> ...\n\
         \x20 summary <artifact>                        attribution + outcome breakdown\n\
         \x20 diff <a> <b>                              compare two artifacts (exit 1 on divergence)\n\
         \x20 flame <journal>                           collapsed stacks for flamegraph tools\n\
         \x20 tail <ckpt-dir> [--follow] [--expect-cells <n>]  live shard progress (read-only)\n\
         \x20 regress --baseline <json> [--current <jsonl>] [--tolerance <frac>] [--absolute]"
    );
    ExitCode::FAILURE
}

fn read(path: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))
}

/// The value following `flag` within `args`, if present.
fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    let Some((cmd, rest)) = args.split_first() else {
        return Ok(usage());
    };
    match cmd.as_str() {
        "summary" => {
            let [path] = rest else { return Ok(usage()) };
            print!("{}", analyze::summary(&read(path)?)?);
            Ok(ExitCode::SUCCESS)
        }
        "diff" => {
            let [a, b] = rest else { return Ok(usage()) };
            let out = analyze::diff(a, &read(a)?, b, &read(b)?)?;
            print!("{}", out.report);
            Ok(if out.diverged {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            })
        }
        "flame" => {
            let [path] = rest else { return Ok(usage()) };
            print!("{}", analyze::flame(&read(path)?)?);
            Ok(ExitCode::SUCCESS)
        }
        "tail" => {
            let Some(dir) = rest.first() else {
                return Ok(usage());
            };
            let dir = Path::new(dir);
            let follow = rest.iter().any(|a| a == "--follow");
            let expected = match flag_value(rest, "--expect-cells") {
                None => None,
                Some(v) => Some(v.parse::<usize>().map_err(|_| {
                    format!("bad --expect-cells {v} (want the grid size, problems x samples)")
                })?),
            };
            let interval = flag_value(rest, "--interval")
                .and_then(|v| v.parse::<f64>().ok())
                .unwrap_or(2.0)
                .max(0.1);
            loop {
                // One scan per poll: the printed progress and the exit
                // decision come from the same directory snapshot.
                let groups = checkpoint::scan_dir(dir);
                print!("{}", checkpoint::render_progress(dir, &groups));
                let complete = !groups.is_empty() && groups.iter().all(|g| g.complete(expected));
                if !follow || complete {
                    return Ok(ExitCode::SUCCESS);
                }
                std::thread::sleep(std::time::Duration::from_secs_f64(interval));
            }
        }
        "regress" => {
            let Some(baseline) = flag_value(rest, "--baseline") else {
                return Ok(usage());
            };
            let tolerance = match flag_value(rest, "--tolerance") {
                None => 0.15,
                Some(v) => v
                    .parse()
                    .map_err(|_| format!("bad --tolerance {v} (want a fraction, e.g. 0.15)"))?,
            };
            let absolute = rest.iter().any(|a| a == "--absolute");
            // Fresh timings come from --current, or from the
            // CRITERION_JSON report the bench run just appended.
            let current_path = flag_value(rest, "--current")
                .or_else(|| {
                    std::env::var("CRITERION_JSON")
                        .ok()
                        .filter(|v| !v.is_empty())
                })
                .ok_or("regress needs --current <criterion.jsonl> (or CRITERION_JSON set)")?;
            let out = analyze::regress(
                &read(&baseline)?,
                &read(&current_path)?,
                tolerance,
                absolute,
            )?;
            print!("{}", out.report);
            Ok(if out.regressed {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            })
        }
        _ => Ok(usage()),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("[inspect] {e}");
            ExitCode::from(2)
        }
    }
}
