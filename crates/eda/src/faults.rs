//! Deterministic fault injection for the EDA tool and storage planes —
//! the `llm::faults` discipline applied to everything *below* the
//! model: tool invocations, the persistent disk cache, and checkpoint
//! logs.
//!
//! # Plan syntax (`AIVRIL_EDA_FAULTS`)
//!
//! `off` (default), a single rate (`0.1` = 10 % on every class), or
//! comma-separated `class=rate` pairs over the classes below, plus two
//! non-rate knobs:
//!
//! | class | plane | effect |
//! |---|---|---|
//! | `crash` | tool | the tool process dies before producing output |
//! | `hang` | tool | the tool wedges until the modeled watchdog kills it |
//! | `garbled` | tool | the run completes but its log is corrupted in place |
//! | `truncate` | tool | the run completes but its log is cut short |
//! | `spurious_exit` | tool | nonzero exit status with no diagnostics |
//! | `disk_short_write` | disk | a cache entry lands truncated on disk |
//! | `disk_probe_eio` | disk | reading a cache entry fails with an I/O error |
//! | `disk_stale_tmp` | disk | the writer dies between tempfile and rename |
//! | `ckpt_torn_tail` | checkpoint | an appended cell line is cut mid-write |
//! | `ckpt_checksum_flip` | checkpoint | an appended cell line's checksum is corrupted |
//!
//! `retry_max=<n>` bounds the tool plane's in-suite retries (default
//! 2) and `watchdog_s=<seconds>` is the modeled hang watchdog
//! (default 30).
//!
//! # Determinism
//!
//! Every decision is a pure function of the *request identity* — the
//! plane, the operation, the 128-bit content key of the invocation
//! (the EDA cache's own key), and the attempt number — hashed with
//! FNV-64 over a length-delimited encoding and mapped to `[0, 1)`.
//! No RNG state, no clocks, no thread identity. Consequently:
//!
//! * retries re-roll (the attempt number is part of the identity), so
//!   a transient fault can clear on a later attempt;
//! * the same invocation faults the same way however many workers run
//!   (`AIVRIL_THREADS`), whatever the cache mode, and however calls
//!   interleave — faulted artifacts are bit-identical by construction;
//! * storage faults perturb only the *diagnostic* planes (disk-tier
//!   counters, checkpoint replay coverage); corrupt entries degrade to
//!   misses and torn cells are recomputed, so canonical results stay
//!   bit-identical even under storage chaos.

use aivril_obs::codec::{fnv64, Writer};

/// A fault rolled against one tool invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ToolFault {
    /// The tool process died before producing output; retryable.
    Crash,
    /// The tool wedged; the modeled watchdog killed it after
    /// [`EdaFaultPlan::watchdog_s`]; retryable.
    Hang,
    /// The tool ran to completion but its log is corrupted in place.
    Garbled,
    /// The tool ran to completion but its log is cut short.
    Truncate,
    /// Nonzero exit status with no diagnostics; retryable.
    SpuriousExit,
}

impl ToolFault {
    /// Stable label for metrics and logs.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            ToolFault::Crash => "crash",
            ToolFault::Hang => "hang",
            ToolFault::Garbled => "garbled",
            ToolFault::Truncate => "truncate",
            ToolFault::SpuriousExit => "spurious_exit",
        }
    }

    /// `true` for faults worth retrying (the invocation produced
    /// nothing); log-mutation faults are completed invocations.
    #[must_use]
    pub fn is_transient(self) -> bool {
        matches!(
            self,
            ToolFault::Crash | ToolFault::Hang | ToolFault::SpuriousExit
        )
    }
}

/// A fault rolled against one disk-cache store operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiskWriteFault {
    /// The entry lands truncated (a killed writer after a partial
    /// `write`): later loads fail the checksum and degrade to misses.
    ShortWrite,
    /// The writer dies between staging the tempfile and the rename,
    /// leaving a stale `.tmp-*` file and no entry.
    StaleTmp,
}

/// A fault rolled against one checkpoint append.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CkptFault {
    /// The cell line is cut mid-write (torn tail): replay drops it and
    /// everything after it in that log, and those cells recompute.
    TornTail,
    /// The line's checksum is corrupted: replay rejects the line.
    ChecksumFlip,
}

/// Deterministic EDA/storage fault plan. See the module docs for the
/// plan syntax and the hash discipline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EdaFaultPlan {
    /// Tool-plane rate: process death before output.
    pub crash: f64,
    /// Tool-plane rate: hang until the modeled watchdog fires.
    pub hang: f64,
    /// Tool-plane rate: completed run, corrupted log.
    pub garbled: f64,
    /// Tool-plane rate: completed run, truncated log.
    pub truncate: f64,
    /// Tool-plane rate: nonzero exit with no diagnostics.
    pub spurious_exit: f64,
    /// Disk-plane rate: truncated entry on store.
    pub disk_short_write: f64,
    /// Disk-plane rate: I/O error on load.
    pub disk_probe_eio: f64,
    /// Disk-plane rate: stale tempfile left by a dead writer.
    pub disk_stale_tmp: f64,
    /// Checkpoint-plane rate: torn cell line on append.
    pub ckpt_torn_tail: f64,
    /// Checkpoint-plane rate: corrupted line checksum on append.
    pub ckpt_checksum_flip: f64,
    /// Retries per tool invocation before the fault surfaces as a
    /// failed report (`retry_max=<n>`, default 2).
    pub retry_max: u32,
    /// Modeled seconds a hung tool consumes before the watchdog kills
    /// it (`watchdog_s=<s>`, default 30).
    pub watchdog_s: f64,
}

impl Default for EdaFaultPlan {
    fn default() -> EdaFaultPlan {
        EdaFaultPlan::off()
    }
}

impl EdaFaultPlan {
    /// The all-off plan (every rate zero, default knobs).
    #[must_use]
    pub fn off() -> EdaFaultPlan {
        EdaFaultPlan {
            crash: 0.0,
            hang: 0.0,
            garbled: 0.0,
            truncate: 0.0,
            spurious_exit: 0.0,
            disk_short_write: 0.0,
            disk_probe_eio: 0.0,
            disk_stale_tmp: 0.0,
            ckpt_torn_tail: 0.0,
            ckpt_checksum_flip: 0.0,
            retry_max: 2,
            watchdog_s: 30.0,
        }
    }

    /// A plan with the same `rate` on every fault class.
    #[must_use]
    pub fn uniform(rate: f64) -> EdaFaultPlan {
        let rate = rate.clamp(0.0, 1.0);
        EdaFaultPlan {
            crash: rate,
            hang: rate,
            garbled: rate,
            truncate: rate,
            spurious_exit: rate,
            disk_short_write: rate,
            disk_probe_eio: rate,
            disk_stale_tmp: rate,
            ckpt_torn_tail: rate,
            ckpt_checksum_flip: rate,
            ..EdaFaultPlan::off()
        }
    }

    /// `true` when every rate is zero — the fast path restores the
    /// exact pre-fault code path.
    #[must_use]
    pub fn is_off(&self) -> bool {
        self.rates().iter().all(|&(_, r)| r == 0.0)
    }

    /// `true` when any tool-plane class can fire.
    #[must_use]
    pub fn tools_on(&self) -> bool {
        self.crash > 0.0
            || self.hang > 0.0
            || self.garbled > 0.0
            || self.truncate > 0.0
            || self.spurious_exit > 0.0
    }

    /// `true` when any disk-plane class can fire.
    #[must_use]
    pub fn disk_on(&self) -> bool {
        self.disk_short_write > 0.0 || self.disk_probe_eio > 0.0 || self.disk_stale_tmp > 0.0
    }

    /// `true` when any checkpoint-plane class can fire.
    #[must_use]
    pub fn ckpt_on(&self) -> bool {
        self.ckpt_torn_tail > 0.0 || self.ckpt_checksum_flip > 0.0
    }

    fn rates(&self) -> [(&'static str, f64); 10] {
        [
            ("crash", self.crash),
            ("hang", self.hang),
            ("garbled", self.garbled),
            ("truncate", self.truncate),
            ("spurious_exit", self.spurious_exit),
            ("disk_short_write", self.disk_short_write),
            ("disk_probe_eio", self.disk_probe_eio),
            ("disk_stale_tmp", self.disk_stale_tmp),
            ("ckpt_torn_tail", self.ckpt_torn_tail),
            ("ckpt_checksum_flip", self.ckpt_checksum_flip),
        ]
    }

    /// Parses a plan string: `off`/`0`/empty, a bare uniform rate, or
    /// comma-separated `class=rate` pairs plus the `retry_max` /
    /// `watchdog_s` knobs.
    ///
    /// # Errors
    ///
    /// Returns a description of the malformation: unknown class,
    /// duplicate class, or a rate outside `[0, 1]`.
    pub fn parse(s: &str) -> Result<EdaFaultPlan, String> {
        let s = s.trim();
        if s.is_empty() || s == "off" || s == "0" {
            return Ok(EdaFaultPlan::off());
        }
        if let Ok(rate) = s.parse::<f64>() {
            if !(0.0..=1.0).contains(&rate) {
                return Err(format!("rate {rate} outside [0, 1]"));
            }
            return Ok(EdaFaultPlan::uniform(rate));
        }
        let mut plan = EdaFaultPlan::off();
        let mut seen: Vec<&str> = Vec::new();
        for pair in s.split(',') {
            let pair = pair.trim();
            let Some((class, rate)) = pair.split_once('=') else {
                return Err(format!("expected class=rate, got {pair:?}"));
            };
            let (class, rate) = (class.trim(), rate.trim());
            if seen.contains(&class) {
                return Err(format!("duplicate class {class:?}"));
            }
            if class == "retry_max" {
                plan.retry_max = rate
                    .parse()
                    .map_err(|_| format!("retry_max wants a non-negative integer, got {rate:?}"))?;
                seen.push("retry_max");
                continue;
            }
            if class == "watchdog_s" {
                let v: f64 = rate
                    .parse()
                    .map_err(|_| format!("watchdog_s wants a number, got {rate:?}"))?;
                if !v.is_finite() || v < 0.0 {
                    return Err(format!(
                        "watchdog_s wants a finite non-negative number, got {rate:?}"
                    ));
                }
                plan.watchdog_s = v;
                seen.push("watchdog_s");
                continue;
            }
            let rate: f64 = rate
                .parse()
                .map_err(|_| format!("bad rate for {class}: {rate:?}"))?;
            if !(0.0..=1.0).contains(&rate) {
                return Err(format!("rate for {class} outside [0, 1]: {rate}"));
            }
            let slot = match class {
                "crash" => &mut plan.crash,
                "hang" => &mut plan.hang,
                "garbled" => &mut plan.garbled,
                "truncate" => &mut plan.truncate,
                "spurious_exit" => &mut plan.spurious_exit,
                "disk_short_write" => &mut plan.disk_short_write,
                "disk_probe_eio" => &mut plan.disk_probe_eio,
                "disk_stale_tmp" => &mut plan.disk_stale_tmp,
                "ckpt_torn_tail" => &mut plan.ckpt_torn_tail,
                "ckpt_checksum_flip" => &mut plan.ckpt_checksum_flip,
                other => return Err(format!("unknown fault class {other:?}")),
            };
            *slot = rate;
            seen.push(class);
        }
        Ok(plan)
    }

    /// Rolls the tool plane for `(op, key, attempt)`. `op` is the
    /// invocation kind (`analyze`/`compile`/`simulate`), `key` the EDA
    /// cache's content key of the invocation, `attempt` the in-suite
    /// retry counter — retries re-roll.
    #[must_use]
    pub fn roll_tool(&self, op: &str, key: u128, attempt: u32) -> Option<ToolFault> {
        if !self.tools_on() {
            return None;
        }
        let u = unit("tool", op, key, attempt);
        pick(
            u,
            &[
                (self.crash, ToolFault::Crash),
                (self.hang, ToolFault::Hang),
                (self.garbled, ToolFault::Garbled),
                (self.truncate, ToolFault::Truncate),
                (self.spurious_exit, ToolFault::SpuriousExit),
            ],
        )
    }

    /// Rolls the disk plane's *load* side: `Some(())` injects an I/O
    /// error on the probe of `(op, key)`.
    #[must_use]
    pub fn roll_disk_probe(&self, op: &str, key: u128) -> bool {
        self.disk_probe_eio > 0.0 && unit("disk.probe", op, key, 0) < self.disk_probe_eio
    }

    /// Rolls the disk plane's *store* side for `(op, key)`.
    #[must_use]
    pub fn roll_disk_store(&self, op: &str, key: u128) -> Option<DiskWriteFault> {
        if self.disk_short_write == 0.0 && self.disk_stale_tmp == 0.0 {
            return None;
        }
        let u = unit("disk.store", op, key, 0);
        pick(
            u,
            &[
                (self.disk_short_write, DiskWriteFault::ShortWrite),
                (self.disk_stale_tmp, DiskWriteFault::StaleTmp),
            ],
        )
    }

    /// Rolls the checkpoint plane for one appended cell line,
    /// identified by the log's config fingerprint, the cell index and
    /// the payload checksum (so re-appending identical content re-rolls
    /// identically, and different content rolls independently).
    #[must_use]
    pub fn roll_ckpt(&self, fingerprint: u64, cell: usize, sum: u64) -> Option<CkptFault> {
        if !self.ckpt_on() {
            return None;
        }
        let u = unit(
            "ckpt",
            "append",
            (u128::from(fingerprint) << 64) | u128::from(sum),
            cell as u32,
        );
        pick(
            u,
            &[
                (self.ckpt_torn_tail, CkptFault::TornTail),
                (self.ckpt_checksum_flip, CkptFault::ChecksumFlip),
            ],
        )
    }

    /// A deterministic sub-roll in `[0, 1)` for shaping an injected
    /// fault (mutation points, torn-tail cut positions) — same
    /// identity space as the class rolls, separated by `what`.
    #[must_use]
    pub fn shape(what: &str, op: &str, key: u128, attempt: u32) -> f64 {
        unit(what, op, key, attempt)
    }
}

/// Cumulative-threshold class selection over `[0, 1)`.
fn pick<T: Copy>(u: f64, classes: &[(f64, T)]) -> Option<T> {
    let mut acc = 0.0;
    for &(rate, class) in classes {
        acc += rate;
        if u < acc {
            return Some(class);
        }
    }
    None
}

/// Pure request-identity hash mapped to `[0, 1)`: FNV-64 over a
/// length-delimited encoding of `(plane, op, key, attempt)`. The top
/// 53 bits become the mantissa, so the mapping is exactly uniform over
/// the representable grid.
fn unit(plane: &str, op: &str, key: u128, attempt: u32) -> f64 {
    let mut w = Writer::new();
    w.str(plane);
    w.str(op);
    w.u64((key >> 64) as u64);
    w.u64(key as u64);
    w.u32(attempt);
    let h = mix(fnv64(w.payload().as_bytes()));
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// Murmur3-style finalizer. FNV-1a alone has weak trailing-byte
/// avalanche (the last byte passes through a single multiply, moving
/// only mid-order bits), which would make the attempt counter — the
/// payload's final token — nearly inert. The finalizer spreads every
/// input bit across the whole word.
fn mix(mut h: u64) -> u64 {
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 33;
    h = h.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    h ^= h >> 33;
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_all_forms() {
        assert!(EdaFaultPlan::parse("off").unwrap().is_off());
        assert!(EdaFaultPlan::parse("").unwrap().is_off());
        assert!(EdaFaultPlan::parse("0").unwrap().is_off());
        let uniform = EdaFaultPlan::parse("0.25").unwrap();
        assert!((uniform.crash - 0.25).abs() < 1e-12);
        assert!((uniform.ckpt_checksum_flip - 0.25).abs() < 1e-12);
        let plan = EdaFaultPlan::parse(
            "crash=0.1, hang=0.2,disk_probe_eio=0.05,retry_max=5,watchdog_s=7.5",
        )
        .unwrap();
        assert!((plan.crash - 0.1).abs() < 1e-12);
        assert!((plan.hang - 0.2).abs() < 1e-12);
        assert!((plan.disk_probe_eio - 0.05).abs() < 1e-12);
        assert_eq!(plan.retry_max, 5);
        assert!((plan.watchdog_s - 7.5).abs() < 1e-12);
        assert_eq!(plan.garbled, 0.0);
        assert!(!plan.is_off());
        assert!(plan.tools_on() && plan.disk_on() && !plan.ckpt_on());
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in [
            "warp",
            "1.5",
            "-0.1",
            "crash=2",
            "crash=-1",
            "crash=lots",
            "warp=0.1",
            "crash=0.1,crash=0.2",
            "retry_max=-1",
            "watchdog_s=NaN",
            "watchdog_s=-3",
            "crash",
        ] {
            assert!(
                EdaFaultPlan::parse(bad).is_err(),
                "{bad:?} must be rejected"
            );
        }
    }

    #[test]
    fn off_never_faults() {
        let plan = EdaFaultPlan::off();
        for key in 0..100u128 {
            assert!(plan.roll_tool("compile", key, 0).is_none());
            assert!(!plan.roll_disk_probe("analyze", key));
            assert!(plan.roll_disk_store("simulate", key).is_none());
            assert!(plan.roll_ckpt(7, key as usize, 9).is_none());
        }
    }

    #[test]
    fn rolls_are_deterministic_and_attempt_sensitive() {
        let plan = EdaFaultPlan::uniform(0.5);
        let a = plan.roll_tool("compile", 42, 0);
        assert_eq!(
            a,
            plan.roll_tool("compile", 42, 0),
            "same identity, same roll"
        );
        // Over many attempts, at least one decision differs — the
        // attempt number is part of the identity.
        let varies = (0..64)
            .map(|i| plan.roll_tool("compile", 42, i))
            .collect::<Vec<_>>();
        assert!(varies.iter().any(|r| r != &varies[0]), "attempts re-roll");
        // And ops are independent identity spaces.
        let by_op: Vec<_> = (0..64)
            .map(|k| {
                (
                    plan.roll_tool("analyze", k, 0),
                    plan.roll_tool("compile", k, 0),
                )
            })
            .collect();
        assert!(by_op.iter().any(|(a, c)| a != c), "ops roll independently");
    }

    #[test]
    fn rates_are_roughly_honoured() {
        let plan = EdaFaultPlan::parse("crash=0.3").unwrap();
        let n = 4000;
        let fired = (0..n)
            .filter(|&k| plan.roll_tool("compile", k, 0).is_some())
            .count();
        let rate = fired as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.05, "observed {rate}");
        // A 100% class always fires.
        let always = EdaFaultPlan::parse("hang=1.0").unwrap();
        assert!((0..100u128).all(|k| always.roll_tool("simulate", k, 3) == Some(ToolFault::Hang)));
    }

    #[test]
    fn planes_roll_independently() {
        let plan = EdaFaultPlan::uniform(0.4);
        let tool: Vec<bool> = (0..64u128)
            .map(|k| plan.roll_tool("x", k, 0).is_some())
            .collect();
        let disk: Vec<bool> = (0..64u128).map(|k| plan.roll_disk_probe("x", k)).collect();
        let ckpt: Vec<bool> = (0..64u128)
            .map(|k| plan.roll_ckpt(1, k as usize, 2).is_some())
            .collect();
        assert!(tool != disk && tool != ckpt, "planes must not alias");
    }

    #[test]
    fn transient_classification_matches_retry_semantics() {
        assert!(ToolFault::Crash.is_transient());
        assert!(ToolFault::Hang.is_transient());
        assert!(ToolFault::SpuriousExit.is_transient());
        assert!(!ToolFault::Garbled.is_transient());
        assert!(!ToolFault::Truncate.is_transient());
    }
}
