//! Regenerates the paper's **Table 2**: Verilog pass@1_F of AIVRIL2
//! (measured here) against published state-of-the-art numbers (cited
//! constants — the closed systems cannot be rerun).

use aivril_bench::{
    arg_value, results_json, write_json, Flow, Harness, HarnessConfig, ResultSection, Telemetry,
};
use aivril_llm::profiles;
use aivril_metrics::{render_table2, suite_metric};

fn main() {
    let config = HarnessConfig::from_env();
    let telemetry = Telemetry::from_env();
    let harness = Harness::new(config.clone()).with_recorder(telemetry.recorder());
    println!(
        "Running Table 2: {} tasks x {} samples x 3 models (Verilog, AIVRIL2) \
         on {} thread(s)\n",
        harness.problems().len(),
        config.samples,
        config.effective_threads()
    );

    let mut measured = Vec::new();
    let mut sections = Vec::new();
    for profile in profiles::all() {
        eprintln!("== AIVRIL2 ({}) ==", profile.name);
        let (outcomes, stats) = harness.evaluate_with_stats(&profile, true, Flow::Aivril2);
        eprintln!("   {stats}");
        let f = suite_metric(&outcomes, 1, |s| s.functional) * 100.0;
        let license = if profile.name.contains("Llama") {
            "Open Source"
        } else {
            "Closed Source"
        };
        measured.push((
            format!("AIVRIL2 ({})", profile.name),
            license.to_string(),
            f,
        ));
        sections.push(ResultSection {
            label: format!("{} Verilog aivril2", profile.name),
            outcomes,
            stats,
        });
    }

    if let Some(stats) = harness.cache_stats() {
        println!("[cache] {stats}\n");
    }
    if let Some(path) = arg_value("--json") {
        write_json(&path, &results_json(&sections)).expect("write --json output");
        println!("results written to {path}\n");
    }
    match telemetry.finish() {
        Ok(summary) if !summary.is_empty() => println!("{summary}"),
        Ok(_) => {}
        Err(e) => eprintln!("[obs] export failed: {e}"),
    }
    println!("{}", render_table2(&measured));
    println!("Paper reference: AIVRIL2 rows are 55.13 (Llama3-70B), 72.44 (GPT-4o), 77 (Claude 3.5 Sonnet);");
    println!("best case is 3.4x ChipNemo-13B's 22.4.");
}
