//! Shifters and rotators (10 problems).

use crate::builders::{comb_problem, CombSpec};
use crate::port::Port;
use crate::{Difficulty, Family, Problem};

fn const_shift(width: u32, amount: u32, left: bool) -> CombSpec {
    let m = (1u64 << width) - 1;
    let dir = if left { "shl" } else { "shr" };
    let vop = if left { "<<" } else { ">>" };
    let hi = width - 1;
    // VHDL without shift operators on slv: slice + zero concat.
    let zeros = "0".repeat(amount as usize);
    let vhdl_body = if left {
        format!("  y <= a({} downto 0) & \"{zeros}\";\n", hi - amount)
    } else {
        format!("  y <= \"{zeros}\" & a({hi} downto {amount});\n")
    };
    CombSpec {
        name: format!("{dir}{amount}_w{width}"),
        family: Family::Shifter,
        difficulty: Difficulty::Easy,
        description: format!(
            "y is the {width}-bit input a logically shifted {} by {amount} bit{} (zero fill).",
            if left { "left" } else { "right" },
            if amount == 1 { "" } else { "s" }
        ),
        inputs: vec![Port::new("a", width)],
        outputs: vec![Port::new("y", width)],
        vlog_body: format!("  assign y = a {vop} {amount};\n"),
        vlog_out_reg: false,
        vhdl_body,
        vhdl_decls: String::new(),
        eval: Box::new(move |v| {
            vec![if left {
                v[0] << amount & m
            } else {
                v[0] >> amount
            }]
        }),
    }
}

fn var_shift(width: u32, left: bool) -> CombSpec {
    let m = (1u64 << width) - 1;
    let amt_w = 3u32;
    let dir = if left { "shl" } else { "shr" };
    let vop = if left { "<<" } else { ">>" };
    // VHDL: case over the shift amount with explicit slices.
    let hi = width - 1;
    let mut harms = String::new();
    for s in 0..(1u32 << amt_w) {
        let body = if s == 0 {
            "y <= a;".to_string()
        } else if s >= width {
            format!("y <= \"{}\";", "0".repeat(width as usize))
        } else if left {
            format!(
                "y <= a({} downto 0) & \"{}\";",
                hi - s,
                "0".repeat(s as usize)
            )
        } else {
            format!("y <= \"{}\" & a({hi} downto {s});", "0".repeat(s as usize))
        };
        harms.push_str(&format!("      when \"{:03b}\" => {body}\n", s));
    }
    let vhdl_body = format!(
        "  process (a, s)\n  begin\n    case s is\n{harms}      when others => y <= a;\n    end case;\n  end process;\n"
    );
    CombSpec {
        name: format!("{dir}_var_w{width}"),
        family: Family::Shifter,
        difficulty: Difficulty::Medium,
        description: format!(
            "y is the {width}-bit input a logically shifted {} by the 3-bit amount s (zero fill; shifting by {width} or more yields all zeros).",
            if left { "left" } else { "right" }
        ),
        inputs: vec![Port::new("a", width), Port::new("s", amt_w)],
        outputs: vec![Port::new("y", width)],
        vlog_body: format!("  assign y = a {vop} s;\n"),
        vlog_out_reg: false,
        vhdl_body,
        vhdl_decls: String::new(),
        eval: Box::new(move |v| {
            let s = v[1] as u32;
            vec![if s >= width {
                0
            } else if left {
                v[0] << s & m
            } else {
                v[0] >> s
            }]
        }),
    }
}

fn rotate1(width: u32, left: bool) -> CombSpec {
    let m = (1u64 << width) - 1;
    let hi = width - 1;
    let dir = if left { "rol" } else { "ror" };
    let (vlog, vhdl) = if left {
        (
            format!("  assign y = {{a[{}:0], a[{hi}]}};\n", hi - 1),
            format!("  y <= a({} downto 0) & a({hi});\n", hi - 1),
        )
    } else {
        (
            format!("  assign y = {{a[0], a[{hi}:1]}};\n"),
            format!("  y <= a(0) & a({hi} downto 1);\n"),
        )
    };
    CombSpec {
        name: format!("{dir}1_w{width}"),
        family: Family::Shifter,
        difficulty: Difficulty::Medium,
        description: format!(
            "y is the {width}-bit input a rotated {} by one position (the bit shifted out re-enters on the other side).",
            if left { "left" } else { "right" }
        ),
        inputs: vec![Port::new("a", width)],
        outputs: vec![Port::new("y", width)],
        vlog_body: vlog,
        vlog_out_reg: false,
        vhdl_body: vhdl,
        vhdl_decls: String::new(),
        eval: Box::new(move |v| {
            vec![if left {
                (v[0] << 1 | v[0] >> hi) & m
            } else {
                (v[0] >> 1 | (v[0] & 1) << hi) & m
            }]
        }),
    }
}

fn swap_nibbles() -> CombSpec {
    CombSpec {
        name: "swap_nibbles_w8".into(),
        family: Family::Shifter,
        difficulty: Difficulty::Easy,
        description: "y swaps the two nibbles of the 8-bit input: y = {a[3:0], a[7:4]}.".into(),
        inputs: vec![Port::new("a", 8)],
        outputs: vec![Port::new("y", 8)],
        vlog_body: "  assign y = {a[3:0], a[7:4]};\n".into(),
        vlog_out_reg: false,
        vhdl_body: "  y <= a(3 downto 0) & a(7 downto 4);\n".into(),
        vhdl_decls: String::new(),
        eval: Box::new(|v| vec![(v[0] & 0xF) << 4 | v[0] >> 4]),
    }
}

fn reverse(width: u32) -> CombSpec {
    let bits_v: Vec<String> = (0..width).map(|i| format!("a[{i}]")).collect();
    let bits_h: Vec<String> = (0..width).map(|i| format!("a({i})")).collect();
    CombSpec {
        name: format!("reverse_w{width}"),
        family: Family::Shifter,
        difficulty: Difficulty::Medium,
        description: format!(
            "y is the {width}-bit input a with its bit order reversed (y[i] = a[{}-i]).",
            width - 1
        ),
        inputs: vec![Port::new("a", width)],
        outputs: vec![Port::new("y", width)],
        vlog_body: format!("  assign y = {{{}}};\n", bits_v.join(", ")),
        vlog_out_reg: false,
        vhdl_body: format!("  y <= {};\n", bits_h.join(" & ")),
        vhdl_decls: String::new(),
        eval: Box::new(move |v| {
            let mut out = 0u64;
            for i in 0..width {
                out |= (v[0] >> i & 1) << (width - 1 - i);
            }
            vec![out]
        }),
    }
}

/// Appends the family's problems.
pub fn extend(problems: &mut Vec<Problem>) {
    problems.push(comb_problem(const_shift(8, 1, true)));
    problems.push(comb_problem(const_shift(8, 2, true)));
    problems.push(comb_problem(const_shift(8, 1, false)));
    problems.push(comb_problem(const_shift(8, 2, false)));
    problems.push(comb_problem(var_shift(8, true)));
    problems.push(comb_problem(var_shift(8, false)));
    problems.push(comb_problem(rotate1(8, true)));
    problems.push(comb_problem(rotate1(8, false)));
    problems.push(comb_problem(swap_nibbles()));
    problems.push(comb_problem(reverse(4)));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contributes_10_problems() {
        let mut v = Vec::new();
        extend(&mut v);
        assert_eq!(v.len(), 10);
    }

    #[test]
    fn rotate_golden() {
        let rol = rotate1(8, true);
        assert_eq!((rol.eval)(&[0b1000_0001]), vec![0b0000_0011]);
        let ror = rotate1(8, false);
        assert_eq!((ror.eval)(&[0b1000_0001]), vec![0b1100_0000]);
    }

    #[test]
    fn var_shift_saturates() {
        let s = var_shift(8, true);
        assert_eq!((s.eval)(&[0xFF, 7]), vec![0x80]);
        assert_eq!((s.eval)(&[0x01, 0]), vec![0x01]);
    }

    #[test]
    fn reverse_golden() {
        let s = reverse(4);
        assert_eq!((s.eval)(&[0b0001]), vec![0b1000]);
        assert_eq!((s.eval)(&[0b0110]), vec![0b0110]);
    }
}
