//! The deterministic metrics registry: counters, gauges and
//! fixed-bucket histograms keyed by `(name, labels)`.
//!
//! # Determinism contract
//!
//! [`MetricsRegistry::merge`] is **associative and commutative**, so
//! per-worker registries fold into bit-identical aggregates no matter
//! how the parallel harness scheduled the work:
//!
//! * counters hold a `u64` sum — integer addition;
//! * gauges merge by maximum under [`f64::total_cmp`] — a commutative,
//!   associative lattice join;
//! * histograms hold integer state only: `u64` bucket counts and an
//!   `i128` sum of *microsecond-quantised* observations. Quantising at
//!   observe time (not merge time) moves every rounding decision to a
//!   point where it is identical for all schedules, so merging is plain
//!   integer addition.
//!
//! All iteration orders are `BTreeMap` orders, so dumps and snapshots
//! are deterministic too.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Quantisation applied to histogram observations: values are stored as
/// integer multiples of 1 µ-unit (1e-6) so sums merge exactly.
const QUANTUM: f64 = 1e6;

/// Name prefixes of *diagnostic* metric series — series whose values
/// legitimately depend on the execution configuration rather than on
/// the evaluated workload. `eda_cache_*` totals are zero/absent with
/// the cache off and populated with it on, and `resilience_*` totals
/// are zero/absent without fault injection and populated under
/// `AIVRIL_FAULTS`, so both are excluded from
/// [`MetricsRegistry::canonical`], the view canonical-artifact
/// comparisons (cache on vs. off, faults on vs. off) must use.
/// `sim_kernel_*` series describe the simulation kernel's *performance
/// model* (instruction throughput, arena spills, watcher compactions) —
/// implementation detail by definition, so kernel optimisations can
/// evolve them without breaking canonical byte-identity. All other
/// series are required to be bit-identical across `AIVRIL_THREADS`,
/// `AIVRIL_EDA_CACHE` *and* `AIVRIL_FAULTS=off`.
pub const DIAGNOSTIC_METRIC_PREFIXES: &[&str] = &["eda_cache_", "resilience_", "sim_kernel_"];

/// Identity of one metric series: a name plus sorted label pairs.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MetricKey {
    /// Metric name, e.g. `llm_tokens_total`.
    pub name: String,
    /// Label pairs, sorted by key (the constructor sorts).
    pub labels: Vec<(String, String)>,
}

impl MetricKey {
    /// Builds a key, sorting the labels so logically-equal series
    /// always collide.
    #[must_use]
    pub fn new(name: &str, labels: &[(&str, &str)]) -> MetricKey {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| ((*k).to_string(), (*v).to_string()))
            .collect();
        labels.sort();
        MetricKey {
            name: name.to_string(),
            labels,
        }
    }

    /// Renders `name{k="v",..}` (no braces when label-free). Label
    /// values are escaped per the Prometheus text format — `\` as
    /// `\\`, `"` as `\"` and newline as `\n` — so a value containing a
    /// quote still renders to one parseable series line.
    #[must_use]
    pub fn render(&self) -> String {
        if self.labels.is_empty() {
            return self.name.clone();
        }
        let inner: Vec<String> = self
            .labels
            .iter()
            .map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v)))
            .collect();
        format!("{}{{{}}}", self.name, inner.join(","))
    }
}

/// Escapes a label value for the Prometheus text exposition format:
/// backslash, double quote and newline are the three characters the
/// format requires escaped inside `label="value"`.
fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// A fixed-bucket histogram with integer merge state.
///
/// Bucket `i` counts observations `<= bounds[i]`; one extra overflow
/// bucket counts the rest. The sum is kept as an `i128` of
/// micro-quantised observations so merges are exact integer additions
/// (see the module docs for why).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    bounds: Vec<u64>,
    buckets: Vec<u64>,
    count: u64,
    sum_micros: i128,
}

impl Histogram {
    /// Creates an empty histogram over ascending `bounds` (upper bucket
    /// edges; an overflow bucket is implicit).
    ///
    /// # Panics
    ///
    /// Panics when `bounds` is empty, non-finite or not strictly
    /// ascending.
    #[must_use]
    pub fn new(bounds: &[f64]) -> Histogram {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]) && bounds.iter().all(|b| b.is_finite()),
            "histogram bounds must be finite and strictly ascending"
        );
        Histogram {
            bounds: bounds.iter().map(|b| b.to_bits()).collect(),
            buckets: vec![0; bounds.len() + 1],
            count: 0,
            sum_micros: 0,
        }
    }

    /// Rebuilds a histogram from previously-exported merge state (the
    /// decode half of the durable-artifact codec). Returns `None` —
    /// never panics — when the parts violate the invariants `new` and
    /// `observe` maintain: bounds non-empty/finite/strictly ascending,
    /// exactly one bucket per bound plus overflow, and a total count
    /// equal to the bucket sum. Corrupt artifacts must read as misses.
    #[must_use]
    pub fn from_parts(
        bounds: &[f64],
        buckets: Vec<u64>,
        count: u64,
        sum_micros: i128,
    ) -> Option<Histogram> {
        let well_formed = !bounds.is_empty()
            && bounds.iter().all(|b| b.is_finite())
            && bounds.windows(2).all(|w| w[0] < w[1])
            && buckets.len() == bounds.len() + 1
            && buckets.iter().try_fold(0u64, |a, &b| a.checked_add(b)) == Some(count);
        well_formed.then(|| Histogram {
            bounds: bounds.iter().map(|b| b.to_bits()).collect(),
            buckets,
            count,
            sum_micros,
        })
    }

    /// Records one observation.
    pub fn observe(&mut self, value: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| value <= f64::from_bits(b))
            .unwrap_or(self.bounds.len());
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum_micros += quantise(value);
    }

    /// Folds `other` into `self`. Associative and commutative: all the
    /// state is integer.
    ///
    /// # Panics
    ///
    /// Panics when the bucket bounds differ — merging histograms of
    /// different shape has no meaning.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.bounds, other.bounds, "histogram bounds must match");
        for (b, o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
        self.count += other.count;
        self.sum_micros += other.sum_micros;
    }

    /// Total observation count.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations (reconstructed from the quantised state).
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.sum_micros as f64 / QUANTUM
    }

    /// Raw quantised sum — the exact merge state, for bitwise
    /// determinism checks.
    #[must_use]
    pub fn sum_micros(&self) -> i128 {
        self.sum_micros
    }

    /// Bucket upper bounds.
    #[must_use]
    pub fn bounds(&self) -> Vec<f64> {
        self.bounds.iter().map(|&b| f64::from_bits(b)).collect()
    }

    /// Deterministic quantile estimate (`0.0 ..= 1.0`, clamped) by
    /// linear interpolation within the fixed buckets, Prometheus
    /// `histogram_quantile` style. `None` when the histogram is empty
    /// or `q` is not finite (a NaN rank is a caller bug, not "the
    /// first bucket").
    ///
    /// The estimate is a pure function of the *integer* merge state
    /// (bucket counts plus the bit-exact bounds), so it is invariant
    /// under merge order and thread count — any schedule that folds
    /// the same observations yields the same bytes. Conventions:
    ///
    /// * the first bucket interpolates from `min(bounds[0], 0.0)`
    ///   (latency histograms start at zero; an all-negative first
    ///   bound keeps its own edge);
    /// * the overflow bucket cannot be interpolated and reports the
    ///   highest finite bound.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 || !q.is_finite() {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // Target rank in 1..=count (ceil, so q=0 lands on the first
        // observation and q=1 on the last).
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let bounds = self.bounds();
        let mut cum = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            let prev_cum = cum;
            cum += n;
            if cum < rank {
                continue;
            }
            let Some(&upper) = bounds.get(i) else {
                // Overflow bucket: no finite upper edge to
                // interpolate toward.
                return bounds.last().copied();
            };
            let lower = if i == 0 {
                bounds[0].min(0.0)
            } else {
                bounds[i - 1]
            };
            let frac = (rank - prev_cum) as f64 / n as f64;
            return Some(lower + (upper - lower) * frac);
        }
        bounds.last().copied()
    }

    /// Per-bucket counts; the final entry is the overflow bucket.
    #[must_use]
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }
}

/// Quantises an observation to integer micro-units; NaN contributes 0.
fn quantise(value: f64) -> i128 {
    let scaled = value * QUANTUM;
    if scaled.is_nan() {
        0
    } else {
        scaled.round() as i128
    }
}

/// One metric's value.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Monotone sum; merge = integer addition.
    Counter(u64),
    /// Point-in-time value; merge = maximum (total order over bits).
    Gauge(f64),
    /// Fixed-bucket distribution; merge = bucket-wise addition.
    Histogram(Histogram),
}

/// A registry of metric series with a deterministic, order-independent
/// merge (see the module docs for the contract).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    series: BTreeMap<MetricKey, MetricValue>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Adds `delta` to a counter, creating it at zero if absent.
    ///
    /// # Panics
    ///
    /// Panics when the series exists with a different type.
    pub fn counter_add(&mut self, name: &str, labels: &[(&str, &str)], delta: u64) {
        let entry = self
            .series
            .entry(MetricKey::new(name, labels))
            .or_insert(MetricValue::Counter(0));
        match entry {
            MetricValue::Counter(c) => *c += delta,
            _ => panic!("metric {name} is not a counter"),
        }
    }

    /// Sets a gauge (last write wins locally; merges take the maximum).
    ///
    /// # Panics
    ///
    /// Panics when the series exists with a different type.
    pub fn gauge_set(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        let entry = self
            .series
            .entry(MetricKey::new(name, labels))
            .or_insert(MetricValue::Gauge(value));
        match entry {
            MetricValue::Gauge(g) => *g = value,
            _ => panic!("metric {name} is not a gauge"),
        }
    }

    /// Records one observation into a histogram series, creating it
    /// with `bounds` if absent.
    ///
    /// # Panics
    ///
    /// Panics when the series exists with a different type or bounds.
    pub fn observe(&mut self, name: &str, labels: &[(&str, &str)], bounds: &[f64], value: f64) {
        let entry = self
            .series
            .entry(MetricKey::new(name, labels))
            .or_insert_with(|| MetricValue::Histogram(Histogram::new(bounds)));
        match entry {
            MetricValue::Histogram(h) => h.observe(value),
            _ => panic!("metric {name} is not a histogram"),
        }
    }

    /// Folds a fully-built histogram into a series (creating it if
    /// absent) — the bulk path for locally-accumulated kernel stats.
    ///
    /// # Panics
    ///
    /// Panics when the series exists with a different type or bounds.
    pub fn merge_histogram(&mut self, name: &str, labels: &[(&str, &str)], hist: &Histogram) {
        let key = MetricKey::new(name, labels);
        match self.series.get_mut(&key) {
            None => {
                self.series
                    .insert(key, MetricValue::Histogram(hist.clone()));
            }
            Some(MetricValue::Histogram(h)) => h.merge(hist),
            Some(_) => panic!("metric {name} is not a histogram"),
        }
    }

    /// Folds `other` into `self` series-by-series. Associative and
    /// commutative (the determinism contract of the module docs).
    ///
    /// # Panics
    ///
    /// Panics when a shared series has mismatched types or bounds.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (key, value) in &other.series {
            match self.series.get_mut(key) {
                None => {
                    self.series.insert(key.clone(), value.clone());
                }
                Some(mine) => match (mine, value) {
                    (MetricValue::Counter(a), MetricValue::Counter(b)) => *a += b,
                    (MetricValue::Gauge(a), MetricValue::Gauge(b)) => {
                        if b.total_cmp(a).is_gt() {
                            *a = *b;
                        }
                    }
                    (MetricValue::Histogram(a), MetricValue::Histogram(b)) => a.merge(b),
                    _ => panic!("metric {} merged with a different type", key.name),
                },
            }
        }
    }

    /// Looks up one series.
    #[must_use]
    pub fn get(&self, name: &str, labels: &[(&str, &str)]) -> Option<&MetricValue> {
        self.series.get(&MetricKey::new(name, labels))
    }

    /// All series in deterministic (key-sorted) order.
    #[must_use]
    pub fn snapshot(&self) -> Vec<(MetricKey, MetricValue)> {
        self.series
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    /// `true` when no series has been touched.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }

    /// Number of series.
    #[must_use]
    pub fn len(&self) -> usize {
        self.series.len()
    }

    /// The canonical view: every series except the diagnostic ones
    /// (see [`DIAGNOSTIC_METRIC_PREFIXES`]). This is the registry
    /// subset that must be bit-identical across thread counts and
    /// cache modes; its `render()` is the artifact CI diffs.
    #[must_use]
    pub fn canonical(&self) -> MetricsRegistry {
        MetricsRegistry {
            series: self
                .series
                .iter()
                .filter(|(k, _)| {
                    !DIAGNOSTIC_METRIC_PREFIXES
                        .iter()
                        .any(|p| k.name.starts_with(p))
                })
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect(),
        }
    }

    /// Renders a deterministic text dump (key-sorted, fixed float
    /// formatting) suitable for terminals and byte-comparison tests.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (key, value) in &self.series {
            match value {
                MetricValue::Counter(c) => {
                    let _ = writeln!(out, "{} counter {c}", key.render());
                }
                MetricValue::Gauge(g) => {
                    let _ = writeln!(out, "{} gauge {g:.6}", key.render());
                }
                MetricValue::Histogram(h) => {
                    let bounds = h.bounds();
                    let mut cells: Vec<String> = bounds
                        .iter()
                        .zip(h.buckets())
                        .map(|(b, c)| format!("le{b}:{c}"))
                        .collect();
                    cells.push(format!("inf:{}", h.buckets()[bounds.len()]));
                    let _ = writeln!(
                        out,
                        "{} histogram count={} sum={:.6} [{}]",
                        key.render(),
                        h.count(),
                        h.sum(),
                        cells.join(" ")
                    );
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_sort_labels() {
        let a = MetricKey::new("m", &[("b", "2"), ("a", "1")]);
        let b = MetricKey::new("m", &[("a", "1"), ("b", "2")]);
        assert_eq!(a, b);
        assert_eq!(a.render(), "m{a=\"1\",b=\"2\"}");
    }

    #[test]
    fn counter_and_gauge_basics() {
        let mut r = MetricsRegistry::new();
        r.counter_add("hits", &[], 2);
        r.counter_add("hits", &[], 3);
        r.gauge_set("depth", &[("q", "x")], 1.5);
        r.gauge_set("depth", &[("q", "x")], 0.5);
        assert_eq!(r.get("hits", &[]), Some(&MetricValue::Counter(5)));
        assert_eq!(
            r.get("depth", &[("q", "x")]),
            Some(&MetricValue::Gauge(0.5))
        );
    }

    #[test]
    fn histogram_buckets_and_sum() {
        let mut h = Histogram::new(&[1.0, 2.0, 4.0]);
        for v in [0.5, 1.0, 3.0, 9.0] {
            h.observe(v);
        }
        assert_eq!(h.buckets(), &[2, 0, 1, 1]);
        assert_eq!(h.count(), 4);
        assert!((h.sum() - 13.5).abs() < 1e-9);
    }

    #[test]
    fn merge_is_order_independent() {
        let mk = |values: &[f64]| {
            let mut r = MetricsRegistry::new();
            r.counter_add("c", &[], values.len() as u64);
            for &v in values {
                r.observe("h", &[], &[1.0, 2.0], v);
                r.gauge_set("g", &[], v);
            }
            r
        };
        let (a, b, c) = (mk(&[0.1, 1.7]), mk(&[2.9]), mk(&[0.3, 0.9, 5.0]));
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut right = c.clone();
        right.merge(&a);
        right.merge(&b);
        assert_eq!(left, right);
        assert_eq!(left.render(), right.render());
    }

    #[test]
    fn quantised_sums_merge_exactly() {
        // 0.1 is not representable in binary; the quantised state must
        // still merge to identical bits in any order.
        let mut a = Histogram::new(&[1.0]);
        let mut b = Histogram::new(&[1.0]);
        for _ in 0..1000 {
            a.observe(0.1);
        }
        b.observe(0.1);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab.sum_micros(), ba.sum_micros());
        assert_eq!(ab.sum_micros(), 100_100_000);
    }

    #[test]
    fn render_is_stable() {
        let mut r = MetricsRegistry::new();
        r.counter_add("zeta", &[], 1);
        r.counter_add("alpha", &[("x", "1")], 2);
        r.observe("h", &[], &[0.5], 0.25);
        let text = r.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "alpha{x=\"1\"} counter 2");
        assert_eq!(lines[1], "h histogram count=1 sum=0.250000 [le0.5:1 inf:0]");
        assert_eq!(lines[2], "zeta counter 1");
    }

    #[test]
    fn canonical_view_drops_diagnostic_series() {
        let mut r = MetricsRegistry::new();
        r.counter_add("eda_invocations_total", &[("phase", "compile")], 4);
        r.counter_add("eda_cache_hits_total", &[], 3);
        r.counter_add("eda_cache_misses_total", &[], 1);
        r.gauge_set("eda_cache_entries_total", &[], 1.0);
        let canon = r.canonical();
        assert_eq!(canon.len(), 1);
        assert!(canon
            .get("eda_invocations_total", &[("phase", "compile")])
            .is_some());
        assert!(canon.get("eda_cache_hits_total", &[]).is_none());
        // A cache-off registry (no eda_cache_* series at all) must
        // render identically to the cache-on canonical view.
        let mut off = MetricsRegistry::new();
        off.counter_add("eda_invocations_total", &[("phase", "compile")], 4);
        assert_eq!(canon.render(), off.canonical().render());
    }

    #[test]
    fn label_values_escape_prometheus_specials() {
        // Regression: a quote inside a label value used to render as
        // m{k=""quoted""} — unparseable in the Prometheus text format.
        let k = MetricKey::new("m", &[("k", "say \"hi\"\\path\nnext")]);
        assert_eq!(k.render(), "m{k=\"say \\\"hi\\\"\\\\path\\nnext\"}");
        // Plain values are untouched.
        assert_eq!(
            MetricKey::new("m", &[("k", "plain-value.1")]).render(),
            "m{k=\"plain-value.1\"}"
        );
        // The registry dump inherits the escaping.
        let mut r = MetricsRegistry::new();
        r.counter_add("c", &[("q", "a\"b")], 1);
        assert_eq!(r.render(), "c{q=\"a\\\"b\"} counter 1\n");
    }

    #[test]
    fn quantiles_interpolate_within_buckets() {
        let mut h = Histogram::new(&[1.0, 2.0, 4.0]);
        assert_eq!(h.quantile(0.5), None, "empty histogram has no quantile");
        for _ in 0..10 {
            h.observe(0.5); // 10 observations in (0, 1]
        }
        for _ in 0..10 {
            h.observe(3.0); // 10 observations in (2, 4]
        }
        // p50 = rank 10 of 20 -> exactly fills the first bucket.
        assert_eq!(h.quantile(0.5), Some(1.0));
        // p75 = rank 15 -> 5 of 10 into the (2, 4] bucket.
        assert_eq!(h.quantile(0.75), Some(3.0));
        // p100 -> top of the last occupied bucket.
        assert_eq!(h.quantile(1.0), Some(4.0));
        // q is clamped, not rejected.
        assert_eq!(h.quantile(-1.0), h.quantile(0.0));
        assert_eq!(h.quantile(2.0), h.quantile(1.0));
    }

    #[test]
    fn quantile_rejects_non_finite_q() {
        let mut h = Histogram::new(&[1.0, 2.0]);
        h.observe(0.5);
        assert_eq!(h.quantile(0.5), Some(1.0), "finite q still interpolates");
        // A NaN rank used to clamp to 0.0 and silently report the
        // first bucket; it and the infinities are caller bugs.
        assert_eq!(h.quantile(f64::NAN), None);
        assert_eq!(h.quantile(f64::INFINITY), None);
        assert_eq!(h.quantile(f64::NEG_INFINITY), None);
    }

    #[test]
    fn quantile_overflow_and_negative_edges() {
        let mut h = Histogram::new(&[1.0, 2.0]);
        h.observe(100.0); // overflow bucket only
        assert_eq!(
            h.quantile(0.5),
            Some(2.0),
            "overflow reports the highest finite bound"
        );
        let mut neg = Histogram::new(&[-2.0, 0.0]);
        neg.observe(-3.0);
        neg.observe(-1.0);
        // First bucket keeps its own (negative) edge as the lower end.
        assert_eq!(neg.quantile(0.25), Some(-2.0));
        assert_eq!(neg.quantile(1.0), Some(0.0));
    }

    #[test]
    fn quantile_is_a_pure_function_of_merge_state() {
        let mut a = Histogram::new(&[1.0, 4.0, 16.0]);
        let mut b = Histogram::new(&[1.0, 4.0, 16.0]);
        for v in [0.3, 2.0, 5.0, 18.0] {
            a.observe(v);
        }
        for v in [0.7, 9.0] {
            b.observe(v);
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(
                ab.quantile(q).map(f64::to_bits),
                ba.quantile(q).map(f64::to_bits),
                "quantile({q}) must not depend on merge order"
            );
        }
    }

    #[test]
    #[should_panic(expected = "not a counter")]
    fn type_confusion_panics() {
        let mut r = MetricsRegistry::new();
        r.gauge_set("m", &[], 1.0);
        r.counter_add("m", &[], 1);
    }
}
