//! Clocked counters with synchronous reset (12 problems).

use crate::builders::{seq_problem, SeqSpec};
use crate::port::{Port, SplitMix};
use crate::{Difficulty, Family, Problem};

fn mask(w: u32) -> u64 {
    (1u64 << w) - 1
}

/// Standard stimulus: reset for 2 cycles, free-run, a mid-run reset
/// pulse, then more free-running with seeded extra inputs.
fn stimulus(extra_inputs: usize, cycles: usize, seed: u64) -> Vec<Vec<u64>> {
    let mut rng = SplitMix::new(seed);
    (0..cycles)
        .map(|c| {
            let rst = u64::from(c < 2 || c == cycles / 2);
            let mut v = vec![rst];
            for _ in 0..extra_inputs {
                v.push(rng.next_u64() & 1);
            }
            v
        })
        .collect()
}

/// Builds a counter problem from a golden step function over `(state,
/// inputs) -> state` and an output projection.
#[allow(clippy::too_many_arguments)] // a named-spec struct would be pure ceremony here
fn counter(
    name: &str,
    difficulty: Difficulty,
    description: &str,
    width: u32,
    extra_inputs: Vec<Port>,
    vlog_update: &str,
    vhdl_update: &str,
    step: impl Fn(u64, &[u64]) -> u64 + 'static,
) -> SeqSpec {
    let n_extra = extra_inputs.len();
    let mut inputs = vec![Port::new("rst", 1)];
    inputs.extend(extra_inputs);
    let stim = stimulus(n_extra, 24, name.bytes().map(u64::from).sum::<u64>() + 11);
    let mut state = 0u64;
    let expected: Vec<Option<Vec<u64>>> = stim
        .iter()
        .map(|v| {
            state = if v[0] == 1 { 0 } else { step(state, &v[1..]) };
            Some(vec![state & mask(width)])
        })
        .collect();
    let zeros_h = "0".repeat(width as usize);
    let vlog_body = format!(
        "  always @(posedge clk) begin\n    if (rst) q <= 0;\n    else begin\n{vlog_update}    end\n  end\n"
    );
    let vhdl_body = format!(
        "  process (clk)\n  begin\n    if rising_edge(clk) then\n      if rst = '1' then\n        count <= (others => '0');\n      else\n{vhdl_update}      end if;\n    end if;\n  end process;\n  q <= std_logic_vector(count);\n"
    );
    let _ = zeros_h;
    SeqSpec {
        name: name.to_string(),
        family: Family::Counter,
        difficulty,
        description: format!(
            "{description} rst is a synchronous active-high reset clearing the counter to 0."
        ),
        inputs,
        outputs: vec![Port::new("q", width)],
        vlog_body,
        vhdl_body,
        vhdl_decls: format!(
            "  signal count : unsigned({} downto 0) := (others => '0');\n",
            width - 1
        ),
        stimulus: stim,
        expected,
    }
}

/// Appends the family's problems.
pub fn extend(problems: &mut Vec<Problem>) {
    for w in [4, 8] {
        let m = mask(w);
        problems.push(seq_problem(counter(
            &format!("count_up_w{w}"),
            Difficulty::Medium,
            &format!(
                "A {w}-bit up counter: q increments by 1 every clock cycle, wrapping at 2^{w}-1."
            ),
            w,
            vec![],
            "      q <= q + 1;\n",
            "        count <= count + 1;\n",
            move |s, _| (s + 1) & m,
        )));
    }
    let m4 = mask(4);
    problems.push(seq_problem(counter(
        "count_up_en_w4",
        Difficulty::Medium,
        "A 4-bit up counter with enable: q increments only on cycles where en is 1.",
        4,
        vec![Port::new("en", 1)],
        "      if (en) q <= q + 1;\n",
        "        if en = '1' then\n          count <= count + 1;\n        end if;\n",
        move |s, v| if v[0] == 1 { (s + 1) & m4 } else { s },
    )));
    problems.push(seq_problem(counter(
        "count_down_w4",
        Difficulty::Medium,
        "A 4-bit down counter: q decrements by 1 every clock cycle, wrapping from 0 to 15.",
        4,
        vec![],
        "      q <= q - 1;\n",
        "        count <= count - 1;\n",
        move |s, _| s.wrapping_sub(1) & m4,
    )));
    problems.push(seq_problem(counter(
        "count_updown_w4",
        Difficulty::Medium,
        "A 4-bit up/down counter: q increments when dir is 1 and decrements when dir is 0, with wraparound.",
        4,
        vec![Port::new("dir", 1)],
        "      if (dir) q <= q + 1;\n      else q <= q - 1;\n",
        "        if dir = '1' then\n          count <= count + 1;\n        else\n          count <= count - 1;\n        end if;\n",
        move |s, v| {
            if v[0] == 1 {
                (s + 1) & m4
            } else {
                s.wrapping_sub(1) & m4
            }
        },
    )));
    for n in [10u64, 12] {
        problems.push(seq_problem(counter(
            &format!("count_mod{n}_w4"),
            Difficulty::Medium,
            &format!("A modulo-{n} counter: q counts 0,1,...,{} and then wraps to 0.", n - 1),
            4,
            vec![],
            &format!("      if (q == 4'd{}) q <= 0;\n      else q <= q + 1;\n", n - 1),
            &format!("        if count = {} then\n          count <= (others => '0');\n        else\n          count <= count + 1;\n        end if;\n", n - 1),
            move |s, _| if s == n - 1 { 0 } else { s + 1 },
        )));
    }
    problems.push(seq_problem(counter(
        "count_sat_w4",
        Difficulty::Medium,
        "A saturating 4-bit counter: q increments each cycle but stops at 15 instead of wrapping.",
        4,
        vec![],
        "      if (q != 4'b1111) q <= q + 1;\n",
        "        if count = \"1111\" then\n          count <= count;\n        else\n          count <= count + 1;\n        end if;\n",
        move |s, _| (s + 1).min(15),
    )));

    // Load counter needs a wide data input; built directly.
    problems.push(seq_problem(load_counter()));
    problems.push(seq_problem(ring_counter()));
    problems.push(seq_problem(johnson_counter()));
    problems.push(seq_problem(terminal_count()));
}

fn load_counter() -> SeqSpec {
    let m = mask(4);
    let mut rng = SplitMix::new(77);
    let stim: Vec<Vec<u64>> = (0..24)
        .map(|c| {
            let rst = u64::from(c < 2 || c == 12);
            let load = u64::from(c % 7 == 3);
            vec![rst, load, rng.bits(4)]
        })
        .collect();
    let mut state = 0u64;
    let expected = stim
        .iter()
        .map(|v| {
            state = if v[0] == 1 {
                0
            } else if v[1] == 1 {
                v[2]
            } else {
                (state + 1) & m
            };
            Some(vec![state])
        })
        .collect();
    SeqSpec {
        name: "count_load_w4".into(),
        family: Family::Counter,
        difficulty: Difficulty::Hard,
        description: "A 4-bit loadable counter: on load, q takes the value of d; otherwise q increments with wraparound. rst is a synchronous reset to 0 and has priority over load.".into(),
        inputs: vec![Port::new("rst", 1), Port::new("load", 1), Port::new("d", 4)],
        outputs: vec![Port::new("q", 4)],
        vlog_body: "  always @(posedge clk) begin\n    if (rst) q <= 0;\n    else if (load) q <= d;\n    else q <= q + 1;\n  end\n".into(),
        vhdl_body: "  process (clk)\n  begin\n    if rising_edge(clk) then\n      if rst = '1' then\n        count <= (others => '0');\n      elsif load = '1' then\n        count <= unsigned(d);\n      else\n        count <= count + 1;\n      end if;\n    end if;\n  end process;\n  q <= std_logic_vector(count);\n".into(),
        vhdl_decls: "  signal count : unsigned(3 downto 0) := (others => '0');\n".into(),
        stimulus: stim,
        expected,
    }
}

fn ring_counter() -> SeqSpec {
    let stim: Vec<Vec<u64>> = (0..20).map(|c| vec![u64::from(c < 2 || c == 11)]).collect();
    let mut state = 1u64;
    let expected = stim
        .iter()
        .map(|v| {
            state = if v[0] == 1 {
                1
            } else {
                (state << 1 | state >> 3) & 0xF
            };
            Some(vec![state])
        })
        .collect();
    SeqSpec {
        name: "ring_counter_w4".into(),
        family: Family::Counter,
        difficulty: Difficulty::Medium,
        description: "A 4-bit one-hot ring counter: rst (synchronous) sets q to 0001; each cycle the single 1 rotates one position toward the MSB and wraps around.".into(),
        inputs: vec![Port::new("rst", 1)],
        outputs: vec![Port::new("q", 4)],
        vlog_body: "  always @(posedge clk) begin\n    if (rst) q <= 4'b0001;\n    else q <= {q[2:0], q[3]};\n  end\n".into(),
        vhdl_body: "  process (clk)\n  begin\n    if rising_edge(clk) then\n      if rst = '1' then\n        r <= \"0001\";\n      else\n        r <= r(2 downto 0) & r(3);\n      end if;\n    end if;\n  end process;\n  q <= r;\n".into(),
        vhdl_decls: "  signal r : std_logic_vector(3 downto 0) := \"0001\";\n".into(),
        stimulus: stim,
        expected,
    }
}

fn johnson_counter() -> SeqSpec {
    let stim: Vec<Vec<u64>> = (0..20).map(|c| vec![u64::from(c < 2 || c == 11)]).collect();
    let mut state = 0u64;
    let expected = stim
        .iter()
        .map(|v| {
            state = if v[0] == 1 {
                0
            } else {
                (state << 1 | (!(state >> 3) & 1)) & 0xF
            };
            Some(vec![state])
        })
        .collect();
    SeqSpec {
        name: "johnson_w4".into(),
        family: Family::Counter,
        difficulty: Difficulty::Hard,
        description: "A 4-bit Johnson (twisted-ring) counter: each cycle q shifts left by one and the complement of the old MSB enters at the LSB; rst (synchronous) clears q.".into(),
        inputs: vec![Port::new("rst", 1)],
        outputs: vec![Port::new("q", 4)],
        vlog_body: "  always @(posedge clk) begin\n    if (rst) q <= 4'b0000;\n    else q <= {q[2:0], ~q[3]};\n  end\n".into(),
        vhdl_body: "  process (clk)\n  begin\n    if rising_edge(clk) then\n      if rst = '1' then\n        r <= \"0000\";\n      else\n        r <= r(2 downto 0) & (not r(3));\n      end if;\n    end if;\n  end process;\n  q <= r;\n".into(),
        vhdl_decls: "  signal r : std_logic_vector(3 downto 0) := \"0000\";\n".into(),
        stimulus: stim,
        expected,
    }
}

fn terminal_count() -> SeqSpec {
    let stim: Vec<Vec<u64>> = (0..26).map(|c| vec![u64::from(c < 2)]).collect();
    let mut state = 0u64;
    let expected = stim
        .iter()
        .map(|v| {
            state = if v[0] == 1 || state == 9 {
                0
            } else {
                state + 1
            };
            Some(vec![state, u64::from(state == 9)])
        })
        .collect();
    SeqSpec {
        name: "count_mod10_tc".into(),
        family: Family::Counter,
        difficulty: Difficulty::Hard,
        description: "A modulo-10 counter with terminal count: q counts 0..9 and wraps; tc is 1 exactly while q equals 9. Both outputs are registered; rst is a synchronous reset.".into(),
        inputs: vec![Port::new("rst", 1)],
        outputs: vec![Port::new("q", 4), Port::new("tc", 1)],
        vlog_body: "  always @(posedge clk) begin\n    if (rst) begin q <= 0; tc <= 0; end\n    else if (q == 4'd9) begin q <= 0; tc <= 0; end\n    else begin q <= q + 1; tc <= (q == 4'd8);\n    end\n  end\n".into(),
        vhdl_body: "  process (clk)\n  begin\n    if rising_edge(clk) then\n      if rst = '1' then\n        count <= (others => '0');\n        t <= '0';\n      elsif count = 9 then\n        count <= (others => '0');\n        t <= '0';\n      else\n        count <= count + 1;\n        if count = 8 then\n          t <= '1';\n        else\n          t <= '0';\n        end if;\n      end if;\n    end if;\n  end process;\n  q <= std_logic_vector(count);\n  tc <= t;\n".into(),
        vhdl_decls: "  signal count : unsigned(3 downto 0) := (others => '0');\n  signal t : std_logic := '0';\n".into(),
        stimulus: stim,
        expected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contributes_12_problems() {
        let mut v = Vec::new();
        extend(&mut v);
        assert_eq!(v.len(), 12);
        assert!(v.iter().all(|p| p.family == Family::Counter));
    }

    #[test]
    fn mid_run_reset_present_in_stimulus() {
        let s = stimulus(0, 24, 1);
        assert_eq!(s[0][0], 1);
        assert_eq!(s[1][0], 1);
        assert_eq!(s[12][0], 1);
        assert_eq!(s[3][0], 0);
    }
}
