//! `$display`-style format-string rendering.
//!
//! Supports the directives the benchmark testbenches use: `%b` (binary),
//! `%h`/`%x` (hex), `%d` and `%0d` (decimal), `%s` (string argument,
//! rendered from a vector's bytes), `%t` (time), `%c` (character),
//! `%%` (literal percent). Unknown directives render literally, the
//! lenient behaviour real simulators exhibit.

use aivril_hdl::vec::LogicVec;

/// Renders `format` with `args` substituted for directives.
///
/// Surplus directives render as `x`; surplus arguments are appended
/// space-separated in decimal (matching common simulator behaviour
/// closely enough for log-driven agents).
pub(crate) fn render_format(format: &str, args: &[LogicVec]) -> String {
    let mut out = String::new();
    let mut arg_i = 0usize;
    let mut chars = format.chars().peekable();
    while let Some(c) = chars.next() {
        if c != '%' {
            out.push(c);
            continue;
        }
        // Collect optional width/zero flag like `%0d` or `%4b`.
        let mut spec = String::new();
        while matches!(chars.peek(), Some(d) if d.is_ascii_digit()) {
            spec.push(chars.next().expect("peeked digit"));
        }
        let Some(dir) = chars.next() else {
            out.push('%');
            break;
        };
        match dir {
            '%' => out.push('%'),
            'b' | 'B' => out.push_str(&next_arg(args, &mut arg_i, LogicVec::to_binary_string)),
            'h' | 'H' | 'x' | 'X' => {
                out.push_str(&next_arg(args, &mut arg_i, LogicVec::to_hex_string))
            }
            'd' | 'D' => out.push_str(&next_arg(args, &mut arg_i, LogicVec::to_decimal_string)),
            't' | 'T' => out.push_str(&next_arg(args, &mut arg_i, LogicVec::to_decimal_string)),
            'c' => out.push_str(&next_arg(args, &mut arg_i, |v| {
                v.to_u64()
                    .and_then(|n| char::from_u32(n as u32))
                    .map(String::from)
                    .unwrap_or_else(|| "?".into())
            })),
            's' => out.push_str(&next_arg(args, &mut arg_i, vector_as_string)),
            other => {
                out.push('%');
                out.push_str(&spec);
                out.push(other);
            }
        }
    }
    while arg_i < args.len() {
        out.push(' ');
        out.push_str(&args[arg_i].to_decimal_string());
        arg_i += 1;
    }
    out
}

fn next_arg(args: &[LogicVec], i: &mut usize, f: impl Fn(&LogicVec) -> String) -> String {
    match args.get(*i) {
        Some(v) => {
            *i += 1;
            f(v)
        }
        None => "x".to_string(),
    }
}

/// Interprets a vector's bytes as ASCII, MSB first, skipping NULs — the
/// Verilog string-in-vector convention.
fn vector_as_string(v: &LogicVec) -> String {
    let bytes = v.width().div_ceil(8);
    let mut s = String::new();
    for b in (0..bytes).rev() {
        let lsb = b * 8;
        let msb = (lsb + 7).min(v.width() - 1);
        let byte = v.slice(msb, lsb);
        if let Some(code) = byte.to_u64() {
            if code != 0 {
                if let Some(c) = char::from_u32(code as u32) {
                    s.push(c);
                }
            }
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_basic_directives() {
        let args = vec![LogicVec::from_u64(4, 0b1010), LogicVec::from_u64(8, 0xAB)];
        assert_eq!(render_format("b=%b h=%h", &args), "b=1010 h=ab");
    }

    #[test]
    fn renders_decimal_and_time() {
        let args = vec![LogicVec::from_u64(8, 7), LogicVec::from_u64(64, 120)];
        assert_eq!(render_format("n=%0d t=%t", &args), "n=7 t=120");
    }

    #[test]
    fn literal_percent_and_unknown_directive() {
        assert_eq!(render_format("100%% %q", &[]), "100% %q");
    }

    #[test]
    fn missing_args_render_x() {
        assert_eq!(render_format("%d", &[]), "x");
    }

    #[test]
    fn surplus_args_appended() {
        let args = vec![LogicVec::from_u64(4, 1), LogicVec::from_u64(4, 2)];
        assert_eq!(render_format("v=%d", &args), "v=1 2");
    }

    #[test]
    fn string_argument() {
        // "Hi" = 0x4869 in a 16-bit vector.
        let args = vec![LogicVec::from_u64(16, 0x4869)];
        assert_eq!(render_format("%s", &args), "Hi");
    }

    #[test]
    fn x_values_render_in_decimal() {
        let args = vec![LogicVec::xes(4)];
        assert_eq!(render_format("%d", &args), "x");
    }
}
