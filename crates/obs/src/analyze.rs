//! The **read side** of the observability stack: parsing and analysis
//! of the durable artifacts the write side produces — JSONL run
//! journals ([`crate::render_journal`]), `aivril.results` JSON (the
//! bench harness's `--json` payload) and criterion/kernel timing
//! reports — plus the report renderers behind the `aivril-inspect`
//! subcommands.
//!
//! # Determinism contract
//!
//! Every function here is **read-only and deterministic**: a pure
//! function of its input text. Since the artifacts themselves are
//! byte-identical across `AIVRIL_THREADS`, shard partitions and cache
//! modes (the write side's contract), every report derived from them
//! is too — `tests/inspect.rs` enforces this end to end. Floats are
//! only ever combined in input order and rendered with fixed
//! precision; no wall clock, no environment, no iteration over hash
//! maps.
//!
//! # Pieces
//!
//! * [`parse_journal`] / [`parse_results`] / [`parse_artifact`] —
//!   total parsers (corrupt artifacts are an `Err`, never a panic).
//! * [`attribution`] — folds a journal's close-order span events back
//!   into an aggregated tree with per-node total/self modeled time:
//!   the per-stage attribution model (DESIGN.md §10).
//! * [`summary`] — the attribution tree, per-problem split and
//!   outcome/error-class breakdown of one artifact.
//! * [`diff`] — two artifacts: metric deltas, per-cell outcome flips,
//!   and first-divergence pinpointing down to the first differing
//!   journal line.
//! * [`flame`] — collapsed-stack export of the span tree (the format
//!   `flamegraph.pl` / inferno / speedscope load).
//! * [`regress`] — compares fresh criterion timings against the
//!   committed `BENCH_SIM.json` baseline with a configurable
//!   tolerance; the CI perf gate.

use crate::json::{self, Value};
use crate::metrics::Histogram;
use std::collections::BTreeMap;
use std::fmt::Write as _;

// ---------------------------------------------------------------------
// Journal parsing
// ---------------------------------------------------------------------

/// One parsed journal event (a closed span).
#[derive(Debug, Clone, PartialEq)]
pub struct JournalEvent {
    /// Span name, e.g. `stage.rtl_syntax_loop`.
    pub span: String,
    /// Nesting depth at open time (0 = top level).
    pub depth: u32,
    /// Modeled start time within the run, seconds.
    pub t0: f64,
    /// Modeled end time within the run, seconds.
    pub t1: f64,
    /// Attributes in journal order.
    pub attrs: Vec<(String, Value)>,
}

impl JournalEvent {
    /// Modeled duration of the span.
    #[must_use]
    pub fn duration(&self) -> f64 {
        self.t1 - self.t0
    }

    /// Attribute lookup.
    #[must_use]
    pub fn attr(&self, key: &str) -> Option<&Value> {
        self.attrs.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }
}

/// One run's worth of journal events, with its grid coordinates and
/// context pairs.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalRun {
    /// `(problem, sample)` grid coordinates; `None` for unscoped
    /// events.
    pub coords: Option<(u32, u32)>,
    /// Context pairs (model/lang/flow), journal order.
    pub context: Vec<(String, String)>,
    /// Events in close order (children before parents).
    pub events: Vec<JournalEvent>,
}

/// A parsed `aivril.journal` document.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalDoc {
    /// Schema version from the header.
    pub version: u32,
    /// Event count claimed by the header.
    pub header_events: u64,
    /// Runs in journal order (consecutive events grouped by
    /// coordinates + context).
    pub runs: Vec<JournalRun>,
}

fn ctx_pairs(v: &Value) -> Option<Vec<(String, String)>> {
    match v {
        Value::Obj(members) => members
            .iter()
            .map(|(k, v)| v.str().map(|s| (k.clone(), s.to_string())))
            .collect(),
        _ => None,
    }
}

/// Parses a JSONL run journal.
///
/// # Errors
///
/// Returns a message naming the offending line when the header or any
/// event line is malformed — truncated downloads and hand-edited
/// journals are reported, never panicked on.
pub fn parse_journal(text: &str) -> Result<JournalDoc, String> {
    let mut lines = text.lines().enumerate();
    let (_, header) = lines.next().ok_or("journal is empty")?;
    let header = json::parse(header).ok_or("journal header is not valid JSON")?;
    if header.get("schema").and_then(Value::str) != Some("aivril.journal") {
        return Err("not an aivril.journal artifact (bad schema field)".into());
    }
    let version = header
        .get("version")
        .and_then(Value::num)
        .ok_or("journal header lacks a version")? as u32;
    let header_events = header.get("events").and_then(Value::num).unwrap_or(0.0) as u64;
    let mut runs: Vec<JournalRun> = Vec::new();
    for (idx, line) in lines {
        let lineno = idx + 1;
        let v = json::parse(line).ok_or(format!("journal line {lineno} is not valid JSON"))?;
        let coords = match v.get("run") {
            Some(Value::Null) | None => None,
            Some(run) => {
                let p = run.get("problem").and_then(Value::num);
                let s = run.get("sample").and_then(Value::num);
                match (p, s) {
                    (Some(p), Some(s)) => Some((p as u32, s as u32)),
                    _ => return Err(format!("journal line {lineno} has malformed run coords")),
                }
            }
        };
        let context = v
            .get("ctx")
            .and_then(ctx_pairs)
            .ok_or(format!("journal line {lineno} has a malformed ctx"))?;
        let event = JournalEvent {
            span: v
                .get("span")
                .and_then(Value::str)
                .ok_or(format!("journal line {lineno} lacks a span"))?
                .to_string(),
            depth: v
                .get("depth")
                .and_then(Value::num)
                .ok_or(format!("journal line {lineno} lacks a depth"))? as u32,
            t0: v
                .get("t0")
                .and_then(Value::num)
                .ok_or(format!("journal line {lineno} lacks t0"))?,
            t1: v
                .get("t1")
                .and_then(Value::num)
                .ok_or(format!("journal line {lineno} lacks t1"))?,
            attrs: match v.get("attrs") {
                Some(Value::Obj(members)) => members.clone(),
                _ => return Err(format!("journal line {lineno} has malformed attrs")),
            },
        };
        match runs.last_mut() {
            Some(run) if run.coords == coords && run.context == event_ctx(&context) => {
                run.events.push(event);
            }
            _ => runs.push(JournalRun {
                coords,
                context: context.clone(),
                events: vec![event],
            }),
        }
    }
    Ok(JournalDoc {
        version,
        header_events,
        runs,
    })
}

// Context equality helper: contexts are compared as-is (journal order
// is already canonical — the recorder sorts pairs at set_context).
fn event_ctx(ctx: &[(String, String)]) -> &[(String, String)] {
    ctx
}

// ---------------------------------------------------------------------
// Results parsing
// ---------------------------------------------------------------------

/// One sample's scored outcome, from `aivril.results`.
#[derive(Debug, Clone, PartialEq)]
pub struct SampleResult {
    /// Compiled cleanly.
    pub syntax: bool,
    /// Passed the reference testbench.
    pub functional: bool,
    /// Crashed and was isolated by the harness.
    pub crashed: bool,
    /// Modeled end-to-end seconds.
    pub total_latency_s: f64,
    /// Corrective syntax-loop iterations.
    pub syntax_iters: u64,
    /// Corrective functional-loop iterations.
    pub functional_iters: u64,
}

/// One task's samples.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskResult {
    /// Task name.
    pub task: String,
    /// Samples in grid order.
    pub samples: Vec<SampleResult>,
}

/// One results section (a model × language × flow evaluation).
#[derive(Debug, Clone, PartialEq)]
pub struct Section {
    /// Section label.
    pub label: String,
    /// The raw `stats` object (schema evolves; keep it generic).
    pub stats: Value,
    /// Per-task outcomes.
    pub tasks: Vec<TaskResult>,
}

/// A parsed `aivril.results` document (any version: v1 onwards all
/// share the fields the analysis reads).
#[derive(Debug, Clone, PartialEq)]
pub struct ResultsDoc {
    /// Schema version.
    pub version: u32,
    /// Sections in artifact order.
    pub sections: Vec<Section>,
}

/// Parses an `aivril.results` JSON document.
///
/// # Errors
///
/// Returns a message describing the malformation.
pub fn parse_results(text: &str) -> Result<ResultsDoc, String> {
    let doc = json::parse(text.trim_end()).ok_or("results file is not valid JSON")?;
    if doc.get("schema").and_then(Value::str) != Some("aivril.results") {
        return Err("not an aivril.results artifact (bad schema field)".into());
    }
    let version = doc
        .get("version")
        .and_then(Value::num)
        .ok_or("results lack a version")? as u32;
    let mut sections = Vec::new();
    for (si, sec) in doc
        .get("sections")
        .and_then(Value::arr)
        .ok_or("results lack a sections array")?
        .iter()
        .enumerate()
    {
        let label = sec
            .get("label")
            .and_then(Value::str)
            .ok_or(format!("section {si} lacks a label"))?
            .to_string();
        let stats = sec.get("stats").cloned().unwrap_or(Value::Null);
        let mut tasks = Vec::new();
        for (ti, task) in sec
            .get("tasks")
            .and_then(Value::arr)
            .ok_or(format!("section {si} lacks a tasks array"))?
            .iter()
            .enumerate()
        {
            let name = task
                .get("task")
                .and_then(Value::str)
                .ok_or(format!("section {si} task {ti} lacks a name"))?
                .to_string();
            let mut samples = Vec::new();
            for (i, s) in task
                .get("samples")
                .and_then(Value::arr)
                .ok_or(format!("section {si} task {ti} lacks samples"))?
                .iter()
                .enumerate()
            {
                let flag = |key: &str| s.get(key).and_then(Value::bool);
                let num = |key: &str| s.get(key).and_then(Value::num);
                samples.push(SampleResult {
                    syntax: flag("syntax")
                        .ok_or(format!("section {si} task {ti} sample {i}: bad syntax"))?,
                    functional: flag("functional")
                        .ok_or(format!("section {si} task {ti} sample {i}: bad functional"))?,
                    // `crashed` arrived in v3; absent means false.
                    crashed: flag("crashed").unwrap_or(false),
                    total_latency_s: num("total_latency_s")
                        .ok_or(format!("section {si} task {ti} sample {i}: bad latency"))?,
                    syntax_iters: num("syntax_iters").unwrap_or(0.0) as u64,
                    functional_iters: num("functional_iters").unwrap_or(0.0) as u64,
                });
            }
            tasks.push(TaskResult {
                task: name,
                samples,
            });
        }
        sections.push(Section {
            label,
            stats,
            tasks,
        });
    }
    Ok(ResultsDoc { version, sections })
}

/// A parsed artifact of either supported kind.
#[derive(Debug, Clone, PartialEq)]
pub enum Artifact {
    /// A JSONL run journal.
    Journal(JournalDoc),
    /// An `aivril.results` document.
    Results(ResultsDoc),
}

/// Parses either artifact kind, sniffing the schema field of the first
/// line.
///
/// # Errors
///
/// Returns a message when the schema is unrecognised or the body is
/// malformed.
pub fn parse_artifact(text: &str) -> Result<Artifact, String> {
    let first = text.lines().next().unwrap_or("");
    if first.contains("\"aivril.journal\"") {
        parse_journal(text).map(Artifact::Journal)
    } else if first.contains("\"aivril.results\"") {
        parse_results(text).map(Artifact::Results)
    } else {
        Err("unrecognised artifact: expected an aivril.journal JSONL or aivril.results JSON".into())
    }
}

// ---------------------------------------------------------------------
// Attribution: span tree reconstruction and aggregation
// ---------------------------------------------------------------------

/// One node of the aggregated span tree: every span instance with the
/// same root-to-node name path folds into the same node.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SpanNode {
    /// Number of span instances folded in.
    pub count: u64,
    /// Summed modeled duration (seconds).
    pub total_s: f64,
    /// Summed *self* time: duration minus the durations of direct
    /// children (seconds).
    pub self_s: f64,
    /// Children keyed by span name.
    pub children: BTreeMap<String, SpanNode>,
}

/// A reconstructed span instance (one event with its children
/// reattached).
struct Instance<'a> {
    event: &'a JournalEvent,
    children: Vec<Instance<'a>>,
}

/// Rebuilds the instance forest of one run from its close-order
/// events: a parent closes after its children, so when an event at
/// depth `d` appears, every still-pending instance deeper than `d` is
/// one of its descendants (and pending descendants are exactly its
/// *direct* children — deeper ones were absorbed when their own parent
/// closed). Unclosed parents (a run truncated mid-flight) leave their
/// children pending; those surface as extra roots rather than being
/// dropped.
fn instance_forest(events: &[JournalEvent]) -> Vec<Instance<'_>> {
    let mut pending: Vec<Instance<'_>> = Vec::new();
    for event in events {
        let split = pending
            .iter()
            .position(|i| i.event.depth > event.depth)
            .unwrap_or(pending.len());
        let children = pending.split_off(split);
        pending.push(Instance { event, children });
    }
    pending
}

fn fold_instance(node: &mut SpanNode, inst: &Instance<'_>) {
    let duration = inst.event.duration();
    let child_time: f64 = inst.children.iter().map(|c| c.event.duration()).sum();
    node.count += 1;
    node.total_s += duration;
    node.self_s += (duration - child_time).max(0.0);
    for child in &inst.children {
        let entry = node.children.entry(child.event.span.clone()).or_default();
        fold_instance(entry, child);
    }
}

/// Aggregates a journal into one span tree under a synthetic root
/// whose `total_s` is the summed duration of all top-level spans. The
/// fold order is journal order, so the floats — and therefore every
/// rendered report — are byte-stable.
#[must_use]
pub fn attribution(doc: &JournalDoc) -> BTreeMap<String, SpanNode> {
    let mut roots: BTreeMap<String, SpanNode> = BTreeMap::new();
    for run in &doc.runs {
        for inst in instance_forest(&run.events) {
            let entry = roots.entry(inst.event.span.clone()).or_default();
            fold_instance(entry, &inst);
        }
    }
    roots
}

fn render_span_tree(
    out: &mut String,
    nodes: &BTreeMap<String, SpanNode>,
    grand_total: f64,
    indent: usize,
) {
    // Biggest first; name is the deterministic tiebreak.
    let mut ordered: Vec<(&String, &SpanNode)> = nodes.iter().collect();
    ordered.sort_by(|a, b| {
        b.1.total_s
            .total_cmp(&a.1.total_s)
            .then_with(|| a.0.cmp(b.0))
    });
    for (name, node) in ordered {
        let pct = if grand_total > 0.0 {
            100.0 * node.total_s / grand_total
        } else {
            0.0
        };
        let label = format!("{:indent$}{name}", "", indent = indent * 2);
        let _ = writeln!(
            out,
            "  {label:<34} total {:>14.6}s ({pct:>5.1}%)  self {:>14.6}s  n={}",
            node.total_s, node.self_s, node.count
        );
        render_span_tree(out, &node.children, grand_total, indent + 1);
    }
}

// ---------------------------------------------------------------------
// Summary
// ---------------------------------------------------------------------

/// Fixed bucket edges (seconds) for the latency quantile estimates in
/// summaries. Fixed — not data-derived — so histograms built from any
/// artifact subset merge and compare cleanly.
pub const LATENCY_BOUNDS_S: &[f64] = &[
    1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1000.0, 2000.0, 5000.0,
];

fn render_quantiles(out: &mut String, label: &str, hist: &Histogram) {
    let q = |q: f64| match hist.quantile(q) {
        Some(v) => format!("{v:.3}s"),
        None => "n/a".to_string(),
    };
    let _ = writeln!(
        out,
        "  {label}: p50 {} / p90 {} / p99 {} (n={})",
        q(0.50),
        q(0.90),
        q(0.99),
        hist.count()
    );
}

fn summary_journal(doc: &JournalDoc) -> String {
    let mut out = String::new();
    let total_events: usize = doc.runs.iter().map(|r| r.events.len()).sum();
    let _ = writeln!(
        out,
        "[summary] aivril.journal v{}: {} run(s), {} event(s)",
        doc.version,
        doc.runs.len(),
        total_events
    );

    // Context groups.
    let mut contexts: BTreeMap<String, u64> = BTreeMap::new();
    for run in &doc.runs {
        let key = if run.context.is_empty() {
            "(no context)".to_string()
        } else {
            run.context
                .iter()
                .map(|(k, v)| format!("{k}={v}"))
                .collect::<Vec<_>>()
                .join(" ")
        };
        *contexts.entry(key).or_default() += 1;
    }
    for (ctx, n) in &contexts {
        let _ = writeln!(out, "  context [{ctx}]: {n} run(s)");
    }

    // Attribution tree.
    let roots = attribution(doc);
    let grand_total: f64 = roots.values().map(|n| n.total_s).sum();
    let _ = writeln!(
        out,
        "\n[attribution] modeled-time span tree ({grand_total:.6}s total)",
    );
    render_span_tree(&mut out, &roots, grand_total, 0);

    // Per-problem attribution: total modeled time with the LLM / EDA
    // split (llm.chat spans vs eda.* spans; both are leaves, so the
    // sums do not double-count).
    let mut per_problem: BTreeMap<u32, (u64, f64, f64, f64)> = BTreeMap::new();
    let mut run_latency = Histogram::new(LATENCY_BOUNDS_S);
    for run in &doc.runs {
        let Some((problem, _)) = run.coords else {
            continue;
        };
        let total: f64 = run
            .events
            .iter()
            .filter(|e| e.depth == 0)
            .map(JournalEvent::duration)
            .sum();
        let llm: f64 = run
            .events
            .iter()
            .filter(|e| e.span == "llm.chat")
            .map(JournalEvent::duration)
            .sum();
        let eda: f64 = run
            .events
            .iter()
            .filter(|e| e.span.starts_with("eda."))
            .map(JournalEvent::duration)
            .sum();
        let slot = per_problem.entry(problem).or_insert((0, 0.0, 0.0, 0.0));
        slot.0 += 1;
        slot.1 += total;
        slot.2 += llm;
        slot.3 += eda;
        run_latency.observe(total);
    }
    if !per_problem.is_empty() {
        let _ = writeln!(out, "\n[per-problem] modeled seconds (llm + eda split)");
        for (problem, (runs, total, llm, eda)) in &per_problem {
            let _ = writeln!(
                out,
                "  problem {problem:>4}: {runs} run(s)  total {total:>12.6}s  \
                 llm {llm:>12.6}s  eda {eda:>12.6}s"
            );
        }
        let _ = writeln!(out, "\n[latency] per-run modeled end-to-end time");
        render_quantiles(&mut out, "runs", &run_latency);
    }

    // Error-class breakdown: injected LLM fault classes, tool
    // failures, corrective-iteration pressure.
    let mut fault_classes: BTreeMap<String, u64> = BTreeMap::new();
    let (mut compile_fails, mut analyze_fails, mut sim_fails) = (0u64, 0u64, 0u64);
    let mut corrective_errors = 0u64;
    for run in &doc.runs {
        for e in &run.events {
            match e.span.as_str() {
                "llm.chat" => {
                    if let Some(class) = e.attr("fault").and_then(Value::str) {
                        *fault_classes.entry(class.to_string()).or_default() += 1;
                    }
                }
                "eda.compile" if e.attr("success").and_then(Value::bool) == Some(false) => {
                    compile_fails += 1;
                }
                "eda.analyze" if e.attr("success").and_then(Value::bool) == Some(false) => {
                    analyze_fails += 1;
                }
                "eda.simulate" if e.attr("passed").and_then(Value::bool) == Some(false) => {
                    sim_fails += 1;
                }
                "iteration" => {
                    if let Some(n) = e.attr("errors").and_then(Value::num) {
                        corrective_errors += n as u64;
                    }
                }
                _ => {}
            }
        }
    }
    let _ = writeln!(out, "\n[errors] tool failures and fault classes");
    let _ = writeln!(
        out,
        "  eda: {compile_fails} failed compile(s), {analyze_fails} failed analyze(s), \
         {sim_fails} failed simulation(s); {corrective_errors} diagnostics fed back"
    );
    if fault_classes.is_empty() {
        let _ = writeln!(out, "  llm faults: none");
    } else {
        for (class, n) in &fault_classes {
            let _ = writeln!(out, "  llm fault {class}: {n}");
        }
    }
    out
}

fn summary_results(doc: &ResultsDoc) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "[summary] aivril.results v{}: {} section(s)",
        doc.version,
        doc.sections.len()
    );
    for sec in &doc.sections {
        let samples: Vec<&SampleResult> = sec.tasks.iter().flat_map(|t| t.samples.iter()).collect();
        let n = samples.len();
        let count = |f: &dyn Fn(&SampleResult) -> bool| samples.iter().filter(|s| f(s)).count();
        // Mutually exclusive: crashed first, then the remaining samples
        // split by syntax/functional, so the four rows partition the
        // grid and the percentages sum to 100.
        let crashed = count(&|s| s.crashed);
        let both = count(&|s| !s.crashed && s.syntax && s.functional);
        let syntax_only = count(&|s| !s.crashed && s.syntax && !s.functional);
        let neither = count(&|s| !s.crashed && !s.syntax);
        let pct = |k: usize| 100.0 * k as f64 / n.max(1) as f64;
        let _ = writeln!(out, "\nsection [{}]", sec.label);
        let _ = writeln!(
            out,
            "  outcomes over {n} sample(s) in {} task(s):",
            sec.tasks.len()
        );
        let _ = writeln!(out, "    functional pass  {both:>5}  ({:>5.1}%)", pct(both));
        let _ = writeln!(
            out,
            "    syntax-only      {syntax_only:>5}  ({:>5.1}%)",
            pct(syntax_only)
        );
        let _ = writeln!(
            out,
            "    failed           {neither:>5}  ({:>5.1}%)",
            pct(neither)
        );
        let _ = writeln!(
            out,
            "    crashed          {crashed:>5}  ({:>5.1}%)",
            pct(crashed)
        );
        let iters: u64 = samples
            .iter()
            .map(|s| s.syntax_iters + s.functional_iters)
            .sum();
        let _ = writeln!(
            out,
            "  corrective iterations: {iters} total, {:.2}/run",
            iters as f64 / n.max(1) as f64
        );
        let mut latency = Histogram::new(LATENCY_BOUNDS_S);
        for s in &samples {
            latency.observe(s.total_latency_s);
        }
        render_quantiles(&mut out, "modeled latency", &latency);
        for key in [
            "modeled_seconds",
            "modeled_llm_seconds",
            "modeled_tool_seconds",
        ] {
            if let Some(v) = sec.stats.get(key).and_then(Value::num) {
                let _ = writeln!(out, "  stats.{key}: {v:.6}s");
            }
        }
        if let Some(res) = sec.stats.get("resilience") {
            let field = |k: &str| res.get(k).and_then(Value::num).unwrap_or(0.0);
            if field("llm_faults") > 0.0 || field("crashed") > 0.0 {
                let _ = writeln!(
                    out,
                    "  resilience: {} fault(s), {} retrie(s), {} breaker open(s), \
                     {} degraded, {} sim-diverged",
                    field("llm_faults"),
                    field("retries"),
                    field("breaker_opens"),
                    field("degraded"),
                    field("sim_diverged"),
                );
            }
        }
    }
    out
}

/// Renders the `inspect summary` report for one artifact (journal or
/// results, auto-detected).
///
/// # Errors
///
/// Returns the parse error for malformed artifacts.
pub fn summary(text: &str) -> Result<String, String> {
    match parse_artifact(text)? {
        Artifact::Journal(doc) => Ok(summary_journal(&doc)),
        Artifact::Results(doc) => Ok(summary_results(&doc)),
    }
}

// ---------------------------------------------------------------------
// Diff
// ---------------------------------------------------------------------

/// The outcome of a [`diff`]: the rendered report plus whether the
/// artifacts diverge (drives the CLI exit code).
#[derive(Debug, Clone, PartialEq)]
pub struct DiffOutcome {
    /// Human-readable report.
    pub report: String,
    /// `true` when the artifacts are not byte-identical.
    pub diverged: bool,
}

/// Truncates a journal line for display without splitting UTF-8.
fn clip(line: &str) -> String {
    const MAX: usize = 160;
    if line.len() <= MAX {
        return line.to_string();
    }
    let mut end = MAX;
    while !line.is_char_boundary(end) {
        end -= 1;
    }
    format!("{}…", &line[..end])
}

fn diff_journals(a_name: &str, a: &str, b_name: &str, b: &str) -> String {
    let mut out = String::new();
    let (a_lines, b_lines): (Vec<&str>, Vec<&str>) = (a.lines().collect(), b.lines().collect());
    let differing = a_lines.iter().zip(&b_lines).filter(|(x, y)| x != y).count()
        + a_lines.len().abs_diff(b_lines.len());
    let _ = writeln!(
        out,
        "journals differ: {} line(s) in {a_name}, {} in {b_name}, {differing} differing",
        a_lines.len(),
        b_lines.len()
    );
    // First divergence: the earliest line where the journals disagree
    // (or the first line one of them lacks).
    let first = a_lines
        .iter()
        .zip(&b_lines)
        .position(|(x, y)| x != y)
        .unwrap_or_else(|| a_lines.len().min(b_lines.len()));
    let _ = writeln!(out, "first divergence at line {}:", first + 1);
    for (name, lines) in [(a_name, &a_lines), (b_name, &b_lines)] {
        match lines.get(first) {
            Some(line) => {
                let _ = writeln!(out, "  {name}: {}", clip(line));
            }
            None => {
                let _ = writeln!(out, "  {name}: <absent — journal ends here>");
            }
        }
    }
    // Pinpoint: the run/span of the diverging line, when parseable.
    for (name, lines) in [(a_name, &a_lines), (b_name, &b_lines)] {
        if let Some(v) = lines.get(first).and_then(|l| json::parse(l)) {
            let coords = match v.get("run") {
                Some(Value::Obj(_)) => format!(
                    "problem {} sample {}",
                    v.get("run")
                        .and_then(|r| r.get("problem"))
                        .and_then(Value::num)
                        .unwrap_or(-1.0),
                    v.get("run")
                        .and_then(|r| r.get("sample"))
                        .and_then(Value::num)
                        .unwrap_or(-1.0)
                ),
                _ => "unscoped".to_string(),
            };
            let span = v.get("span").and_then(Value::str).unwrap_or("?");
            let _ = writeln!(out, "  {name} pinpoint: {coords}, span {span}");
        }
    }
    out
}

fn diff_results(a: &ResultsDoc, b: &ResultsDoc) -> String {
    let mut out = String::new();
    if a.sections.len() != b.sections.len() {
        let _ = writeln!(
            out,
            "section count differs: {} vs {}",
            a.sections.len(),
            b.sections.len()
        );
    }
    let mut flips = 0u64;
    let mut latency_drift = 0u64;
    for (si, (sa, sb)) in a.sections.iter().zip(&b.sections).enumerate() {
        let mut header_emitted = false;
        let mut header = |out: &mut String| {
            if !header_emitted {
                let _ = writeln!(out, "section {si} [{}]:", sa.label);
                header_emitted = true;
            }
        };
        if sa.label != sb.label {
            header(&mut out);
            let _ = writeln!(out, "  label differs: [{}] vs [{}]", sa.label, sb.label);
        }
        // Metric deltas over the stats block (numeric fields only;
        // nested diagnostic blocks are compared by their leaves).
        for (key, delta) in stat_deltas(&sa.stats, &sb.stats, "stats") {
            header(&mut out);
            let _ = writeln!(out, "  {key}: {delta}");
        }
        // Per-cell outcome flips.
        for (ti, (ta, tb)) in sa.tasks.iter().zip(&sb.tasks).enumerate() {
            if ta.task != tb.task {
                header(&mut out);
                let _ = writeln!(out, "  task {ti} name differs: {} vs {}", ta.task, tb.task);
                continue;
            }
            for (i, (x, y)) in ta.samples.iter().zip(&tb.samples).enumerate() {
                let mut changes = Vec::new();
                for (what, va, vb) in [
                    ("syntax", x.syntax, y.syntax),
                    ("functional", x.functional, y.functional),
                    ("crashed", x.crashed, y.crashed),
                ] {
                    if va != vb {
                        changes.push(format!("{what} {va}->{vb}"));
                    }
                }
                if !changes.is_empty() {
                    flips += 1;
                    header(&mut out);
                    let _ = writeln!(out, "  task {} sample {i}: {}", ta.task, changes.join(", "));
                } else if x.total_latency_s.to_bits() != y.total_latency_s.to_bits() {
                    latency_drift += 1;
                }
            }
            if ta.samples.len() != tb.samples.len() {
                header(&mut out);
                let _ = writeln!(
                    out,
                    "  task {} sample count differs: {} vs {}",
                    ta.task,
                    ta.samples.len(),
                    tb.samples.len()
                );
            }
        }
        if sa.tasks.len() != sb.tasks.len() {
            header(&mut out);
            let _ = writeln!(
                out,
                "  task count differs: {} vs {}",
                sa.tasks.len(),
                sb.tasks.len()
            );
        }
    }
    let _ = writeln!(
        out,
        "totals: {flips} outcome flip(s), {latency_drift} cell(s) with latency-only drift"
    );
    out
}

/// Numeric leaf-by-leaf comparison of two stats objects; returns
/// `(dotted key, rendered delta)` pairs for differing leaves.
fn stat_deltas(a: &Value, b: &Value, prefix: &str) -> Vec<(String, String)> {
    let mut out = Vec::new();
    match (a, b) {
        (Value::Obj(ma), Value::Obj(_)) => {
            for (k, va) in ma {
                let key = format!("{prefix}.{k}");
                match b.get(k) {
                    Some(vb) => out.extend(stat_deltas(va, vb, &key)),
                    None => out.push((key, "absent in second artifact".to_string())),
                }
            }
            if let Value::Obj(mb) = b {
                for (k, _) in mb {
                    if a.get(k).is_none() {
                        out.push((
                            format!("{prefix}.{k}"),
                            "absent in first artifact".to_string(),
                        ));
                    }
                }
            }
        }
        (Value::Num(x), Value::Num(y)) => {
            if x.to_bits() != y.to_bits() {
                out.push((
                    prefix.to_string(),
                    format!("{x:.6} -> {y:.6} (delta {:+.6})", y - x),
                ));
            }
        }
        _ => {
            if a != b {
                out.push((prefix.to_string(), format!("{a:?} -> {b:?}")));
            }
        }
    }
    out
}

/// Compares two artifacts of the same kind: metric deltas and per-cell
/// outcome flips for results, first-divergence pinpointing for
/// journals. Byte-identical inputs report `no divergence`.
///
/// # Errors
///
/// Returns a message when either artifact is malformed or the kinds
/// differ.
pub fn diff(a_name: &str, a: &str, b_name: &str, b: &str) -> Result<DiffOutcome, String> {
    if a == b {
        // Still insist both parse: a pair of identically corrupt files
        // is not a clean bill of health.
        parse_artifact(a)?;
        return Ok(DiffOutcome {
            report: format!("no divergence: {a_name} and {b_name} are byte-identical\n"),
            diverged: false,
        });
    }
    let report = match (parse_artifact(a)?, parse_artifact(b)?) {
        (Artifact::Journal(_), Artifact::Journal(_)) => diff_journals(a_name, a, b_name, b),
        (Artifact::Results(da), Artifact::Results(db)) => {
            format!(
                "results differ: {a_name} vs {b_name}\n{}",
                diff_results(&da, &db)
            )
        }
        _ => return Err("cannot diff a journal against a results file".into()),
    };
    Ok(DiffOutcome {
        report,
        diverged: true,
    })
}

// ---------------------------------------------------------------------
// Flame: collapsed-stack export
// ---------------------------------------------------------------------

fn collect_stacks(
    out: &mut BTreeMap<String, u64>,
    nodes: &BTreeMap<String, SpanNode>,
    prefix: &str,
) {
    for (name, node) in nodes {
        let stack = if prefix.is_empty() {
            name.clone()
        } else {
            format!("{prefix};{name}")
        };
        let micros = (node.self_s * 1e6).round() as u64;
        if micros > 0 {
            *out.entry(stack.clone()).or_default() += micros;
        }
        collect_stacks(out, &node.children, &stack);
    }
}

/// Renders a journal as collapsed stacks — one `a;b;c <microseconds>`
/// line per unique span path, weighted by *self* modeled time and
/// sorted lexicographically. The format `flamegraph.pl`, inferno and
/// speedscope consume; byte-identical across thread counts because the
/// journal is.
///
/// # Errors
///
/// Returns the parse error for malformed journals.
pub fn flame(text: &str) -> Result<String, String> {
    let doc = parse_journal(text)?;
    let roots = attribution(&doc);
    let mut stacks = BTreeMap::new();
    collect_stacks(&mut stacks, &roots, "");
    let mut out = String::new();
    for (stack, micros) in &stacks {
        let _ = writeln!(out, "{stack} {micros}");
    }
    Ok(out)
}

// ---------------------------------------------------------------------
// Regress: the CI perf gate
// ---------------------------------------------------------------------

/// The outcome of a [`regress`] comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct RegressOutcome {
    /// Human-readable report.
    pub report: String,
    /// `true` when any benchmark regressed beyond tolerance (drives
    /// the CLI exit code / CI gate).
    pub regressed: bool,
}

/// Parses the committed `BENCH_SIM.json` baseline: benchmark names and
/// their `current_ns` timings, in file order.
fn parse_baseline(text: &str) -> Result<Vec<(String, f64)>, String> {
    let doc = json::parse(text.trim_end()).ok_or("baseline is not valid JSON")?;
    let results = doc
        .get("results")
        .and_then(Value::arr)
        .ok_or("baseline lacks a results array")?;
    results
        .iter()
        .enumerate()
        .map(|(i, r)| {
            let name = r
                .get("name")
                .and_then(Value::str)
                .ok_or(format!("baseline result {i} lacks a name"))?;
            let ns = r
                .get("current_ns")
                .and_then(Value::num)
                .ok_or(format!("baseline result {i} lacks current_ns"))?;
            // A zero/negative/non-finite baseline would make ratios
            // infinite and, via the lower-median scale, silently mask
            // genuine regressions in relative mode.
            if !ns.is_finite() || ns <= 0.0 {
                return Err(format!(
                    "baseline result {i} ({name}) has bad current_ns {ns} \
                     (want a positive finite timing)"
                ));
            }
            Ok((name.to_string(), ns))
        })
        .collect()
}

/// Parses a criterion `CRITERION_JSON` report (one JSON object per
/// line); repeated names keep their best (minimum) timing, matching
/// criterion's best-of-batches measurement.
fn parse_criterion(text: &str) -> Result<BTreeMap<String, f64>, String> {
    let mut out = BTreeMap::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v = json::parse(line).ok_or(format!("criterion line {} is not valid JSON", i + 1))?;
        let name = v
            .get("name")
            .and_then(Value::str)
            .ok_or(format!("criterion line {} lacks a name", i + 1))?;
        let ns = v
            .get("ns_per_iter")
            .and_then(Value::num)
            .ok_or(format!("criterion line {} lacks ns_per_iter", i + 1))?;
        if !ns.is_finite() || ns <= 0.0 {
            return Err(format!(
                "criterion line {} has bad ns_per_iter {ns} (want a positive finite timing)",
                i + 1
            ));
        }
        out.entry(name.to_string())
            .and_modify(|best: &mut f64| *best = best.min(ns))
            .or_insert(ns);
    }
    if out.is_empty() {
        return Err("criterion report contains no benchmarks".into());
    }
    Ok(out)
}

/// Lower median of the ratios, by total float order — the
/// machine-speed normaliser of relative mode.
fn lower_median(mut ratios: Vec<f64>) -> f64 {
    ratios.sort_by(f64::total_cmp);
    ratios[(ratios.len() - 1) / 2]
}

/// Compares a fresh criterion/kernel timing report against the
/// committed `BENCH_SIM.json` baseline.
///
/// By default the comparison is **relative**: every benchmark's
/// `current / baseline` ratio is normalised by the lower median of all
/// ratios, so a uniformly faster or slower machine cancels out and
/// only *differential* drift — one kernel path regressing while the
/// others hold — trips the gate. `absolute` skips the normalisation
/// (same-machine comparisons). A benchmark present in the baseline but
/// missing from the report is a regression: the gate cannot vouch for
/// what it cannot measure.
///
/// # Errors
///
/// Returns a message when either input is malformed.
pub fn regress(
    baseline_text: &str,
    current_text: &str,
    tolerance: f64,
    absolute: bool,
) -> Result<RegressOutcome, String> {
    if !(0.0..10.0).contains(&tolerance) {
        return Err(format!("tolerance {tolerance} out of range (want 0..10)"));
    }
    let baseline = parse_baseline(baseline_text)?;
    if baseline.is_empty() {
        return Err("baseline contains no benchmarks".into());
    }
    let current = parse_criterion(current_text)?;
    let ratios: Vec<f64> = baseline
        .iter()
        .filter_map(|(name, base)| current.get(name).map(|cur| cur / base))
        .collect();
    let scale = if absolute || ratios.is_empty() {
        1.0
    } else {
        lower_median(ratios)
    };
    let mut out = String::new();
    let _ = writeln!(
        out,
        "[regress] {} baseline benchmark(s), tolerance {:.1}%, {} (scale {:.3})",
        baseline.len(),
        tolerance * 100.0,
        if absolute {
            "absolute mode"
        } else {
            "relative mode"
        },
        scale
    );
    let mut regressions = Vec::new();
    for (name, base) in &baseline {
        match current.get(name) {
            None => {
                regressions.push(name.clone());
                let _ = writeln!(
                    out,
                    "  {name:<32} baseline {base:>14.1} ns/iter  current        missing  REGRESSION"
                );
            }
            Some(cur) => {
                let normalized = (cur / base) / scale;
                let verdict = if normalized > 1.0 + tolerance {
                    regressions.push(name.clone());
                    format!(
                        "REGRESSION (+{:.1}% > {:.1}%)",
                        (normalized - 1.0) * 100.0,
                        tolerance * 100.0
                    )
                } else if normalized < 1.0 - tolerance {
                    format!("improved ({:.1}%)", (normalized - 1.0) * 100.0)
                } else {
                    "ok".to_string()
                };
                let _ = writeln!(
                    out,
                    "  {name:<32} baseline {base:>14.1} ns/iter  current {cur:>14.1}  \
                     normalized {normalized:.3}  {verdict}"
                );
            }
        }
    }
    let extra: Vec<&String> = current
        .keys()
        .filter(|k| !baseline.iter().any(|(n, _)| n == *k))
        .collect();
    if !extra.is_empty() {
        let _ = writeln!(
            out,
            "  note: {} benchmark(s) missing a committed baseline: {}",
            extra.len(),
            extra
                .iter()
                .map(|s| s.as_str())
                .collect::<Vec<_>>()
                .join(", ")
        );
    }
    let regressed = !regressions.is_empty();
    let _ = writeln!(
        out,
        "result: {}",
        if regressed {
            format!("REGRESSION in {} benchmark(s)", regressions.len())
        } else {
            "ok, no kernel regressions".to_string()
        }
    );
    Ok(RegressOutcome {
        report: out,
        regressed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Recorder;
    use crate::render_journal;

    /// A two-run journal with nested spans and modeled latencies.
    fn sample_journal() -> String {
        let r = Recorder::new();
        r.set_context(&[("model", "sim"), ("flow", "aivril2")]);
        for (problem, sample) in [(0u32, 0u32), (0, 1)] {
            r.begin_run(problem, sample);
            {
                let _stage = r.span("stage.rtl_generation");
                {
                    let s = r.span("llm.chat");
                    r.advance(2.0);
                    s.attr_int("tokens", 40);
                }
                r.advance(0.5);
            }
            {
                let _stage = r.span("stage.rtl_syntax_loop");
                let _iter = r.span("iteration");
                let s = r.span("eda.compile");
                r.advance(1.0);
                s.attr_bool("success", sample == 1);
            }
            r.end_run();
        }
        render_journal(&r)
    }

    #[test]
    fn journal_parses_and_attributes() {
        let doc = parse_journal(&sample_journal()).expect("parses");
        assert_eq!(doc.runs.len(), 2);
        assert_eq!(doc.runs[0].coords, Some((0, 0)));
        let roots = attribution(&doc);
        let generation = &roots["stage.rtl_generation"];
        assert_eq!(generation.count, 2);
        assert!((generation.total_s - 5.0).abs() < 1e-9);
        assert!(
            (generation.self_s - 1.0).abs() < 1e-9,
            "self excludes llm.chat"
        );
        assert!((generation.children["llm.chat"].total_s - 4.0).abs() < 1e-9);
        // Nesting is rebuilt through the iteration level.
        let syntax = &roots["stage.rtl_syntax_loop"];
        assert!(syntax.children["iteration"].children["eda.compile"].count == 2);
    }

    #[test]
    fn malformed_journals_error_with_line_numbers() {
        assert!(parse_journal("").is_err());
        assert!(parse_journal("{\"schema\":\"other\"}").is_err());
        let mut journal = sample_journal();
        journal.push_str("not json\n");
        let err = parse_journal(&journal).unwrap_err();
        assert!(err.contains("not valid JSON"), "{err}");
    }

    #[test]
    fn summary_covers_tree_problems_and_errors() {
        let report = summary(&sample_journal()).expect("summary renders");
        assert!(report.contains("[attribution]"), "{report}");
        assert!(report.contains("stage.rtl_generation"), "{report}");
        assert!(report.contains("[per-problem]"), "{report}");
        assert!(report.contains("problem    0: 2 run(s)"), "{report}");
        assert!(report.contains("1 failed compile(s)"), "{report}");
        assert!(report.contains("p50"), "{report}");
        // Deterministic: same artifact, same bytes.
        assert_eq!(report, summary(&sample_journal()).unwrap());
    }

    #[test]
    fn flame_exports_sorted_collapsed_stacks() {
        let out = flame(&sample_journal()).expect("flame renders");
        let lines: Vec<&str> = out.lines().collect();
        assert!(lines.contains(&"stage.rtl_generation;llm.chat 4000000"));
        assert!(lines.contains(&"stage.rtl_syntax_loop;iteration;eda.compile 2000000"));
        let mut sorted = lines.clone();
        sorted.sort_unstable();
        assert_eq!(lines, sorted, "stacks are lexicographically sorted");
        // Every line is `stack <integer>`.
        for line in &lines {
            let (_, value) = line.rsplit_once(' ').expect("has a value");
            value.parse::<u64>().expect("integer weight");
        }
    }

    #[test]
    fn diff_reports_no_divergence_for_identical_artifacts() {
        let j = sample_journal();
        let d = diff("a", &j, "b", &j).expect("diffs");
        assert!(!d.diverged);
        assert!(d.report.contains("no divergence"), "{}", d.report);
    }

    #[test]
    fn diff_pinpoints_first_differing_journal_line() {
        let a = sample_journal();
        // Perturb the modeled end timestamp on the fourth line.
        let lines: Vec<&str> = a.lines().collect();
        let patched = lines[3].replace("\"t1\":", "\"t1\":1");
        assert_ne!(patched, lines[3], "injection must change the line");
        let mut b_lines = lines.clone();
        b_lines[3] = &patched;
        let b = b_lines.join("\n") + "\n";
        let d = diff("left", &a, "right", &b).expect("diffs");
        assert!(d.diverged);
        assert!(
            d.report.contains("first divergence at line 4"),
            "{}",
            d.report
        );
        assert!(d.report.contains("left:"), "{}", d.report);
        assert!(d.report.contains("pinpoint"), "{}", d.report);
    }

    fn tiny_results(functional: bool, latency: &str) -> String {
        format!(
            "{{\"schema\":\"aivril.results\",\"version\":4,\"sections\":[{{\
             \"label\":\"m verilog aivril2\",\
             \"stats\":{{\"runs\":1,\"modeled_seconds\":{latency}}},\
             \"tasks\":[{{\"task\":\"prob_001\",\"samples\":[{{\
             \"syntax\":true,\"functional\":{functional},\
             \"total_latency_s\":{latency},\"syntax_iters\":1,\
             \"functional_iters\":0,\"crashed\":false}}]}}]}}]}}\n"
        )
    }

    #[test]
    fn results_summary_and_diff_flag_outcome_flips() {
        let a = tiny_results(true, "10.000000");
        let b = tiny_results(false, "12.500000");
        let report = summary(&a).expect("summary");
        assert!(report.contains("functional pass      1"), "{report}");
        let d = diff("a", &a, "b", &b).expect("diff");
        assert!(d.diverged);
        assert!(
            d.report
                .contains("task prob_001 sample 0: functional true->false"),
            "{}",
            d.report
        );
        assert!(
            d.report
                .contains("stats.modeled_seconds: 10.000000 -> 12.500000"),
            "{}",
            d.report
        );
        assert!(d.report.contains("1 outcome flip(s)"), "{}", d.report);
    }

    #[test]
    fn results_outcome_categories_partition_the_samples() {
        // A sample that compiled and then crashed counts once (as
        // crashed), not once per category — the four rows must
        // partition the grid so the percentages sum to 100.
        let sample = |syntax: bool, functional: bool, crashed: bool| {
            format!(
                "{{\"syntax\":{syntax},\"functional\":{functional},\"crashed\":{crashed},\
                 \"total_latency_s\":1.0,\"syntax_iters\":0,\"functional_iters\":0}}"
            )
        };
        let doc = format!(
            "{{\"schema\":\"aivril.results\",\"version\":4,\"sections\":[{{\
             \"label\":\"m\",\"stats\":{{}},\"tasks\":[{{\"task\":\"p\",\"samples\":[{}]}}]}}]}}",
            [
                sample(true, false, true), // crashed, despite syntax ok
                sample(true, true, false),
                sample(true, false, false),
                sample(false, false, false),
            ]
            .join(",")
        );
        let report = summary(&doc).expect("summary");
        for row in [
            "functional pass      1  ( 25.0%)",
            "syntax-only          1  ( 25.0%)",
            "failed               1  ( 25.0%)",
            "crashed              1  ( 25.0%)",
        ] {
            assert!(report.contains(row), "missing {row:?} in {report}");
        }
    }

    #[test]
    fn mixed_kind_diff_is_an_error() {
        let err = diff("a", &sample_journal(), "b", &tiny_results(true, "1.0")).unwrap_err();
        assert!(err.contains("cannot diff"), "{err}");
    }

    fn baseline_json(entries: &[(&str, f64)]) -> String {
        let results: Vec<String> = entries
            .iter()
            .map(|(n, ns)| format!("{{\"name\":\"{n}\",\"current_ns\":{ns}}}"))
            .collect();
        format!(
            "{{\"suite\":\"sim_kernel\",\"results\":[{}]}}",
            results.join(",")
        )
    }

    fn criterion_jsonl(entries: &[(&str, f64)]) -> String {
        entries
            .iter()
            .map(|(n, ns)| format!("{{\"name\":\"{n}\",\"ns_per_iter\":{ns},\"quick\":true}}\n"))
            .collect()
    }

    #[test]
    fn regress_passes_within_tolerance_and_fails_on_slowdown() {
        let baseline = baseline_json(&[("k/a", 1000.0), ("k/b", 2000.0)]);
        // Uniformly 3x slower machine: relative mode cancels it.
        let ok = regress(
            &baseline,
            &criterion_jsonl(&[("k/a", 3000.0), ("k/b", 6000.0)]),
            0.15,
            false,
        )
        .expect("regress runs");
        assert!(!ok.regressed, "{}", ok.report);
        // One benchmark 20% slower than its peers: caught.
        let bad = regress(
            &baseline,
            &criterion_jsonl(&[("k/a", 3600.0), ("k/b", 6000.0)]),
            0.15,
            false,
        )
        .unwrap();
        assert!(bad.regressed, "{}", bad.report);
        assert!(bad.report.contains("REGRESSION"), "{}", bad.report);
        // Absolute mode flags the uniform slowdown too.
        let abs = regress(
            &baseline,
            &criterion_jsonl(&[("k/a", 1200.0), ("k/b", 2000.0)]),
            0.15,
            true,
        )
        .unwrap();
        assert!(abs.regressed, "{}", abs.report);
    }

    #[test]
    fn regress_flags_missing_benchmarks() {
        let baseline = baseline_json(&[("k/a", 1000.0), ("k/b", 2000.0)]);
        let r = regress(&baseline, &criterion_jsonl(&[("k/a", 1000.0)]), 0.15, false).unwrap();
        assert!(r.regressed);
        assert!(r.report.contains("missing"), "{}", r.report);
    }

    #[test]
    fn regress_rejects_nonpositive_timings() {
        // A zero baseline entry would otherwise yield an infinite
        // ratio and (as the lower median) a scale that masks every
        // real regression.
        let err = regress(
            &baseline_json(&[("k/a", 0.0), ("k/b", 2000.0)]),
            &criterion_jsonl(&[("k/a", 1000.0), ("k/b", 2000.0)]),
            0.15,
            false,
        )
        .unwrap_err();
        assert!(err.contains("current_ns"), "{err}");
        let err = regress(
            &baseline_json(&[("k/a", 1000.0)]),
            &criterion_jsonl(&[("k/a", -5.0)]),
            0.15,
            false,
        )
        .unwrap_err();
        assert!(err.contains("ns_per_iter"), "{err}");
    }

    #[test]
    fn regress_takes_best_of_repeated_criterion_lines() {
        let baseline = baseline_json(&[("k/a", 1000.0)]);
        let current = criterion_jsonl(&[("k/a", 5000.0), ("k/a", 1000.0)]);
        let r = regress(&baseline, &current, 0.15, true).unwrap();
        assert!(!r.regressed, "best-of must win: {}", r.report);
    }
}
