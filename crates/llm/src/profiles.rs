//! Calibrated per-model × per-language behaviour profiles.
//!
//! Each profile encodes, per target language, the error process of one
//! of the paper's three models. The headline rates come straight from
//! Table 1's *baseline* rows (`syntax_ok` = pass@1_S, and
//! `func_ok_given_syntax_ok` = pass@1_F / pass@1_S); the repair rates
//! and the functional quality of initially-syntax-broken samples are
//! fitted so that the closed loops land on the paper's AIVRIL2 rows and
//! the reported convergence cycle counts.

use crate::latency::LlmLatencyModel;

/// Error process for one model on one language.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LangProfile {
    /// Probability a zero-shot generation is syntactically clean
    /// (baseline pass@1_S).
    pub syntax_ok: f64,
    /// Number of syntax faults injected when the sample is broken
    /// (inclusive range).
    pub syntax_faults: (u32, u32),
    /// Per-fault probability that one corrective iteration of the
    /// Syntax Optimization loop fixes a pointed-at syntax fault.
    pub syntax_repair: f64,
    /// Probability the logic is correct when the syntax was clean.
    pub func_ok_given_syntax_ok: f64,
    /// Probability the logic is correct when the syntax was broken
    /// (syntax-challenged samples tend to be logically weaker too).
    pub func_ok_given_syntax_bad: f64,
    /// Number of functional faults injected when the logic is wrong.
    pub func_faults: (u32, u32),
    /// Per-fault probability that one corrective iteration of the
    /// Functional Optimization loop fixes a pointed-at functional fault.
    pub func_repair: f64,
    /// Probability a generated testbench is syntactically clean.
    pub tb_syntax_ok: f64,
    /// Probability that a repair iteration also introduces a fresh
    /// syntax fault (models sometimes break code while "fixing" it).
    pub reintroduce: f64,
}

/// A complete model profile: both languages plus serving speed.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelProfile {
    /// Display name used in tables (e.g. `Llama3-70B`).
    pub name: String,
    /// Verilog behaviour.
    pub verilog: LangProfile,
    /// VHDL behaviour.
    pub vhdl: LangProfile,
    /// Serving latency.
    pub latency: LlmLatencyModel,
}

impl ModelProfile {
    /// The language profile for `verilog`-or-VHDL.
    #[must_use]
    pub fn lang(&self, verilog: bool) -> &LangProfile {
        if verilog {
            &self.verilog
        } else {
            &self.vhdl
        }
    }
}

/// Llama3-70B: strong open-weights coder with thin VHDL training data —
/// the paper measures 71.15/37.82 (Verilog S/F) but only 1.28/0 on VHDL.
#[must_use]
pub fn llama3_70b() -> ModelProfile {
    ModelProfile {
        name: "Llama3-70B".into(),
        verilog: LangProfile {
            syntax_ok: 0.7115,
            syntax_faults: (1, 2),
            syntax_repair: 0.82,
            func_ok_given_syntax_ok: 0.5316,
            func_ok_given_syntax_bad: 0.62,
            func_faults: (1, 2),
            func_repair: 0.020,
            tb_syntax_ok: 0.80,
            reintroduce: 0.06,
        },
        vhdl: LangProfile {
            syntax_ok: 0.0128,
            syntax_faults: (1, 2),
            syntax_repair: 0.23,
            func_ok_given_syntax_ok: 0.0,
            func_ok_given_syntax_bad: 0.50,
            func_faults: (1, 2),
            func_repair: 0.075,
            tb_syntax_ok: 0.55,
            reintroduce: 0.10,
        },
        latency: LlmLatencyModel {
            base_s: 2.6,
            tokens_per_s: 65.0,
            jitter: 0.12,
            billed_token_cap: 150,
        },
    }
}

/// GPT-4o: balanced frontier model — 71.79/51.29 Verilog, 39.1/27.56
/// VHDL baselines.
#[must_use]
pub fn gpt4o() -> ModelProfile {
    ModelProfile {
        name: "GPT-4o".into(),
        verilog: LangProfile {
            syntax_ok: 0.7179,
            syntax_faults: (1, 2),
            syntax_repair: 0.88,
            func_ok_given_syntax_ok: 0.7144,
            func_ok_given_syntax_bad: 0.58,
            func_faults: (1, 2),
            func_repair: 0.022,
            tb_syntax_ok: 0.88,
            reintroduce: 0.04,
        },
        vhdl: LangProfile {
            syntax_ok: 0.391,
            syntax_faults: (1, 2),
            syntax_repair: 0.82,
            func_ok_given_syntax_ok: 0.7049,
            func_ok_given_syntax_bad: 0.42,
            func_faults: (1, 2),
            func_repair: 0.045,
            tb_syntax_ok: 0.80,
            reintroduce: 0.05,
        },
        latency: LlmLatencyModel {
            base_s: 1.5,
            tokens_per_s: 90.0,
            jitter: 0.10,
            billed_token_cap: 300,
        },
    }
}

/// Claude 3.5 Sonnet: the strongest RTL generator in the study —
/// 91.03/60.23 Verilog, 88.46/53.85 VHDL baselines, and the best
/// functional-repair behaviour.
#[must_use]
pub fn claude35_sonnet() -> ModelProfile {
    ModelProfile {
        name: "Claude 3.5 Sonnet".into(),
        verilog: LangProfile {
            syntax_ok: 0.9103,
            syntax_faults: (1, 1),
            syntax_repair: 0.95,
            func_ok_given_syntax_ok: 0.65,
            func_ok_given_syntax_bad: 0.55,
            func_faults: (1, 2),
            func_repair: 0.165,
            tb_syntax_ok: 0.95,
            reintroduce: 0.02,
        },
        vhdl: LangProfile {
            syntax_ok: 0.8846,
            syntax_faults: (1, 1),
            syntax_repair: 0.93,
            func_ok_given_syntax_ok: 0.6087,
            func_ok_given_syntax_bad: 0.44,
            func_faults: (1, 2),
            func_repair: 0.08,
            tb_syntax_ok: 0.93,
            reintroduce: 0.02,
        },
        latency: LlmLatencyModel {
            base_s: 2.4,
            tokens_per_s: 60.0,
            jitter: 0.10,
            billed_token_cap: 250,
        },
    }
}

/// All three paper models, in Table 1 order.
#[must_use]
pub fn all() -> Vec<ModelProfile> {
    vec![llama3_70b(), gpt4o(), claude35_sonnet()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probabilities_are_valid() {
        for m in all() {
            for lang in [&m.verilog, &m.vhdl] {
                for p in [
                    lang.syntax_ok,
                    lang.syntax_repair,
                    lang.func_ok_given_syntax_ok,
                    lang.func_ok_given_syntax_bad,
                    lang.func_repair,
                    lang.tb_syntax_ok,
                    lang.reintroduce,
                ] {
                    assert!((0.0..=1.0).contains(&p), "{}: {p}", m.name);
                }
                assert!(lang.syntax_faults.0 >= 1);
                assert!(lang.syntax_faults.1 >= lang.syntax_faults.0);
            }
        }
    }

    #[test]
    fn baselines_match_table1() {
        let l = llama3_70b();
        assert!((l.verilog.syntax_ok - 0.7115).abs() < 1e-6);
        assert!((l.verilog.syntax_ok * l.verilog.func_ok_given_syntax_ok - 0.3782).abs() < 2e-3);
        assert!((l.vhdl.syntax_ok - 0.0128).abs() < 1e-6);
        let c = claude35_sonnet();
        // Claude's functional rate is fitted to *measured* behaviour
        // (which includes a ~1% equivalent-mutant pass-through), so the
        // analytic product sits slightly under the paper value.
        assert!((c.verilog.syntax_ok * c.verilog.func_ok_given_syntax_ok - 0.6023).abs() < 2e-2);
        let g = gpt4o();
        assert!((g.vhdl.syntax_ok * g.vhdl.func_ok_given_syntax_ok - 0.2756).abs() < 2e-3);
    }

    #[test]
    fn model_ordering_of_quality() {
        // Claude must be the strongest Verilog model, Llama the weakest
        // on VHDL — the qualitative shape Table 1 reports.
        let (l, g, c) = (llama3_70b(), gpt4o(), claude35_sonnet());
        assert!(c.verilog.syntax_ok > g.verilog.syntax_ok);
        assert!(g.vhdl.syntax_ok > l.vhdl.syntax_ok);
        assert!(c.vhdl.syntax_ok > g.vhdl.syntax_ok);
    }

    #[test]
    fn lang_selector() {
        let c = claude35_sonnet();
        assert_eq!(c.lang(true).syntax_ok, c.verilog.syntax_ok);
        assert_eq!(c.lang(false).syntax_ok, c.vhdl.syntax_ok);
    }
}
