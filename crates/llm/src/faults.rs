//! Deterministic backend-fault injection for the simulated models.
//!
//! Real LLM backends fail in two distinct ways: the *transport* fails
//! (timeouts, rate limits — the request never yields a message) or the
//! *content* degrades (truncated completions, empty code blocks, code in
//! the wrong language). [`FaultConfig`] models both classes with
//! per-class rates, and every decision is a pure function of the request
//! — model name, seed, attempt counter and message history — so a fault
//! schedule replays bit-identically for any worker-thread count, exactly
//! like the code-fault plans in [`SimLlm`](crate::SimLlm).

use crate::chat::ChatRequest;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::hash_map::DefaultHasher;
use std::fmt;
use std::hash::{Hash, Hasher};

/// A transport-level backend failure: the request consumed modeled time
/// but produced no assistant message. Content-level degradations
/// (truncation, empty blocks, wrong language) are *not* errors — they
/// arrive as ordinary [`ChatResponse`](crate::ChatResponse)s and are the
/// corrective loop's problem, matching how real APIs behave.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LlmError {
    /// The backend did not answer within the modeled deadline.
    Timeout {
        /// Modeled seconds the caller waited before giving up.
        elapsed_s: f64,
    },
    /// The backend rejected the request for quota reasons.
    RateLimited {
        /// Modeled seconds the backend asks the caller to wait
        /// (`Retry-After`).
        retry_after_s: f64,
    },
}

impl LlmError {
    /// Modeled wall-clock seconds the failed attempt consumed.
    #[must_use]
    pub fn elapsed_s(&self) -> f64 {
        match self {
            LlmError::Timeout { elapsed_s } => *elapsed_s,
            // A rate-limit rejection is immediate; the *wait* is advisory
            // and belongs to the caller's backoff policy.
            LlmError::RateLimited { .. } => 0.0,
        }
    }

    /// Stable class label for metrics and logs.
    #[must_use]
    pub fn class(&self) -> &'static str {
        match self {
            LlmError::Timeout { .. } => "timeout",
            LlmError::RateLimited { .. } => "rate_limited",
        }
    }
}

impl fmt::Display for LlmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LlmError::Timeout { elapsed_s } => {
                write!(f, "model backend timed out after {elapsed_s:.1}s")
            }
            LlmError::RateLimited { retry_after_s } => {
                write!(
                    f,
                    "model backend rate-limited (retry after {retry_after_s:.1}s)"
                )
            }
        }
    }
}

impl std::error::Error for LlmError {}

/// One injectable fault class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendFault {
    /// Transport: modeled deadline exceeded ([`LlmError::Timeout`]).
    Timeout,
    /// Transport: quota rejection ([`LlmError::RateLimited`]).
    RateLimited,
    /// Content: the completion stops mid-module (unterminated fence).
    Truncate,
    /// Content: an empty code block.
    Empty,
    /// Content: code in the other HDL than the one requested.
    WrongLanguage,
}

/// Per-class fault rates, parsed from `AIVRIL_FAULTS`.
///
/// All-zero (the default) means injection is off and [`FaultConfig::roll`]
/// never fires, so a faults-off run is *exactly* the pre-fault code path.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultConfig {
    /// Probability of a modeled timeout per attempt.
    pub timeout: f64,
    /// Probability of a rate-limit rejection per attempt.
    pub rate_limit: f64,
    /// Probability of a truncated completion per attempt.
    pub truncate: f64,
    /// Probability of an empty code block per attempt.
    pub empty: f64,
    /// Probability of a wrong-language completion per attempt.
    pub wrong_language: f64,
}

impl FaultConfig {
    /// No injection (the default).
    #[must_use]
    pub fn off() -> FaultConfig {
        FaultConfig::default()
    }

    /// The same rate for every class.
    #[must_use]
    pub fn uniform(rate: f64) -> FaultConfig {
        let r = rate.clamp(0.0, 1.0);
        FaultConfig {
            timeout: r,
            rate_limit: r,
            truncate: r,
            empty: r,
            wrong_language: r,
        }
    }

    /// `true` when every class rate is zero.
    #[must_use]
    pub fn is_off(&self) -> bool {
        self.timeout == 0.0
            && self.rate_limit == 0.0
            && self.truncate == 0.0
            && self.empty == 0.0
            && self.wrong_language == 0.0
    }

    /// Parses the `AIVRIL_FAULTS` syntax:
    ///
    /// - `off`, `0` or the empty string → no injection;
    /// - a single number (`0.05`) → that rate for every class;
    /// - comma-separated `class=rate` pairs
    ///   (`timeout=0.1,rate_limit=0.05,truncate=0.02`); unnamed classes
    ///   stay at zero. Class names: `timeout`, `rate_limit`, `truncate`,
    ///   `empty`, `wrong_language`. Repeating a class is an error —
    ///   last-wins would hide the typo in plans like
    ///   `timeout=0.1,timeout=0.9`.
    pub fn parse(s: &str) -> Result<FaultConfig, String> {
        let s = s.trim();
        if s.is_empty() || s.eq_ignore_ascii_case("off") || s == "0" {
            return Ok(FaultConfig::off());
        }
        if let Ok(rate) = s.parse::<f64>() {
            if !(0.0..=1.0).contains(&rate) {
                return Err(format!("fault rate {rate} outside [0, 1]"));
            }
            return Ok(FaultConfig::uniform(rate));
        }
        let mut cfg = FaultConfig::off();
        let mut seen: Vec<&str> = Vec::new();
        for pair in s.split(',') {
            let pair = pair.trim();
            if pair.is_empty() {
                continue;
            }
            let Some((class, rate)) = pair.split_once('=') else {
                return Err(format!("expected class=rate, got {pair:?}"));
            };
            let rate: f64 = rate
                .trim()
                .parse()
                .map_err(|_| format!("bad rate in {pair:?}"))?;
            if !(0.0..=1.0).contains(&rate) {
                return Err(format!("fault rate {rate} outside [0, 1]"));
            }
            let class = class.trim();
            if seen.contains(&class) {
                return Err(format!("duplicate fault class {class:?}"));
            }
            seen.push(class);
            match class {
                "timeout" => cfg.timeout = rate,
                "rate_limit" => cfg.rate_limit = rate,
                "truncate" => cfg.truncate = rate,
                "empty" => cfg.empty = rate,
                "wrong_language" => cfg.wrong_language = rate,
                other => return Err(format!("unknown fault class {other:?}")),
            }
        }
        Ok(cfg)
    }

    /// Decides whether this attempt faults, and how. Pure function of
    /// `(model, seed, attempt, message history)` — two workers issuing
    /// the same request always roll the same fault, and a *retry* (same
    /// messages, `attempt + 1`) rolls afresh, which is what makes
    /// retries worth anything.
    #[must_use]
    pub fn roll(&self, model: &str, request: &ChatRequest) -> Option<BackendFault> {
        if self.is_off() {
            return None;
        }
        let mut rng = self.rng(model, request);
        let r: f64 = rng.gen_range(0.0..1.0);
        let classes = [
            (self.timeout, BackendFault::Timeout),
            (self.rate_limit, BackendFault::RateLimited),
            (self.truncate, BackendFault::Truncate),
            (self.empty, BackendFault::Empty),
            (self.wrong_language, BackendFault::WrongLanguage),
        ];
        let mut cumulative = 0.0;
        for (rate, fault) in classes {
            cumulative += rate;
            if r < cumulative {
                return Some(fault);
            }
        }
        None
    }

    /// The RNG backing [`FaultConfig::roll`] and the fault parameters
    /// (timeout duration, `retry_after`, truncation point). Exposed
    /// crate-internally so [`SimLlm`](crate::SimLlm) derives those
    /// parameters from the same stream that chose the class.
    pub(crate) fn rng(&self, model: &str, request: &ChatRequest) -> StdRng {
        let mut h = DefaultHasher::new();
        model.hash(&mut h);
        request.params.seed.hash(&mut h);
        request.params.attempt.hash(&mut h);
        for m in &request.messages {
            m.content.hash(&mut h);
        }
        StdRng::seed_from_u64(h.finish())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chat::{GenParams, Message};

    fn request(seed: u64, attempt: u32) -> ChatRequest {
        ChatRequest {
            messages: vec![Message::user("Design task: t.\nWrite the RTL module")],
            params: GenParams {
                seed,
                attempt,
                ..GenParams::default()
            },
        }
    }

    #[test]
    fn parse_accepts_all_forms() {
        assert!(FaultConfig::parse("off").unwrap().is_off());
        assert!(FaultConfig::parse("0").unwrap().is_off());
        assert!(FaultConfig::parse("").unwrap().is_off());
        let u = FaultConfig::parse("0.25").unwrap();
        assert_eq!(u, FaultConfig::uniform(0.25));
        let c = FaultConfig::parse("timeout=0.1, rate_limit=0.05").unwrap();
        assert_eq!(c.timeout, 0.1);
        assert_eq!(c.rate_limit, 0.05);
        assert_eq!(c.truncate, 0.0);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(FaultConfig::parse("1.5").is_err());
        assert!(FaultConfig::parse("timeout=nope").is_err());
        assert!(FaultConfig::parse("warp_core_breach=0.1").is_err());
        assert!(FaultConfig::parse("just_a_name").is_err());
    }

    #[test]
    fn parse_rejects_duplicate_classes() {
        // Last-wins used to hide the typo entirely.
        let err = FaultConfig::parse("timeout=0.1,timeout=0.9").unwrap_err();
        assert!(err.contains("duplicate fault class"), "{err}");
        assert!(err.contains("timeout"), "{err}");
        // Even an identical repeat is refused: the plan is malformed.
        assert!(FaultConfig::parse("empty=0.2, empty=0.2").is_err());
        // Distinct classes still compose.
        let ok = FaultConfig::parse("timeout=0.1,rate_limit=0.2,empty=0.3").unwrap();
        assert_eq!(ok.timeout, 0.1);
        assert_eq!(ok.rate_limit, 0.2);
        assert_eq!(ok.empty, 0.3);
    }

    #[test]
    fn off_never_faults() {
        let cfg = FaultConfig::off();
        for seed in 0..100 {
            assert_eq!(cfg.roll("m", &request(seed, 0)), None);
        }
    }

    #[test]
    fn rolls_are_deterministic_and_attempt_sensitive() {
        let cfg = FaultConfig::uniform(0.2);
        for seed in 0..50 {
            let a = cfg.roll("m", &request(seed, 0));
            let b = cfg.roll("m", &request(seed, 0));
            assert_eq!(a, b, "same request, same verdict");
        }
        // A retry (attempt + 1) must re-roll: over many seeds the two
        // attempt streams cannot be identical.
        let differs = (0..200)
            .any(|seed| cfg.roll("m", &request(seed, 0)) != cfg.roll("m", &request(seed, 1)));
        assert!(differs, "attempt counter must decorrelate retries");
    }

    #[test]
    fn rates_are_roughly_honoured() {
        let cfg = FaultConfig {
            timeout: 0.5,
            ..FaultConfig::off()
        };
        let hits = (0..400)
            .filter(|&seed| cfg.roll("m", &request(seed, 0)) == Some(BackendFault::Timeout))
            .count();
        assert!((120..=280).contains(&hits), "hits={hits}");
    }

    #[test]
    fn error_accessors() {
        let t = LlmError::Timeout { elapsed_s: 30.0 };
        assert_eq!(t.class(), "timeout");
        assert_eq!(t.elapsed_s(), 30.0);
        assert!(t.to_string().contains("timed out"));
        let r = LlmError::RateLimited { retry_after_s: 4.0 };
        assert_eq!(r.class(), "rate_limited");
        assert_eq!(r.elapsed_s(), 0.0);
        assert!(r.to_string().contains("retry after"));
    }
}
