//! The 16 circuit families making up the 156-problem suite.
//!
//! Each family module exposes `extend(&mut Vec<Problem>)`, contributing
//! its instances: a Rust golden model, golden Verilog and VHDL DUTs,
//! and (via the crate's builder helpers, re-exported as
//! [`crate::CombSpec`]/[`crate::SeqSpec`]) exhaustive self-checking
//! testbenches.

pub mod adder;
pub mod alu;
pub mod comparator;
pub mod counter;
pub mod decoder;
pub mod edge;
pub mod encoder;
pub mod fsm;
pub mod gates;
pub mod gray;
pub mod mux;
pub mod parity;
pub mod popcount;
pub mod sevenseg;
pub mod shifter;
pub mod shiftreg;
