//! The (deliberately small) test runner: deterministic per-case RNGs,
//! case-count configuration, and the error type `prop_assert!` returns.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::hash_map::DefaultHasher;
use std::fmt;
use std::hash::{Hash, Hasher};

/// The RNG handed to strategies.
pub type TestRng = StdRng;

/// Runner configuration; only the case count is honoured by this
/// vendored stand-in.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
    /// Accepted for compatibility with upstream proptest configs; this
    /// stand-in reports the failing inputs directly instead of
    /// shrinking, so the value is never consulted.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 1024,
        }
    }
}

/// A failed property case (no shrinking: the message carries the
/// formatted assertion).
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Wraps an assertion message.
    #[must_use]
    pub fn fail(message: String) -> TestCaseError {
        TestCaseError { message }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// Resolves the case count: the `PROPTEST_CASES` environment variable
/// overrides the configured value (useful for quick CI smoke runs).
#[must_use]
pub fn resolve_cases(configured: u32) -> u64 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(u64::from(configured))
        .max(1)
}

/// Deterministic RNG for one case of one property: seeded from the
/// test identifier and case index, so failures reproduce exactly.
#[must_use]
pub fn case_rng(test_id: &str, case: u64) -> TestRng {
    let mut h = DefaultHasher::new();
    test_id.hash(&mut h);
    case.hash(&mut h);
    StdRng::seed_from_u64(h.finish())
}
