//! Per-model latency model.
//!
//! The paper's Figure 3 reports *end-to-end* latency: LLM inference time
//! dominates, with EDA tool launches adding seconds. Our simulated
//! models answer instantly, so — per the DESIGN.md substitution policy —
//! we model inference latency from the response length and per-model
//! serving speed, with a small deterministic jitter so averages look
//! like measurements rather than constants.

/// Latency constants for one hosted model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LlmLatencyModel {
    /// Fixed round-trip + prefill seconds per request.
    pub base_s: f64,
    /// Decoding speed in tokens per second.
    pub tokens_per_s: f64,
    /// Relative jitter amplitude (0.1 = ±10%).
    pub jitter: f64,
    /// Billing cap on completion tokens. The simulated models inline the
    /// fully unrolled reference testbenches, while the hosted models the
    /// paper measured emit compact loop-based equivalents a few hundred
    /// tokens long; billing the equivalent length keeps the Figure 3
    /// scale honest.
    pub billed_token_cap: u64,
}

impl LlmLatencyModel {
    /// Modeled seconds to generate `completion_tokens`, with `noise` in
    /// `[0, 1)` steering the jitter deterministically.
    #[must_use]
    pub fn seconds(&self, completion_tokens: u64, noise: f64) -> f64 {
        let billed = completion_tokens.min(self.billed_token_cap);
        let raw = self.base_s + billed as f64 / self.tokens_per_s;
        let factor = 1.0 + self.jitter * (2.0 * noise - 1.0);
        raw * factor
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const M: LlmLatencyModel = LlmLatencyModel {
        base_s: 0.8,
        tokens_per_s: 100.0,
        jitter: 0.1,
        billed_token_cap: 10_000,
    };

    #[test]
    fn longer_outputs_take_longer() {
        assert!(M.seconds(2000, 0.5) > M.seconds(100, 0.5));
    }

    #[test]
    fn jitter_is_bounded() {
        let nominal = M.seconds(500, 0.5);
        for noise in [0.0, 0.25, 0.75, 0.999] {
            let v = M.seconds(500, noise);
            assert!(v >= nominal * 0.9 - 1e-9 && v <= nominal * 1.1 + 1e-9);
        }
    }

    #[test]
    fn deterministic_for_same_noise() {
        assert_eq!(M.seconds(321, 0.3), M.seconds(321, 0.3));
    }

    #[test]
    fn billing_cap_bounds_latency() {
        let m = LlmLatencyModel {
            billed_token_cap: 500,
            ..M
        };
        assert_eq!(m.seconds(50_000, 0.5), m.seconds(500, 0.5));
        assert!(m.seconds(50_000, 0.5) < M.seconds(50_000, 0.5));
    }
}
