//! Quickstart: the paper's Fig. 2 walkthrough.
//!
//! Runs the full AIVRIL2 pipeline on the shift-register-style benchmark
//! task with the Claude 3.5 Sonnet profile and prints the step-by-step
//! agent workflow (testbench generation → syntax loop → RTL generation
//! → syntax loop → functional loop), then the final RTL.
//!
//! Run with:
//! ```text
//! cargo run --release -p aivril-bench --example quickstart
//! ```

use aivril_bench::{build_library, Harness, HarnessConfig};
use aivril_core::{Aivril2, Aivril2Config, TaskInput};
use aivril_eda::XsimToolSuite;
use aivril_llm::{profiles, SimLlm};

fn main() {
    // The benchmark suite supplies the task; `sipo_w4` is the closest
    // relative of the paper's shift-register example.
    let harness = Harness::new(HarnessConfig::default());
    let problem = harness
        .problems()
        .iter()
        .find(|p| p.name.contains("sipo_w4"))
        .expect("shift-register task present in the suite");

    println!(
        "=== Fig. 2 step 1: the user requirement ===\n{}",
        problem.spec
    );

    // A simulated Claude 3.5 Sonnet stands in for the hosted model; seed
    // 16 is a sample whose initial code carries both a syntax and a
    // functional fault, so every loop has work to do — and, like the
    // paper's Fig. 2 run, it ends in "All tests passed successfully!"
    // (try other seeds to see clean one-shot runs or budget exhaustion).
    let mut model = SimLlm::new(
        profiles::claude35_sonnet(),
        build_library(harness.problems()),
    );
    let tools = XsimToolSuite::new();
    let pipeline = Aivril2::new(&tools, Aivril2Config::default());
    let task = TaskInput {
        name: problem.name.clone(),
        module_name: problem.module_name.clone(),
        spec: problem.spec.clone(),
        verilog: true,
        seed: 16,
    };
    let result = pipeline.run(&mut model, &task);

    println!("=== Fig. 2 steps 2-8: the agent workflow ===");
    println!("{}", result.trace.narration());
    println!(
        "pipeline verdict: syntax {} / functional {}",
        if result.syntax_pass { "PASS" } else { "FAIL" },
        if result.functional_pass {
            "PASS"
        } else {
            "FAIL"
        },
    );

    // External scoring, exactly as the evaluation does it: compile the
    // final RTL alone, then run the benchmark's reference testbench.
    let (syntax, functional) = harness.score(problem, &result.final_rtl, true);
    println!("reference-testbench verdict: syntax {syntax} / functional {functional}");
    println!(
        "total modeled latency: {:.1}s ({:.1}s syntax phase, {:.1}s functional phase)\n",
        result.trace.total_latency(),
        result.trace.syntax_phase_latency(),
        result.trace.functional_phase_latency(),
    );
    println!("=== final RTL ===\n{}", result.final_rtl);
}
