//! Deterministic tool-latency model.
//!
//! The paper reports end-to-end latency (Figure 3) as LLM time plus EDA
//! tool time. Our tools are in-process and essentially instantaneous, so
//! — per the substitution policy in DESIGN.md — we *model* the wall
//! clock a real `xvlog`/`xsim` invocation would cost: a fixed process
//! start-up overhead plus a workload-proportional term. The constants
//! are calibrated to small-benchmark Vivado behaviour (a second-ish per
//! tool launch) so that the reproduced Figure 3 keeps the paper's
//! LLM-dominated latency profile.

/// Latency model for the compile and simulate steps.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ToolLatencyModel {
    /// Fixed seconds per compiler launch.
    pub compile_base: f64,
    /// Seconds per kilobyte of analysed source.
    pub compile_per_kb: f64,
    /// Fixed seconds per simulator launch (elaboration included).
    pub sim_base: f64,
    /// Seconds per million executed process instructions.
    pub sim_per_minstr: f64,
}

impl Default for ToolLatencyModel {
    fn default() -> ToolLatencyModel {
        ToolLatencyModel {
            compile_base: 0.5,
            compile_per_kb: 0.004,
            sim_base: 0.8,
            sim_per_minstr: 0.5,
        }
    }
}

impl ToolLatencyModel {
    /// Modeled seconds for compiling `bytes` of source.
    #[must_use]
    pub fn compile_seconds(&self, bytes: usize) -> f64 {
        self.compile_base + self.compile_per_kb * (bytes as f64 / 1024.0)
    }

    /// Modeled seconds for a simulation that executed `instrs`
    /// instructions.
    #[must_use]
    pub fn sim_seconds(&self, instrs: u64) -> f64 {
        self.sim_base + self.sim_per_minstr * (instrs as f64 / 1.0e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compile_latency_grows_with_source() {
        let m = ToolLatencyModel::default();
        assert!(m.compile_seconds(10_000) > m.compile_seconds(100));
        assert!(m.compile_seconds(0) >= m.compile_base);
    }

    #[test]
    fn sim_latency_grows_with_work() {
        let m = ToolLatencyModel::default();
        assert!(m.sim_seconds(5_000_000) > m.sim_seconds(1_000));
    }

    #[test]
    fn deterministic() {
        let m = ToolLatencyModel::default();
        assert_eq!(m.compile_seconds(4096), m.compile_seconds(4096));
    }
}
