//! Persistent EDA-cache robustness suite: the on-disk tier
//! (`AIVRIL_EDA_CACHE_DIR`) must accelerate later processes without
//! ever changing results — and must treat every corrupt byte on disk
//! as a miss, never a panic and never a wrong report.

use aivril_bench::{Flow, Harness, HarnessConfig};
use aivril_llm::profiles;
use aivril_metrics::EvalOutcome;
use std::fs;
use std::path::{Path, PathBuf};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("aivril-diskcache-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn config(dir: Option<&Path>, threads: usize) -> HarnessConfig {
    HarnessConfig {
        samples: 2,
        task_limit: 4,
        threads,
        eda_cache: true,
        eda_cache_dir: dir.map(|d| d.to_str().expect("utf-8 temp path").to_string()),
        ..HarnessConfig::default()
    }
}

fn evaluate(h: &Harness) -> (Vec<EvalOutcome>, aivril_bench::EvalStats) {
    h.evaluate_with_stats(&profiles::claude35_sonnet(), true, Flow::Aivril2)
}

fn assert_bit_identical(a: &[EvalOutcome], b: &[EvalOutcome], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}");
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.task, y.task, "{what}");
        for (s, t) in x.samples.iter().zip(&y.samples) {
            assert_eq!(s.syntax, t.syntax, "{what}: {}", x.task);
            assert_eq!(s.functional, t.functional, "{what}: {}", x.task);
            assert_eq!(
                s.total_latency.to_bits(),
                t.total_latency.to_bits(),
                "{what}: {} latency",
                x.task
            );
        }
    }
}

#[test]
fn disk_tier_replays_across_harnesses_bit_identically() {
    let dir = temp_dir("roundtrip");
    let reference = {
        let h = Harness::new(config(None, 2));
        evaluate(&h).0
    };

    let first = Harness::new(config(Some(&dir), 2));
    assert_eq!(
        first.disk_cache_stats().expect("disk tier on"),
        aivril_eda::DiskStats::default()
    );
    let (outcomes_a, stats_a) = evaluate(&first);
    assert_bit_identical(&reference, &outcomes_a, "disk tier must not change results");
    let disk_a = first.disk_cache_stats().unwrap();
    assert!(disk_a.writes > 0, "computed results must be persisted");
    assert_eq!(disk_a.hits, 0, "an empty store cannot hit");

    // A second, fresh harness over the same directory: same results,
    // now answered from disk.
    let second = Harness::new(config(Some(&dir), 2));
    let (outcomes_b, stats_b) = evaluate(&second);
    assert_bit_identical(&reference, &outcomes_b, "disk hits must be byte-identical");
    let disk_b = second.disk_cache_stats().unwrap();
    assert!(disk_b.hits > 0, "second process must hit the disk store");
    assert_eq!(disk_b.writes, 0, "disk-loaded values are never re-written");

    // Whole-invocation accounting stays schedule- and disk-independent:
    // the disk probe happens *after* the memory miss is recorded. The
    // incremental parse/elab counters are phase-level by design — a
    // disk-replayed invocation never runs its phases — so a warm disk
    // legitimately shrinks them and they are excluded here.
    let (a, b) = (
        stats_a.eda_cache.expect("cache on"),
        stats_b.eda_cache.expect("cache on"),
    );
    assert_eq!(
        (a.hits, a.misses, a.entries),
        (b.hits, b.misses, b.entries),
        "whole-invocation accounting must not depend on the disk tier's contents"
    );
    assert!(
        b.parse_misses <= a.parse_misses && b.elab_misses <= a.elab_misses,
        "disk replays can only skip phase work, never add it"
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn memory_accounting_is_thread_independent_with_disk_tier_on() {
    let dir1 = temp_dir("threads1");
    let dir4 = temp_dir("threads4");
    let (_, stats_serial) = evaluate(&Harness::new(config(Some(&dir1), 1)));
    let (_, stats_parallel) = evaluate(&Harness::new(config(Some(&dir4), 4)));
    assert_eq!(
        stats_serial.eda_cache, stats_parallel.eda_cache,
        "hit accounting must be schedule-independent with the disk tier on"
    );
    let _ = fs::remove_dir_all(&dir1);
    let _ = fs::remove_dir_all(&dir4);
}

#[test]
fn corrupt_entries_degrade_to_miss_with_correct_results() {
    let dir = temp_dir("corrupt");
    let reference = {
        let h = Harness::new(config(Some(&dir), 2));
        evaluate(&h).0
    };

    // Vandalise every entry in a rotating set of ways: truncation,
    // garbage bytes, a wrong version header, a flipped checksum.
    let mut entries: Vec<PathBuf> = fs::read_dir(&dir)
        .unwrap()
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "entry"))
        .collect();
    entries.sort();
    assert!(!entries.is_empty(), "the first run persisted entries");
    for (i, path) in entries.iter().enumerate() {
        let text = fs::read_to_string(path).unwrap();
        match i % 4 {
            0 => fs::write(path, &text[..text.len() / 2]).unwrap(),
            1 => fs::write(path, b"\x00\xffnot a cache entry\x00").unwrap(),
            2 => fs::write(
                path,
                text.replace("aivril.edacache 1 ", "aivril.edacache 99 "),
            )
            .unwrap(),
            _ => fs::write(path, text.replace(char::is_numeric, "5")).unwrap(),
        }
    }

    let h = Harness::new(config(Some(&dir), 2));
    let (outcomes, _) = evaluate(&h);
    assert_bit_identical(
        &reference,
        &outcomes,
        "corrupt entries must never surface as wrong reports",
    );
    let disk = h.disk_cache_stats().unwrap();
    assert_eq!(disk.hits, 0, "every vandalised entry must miss: {disk:?}");
    assert!(disk.errors > 0, "corruption must be counted: {disk:?}");
    assert!(disk.writes > 0, "recomputed results are re-persisted");

    // And a final pass over the healed store hits again.
    let healed = Harness::new(config(Some(&dir), 2));
    let (outcomes, _) = evaluate(&healed);
    assert_bit_identical(&reference, &outcomes, "healed store");
    assert!(healed.disk_cache_stats().unwrap().hits > 0);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn racing_writers_are_atomic_and_consistent() {
    let dir = temp_dir("race");
    let reference = {
        let h = Harness::new(config(None, 2));
        evaluate(&h).0
    };

    // Two independent harnesses (≈ two shard processes) hammer the
    // same directory concurrently. Tempfile + rename staging means a
    // reader can only ever see absent or complete entries, and both
    // writers produce identical bytes for a given key.
    std::thread::scope(|scope| {
        for _ in 0..2 {
            let (dir, reference) = (&dir, &reference);
            scope.spawn(move || {
                let h = Harness::new(config(Some(dir), 2));
                let (outcomes, _) = evaluate(&h);
                assert_bit_identical(reference, &outcomes, "racing writer");
            });
        }
    });

    // Whatever interleaving happened, the store is fully readable.
    let h = Harness::new(config(Some(&dir), 1));
    let (outcomes, _) = evaluate(&h);
    assert_bit_identical(&reference, &outcomes, "post-race reader");
    let disk = h.disk_cache_stats().unwrap();
    assert!(disk.hits > 0 && disk.errors == 0, "{disk:?}");
    // No tempfiles leaked past the renames.
    let leftovers: Vec<_> = fs::read_dir(&dir)
        .unwrap()
        .flatten()
        .filter(|e| e.file_name().to_string_lossy().starts_with(".tmp-"))
        .collect();
    assert!(leftovers.is_empty(), "staging files must be renamed away");
    let _ = fs::remove_dir_all(&dir);
}
