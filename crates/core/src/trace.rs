//! Run traces: the per-stage record from which iteration counts and the
//! Figure 3 latency breakdown are computed.

use std::fmt;

/// The pipeline stage an event belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Testbench generation (Fig. 2 step ②).
    TbGeneration,
    /// Syntax Optimization loop over the testbench.
    TbSyntaxLoop,
    /// Initial RTL generation (step ③).
    RtlGeneration,
    /// Syntax Optimization loop over the RTL (steps ④ and successors).
    RtlSyntaxLoop,
    /// Functional Optimization loop (steps ⑤–⑧).
    FunctionalLoop,
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Stage::TbGeneration => "testbench generation",
            Stage::TbSyntaxLoop => "testbench syntax loop",
            Stage::RtlGeneration => "RTL generation",
            Stage::RtlSyntaxLoop => "RTL syntax loop",
            Stage::FunctionalLoop => "functional loop",
        };
        f.write_str(s)
    }
}

/// What kind of step a [`TraceEvent`] records. Analyses (iteration
/// counts, latency attribution) branch on this, never on the free-form
/// narration text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceEventKind {
    /// A clarification exchange with the user agent.
    Clarification,
    /// A fresh artifact generation (testbench or RTL, incl. baseline).
    Generation,
    /// A static analysis pass (ReviewAgent testbench analysis).
    Analysis,
    /// A compiler invocation.
    Compile,
    /// A simulation run.
    Simulate,
    /// A corrective revision driven by tool feedback.
    Revise,
    /// A rollback after a regressing revision.
    Rollback,
    /// A retried model call after a transport fault; `llm_latency`
    /// carries the failed attempt plus the backoff wait, both on the
    /// modeled clock.
    Retry,
    /// A graceful degradation: the pipeline gave up on a step (retries
    /// exhausted, circuit breaker open, or an unusable generation) and
    /// continued with its best-so-far output.
    Degraded,
}

/// One recorded step.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Stage the event belongs to.
    pub stage: Stage,
    /// What kind of step this is (the machine-readable classification).
    pub kind: TraceEventKind,
    /// Short narration for display only, e.g. `compile: 2 syntax errors`.
    pub what: String,
    /// Modeled LLM seconds spent in this event.
    pub llm_latency: f64,
    /// Modeled EDA-tool seconds spent in this event.
    pub tool_latency: f64,
}

/// Complete record of one pipeline run.
#[derive(Debug, Clone, Default)]
pub struct RunTrace {
    /// Events in order.
    pub events: Vec<TraceEvent>,
}

impl RunTrace {
    /// Appends an event.
    pub fn push(
        &mut self,
        stage: Stage,
        kind: TraceEventKind,
        what: impl Into<String>,
        llm_latency: f64,
        tool_latency: f64,
    ) {
        self.events.push(TraceEvent {
            stage,
            kind,
            what: what.into(),
            llm_latency,
            tool_latency,
        });
    }

    /// Total modeled seconds (LLM + tools).
    #[must_use]
    pub fn total_latency(&self) -> f64 {
        self.events
            .iter()
            .map(|e| e.llm_latency + e.tool_latency)
            .sum()
    }

    /// Total modeled seconds spent waiting on the language model.
    #[must_use]
    pub fn llm_latency(&self) -> f64 {
        self.events.iter().map(|e| e.llm_latency).sum()
    }

    /// Total modeled seconds spent waiting on the EDA tools.
    #[must_use]
    pub fn tool_latency(&self) -> f64 {
        self.events.iter().map(|e| e.tool_latency).sum()
    }

    /// Modeled seconds spent in `stage`.
    #[must_use]
    pub fn stage_latency(&self, stage: Stage) -> f64 {
        self.events
            .iter()
            .filter(|e| e.stage == stage)
            .map(|e| e.llm_latency + e.tool_latency)
            .sum()
    }

    /// Seconds attributable to the Syntax Optimization loops (testbench
    /// generation + both syntax loops + initial RTL generation), the way
    /// Figure 3 buckets them.
    #[must_use]
    pub fn syntax_phase_latency(&self) -> f64 {
        self.stage_latency(Stage::TbGeneration)
            + self.stage_latency(Stage::TbSyntaxLoop)
            + self.stage_latency(Stage::RtlGeneration)
            + self.stage_latency(Stage::RtlSyntaxLoop)
    }

    /// Seconds attributable to the Functional Optimization loop.
    #[must_use]
    pub fn functional_phase_latency(&self) -> f64 {
        self.stage_latency(Stage::FunctionalLoop)
    }

    /// Number of corrective iterations recorded for `stage` (events
    /// typed as [`TraceEventKind::Revise`]).
    #[must_use]
    pub fn iterations(&self, stage: Stage) -> u32 {
        self.events
            .iter()
            .filter(|e| e.stage == stage && e.kind == TraceEventKind::Revise)
            .count() as u32
    }

    /// Renders a compact, human-readable workflow narration (the Fig. 2
    /// style step list).
    #[must_use]
    pub fn narration(&self) -> String {
        let mut out = String::new();
        for (i, e) in self.events.iter().enumerate() {
            out.push_str(&format!(
                "{:2}. [{}] {} (llm {:.2}s, tools {:.2}s)\n",
                i + 1,
                e.stage,
                e.what,
                e.llm_latency,
                e.tool_latency
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use TraceEventKind as K;

    fn sample() -> RunTrace {
        let mut t = RunTrace::default();
        t.push(
            Stage::TbGeneration,
            K::Generation,
            "generate testbench",
            4.0,
            0.0,
        );
        t.push(Stage::TbSyntaxLoop, K::Compile, "compile: clean", 0.0, 1.0);
        t.push(
            Stage::RtlGeneration,
            K::Generation,
            "generate RTL",
            5.0,
            0.0,
        );
        t.push(
            Stage::RtlSyntaxLoop,
            K::Compile,
            "compile: 1 syntax error",
            0.0,
            1.0,
        );
        t.push(
            Stage::RtlSyntaxLoop,
            K::Revise,
            "revise after syntax feedback",
            3.0,
            0.0,
        );
        t.push(
            Stage::FunctionalLoop,
            K::Simulate,
            "simulate: 1 failing test",
            0.0,
            2.0,
        );
        t.push(
            Stage::FunctionalLoop,
            K::Revise,
            "revise after functional feedback",
            3.5,
            0.0,
        );
        t
    }

    #[test]
    fn latency_buckets() {
        let t = sample();
        assert!((t.total_latency() - 19.5).abs() < 1e-9);
        assert!((t.syntax_phase_latency() - 14.0).abs() < 1e-9);
        assert!((t.functional_phase_latency() - 5.5).abs() < 1e-9);
    }

    #[test]
    fn llm_tool_split_sums_to_total() {
        let t = sample();
        assert!((t.llm_latency() - 15.5).abs() < 1e-9);
        assert!((t.tool_latency() - 4.0).abs() < 1e-9);
        assert!((t.llm_latency() + t.tool_latency() - t.total_latency()).abs() < 1e-9);
    }

    #[test]
    fn iteration_counting() {
        let t = sample();
        assert_eq!(t.iterations(Stage::RtlSyntaxLoop), 1);
        assert_eq!(t.iterations(Stage::FunctionalLoop), 1);
        assert_eq!(t.iterations(Stage::TbSyntaxLoop), 0);
    }

    #[test]
    fn iteration_counting_is_typed_not_textual() {
        // Narration text is display-only: a "revise"-looking narration
        // with a non-Revise kind must not count, and vice versa.
        let mut t = RunTrace::default();
        t.push(
            Stage::RtlSyntaxLoop,
            K::Analysis,
            "revise plan drafted",
            1.0,
            0.0,
        );
        t.push(Stage::RtlSyntaxLoop, K::Revise, "second attempt", 1.0, 0.0);
        assert_eq!(t.iterations(Stage::RtlSyntaxLoop), 1);
    }

    #[test]
    fn narration_lists_steps() {
        let n = sample().narration();
        assert_eq!(n.lines().count(), 7);
        assert!(n.contains("functional loop"));
    }
}
