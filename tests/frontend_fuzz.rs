//! Frontend fuzz suite (proptest): the Verilog and VHDL lexers,
//! parsers and elaborators must be *total* — arbitrary byte soup,
//! mangled real designs and reordered token streams may produce any
//! number of diagnostics, but never a panic.
//!
//! The agent loop feeds LLM-generated (and, under fault injection,
//! truncated or wrong-language) code to these frontends on every
//! iteration, so a panicking corner case is a pipeline-crashing bug.

use aivril_hdl::diag::Diagnostics;
use aivril_hdl::source::SourceMap;
use proptest::prelude::*;
use std::sync::OnceLock;

fn suite() -> &'static [aivril_verilogeval::Problem] {
    static SUITE: OnceLock<Vec<aivril_verilogeval::Problem>> = OnceLock::new();
    SUITE.get_or_init(aivril_verilogeval::suite)
}

/// Real sources to mutate: Verilog and VHDL DUTs and testbenches.
fn corpus() -> &'static [(bool, String)] {
    static CORPUS: OnceLock<Vec<(bool, String)>> = OnceLock::new();
    CORPUS.get_or_init(|| {
        suite()
            .iter()
            .take(16)
            .flat_map(|p| {
                [
                    (true, p.verilog.dut.clone()),
                    (true, p.verilog.tb.clone()),
                    (false, p.vhdl.dut.clone()),
                    (false, p.vhdl.tb.clone()),
                ]
            })
            .collect()
    })
}

/// Runs the full frontend stack on one text: analyze (lex + parse),
/// top-module inference, then elaboration of whatever top was found.
/// The property is simply that this returns.
fn exercise_frontends(text: &str) {
    let mut sources = SourceMap::new();
    sources.add_file("fuzz.v", text.to_string());
    let (unit, _) = aivril_verilog::analyze(&sources);
    if let Some(top) = aivril_verilog::find_top(&unit) {
        let _ = aivril_verilog::compile(&sources, &top);
    }
    let mut sources = SourceMap::new();
    sources.add_file("fuzz.vhd", text.to_string());
    let (file, _) = aivril_vhdl::analyze(&sources);
    if let Some(top) = aivril_vhdl::find_top(&file) {
        let _ = aivril_vhdl::compile(&sources, &top);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Raw byte soup (lossily decoded) never panics either frontend.
    #[test]
    fn frontends_survive_byte_soup(bytes in proptest::collection::vec(0u8..=255, 0..400)) {
        let text = String::from_utf8_lossy(&bytes).into_owned();
        exercise_frontends(&text);
    }

    /// Arbitrary unicode never panics either frontend (exercises
    /// multi-byte characters inside identifiers, strings and comments).
    #[test]
    fn frontends_survive_unicode(
        codepoints in proptest::collection::vec(0u32..0x11_0000, 0..200),
    ) {
        let text: String = codepoints.iter().filter_map(|&c| char::from_u32(c)).collect();
        exercise_frontends(&text);
    }

    /// Splicing a random window of one real design into another —
    /// plausible LLM-mangled output — never panics.
    #[test]
    fn frontends_survive_spliced_designs(
        a in 0usize..64,
        b in 0usize..64,
        cut in 0usize..4000,
        len in 0usize..400,
    ) {
        let corpus = corpus();
        let (_, src) = &corpus[a % corpus.len()];
        let (_, donor) = &corpus[b % corpus.len()];
        let start = cut % donor.len().max(1);
        let end = (start + len).min(donor.len());
        // Byte-offset splices can land mid-char only in ASCII sources
        // (the corpus is ASCII), so direct slicing is safe here.
        let mut text = src.clone();
        let at = cut % text.len().max(1);
        text.insert_str(at, &donor[start..end]);
        exercise_frontends(&text);
    }

    /// Token reordering: lex a real Verilog design, swap token pairs,
    /// and re-parse + elaborate. The parser must absorb any ordering.
    #[test]
    fn verilog_parser_survives_token_reordering(
        idx in 0usize..32,
        swaps in proptest::collection::vec((0usize..5000, 0usize..5000), 1..24),
    ) {
        let corpus = corpus();
        let (_, src) = corpus
            .iter()
            .filter(|(verilog, _)| *verilog)
            .nth(idx % 32)
            .expect("corpus has 32 verilog sources");
        let mut sources = SourceMap::new();
        let file = sources.add_file("reorder.v", src.clone());
        let mut diags = Diagnostics::new();
        let mut tokens = aivril_verilog::lex(file, sources.file(file).text(), &mut diags);
        for &(i, j) in &swaps {
            if !tokens.is_empty() {
                let (i, j) = (i % tokens.len(), j % tokens.len());
                tokens.swap(i, j);
            }
        }
        let unit = aivril_verilog::parse(tokens, &mut diags);
        if let Some(top) = aivril_verilog::find_top(&unit) {
            let _ = aivril_verilog::elaborate(&unit, &top, &mut diags);
        }
    }

    /// Same property for the VHDL frontend.
    #[test]
    fn vhdl_parser_survives_token_reordering(
        idx in 0usize..32,
        swaps in proptest::collection::vec((0usize..5000, 0usize..5000), 1..24),
    ) {
        let corpus = corpus();
        let (_, src) = corpus
            .iter()
            .filter(|(verilog, _)| !*verilog)
            .nth(idx % 32)
            .expect("corpus has 32 vhdl sources");
        let mut sources = SourceMap::new();
        let file = sources.add_file("reorder.vhd", src.clone());
        let mut diags = Diagnostics::new();
        let mut tokens = aivril_vhdl::lex(file, sources.file(file).text(), &mut diags);
        for &(i, j) in &swaps {
            if !tokens.is_empty() {
                let (i, j) = (i % tokens.len(), j % tokens.len());
                tokens.swap(i, j);
            }
        }
        let file = aivril_vhdl::parse(tokens, &mut diags);
        if let Some(top) = aivril_vhdl::find_top(&file) {
            let _ = aivril_vhdl::elaborate(&file, &top, &mut diags);
        }
    }
}
