//! A VerilogEval-Human-style benchmark suite, generated deterministically.
//!
//! The paper evaluates AIVRIL2 on the 156 problems of VerilogEval-Human
//! [Liu et al., ICCAD'23]. That dataset (and its reference testbenches)
//! cannot be redistributed here, so this crate synthesises a suite with
//! the same role and shape: **156 problems** across 16 circuit families
//! spanning combinational logic (gates, muxes, decoders, encoders,
//! adders, comparators, parity, popcount, shifters, Gray code,
//! seven-segment, ALUs) and sequential logic (counters, shift registers,
//! edge detectors, FSM sequence detectors).
//!
//! Every [`Problem`] carries:
//!
//! * a natural-language **spec** (the prompt a Code Agent receives),
//! * a golden **Verilog** DUT and a golden **VHDL** DUT,
//! * exhaustive self-checking **reference testbenches** in both
//!   languages whose expected vectors come from a Rust golden model
//!   (combinational problems enumerate the full input space up to 10
//!   bits, then fall back to 64 seeded pseudo-random vectors; sequential
//!   problems run directed multi-cycle stimulus).
//!
//! An integration test (and `aivril-bench`) checks the core invariant:
//! every golden DUT passes its own testbench in both languages under
//! the `aivril-eda` tool suite.
//!
//! # Example
//!
//! ```
//! use aivril_verilogeval::suite;
//!
//! let problems = suite();
//! assert_eq!(problems.len(), 156);
//! let p = &problems[0];
//! assert!(p.spec.contains(&p.module_name));
//! assert!(p.verilog.dut.contains("module"));
//! assert!(p.vhdl.dut.contains("entity"));
//! ```

#![warn(missing_docs)]

mod builders;
pub mod families;
mod port;

pub use builders::{CombSpec, SeqSpec};
pub use port::Port;

use std::fmt;

/// Circuit family a problem belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)]
pub enum Family {
    Gates,
    Mux,
    Decoder,
    Encoder,
    Adder,
    Comparator,
    Parity,
    Popcount,
    Shifter,
    GrayCode,
    SevenSegment,
    Alu,
    Counter,
    ShiftRegister,
    EdgeDetector,
    Fsm,
}

impl fmt::Display for Family {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Family::Gates => "gates",
            Family::Mux => "mux",
            Family::Decoder => "decoder",
            Family::Encoder => "encoder",
            Family::Adder => "adder",
            Family::Comparator => "comparator",
            Family::Parity => "parity",
            Family::Popcount => "popcount",
            Family::Shifter => "shifter",
            Family::GrayCode => "gray",
            Family::SevenSegment => "sevenseg",
            Family::Alu => "alu",
            Family::Counter => "counter",
            Family::ShiftRegister => "shift_register",
            Family::EdgeDetector => "edge_detector",
            Family::Fsm => "fsm",
        };
        f.write_str(s)
    }
}

/// Rough difficulty bucket, mirroring VerilogEval-Human's mix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Difficulty {
    /// Single-expression combinational logic.
    Easy,
    /// Multi-signal combinational or simple sequential logic.
    Medium,
    /// FSMs and wider datapaths.
    Hard,
}

/// Golden DUT plus reference testbench for one language.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GoldenPair {
    /// Device-under-test source.
    pub dut: String,
    /// Self-checking reference testbench source (top unit `tb`).
    pub tb: String,
}

/// One benchmark problem.
#[derive(Debug, Clone)]
pub struct Problem {
    /// Stable index, `0..156`.
    pub id: usize,
    /// Unique name, e.g. `prob042_counter_mod12`.
    pub name: String,
    /// Family.
    pub family: Family,
    /// Difficulty bucket.
    pub difficulty: Difficulty,
    /// Natural-language prompt handed to the Code Agent. Contains the
    /// required module/entity name and the full port list.
    pub spec: String,
    /// DUT module/entity name.
    pub module_name: String,
    /// Golden Verilog sources.
    pub verilog: GoldenPair,
    /// Golden VHDL sources.
    pub vhdl: GoldenPair,
}

impl Problem {
    /// Golden pair for `language` (`true` = Verilog).
    #[must_use]
    pub fn golden(&self, verilog: bool) -> &GoldenPair {
        if verilog {
            &self.verilog
        } else {
            &self.vhdl
        }
    }
}

/// Builds the full 156-problem suite. Deterministic: two calls return
/// identical problems.
#[must_use]
pub fn suite() -> Vec<Problem> {
    let mut problems = Vec::with_capacity(156);
    families::gates::extend(&mut problems);
    families::mux::extend(&mut problems);
    families::decoder::extend(&mut problems);
    families::encoder::extend(&mut problems);
    families::adder::extend(&mut problems);
    families::comparator::extend(&mut problems);
    families::parity::extend(&mut problems);
    families::popcount::extend(&mut problems);
    families::shifter::extend(&mut problems);
    families::gray::extend(&mut problems);
    families::sevenseg::extend(&mut problems);
    families::alu::extend(&mut problems);
    families::counter::extend(&mut problems);
    families::shiftreg::extend(&mut problems);
    families::edge::extend(&mut problems);
    families::fsm::extend(&mut problems);
    for (i, p) in problems.iter_mut().enumerate() {
        p.id = i;
        let short = std::mem::take(&mut p.name);
        p.name = format!("prob{i:03}_{short}");
        // The prompt's task line must carry the final (unique) name.
        p.spec = p.spec.replacen(
            &format!("Design task: {short}."),
            &format!("Design task: {}.", p.name),
            1,
        );
    }
    assert_eq!(problems.len(), 156, "suite size is part of the contract");
    problems
}

/// Looks a problem up by its generated name (used by the simulated LLM's
/// task library).
#[must_use]
pub fn find_problem<'a>(problems: &'a [Problem], name: &str) -> Option<&'a Problem> {
    problems.iter().find(|p| p.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_156_problems_with_unique_names() {
        let s = suite();
        assert_eq!(s.len(), 156);
        let mut names: Vec<&str> = s.iter().map(|p| p.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 156, "names must be unique");
    }

    #[test]
    fn suite_is_deterministic() {
        let a = suite();
        let b = suite();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.verilog, y.verilog);
            assert_eq!(x.vhdl, y.vhdl);
        }
    }

    #[test]
    fn every_family_is_represented() {
        let s = suite();
        use Family::*;
        for fam in [
            Gates,
            Mux,
            Decoder,
            Encoder,
            Adder,
            Comparator,
            Parity,
            Popcount,
            Shifter,
            GrayCode,
            SevenSegment,
            Alu,
            Counter,
            ShiftRegister,
            EdgeDetector,
            Fsm,
        ] {
            assert!(s.iter().any(|p| p.family == fam), "missing {fam}");
        }
    }

    #[test]
    fn specs_name_the_interface() {
        for p in suite() {
            assert!(p.spec.contains(&p.module_name), "{}", p.name);
            assert!(p.verilog.dut.contains(&format!("module {}", p.module_name)));
            assert!(p.vhdl.dut.contains(&format!("entity {}", p.module_name)));
            assert!(p.verilog.tb.contains("All tests passed successfully!"));
            assert!(p.vhdl.tb.contains("All tests passed successfully!"));
        }
    }

    #[test]
    fn difficulty_mix_has_all_buckets() {
        let s = suite();
        for d in [Difficulty::Easy, Difficulty::Medium, Difficulty::Hard] {
            assert!(s.iter().any(|p| p.difficulty == d));
        }
    }

    #[test]
    fn find_problem_by_name() {
        let s = suite();
        let name = s[10].name.clone();
        assert_eq!(find_problem(&s, &name).map(|p| p.id), Some(10));
        assert!(find_problem(&s, "nope").is_none());
    }
}
