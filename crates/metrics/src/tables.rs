//! Result aggregation and ASCII rendering of Table 1, Table 2 and
//! Figure 3.

use crate::passk::suite_pass_at_k;

/// One evaluated sample of one task.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampleOutcome {
    /// Final code compiled cleanly (scored against the benchmark's
    /// compiler, i.e. pass@1_S material).
    pub syntax: bool,
    /// Final code passed the benchmark's *reference* testbench
    /// (pass@1_F material).
    pub functional: bool,
    /// Modeled end-to-end seconds for the whole pipeline run.
    pub total_latency: f64,
    /// Seconds in generation + syntax loops.
    pub syntax_phase_latency: f64,
    /// Seconds in the functional loop.
    pub functional_phase_latency: f64,
    /// Corrective iterations taken by the syntax loops.
    pub syntax_iters: u32,
    /// Corrective iterations taken by the functional loop.
    pub functional_iters: u32,
    /// The pipeline panicked on this sample and was isolated by the
    /// harness; the run is scored as a failure on both axes.
    pub crashed: bool,
}

/// All samples of one task.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalOutcome {
    /// Task name.
    pub task: String,
    /// Per-sample results.
    pub samples: Vec<SampleOutcome>,
}

impl EvalOutcome {
    fn counts(&self, f: impl Fn(&SampleOutcome) -> bool) -> (u64, u64) {
        let n = self.samples.len() as u64;
        let c = self.samples.iter().filter(|s| f(s)).count() as u64;
        (n, c)
    }
}

/// Suite-level pass@k over a predicate (syntax or functional).
#[must_use]
pub fn suite_metric(
    outcomes: &[EvalOutcome],
    k: u64,
    f: impl Fn(&SampleOutcome) -> bool + Copy,
) -> f64 {
    let per_task: Vec<(u64, u64)> = outcomes.iter().map(|o| o.counts(f)).collect();
    suite_pass_at_k(&per_task, k)
}

/// Suite-level pass@k plus its standard error across tasks (the suite
/// metric is a mean of per-task estimates; tasks are the independent
/// units).
#[must_use]
pub fn suite_metric_with_se(
    outcomes: &[EvalOutcome],
    k: u64,
    f: impl Fn(&SampleOutcome) -> bool + Copy,
) -> (f64, f64) {
    let per_task: Vec<f64> = outcomes
        .iter()
        .map(|o| {
            let (n, c) = o.counts(f);
            crate::passk::pass_at_k(n, c, k)
        })
        .collect();
    let t = per_task.len() as f64;
    let mean = per_task.iter().sum::<f64>() / t;
    let var = per_task.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (t - 1.0).max(1.0);
    let se = (var / t).sqrt();
    (mean, se)
}

/// One row of Table 1 (percentages).
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Row {
    /// Configuration label, e.g. `AIVRIL2 (GPT-4o)`.
    pub config: String,
    /// Verilog pass@1_S (%).
    pub verilog_s: f64,
    /// Verilog pass@1_F (%).
    pub verilog_f: f64,
    /// VHDL pass@1_S (%).
    pub vhdl_s: f64,
    /// VHDL pass@1_F (%).
    pub vhdl_f: f64,
    /// Δ_F vs the matching baseline, Verilog (%); `None` for baselines
    /// or undefined ratios.
    pub delta_verilog: Option<f64>,
    /// Δ_F vs the matching baseline, VHDL (%).
    pub delta_vhdl: Option<f64>,
}

/// Computes Δ_F (% improvement) between an AIVRIL2 row and its
/// baseline; `None` when the baseline is (near) zero — the paper prints
/// `N/A` for Llama3-70B on VHDL, whose baseline rounds to 0.
#[must_use]
pub fn delta_f(aivril2_f: f64, baseline_f: f64) -> Option<f64> {
    if baseline_f < 0.5 {
        None
    } else {
        Some((aivril2_f - baseline_f) / baseline_f * 100.0)
    }
}

/// Renders Table 1 in the paper's layout.
#[must_use]
pub fn render_table1(rows: &[Table1Row]) -> String {
    let mut out = String::new();
    out.push_str(
        "Table 1: pass-rate summary (all values %)\n\
         ---------------------------------------------------------------------------------------\n\
         Technology                  | Verilog                    | VHDL\n\
         ---------------------------------------------------------------------------------------\n\
         ",
    );
    out.push_str(&format!(
        "{:<28}| {:>8} {:>8} {:>8} | {:>8} {:>8} {:>8}\n",
        "", "pass@1_S", "pass@1_F", "dF", "pass@1_S", "pass@1_F", "dF"
    ));
    for r in rows {
        let dv = r
            .delta_verilog
            .map_or("-".to_string(), |d| format!("{d:.2}"));
        let dh = r.delta_vhdl.map_or_else(
            || {
                if r.config.starts_with("AIVRIL2") {
                    "N/A".to_string()
                } else {
                    "-".to_string()
                }
            },
            |d| format!("{d:.2}"),
        );
        out.push_str(&format!(
            "{:<28}| {:>8.2} {:>8.2} {:>8} | {:>8.2} {:>8.2} {:>8}\n",
            r.config, r.verilog_s, r.verilog_f, dv, r.vhdl_s, r.vhdl_f, dh
        ));
    }
    out
}

/// One literature entry for Table 2 (published pass@1_F values the
/// closed systems report; we cannot rerun them).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LiteratureEntry {
    /// System name as cited.
    pub name: &'static str,
    /// Model license regime.
    pub license: &'static str,
    /// Verilog pass@1_F (%) as published.
    pub pass1_f: f64,
}

/// Published comparison numbers from the paper's Table 2 (Verilog only,
/// as in the paper).
#[must_use]
pub fn table2_literature() -> Vec<LiteratureEntry> {
    vec![
        LiteratureEntry {
            name: "Llama3-70B [17]",
            license: "Open Source",
            pass1_f: 37.82,
        },
        LiteratureEntry {
            name: "CodeGen-16B [18]",
            license: "Open Source",
            pass1_f: 41.9,
        },
        LiteratureEntry {
            name: "CodeV-CodeQwen [6]",
            license: "Open Source",
            pass1_f: 53.2,
        },
        LiteratureEntry {
            name: "ChipNemo-13B [1]",
            license: "Closed Source",
            pass1_f: 22.4,
        },
        LiteratureEntry {
            name: "ChipNemo-70B [1]",
            license: "Closed Source",
            pass1_f: 27.6,
        },
        LiteratureEntry {
            name: "CodeGen-16B-Verilog-SFT [5]",
            license: "Closed Source",
            pass1_f: 28.8,
        },
        LiteratureEntry {
            name: "RTLFixer [3]",
            license: "Closed Source",
            pass1_f: 36.8,
        },
        LiteratureEntry {
            name: "VeriAssist [4]",
            license: "Closed Source",
            pass1_f: 50.5,
        },
        LiteratureEntry {
            name: "GPT-4o [16]",
            license: "Closed Source",
            pass1_f: 51.29,
        },
        LiteratureEntry {
            name: "Claude 3.5 Sonnet [15]",
            license: "Closed Source",
            pass1_f: 60.23,
        },
        LiteratureEntry {
            name: "AIVRIL [7]",
            license: "Closed Source",
            pass1_f: 67.3,
        },
    ]
}

/// Renders Table 2: literature rows plus our measured AIVRIL2 rows.
#[must_use]
pub fn render_table2(measured: &[(String, String, f64)]) -> String {
    let mut out = String::new();
    out.push_str(
        "Table 2: state-of-the-art comparison (Verilog pass@1_F, %)\n\
         ------------------------------------------------------------\n",
    );
    out.push_str(&format!(
        "{:<30}{:<16}{:>10}\n",
        "Technology", "Model License", "pass@1_F"
    ));
    out.push_str("------------------------------------------------------------\n");
    for e in table2_literature() {
        out.push_str(&format!(
            "{:<30}{:<16}{:>10.2}\n",
            e.name, e.license, e.pass1_f
        ));
    }
    out.push_str("---- this work (measured on the synthetic suite) ----------\n");
    for (name, license, value) in measured {
        out.push_str(&format!("{name:<30}{license:<16}{value:>10.2}\n"));
    }
    out
}

/// One bar group of Figure 3: latency breakdown for one model × language.
#[derive(Debug, Clone, PartialEq)]
pub struct Figure3Row {
    /// Configuration label, e.g. `Llama3-70B / VHDL`.
    pub config: String,
    /// Average baseline (single-shot) seconds.
    pub baseline_s: f64,
    /// Average AIVRIL2 seconds in generation + syntax loops.
    pub syntax_phase_s: f64,
    /// Average AIVRIL2 seconds in the functional loop.
    pub functional_phase_s: f64,
    /// Average syntax-loop corrective cycles.
    pub syntax_cycles: f64,
    /// Average functional-loop corrective cycles.
    pub functional_cycles: f64,
}

impl Figure3Row {
    /// Total AIVRIL2 latency.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.syntax_phase_s + self.functional_phase_s
    }

    /// Slowdown vs the baseline.
    #[must_use]
    pub fn ratio(&self) -> f64 {
        if self.baseline_s <= f64::EPSILON {
            f64::NAN
        } else {
            self.total() / self.baseline_s
        }
    }
}

/// Assembles a Figure 3 row from evaluation outcomes.
#[must_use]
pub fn figure3(
    config: impl Into<String>,
    baseline: &[EvalOutcome],
    aivril2: &[EvalOutcome],
) -> Figure3Row {
    let avg = |outs: &[EvalOutcome], f: &dyn Fn(&SampleOutcome) -> f64| -> f64 {
        let (mut sum, mut n) = (0.0, 0usize);
        for o in outs {
            for s in &o.samples {
                sum += f(s);
                n += 1;
            }
        }
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    };
    Figure3Row {
        config: config.into(),
        baseline_s: avg(baseline, &|s| s.total_latency),
        syntax_phase_s: avg(aivril2, &|s| s.syntax_phase_latency),
        functional_phase_s: avg(aivril2, &|s| s.functional_phase_latency),
        syntax_cycles: avg(aivril2, &|s| f64::from(s.syntax_iters)),
        functional_cycles: avg(aivril2, &|s| f64::from(s.functional_iters)),
    }
}

/// Renders Figure 3 as an ASCII bar chart plus the numeric breakdown.
#[must_use]
pub fn render_figure3(rows: &[Figure3Row]) -> String {
    let mut out = String::new();
    out.push_str(
        "Figure 3: average latency breakdown (modeled seconds)\n\
         #### baseline   ==== syntax loop   ~~~~ functional loop\n\n",
    );
    let max = rows
        .iter()
        .map(|r| r.total().max(r.baseline_s))
        .fold(1.0f64, f64::max);
    let scale = 48.0 / max;
    for r in rows {
        let b = (r.baseline_s * scale).round() as usize;
        let s = (r.syntax_phase_s * scale).round() as usize;
        let f = (r.functional_phase_s * scale).round() as usize;
        out.push_str(&format!(
            "{:<26} |{}  {:.2}s\n",
            r.config,
            "#".repeat(b),
            r.baseline_s
        ));
        out.push_str(&format!(
            "{:<26} |{}{}  {:.2}s ({:.1}x)\n",
            "  + AIVRIL2",
            "=".repeat(s),
            "~".repeat(f),
            r.total(),
            r.ratio()
        ));
        out.push_str(&format!(
            "{:<26} |  cycles: {:.2} syntax, {:.2} functional\n\n",
            "", r.syntax_cycles, r.functional_cycles
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn se_is_zero_for_unanimous_tasks_and_positive_otherwise() {
        let unanimous = vec![
            EvalOutcome {
                task: "a".into(),
                samples: vec![sample(true, true, 1.0)],
            },
            EvalOutcome {
                task: "b".into(),
                samples: vec![sample(true, true, 1.0)],
            },
        ];
        let (m, se) = suite_metric_with_se(&unanimous, 1, |s| s.functional);
        assert!((m - 1.0).abs() < 1e-12);
        assert!(se.abs() < 1e-12);
        let split = vec![
            EvalOutcome {
                task: "a".into(),
                samples: vec![sample(true, true, 1.0)],
            },
            EvalOutcome {
                task: "b".into(),
                samples: vec![sample(true, false, 1.0)],
            },
        ];
        let (m, se) = suite_metric_with_se(&split, 1, |s| s.functional);
        assert!((m - 0.5).abs() < 1e-12);
        assert!(se > 0.2);
    }

    fn sample(syntax: bool, functional: bool, lat: f64) -> SampleOutcome {
        SampleOutcome {
            syntax,
            functional,
            total_latency: lat,
            syntax_phase_latency: lat * 0.7,
            functional_phase_latency: lat * 0.3,
            syntax_iters: 1,
            functional_iters: 2,
            crashed: false,
        }
    }

    fn outcomes() -> Vec<EvalOutcome> {
        vec![
            EvalOutcome {
                task: "a".into(),
                samples: vec![sample(true, true, 10.0), sample(true, false, 12.0)],
            },
            EvalOutcome {
                task: "b".into(),
                samples: vec![sample(false, false, 8.0), sample(true, true, 9.0)],
            },
        ]
    }

    #[test]
    fn suite_metric_averages_tasks() {
        let o = outcomes();
        let s = suite_metric(&o, 1, |s| s.syntax);
        assert!((s - 0.75).abs() < 1e-12);
        let f = suite_metric(&o, 1, |s| s.functional);
        assert!((f - 0.5).abs() < 1e-12);
    }

    #[test]
    fn delta_f_handles_zero_baseline() {
        assert_eq!(delta_f(32.69, 0.0), None);
        let d = delta_f(55.13, 37.82).expect("defined");
        assert!((d - 45.77).abs() < 0.05);
    }

    #[test]
    fn table1_renders_all_rows() {
        let rows = vec![
            Table1Row {
                config: "Llama3-70B".into(),
                verilog_s: 71.15,
                verilog_f: 37.82,
                vhdl_s: 1.28,
                vhdl_f: 0.0,
                delta_verilog: None,
                delta_vhdl: None,
            },
            Table1Row {
                config: "AIVRIL2 (Llama3-70B)".into(),
                verilog_s: 100.0,
                verilog_f: 55.13,
                vhdl_s: 58.87,
                vhdl_f: 32.69,
                delta_verilog: Some(45.76),
                delta_vhdl: None,
            },
        ];
        let t = render_table1(&rows);
        assert!(t.contains("AIVRIL2 (Llama3-70B)"));
        assert!(t.contains("45.76"));
        assert!(t.contains("N/A"), "{t}");
    }

    #[test]
    fn table2_includes_literature_and_measured() {
        let t = render_table2(&[("AIVRIL2 (GPT-4o)".into(), "Closed Source".into(), 72.44)]);
        assert!(t.contains("RTLFixer"));
        assert!(t.contains("ChipNemo-13B"));
        assert!(t.contains("72.44"));
        assert_eq!(table2_literature().len(), 11);
    }

    #[test]
    fn figure3_row_aggregation() {
        let o = outcomes();
        let row = figure3("X / Verilog", &o, &o);
        assert!((row.baseline_s - 9.75).abs() < 1e-9);
        assert!((row.total() - 9.75).abs() < 1e-9);
        assert!((row.syntax_cycles - 1.0).abs() < 1e-9);
        let txt = render_figure3(&[row]);
        assert!(txt.contains("cycles"));
        assert!(txt.contains("AIVRIL2"));
    }
}
