//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small API subset it actually uses: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], and the [`Rng`] methods `gen_bool` /
//! `gen_range` over integer and float ranges.
//!
//! The generator is xoshiro256** seeded through SplitMix64 — fast,
//! full-period, and (most importantly here) **deterministic and
//! self-contained**: every consumer in this workspace derives seeds
//! explicitly, so reproducibility only requires that the same seed
//! always yields the same stream, which this crate guarantees across
//! platforms (no `usize`-width or platform dependence in the core
//! stream).

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`'s
/// `seed_from_u64` entry point (the only constructor this workspace
/// uses).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} out of range"
        );
        next_f64(self) < p
    }

    /// Samples uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

fn next_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // 53 high bits -> [0, 1) with full double precision.
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A range that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

fn sample_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    // Multiply-shift reduction (Lemire). The ~2^-64 modulo bias is
    // irrelevant for simulation sampling; determinism is what matters.
    ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(sample_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain.
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(sample_u64(rng, span) as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i32, i64);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + next_f64(rng) * (self.end - self.start)
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256** with SplitMix64
    /// seeding. (The real `rand::rngs::StdRng` makes no cross-version
    /// stream guarantee either, so swapping the underlying generator is
    /// within contract.)
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // SplitMix64 expansion of the 64-bit seed into 256 bits of
            // state; never all-zero.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256** step.
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn streams_are_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3u32..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(5u64..=9);
            assert!((5..=9).contains(&w));
            let f = rng.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&f));
            let u = rng.gen_range(0usize..3);
            assert!(u < 3);
        }
    }

    #[test]
    fn gen_range_covers_the_domain() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(13);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((28_000..32_000).contains(&hits), "hits={hits}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
