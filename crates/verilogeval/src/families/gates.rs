//! Basic logic gates and small gate networks (12 problems).

use crate::builders::{comb_problem, CombSpec};
use crate::port::Port;
use crate::{Difficulty, Family, Problem};

fn gate2(name: &str, vop: &str, hop: &str, f: fn(u64, u64) -> u64, invert: bool) -> CombSpec {
    let vexpr = if invert {
        format!("~(a {vop} b)")
    } else {
        format!("a {vop} b")
    };
    let hexpr = if invert {
        format!("not (a {hop} b)")
    } else {
        format!("a {hop} b")
    };
    CombSpec {
        name: name.to_string(),
        family: Family::Gates,
        difficulty: Difficulty::Easy,
        description: format!("y is `{vexpr}` — the bitwise {name} of the two inputs."),
        inputs: vec![Port::new("a", 1), Port::new("b", 1)],
        outputs: vec![Port::new("y", 1)],
        vlog_body: format!("  assign y = {vexpr};\n"),
        vlog_out_reg: false,
        vhdl_body: format!("  y <= {hexpr};\n"),
        vhdl_decls: String::new(),
        eval: Box::new(move |v| {
            vec![
                (if invert {
                    !f(v[0], v[1])
                } else {
                    f(v[0], v[1])
                }) & 1,
            ]
        }),
    }
}

fn bus_gate(name: &str, width: u32, vop: &str, hop: &str, f: fn(u64, u64) -> u64) -> CombSpec {
    let mask = (1u64 << width) - 1;
    CombSpec {
        name: format!("{name}_w{width}"),
        family: Family::Gates,
        difficulty: Difficulty::Easy,
        description: format!(
            "y is the bitwise `{vop}` of the two {width}-bit input buses a and b."
        ),
        inputs: vec![Port::new("a", width), Port::new("b", width)],
        outputs: vec![Port::new("y", width)],
        vlog_body: format!("  assign y = a {vop} b;\n"),
        vlog_out_reg: false,
        vhdl_body: format!("  y <= a {hop} b;\n"),
        vhdl_decls: String::new(),
        eval: Box::new(move |v| vec![f(v[0], v[1]) & mask]),
    }
}

/// Appends the family's problems.
pub fn extend(problems: &mut Vec<Problem>) {
    problems.push(comb_problem(gate2("and2", "&", "and", |a, b| a & b, false)));
    problems.push(comb_problem(gate2("or2", "|", "or", |a, b| a | b, false)));
    problems.push(comb_problem(gate2("xor2", "^", "xor", |a, b| a ^ b, false)));
    problems.push(comb_problem(gate2("nand2", "&", "and", |a, b| a & b, true)));

    problems.push(comb_problem(bus_gate("bus_and", 4, "&", "and", |a, b| {
        a & b
    })));
    problems.push(comb_problem(bus_gate("bus_or", 8, "|", "or", |a, b| a | b)));
    problems.push(comb_problem(bus_gate("bus_xor", 4, "^", "xor", |a, b| {
        a ^ b
    })));
    problems.push(comb_problem(bus_gate(
        "bus_xnor",
        8,
        "~^",
        "xnor",
        |a, b| !(a ^ b),
    )));

    // AND-OR-invert: y = ~((a & b) | c)
    problems.push(comb_problem(CombSpec {
        name: "aoi21".into(),
        family: Family::Gates,
        difficulty: Difficulty::Easy,
        description: "y is `~((a & b) | c)` — an AND-OR-invert gate.".into(),
        inputs: vec![Port::new("a", 1), Port::new("b", 1), Port::new("c", 1)],
        outputs: vec![Port::new("y", 1)],
        vlog_body: "  assign y = ~((a & b) | c);\n".into(),
        vlog_out_reg: false,
        vhdl_body: "  y <= not ((a and b) or c);\n".into(),
        vhdl_decls: String::new(),
        eval: Box::new(|v| vec![!((v[0] & v[1]) | v[2]) & 1]),
    }));

    // 3-input majority vote.
    problems.push(comb_problem(CombSpec {
        name: "majority3".into(),
        family: Family::Gates,
        difficulty: Difficulty::Easy,
        description: "y is 1 when at least two of the three inputs a, b, c are 1 (majority vote)."
            .into(),
        inputs: vec![Port::new("a", 1), Port::new("b", 1), Port::new("c", 1)],
        outputs: vec![Port::new("y", 1)],
        vlog_body: "  assign y = (a & b) | (a & c) | (b & c);\n".into(),
        vlog_out_reg: false,
        vhdl_body: "  y <= (a and b) or (a and c) or (b and c);\n".into(),
        vhdl_decls: String::new(),
        eval: Box::new(|v| vec![((v[0] & v[1]) | (v[0] & v[2]) | (v[1] & v[2])) & 1]),
    }));

    // 3-input XOR.
    problems.push(comb_problem(CombSpec {
        name: "xor3".into(),
        family: Family::Gates,
        difficulty: Difficulty::Easy,
        description: "y is the exclusive-OR of the three inputs a, b, c.".into(),
        inputs: vec![Port::new("a", 1), Port::new("b", 1), Port::new("c", 1)],
        outputs: vec![Port::new("y", 1)],
        vlog_body: "  assign y = a ^ b ^ c;\n".into(),
        vlog_out_reg: false,
        vhdl_body: "  y <= a xor b xor c;\n".into(),
        vhdl_decls: String::new(),
        eval: Box::new(|v| vec![(v[0] ^ v[1] ^ v[2]) & 1]),
    }));

    // Bus inverter.
    problems.push(comb_problem(CombSpec {
        name: "bus_not_w8".into(),
        family: Family::Gates,
        difficulty: Difficulty::Easy,
        description: "y is the bitwise complement of the 8-bit input bus a.".into(),
        inputs: vec![Port::new("a", 8)],
        outputs: vec![Port::new("y", 8)],
        vlog_body: "  assign y = ~a;\n".into(),
        vlog_out_reg: false,
        vhdl_body: "  y <= not a;\n".into(),
        vhdl_decls: String::new(),
        eval: Box::new(|v| vec![!v[0] & 0xFF]),
    }));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contributes_12_problems() {
        let mut v = Vec::new();
        extend(&mut v);
        assert_eq!(v.len(), 12);
        assert!(v.iter().all(|p| p.family == Family::Gates));
    }

    #[test]
    fn majority_golden_model() {
        let mut v = Vec::new();
        extend(&mut v);
        let p = v.iter().find(|p| p.name == "majority3").expect("present");
        // Exhaustive TB: 8 vectors × 1 output.
        assert_eq!(p.verilog.tb.matches("Test Case").count(), 8);
    }
}
