//! Fault catalogue: the concrete syntax and functional mistakes the
//! simulated models make.
//!
//! Faults are *textual but real*: a syntax fault produces source the
//! compiler rejects with a located error, and a functional fault
//! produces source that compiles but fails the reference testbench —
//! which is what makes the closed agent loop in this reproduction
//! genuine rather than mocked.

/// Whether a fault breaks compilation or behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Compiler-visible mistake (missing `;`, misspelled keyword, ...).
    Syntax,
    /// Compiles, but the logic is wrong (swapped operator, wrong edge...).
    Functional,
}

/// HDL dialect a fault catalogue applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dialect {
    /// Verilog-2001.
    Verilog,
    /// VHDL-93.
    Vhdl,
}

/// One way of corrupting a source text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultTemplate {
    /// Search pattern (must occur in the source to be applicable).
    pub pattern: &'static str,
    /// Replacement text.
    pub replacement: &'static str,
    /// Human-readable description (useful in traces).
    pub description: &'static str,
}

/// A fault chosen for a concrete source: template plus which occurrence
/// of the pattern it corrupts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AppliedFault {
    /// Corruption recipe.
    pub template: FaultTemplate,
    /// 0-based occurrence index of the pattern.
    pub occurrence: usize,
    /// Breaks compilation or behaviour.
    pub kind: FaultKind,
}

/// Syntax fault catalogue for `dialect`.
#[must_use]
pub fn syntax_templates(dialect: Dialect) -> &'static [FaultTemplate] {
    match dialect {
        Dialect::Verilog => &[
            FaultTemplate {
                pattern: ";\n",
                replacement: "\n",
                description: "missing semicolon",
            },
            FaultTemplate {
                pattern: "endmodule",
                replacement: "endmodul",
                description: "misspelled 'endmodule'",
            },
            FaultTemplate {
                pattern: "assign ",
                replacement: "asign ",
                description: "misspelled 'assign'",
            },
            FaultTemplate {
                pattern: "always",
                replacement: "alway",
                description: "misspelled 'always'",
            },
            FaultTemplate {
                pattern: "output ",
                replacement: "ouput ",
                description: "misspelled 'output'",
            },
            FaultTemplate {
                pattern: "begin",
                replacement: "begn",
                description: "misspelled 'begin'",
            },
            FaultTemplate {
                pattern: ");",
                replacement: ";",
                description: "missing closing parenthesis",
            },
        ],
        Dialect::Vhdl => &[
            FaultTemplate {
                pattern: ";\n",
                replacement: "\n",
                description: "missing semicolon",
            },
            FaultTemplate {
                pattern: "end process",
                replacement: "end proces",
                description: "misspelled 'end process'",
            },
            FaultTemplate {
                pattern: "entity ",
                replacement: "entiy ",
                description: "misspelled 'entity'",
            },
            FaultTemplate {
                pattern: "signal ",
                replacement: "signl ",
                description: "misspelled 'signal'",
            },
            FaultTemplate {
                pattern: "begin",
                replacement: "begn",
                description: "misspelled 'begin'",
            },
            FaultTemplate {
                pattern: "elsif",
                replacement: "elseif",
                description: "misspelled 'elsif'",
            },
            FaultTemplate {
                pattern: "downto",
                replacement: "dwnto",
                description: "misspelled 'downto'",
            },
        ],
    }
}

/// Functional fault catalogue for `dialect`. Every template preserves
/// syntactic validity on the golden sources (the generators emit spaced
/// operators so the patterns bind to real operator sites).
#[must_use]
pub fn functional_templates(dialect: Dialect) -> &'static [FaultTemplate] {
    match dialect {
        Dialect::Verilog => &[
            FaultTemplate {
                pattern: " & ",
                replacement: " | ",
                description: "AND became OR",
            },
            FaultTemplate {
                pattern: " | ",
                replacement: " & ",
                description: "OR became AND",
            },
            FaultTemplate {
                pattern: " ^ ",
                replacement: " & ",
                description: "XOR became AND",
            },
            FaultTemplate {
                pattern: "posedge",
                replacement: "negedge",
                description: "wrong clock edge",
            },
            FaultTemplate {
                pattern: " + 1",
                replacement: " + 2",
                description: "wrong increment",
            },
            FaultTemplate {
                pattern: " + ",
                replacement: " - ",
                description: "ADD became SUB",
            },
            FaultTemplate {
                pattern: " - ",
                replacement: " + ",
                description: "SUB became ADD",
            },
            FaultTemplate {
                pattern: " == ",
                replacement: " != ",
                description: "inverted equality test",
            },
            FaultTemplate {
                pattern: " < ",
                replacement: " <= ",
                description: "off-by-one comparison",
            },
            FaultTemplate {
                pattern: " > ",
                replacement: " >= ",
                description: "off-by-one comparison",
            },
            FaultTemplate {
                pattern: "~",
                replacement: "",
                description: "dropped inversion",
            },
            FaultTemplate {
                pattern: "1'b1",
                replacement: "1'b0",
                description: "flipped constant bit",
            },
            FaultTemplate {
                pattern: "if (rst)",
                replacement: "if (!rst)",
                description: "inverted reset polarity",
            },
            FaultTemplate {
                pattern: " ? ",
                replacement: " == 0 ? ",
                description: "inverted mux select",
            },
            FaultTemplate {
                pattern: "case (",
                replacement: "case (~",
                description: "inverted case selector",
            },
            FaultTemplate {
                pattern: "casez (",
                replacement: "casez (~",
                description: "inverted priority selector",
            },
            FaultTemplate {
                pattern: " << ",
                replacement: " >> ",
                description: "wrong shift direction",
            },
            FaultTemplate {
                pattern: " >> ",
                replacement: " << ",
                description: "wrong shift direction",
            },
            FaultTemplate {
                pattern: " && ",
                replacement: " || ",
                description: "AND became OR",
            },
            FaultTemplate {
                pattern: " || ",
                replacement: " && ",
                description: "OR became AND",
            },
            FaultTemplate {
                pattern: " ~^ ",
                replacement: " ^ ",
                description: "XNOR became XOR",
            },
            FaultTemplate {
                pattern: "= ^",
                replacement: "= ~^",
                description: "inverted reduction parity",
            },
            FaultTemplate {
                pattern: "= |",
                replacement: "= ~|",
                description: "inverted reduction OR",
            },
            FaultTemplate {
                pattern: ", a[",
                replacement: ", ~a[",
                description: "inverted concatenation operand",
            },
            FaultTemplate {
                pattern: "{a[",
                replacement: "{~a[",
                description: "inverted concatenation operand",
            },
        ],
        Dialect::Vhdl => &[
            FaultTemplate {
                pattern: " and ",
                replacement: " or ",
                description: "AND became OR",
            },
            FaultTemplate {
                pattern: " or ",
                replacement: " and ",
                description: "OR became AND",
            },
            FaultTemplate {
                pattern: " xor ",
                replacement: " and ",
                description: "XOR became AND",
            },
            FaultTemplate {
                pattern: "rising_edge",
                replacement: "falling_edge",
                description: "wrong clock edge",
            },
            FaultTemplate {
                pattern: " + 1",
                replacement: " + 2",
                description: "wrong increment",
            },
            FaultTemplate {
                pattern: " + ",
                replacement: " - ",
                description: "ADD became SUB",
            },
            FaultTemplate {
                pattern: " - ",
                replacement: " + ",
                description: "SUB became ADD",
            },
            FaultTemplate {
                pattern: "rst = '1'",
                replacement: "rst = '0'",
                description: "inverted reset polarity",
            },
            FaultTemplate {
                pattern: " < ",
                replacement: " <= ",
                description: "off-by-one comparison",
            },
            FaultTemplate {
                pattern: " > ",
                replacement: " >= ",
                description: "off-by-one comparison",
            },
            FaultTemplate {
                pattern: "not ",
                replacement: "",
                description: "dropped inversion",
            },
            FaultTemplate {
                pattern: "case ",
                replacement: "case not ",
                description: "inverted case selector",
            },
            FaultTemplate {
                pattern: " = '1' else",
                replacement: " = '0' else",
                description: "inverted select condition",
            },
            FaultTemplate {
                pattern: " & '0';",
                replacement: " & '1';",
                description: "wrong shift fill bit",
            },
            FaultTemplate {
                pattern: " xnor ",
                replacement: " xor ",
                description: "XNOR became XOR",
            },
            FaultTemplate {
                pattern: " = '1' then",
                replacement: " = '0' then",
                description: "inverted level test",
            },
            FaultTemplate {
                pattern: "'1' when ",
                replacement: "'0' when ",
                description: "flipped conditional constant",
            },
            FaultTemplate {
                pattern: "0\";",
                replacement: "1\";",
                description: "flipped constant bit",
            },
            FaultTemplate {
                pattern: "'0' when ",
                replacement: "'1' when ",
                description: "flipped conditional constant",
            },
            FaultTemplate {
                pattern: " & a(",
                replacement: " & not a(",
                description: "inverted concatenation operand",
            },
        ],
    }
}

/// Counts non-overlapping occurrences of `pattern` in `text`.
#[must_use]
pub fn count_occurrences(text: &str, pattern: &str) -> usize {
    if pattern.is_empty() {
        return 0;
    }
    let mut n = 0;
    let mut at = 0;
    while let Some(i) = text[at..].find(pattern) {
        n += 1;
        at += i + pattern.len();
    }
    n
}

/// Replaces the `occurrence`-th (0-based) match of `fault.template` in
/// `text`. Returns the text unchanged when the occurrence is absent.
#[must_use]
pub fn apply_fault(text: &str, fault: &AppliedFault) -> String {
    let pattern = fault.template.pattern;
    let mut at = 0;
    let mut seen = 0;
    while let Some(i) = text[at..].find(pattern) {
        let pos = at + i;
        if seen == fault.occurrence {
            let mut out = String::with_capacity(text.len());
            out.push_str(&text[..pos]);
            out.push_str(fault.template.replacement);
            out.push_str(&text[pos + pattern.len()..]);
            return out;
        }
        seen += 1;
        at = pos + pattern.len();
    }
    text.to_string()
}

/// Applies a set of faults in order. Later faults see the text produced
/// by earlier ones, so occurrence indices are chosen against the golden
/// text and may shift slightly — acceptable, since any landed corruption
/// serves the purpose.
#[must_use]
pub fn apply_all(text: &str, faults: &[AppliedFault]) -> String {
    faults
        .iter()
        .fold(text.to_string(), |t, f| apply_fault(&t, f))
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = "module m(input a, output y);\n  assign y = a & a;\nendmodule\n";

    #[test]
    fn count_occurrences_basic() {
        assert_eq!(count_occurrences(SRC, ";\n"), 2);
        assert_eq!(count_occurrences(SRC, "assign "), 1);
        assert_eq!(count_occurrences(SRC, "zzz"), 0);
        assert_eq!(count_occurrences("aaaa", "aa"), 2, "non-overlapping");
    }

    #[test]
    fn apply_fault_targets_occurrence() {
        let fault = AppliedFault {
            template: FaultTemplate {
                pattern: ";\n",
                replacement: "\n",
                description: "x",
            },
            occurrence: 1,
            kind: FaultKind::Syntax,
        };
        let out = apply_fault(SRC, &fault);
        assert!(out.contains("output y);\n"), "first ; kept");
        assert!(out.contains("a & a\nendmodule"), "second ; dropped: {out}");
    }

    #[test]
    fn apply_fault_missing_occurrence_is_noop() {
        let fault = AppliedFault {
            template: FaultTemplate {
                pattern: "assign ",
                replacement: "asign ",
                description: "x",
            },
            occurrence: 5,
            kind: FaultKind::Syntax,
        };
        assert_eq!(apply_fault(SRC, &fault), SRC);
    }

    #[test]
    fn catalogues_are_nonempty_for_both_dialects() {
        for d in [Dialect::Verilog, Dialect::Vhdl] {
            assert!(!syntax_templates(d).is_empty());
            assert!(!functional_templates(d).is_empty());
        }
    }

    #[test]
    fn functional_swap_keeps_compilable_shape() {
        let fault = AppliedFault {
            template: FaultTemplate {
                pattern: " & ",
                replacement: " | ",
                description: "x",
            },
            occurrence: 0,
            kind: FaultKind::Functional,
        };
        let out = apply_fault(SRC, &fault);
        assert!(out.contains("a | a"));
    }
}
