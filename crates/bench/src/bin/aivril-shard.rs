//! `aivril-shard` — multi-process distributed evaluation driver.
//!
//! ```text
//! aivril-shard <N> <command> [args...]
//! # e.g. aivril-shard 3 target/release/quicklook --json out.json
//! ```
//!
//! Spawns `N` copies of `<command>` (any table/figure binary), each
//! evaluating one shard of the problem × sample grid
//! (`AIVRIL_SHARD=i/N`) into a shared checkpoint directory, then runs
//! the **merge pass**: the same command, unsharded, over the filled
//! directory. The merge pass replays every cell from the checkpoint
//! logs and renders through the normal single-process path, so its
//! artifacts — stdout tables, `--json` results, run journals — are
//! byte-identical to a direct single-process run (combine with
//! `AIVRIL_CANONICAL=1` to make the results JSON plain-`diff`-able).
//!
//! Shard stdout is discarded (each child sees only a slice of the
//! grid, so its tables are partial by construction); stderr passes
//! through for progress. `--json` is stripped from shard children —
//! only the merge pass writes results. When the parent requests trace
//! exports, each child's are redirected into the checkpoint directory
//! so they do not race over one path; telemetry stays *enabled* in the
//! children either way, because the checkpoint fingerprint covers the
//! recorder state (a cell checkpointed without telemetry cannot replay
//! a journal).
//!
//! The checkpoint directory is `AIVRIL_CHECKPOINT_DIR` when set (and
//! is then kept, enabling kill-and-resume across driver invocations),
//! or a fresh temporary directory removed on exit.

use std::path::PathBuf;
use std::process::{Command, ExitCode, Stdio};

fn usage() -> ExitCode {
    eprintln!("usage: aivril-shard <shards> <command> [args...]");
    ExitCode::FAILURE
}

/// `args` minus every `flag <value>` pair.
fn without_flag(args: &[String], flag: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == flag {
            it.next();
            continue;
        }
        out.push(a.clone());
    }
    out
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((shards, rest)) = args.split_first() else {
        return usage();
    };
    let Ok(shards) = shards.parse::<usize>() else {
        return usage();
    };
    if shards == 0 || rest.is_empty() {
        return usage();
    }
    let command = &rest[0];
    let cmd_args = &rest[1..];

    let configured = std::env::var("AIVRIL_CHECKPOINT_DIR")
        .ok()
        .filter(|v| !v.is_empty());
    let ephemeral = configured.is_none();
    let dir = configured.map_or_else(
        || std::env::temp_dir().join(format!("aivril-shard-{}", std::process::id())),
        PathBuf::from,
    );

    let shard_args = without_flag(cmd_args, "--json");
    let mut children = Vec::new();
    for i in 0..shards {
        let mut cmd = Command::new(command);
        cmd.args(&shard_args)
            .env("AIVRIL_SHARD", format!("{i}/{shards}"))
            .env("AIVRIL_CHECKPOINT_DIR", &dir)
            .stdout(Stdio::null());
        for var in ["AIVRIL_TRACE_JSON", "AIVRIL_TRACE_CHROME"] {
            if std::env::var(var).is_ok_and(|v| !v.is_empty()) {
                cmd.env(var, dir.join(format!("shard-{i}.{var}")));
            }
        }
        match cmd.spawn() {
            Ok(child) => children.push(child),
            Err(e) => {
                eprintln!("[shard] cannot spawn {command}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    eprintln!("[shard] {shards} worker(s) over {}", dir.display());

    let mut failed = false;
    for (i, mut child) in children.into_iter().enumerate() {
        match child.wait() {
            Ok(status) if status.success() => {}
            Ok(status) => {
                eprintln!("[shard] worker {i} exited with {status}");
                failed = true;
            }
            Err(e) => {
                eprintln!("[shard] waiting for worker {i}: {e}");
                failed = true;
            }
        }
    }
    if failed {
        // Leave the checkpoint directory for a resume when the user
        // configured it; remove our own temporary one.
        if ephemeral {
            let _ = std::fs::remove_dir_all(&dir);
        }
        return ExitCode::FAILURE;
    }

    // Merge pass: unsharded, the *original* arguments (including
    // `--json` and trace paths), same checkpoint directory.
    let status = Command::new(command)
        .args(cmd_args)
        .env_remove("AIVRIL_SHARD")
        .env("AIVRIL_CHECKPOINT_DIR", &dir)
        .status();
    if ephemeral {
        let _ = std::fs::remove_dir_all(&dir);
    }
    match status {
        Ok(status) if status.success() => ExitCode::SUCCESS,
        Ok(status) => {
            eprintln!("[shard] merge pass exited with {status}");
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("[shard] cannot spawn merge pass: {e}");
            ExitCode::FAILURE
        }
    }
}
