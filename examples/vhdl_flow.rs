//! Language-agnosticism demo: the identical pipeline, agents, prompts
//! and tools run a **VHDL** task — only the `verilog` flag changes.
//!
//! Uses the Llama3-70B profile, whose VHDL is the paper's stress case
//! (1.28 % baseline syntax rate): watch the Syntax Optimization loop
//! claw its way to a compiling design.
//!
//! Run with:
//! ```text
//! cargo run --release -p aivril-bench --example vhdl_flow
//! ```

use aivril_bench::{build_library, Harness, HarnessConfig};
use aivril_core::{Aivril2, Aivril2Config, TaskInput};
use aivril_eda::XsimToolSuite;
use aivril_llm::{profiles, SimLlm};

fn main() {
    let harness = Harness::new(HarnessConfig::default());
    let problem = harness
        .problems()
        .iter()
        .find(|p| p.name.contains("count_mod10_tc"))
        .expect("counter task present");

    println!("task: {}\n{}", problem.name, problem.spec);

    let mut model = SimLlm::new(profiles::llama3_70b(), build_library(harness.problems()));
    let tools = XsimToolSuite::new();
    let pipeline = Aivril2::new(&tools, Aivril2Config::default());

    // Try a few samples: with a 1.28% zero-shot VHDL syntax rate, most
    // need several corrective iterations; some exhaust the budget.
    for seed in 0..4u64 {
        let task = TaskInput {
            name: problem.name.clone(),
            module_name: problem.module_name.clone(),
            spec: problem.spec.clone(),
            verilog: false,
            seed,
        };
        let result = pipeline.run(&mut model, &task);
        let (syntax, functional) = harness.score(problem, &result.final_rtl, false);
        println!(
            "sample {seed}: {} events, syntax {} functional {} ({:.1}s modeled)",
            result.trace.events.len(),
            if syntax { "PASS" } else { "FAIL" },
            if functional { "PASS" } else { "FAIL" },
            result.trace.total_latency(),
        );
        if seed == 0 {
            println!(
                "--- workflow for sample 0 ---\n{}",
                result.trace.narration()
            );
        }
    }
    println!("\nNothing in the framework knew the language: the same agents drove");
    println!("xvhdl-style analysis and the same simulator kernel executed the");
    println!("VHDL design via the shared IR.");
}
