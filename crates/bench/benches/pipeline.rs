//! Criterion benchmarks for the substrate and the pipeline.
//!
//! These measure the *reproduction's* own performance (compiler and
//! simulator throughput, end-to-end pipeline cost per benchmark task) —
//! the numbers that determine how long the table harnesses take. The
//! paper-shaped experiments themselves live in `src/bin/{table1,table2,
//! figure3,ablation}`.

use aivril_bench::{build_library, Harness, HarnessConfig};
use aivril_core::{Aivril2, Aivril2Config, TaskInput};
use aivril_eda::{HdlFile, ToolSuite, XsimToolSuite};
use aivril_llm::{profiles, SimLlm};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn harness() -> Harness {
    Harness::new(HarnessConfig {
        samples: 1,
        task_limit: 156,
        ..HarnessConfig::default()
    })
}

/// Verilog frontend throughput: lex+parse+elaborate a mid-size golden
/// DUT + testbench pair.
fn bench_compile_verilog(c: &mut Criterion) {
    let h = harness();
    let p = h
        .problems()
        .iter()
        .find(|p| p.name.contains("alu4op_w8"))
        .expect("alu problem present");
    let tools = XsimToolSuite::new();
    let files = [
        HdlFile::new("dut.v", p.verilog.dut.clone()),
        HdlFile::new("tb.v", p.verilog.tb.clone()),
    ];
    c.bench_function("compile_verilog_alu8", |b| {
        b.iter(|| black_box(tools.compile(black_box(&files))))
    });
}

/// VHDL frontend throughput on the same design.
fn bench_compile_vhdl(c: &mut Criterion) {
    let h = harness();
    let p = h
        .problems()
        .iter()
        .find(|p| p.name.contains("alu4op_w8"))
        .expect("alu problem present");
    let tools = XsimToolSuite::new();
    let files = [
        HdlFile::new("dut.vhd", p.vhdl.dut.clone()),
        HdlFile::new("tb.vhd", p.vhdl.tb.clone()),
    ];
    c.bench_function("compile_vhdl_alu8", |b| {
        b.iter(|| black_box(tools.compile(black_box(&files))))
    });
}

/// Event-kernel throughput: full simulation of an exhaustive
/// combinational testbench (64 vectors) and a sequential one.
fn bench_simulate(c: &mut Criterion) {
    let h = harness();
    let tools = XsimToolSuite::new();
    for name in ["adder_cout_w8", "count_mod10_tc"] {
        let p = h
            .problems()
            .iter()
            .find(|p| p.name.contains(name))
            .expect("problem present");
        let files = [
            HdlFile::new("dut.v", p.verilog.dut.clone()),
            HdlFile::new("tb.v", p.verilog.tb.clone()),
        ];
        c.bench_function(&format!("simulate_{name}"), |b| {
            b.iter(|| black_box(tools.simulate(black_box(&files), Some("tb"))))
        });
    }
}

/// End-to-end AIVRIL2 pipeline cost for one task sample (Claude
/// profile): two generations, the loops, and all tool runs.
fn bench_pipeline(c: &mut Criterion) {
    let h = harness();
    let p = h
        .problems()
        .iter()
        .find(|p| p.name.contains("count_up_w4"))
        .expect("counter present");
    let lib = build_library(h.problems());
    let tools = XsimToolSuite::new();
    let pipeline = Aivril2::new(&tools, Aivril2Config::default());
    c.bench_function("aivril2_pipeline_counter", |b| {
        let mut model = SimLlm::new(profiles::claude35_sonnet(), lib.clone());
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let task = TaskInput {
                name: p.name.clone(),
                module_name: p.module_name.clone(),
                spec: p.spec.clone(),
                verilog: true,
                seed,
            };
            black_box(pipeline.run(&mut model, &task))
        })
    });
}

/// Suite generation cost (all 156 problems with their testbenches).
fn bench_suite_generation(c: &mut Criterion) {
    c.bench_function("generate_suite_156", |b| {
        b.iter(|| black_box(aivril_verilogeval::suite()))
    });
}

criterion_group!(
    benches,
    bench_compile_verilog,
    bench_compile_vhdl,
    bench_simulate,
    bench_pipeline,
    bench_suite_generation
);
criterion_main!(benches);
