//! Structured diagnostics with Vivado-style log rendering.
//!
//! The AIVRIL2 loop is driven by EDA *logs*: the Review Agent reads the
//! compiler's output, extracts error locations and snippets, and converts
//! them into corrective prompts. This module produces exactly that raw
//! material — structured [`Diagnostic`]s that render into the
//! `ERROR: [VRFC 10-91] message [file.v:12]` format familiar from
//! Vivado's `xvlog`/`xvhdl` front ends.

use crate::source::{SourceMap, Span};
use std::fmt;

/// Severity of a diagnostic, ordered from least to most severe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Severity {
    /// Informational message.
    Note,
    /// Suspicious but legal construct.
    Warning,
    /// The input is invalid; compilation cannot produce a design unit.
    Error,
    /// Unrecoverable condition; processing stopped immediately.
    Fatal,
}

impl Severity {
    /// Vivado log prefix (`INFO`, `WARNING`, `ERROR`, `FATAL`).
    #[must_use]
    pub fn log_prefix(self) -> &'static str {
        match self {
            Severity::Note => "INFO",
            Severity::Warning => "WARNING",
            Severity::Error => "ERROR",
            Severity::Fatal => "FATAL",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.log_prefix())
    }
}

/// A single tool message with location and message-id metadata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// How severe the message is.
    pub severity: Severity,
    /// Vivado-style message id, e.g. `VRFC 10-91`.
    pub code: String,
    /// Human-readable message text.
    pub message: String,
    /// Location in the source, when known.
    pub span: Option<Span>,
}

impl Diagnostic {
    /// Creates an [`Severity::Error`] diagnostic.
    #[must_use]
    pub fn error(code: impl Into<String>, message: impl Into<String>, span: Span) -> Diagnostic {
        Diagnostic {
            severity: Severity::Error,
            code: code.into(),
            message: message.into(),
            span: Some(span),
        }
    }

    /// Creates a [`Severity::Warning`] diagnostic.
    #[must_use]
    pub fn warning(code: impl Into<String>, message: impl Into<String>, span: Span) -> Diagnostic {
        Diagnostic {
            severity: Severity::Warning,
            code: code.into(),
            message: message.into(),
            span: Some(span),
        }
    }

    /// Creates an error diagnostic with no source location (e.g. a missing
    /// top module reported at elaboration).
    #[must_use]
    pub fn global_error(code: impl Into<String>, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            severity: Severity::Error,
            code: code.into(),
            message: message.into(),
            span: None,
        }
    }

    /// Renders one Vivado-style log line, e.g.
    /// `ERROR: [VRFC 10-91] syntax error near ';' [adder.v:12]`.
    #[must_use]
    pub fn render(&self, sources: &SourceMap) -> String {
        match self.span {
            Some(span) => format!(
                "{}: [{}] {} [{}]",
                self.severity.log_prefix(),
                self.code,
                self.message,
                sources.describe(span)
            ),
            None => format!(
                "{}: [{}] {}",
                self.severity.log_prefix(),
                self.code,
                self.message
            ),
        }
    }
}

/// Accumulates diagnostics during a compilation phase.
///
/// # Example
///
/// ```
/// use aivril_hdl::diag::{Diagnostics, Diagnostic};
/// use aivril_hdl::source::{SourceMap, Span};
///
/// let mut sources = SourceMap::new();
/// let file = sources.add_file("top.v", "module top\nendmodule\n");
/// let mut diags = Diagnostics::new();
/// diags.push(Diagnostic::error("VRFC 10-91", "expected ';'", Span::new(file, 10, 11)));
/// assert!(diags.has_errors());
/// let log = diags.render(&sources);
/// assert!(log.contains("[top.v:1]"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Diagnostics {
    diags: Vec<Diagnostic>,
}

impl Diagnostics {
    /// Creates an empty sink.
    #[must_use]
    pub fn new() -> Diagnostics {
        Diagnostics::default()
    }

    /// Appends a diagnostic.
    pub fn push(&mut self, diag: Diagnostic) {
        self.diags.push(diag);
    }

    /// `true` if any [`Severity::Error`] or [`Severity::Fatal`] message was
    /// recorded.
    #[must_use]
    pub fn has_errors(&self) -> bool {
        self.diags.iter().any(|d| d.severity >= Severity::Error)
    }

    /// Number of error-or-worse messages.
    #[must_use]
    pub fn error_count(&self) -> usize {
        self.diags
            .iter()
            .filter(|d| d.severity >= Severity::Error)
            .count()
    }

    /// All recorded diagnostics in order.
    #[must_use]
    pub fn all(&self) -> &[Diagnostic] {
        &self.diags
    }

    /// Moves the recorded diagnostics out of this sink.
    #[must_use]
    pub fn into_vec(self) -> Vec<Diagnostic> {
        self.diags
    }

    /// Merges another sink's contents into this one.
    pub fn extend(&mut self, other: Diagnostics) {
        self.diags.extend(other.diags);
    }

    /// Renders the whole log, one Vivado-style line per diagnostic.
    #[must_use]
    pub fn render(&self, sources: &SourceMap) -> String {
        let mut out = String::new();
        for d in &self.diags {
            out.push_str(&d.render(sources));
            out.push('\n');
        }
        out
    }
}

impl FromIterator<Diagnostic> for Diagnostics {
    fn from_iter<I: IntoIterator<Item = Diagnostic>>(iter: I) -> Diagnostics {
        Diagnostics {
            diags: iter.into_iter().collect(),
        }
    }
}

impl Extend<Diagnostic> for Diagnostics {
    fn extend<I: IntoIterator<Item = Diagnostic>>(&mut self, iter: I) {
        self.diags.extend(iter);
    }
}

/// Message-id constants used across the toolchain, loosely modeled on
/// Vivado's `VRFC` (HDL frontend) and `XSIM` (simulation) id spaces.
pub mod codes {
    /// Syntax error from the Verilog parser.
    pub const VLOG_SYNTAX: &str = "VRFC 10-91";
    /// Reference to an undeclared identifier (Verilog).
    pub const VLOG_UNDECLARED: &str = "VRFC 10-2865";
    /// Redeclaration of an existing identifier (Verilog).
    pub const VLOG_REDECLARED: &str = "VRFC 10-1108";
    /// Unknown module in an instantiation.
    pub const ELAB_UNKNOWN_MODULE: &str = "VRFC 10-2063";
    /// Port connection mismatch at instantiation.
    pub const ELAB_PORT_MISMATCH: &str = "VRFC 10-719";
    /// Illegal assignment target (e.g. procedural assign to a wire).
    pub const VLOG_BAD_ASSIGN: &str = "VRFC 10-3053";
    /// Syntax error from the VHDL parser.
    pub const VHDL_SYNTAX: &str = "VRFC 10-1412";
    /// Reference to an undeclared identifier (VHDL).
    pub const VHDL_UNDECLARED: &str = "VRFC 10-724";
    /// VHDL type mismatch.
    pub const VHDL_TYPE: &str = "VRFC 10-1504";
    /// Simulation runtime issue (e.g. iteration limit).
    pub const SIM_RUNTIME: &str = "XSIM 43-3225";
    /// Width mismatch warning.
    pub const WIDTH_MISMATCH: &str = "VRFC 10-3091";
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceMap;

    fn setup() -> (SourceMap, Span) {
        let mut sources = SourceMap::new();
        let file = sources.add_file("counter.v", "module counter;\nreg q\nendmodule\n");
        (sources, Span::new(file, 16, 21))
    }

    #[test]
    fn renders_vivado_style_error() {
        let (sources, span) = setup();
        let d = Diagnostic::error(codes::VLOG_SYNTAX, "expected ';' near 'endmodule'", span);
        assert_eq!(
            d.render(&sources),
            "ERROR: [VRFC 10-91] expected ';' near 'endmodule' [counter.v:2]"
        );
    }

    #[test]
    fn renders_global_error_without_location() {
        let (sources, _) = setup();
        let d = Diagnostic::global_error(codes::ELAB_UNKNOWN_MODULE, "module 'foo' not found");
        assert_eq!(
            d.render(&sources),
            "ERROR: [VRFC 10-2063] module 'foo' not found"
        );
    }

    #[test]
    fn error_counting_ignores_warnings() {
        let (_, span) = setup();
        let mut diags = Diagnostics::new();
        diags.push(Diagnostic::warning(
            codes::WIDTH_MISMATCH,
            "width mismatch",
            span,
        ));
        assert!(!diags.has_errors());
        diags.push(Diagnostic::error(codes::VLOG_SYNTAX, "syntax error", span));
        assert!(diags.has_errors());
        assert_eq!(diags.error_count(), 1);
        assert_eq!(diags.all().len(), 2);
    }

    #[test]
    fn severity_ordering() {
        assert!(Severity::Fatal > Severity::Error);
        assert!(Severity::Error > Severity::Warning);
        assert!(Severity::Warning > Severity::Note);
    }

    #[test]
    fn collect_and_render_multi_line_log() {
        let (sources, span) = setup();
        let diags: Diagnostics = vec![
            Diagnostic::error(codes::VLOG_SYNTAX, "first", span),
            Diagnostic::error(codes::VLOG_UNDECLARED, "second", span),
        ]
        .into_iter()
        .collect();
        let log = diags.render(&sources);
        assert_eq!(log.lines().count(), 2);
        assert!(log.contains("VRFC 10-2865"));
    }
}
