//! Compiled expression evaluation: flat register-machine bytecode.
//!
//! The tree walker in [`crate::eval`] allocates nothing *per node*, but
//! it pays a recursive call, a `match` on a boxed node, and pointer
//! chasing for every operator on every activation — and the hot loop of
//! a simulation evaluates the same handful of expressions millions of
//! times. At [`Simulator::new`](crate::Simulator::new) each process's
//! expressions are lowered **once** into a flat [`ExprProgram`]: a
//! post-order sequence of [`Op`]s reading and writing numbered scratch
//! slots, executed by a tight non-recursive loop over a per-simulator
//! scratch arena that is allocated once and reused for every
//! evaluation.
//!
//! The tree interpreter stays in the crate as the semantic oracle: the
//! cold paths (`$display` arguments, `$monitor`, l-value indices) still
//! run it, and the differential property tests at the bottom of this
//! file require bit-for-bit agreement between the two on randomly
//! generated expression trees. Any divergence is a bug in *this* file —
//! the tree is the specification.
//!
//! Slot discipline: `compile_into(expr, dst)` leaves `expr`'s value in
//! slot `dst` and may scribble on any slot `> dst`. Binary operands go
//! to `dst` / `dst+1`, ternaries to `dst` / `dst+1` / `dst+2`, so the
//! arena height equals the expression tree's operand depth, not its
//! size.

use aivril_hdl::ir::{BinaryOp, Expr, NetId, UnaryOp};
use aivril_hdl::logic::Logic;
use aivril_hdl::vec::LogicVec;

/// One bytecode instruction. `dst` is the scratch slot the result is
/// written to; operand slots are fixed offsets from `dst` (see the
/// module docs).
#[derive(Debug, Clone)]
pub(crate) enum Op {
    /// `slot[dst] = value`.
    Const { dst: u32, value: LogicVec },
    /// `slot[dst] = nets[net]`.
    Net { dst: u32, net: NetId },
    /// Bit-select: the index value is already in `slot[dst]`;
    /// `slot[dst] = nets[net][index]` (X when unknown/out of range).
    Index { dst: u32, net: NetId },
    /// Part-select straight off the net: `slot[dst] = nets[net][msb:lsb]`.
    Range {
        dst: u32,
        net: NetId,
        msb: u32,
        lsb: u32,
    },
    /// `slot[dst] = op slot[dst]`.
    Unary { dst: u32, op: UnaryOp },
    /// `slot[dst] = slot[dst] op slot[dst+1]`.
    Binary { dst: u32, op: BinaryOp },
    /// Ternary select: condition in `dst`, arms in `dst+1` / `dst+2`.
    Select { dst: u32 },
    /// `slot[dst] = {slot[dst], slot[dst+1]}` (left operand is the MSBs).
    Concat2 { dst: u32 },
    /// `slot[dst] = {count{slot[dst]}}`.
    Repeat { dst: u32, count: u32 },
    /// `slot[dst] = $time` (64 bits).
    Time { dst: u32 },
    /// `slot[dst] = 1'b1` iff the wake that resumed this process was the
    /// matching edge of `net`.
    EdgeFlag { dst: u32, net: NetId, rising: bool },
}

/// A compiled expression: the op sequence plus the arena height it
/// needs. Executing it leaves the result in slot 0.
#[derive(Debug, Clone)]
pub(crate) struct ExprProgram {
    ops: Vec<Op>,
    slots: u32,
}

impl ExprProgram {
    /// Scratch slots this program requires.
    pub(crate) fn slots(&self) -> u32 {
        self.slots
    }
}

/// Lowers `expr` into a flat program. Pure function of the expression;
/// called once per expression at simulator construction.
pub(crate) fn compile(expr: &Expr) -> ExprProgram {
    let mut ops = Vec::new();
    let mut slots = 0;
    compile_into(expr, 0, &mut ops, &mut slots);
    ExprProgram { ops, slots }
}

fn compile_into(expr: &Expr, dst: u32, ops: &mut Vec<Op>, slots: &mut u32) {
    *slots = (*slots).max(dst + 1);
    match expr {
        Expr::Const(value) => ops.push(Op::Const {
            dst,
            value: value.clone(),
        }),
        Expr::Net(net) => ops.push(Op::Net { dst, net: *net }),
        Expr::Index { net, index } => {
            compile_into(index, dst, ops, slots);
            ops.push(Op::Index { dst, net: *net });
        }
        Expr::Range { net, msb, lsb } => ops.push(Op::Range {
            dst,
            net: *net,
            msb: *msb,
            lsb: *lsb,
        }),
        Expr::Unary { op, operand } => {
            compile_into(operand, dst, ops, slots);
            ops.push(Op::Unary { dst, op: *op });
        }
        Expr::Binary { op, lhs, rhs } => {
            compile_into(lhs, dst, ops, slots);
            compile_into(rhs, dst + 1, ops, slots);
            ops.push(Op::Binary { dst, op: *op });
        }
        Expr::Ternary { cond, then, els } => {
            // Both arms are always evaluated (expressions are pure, so
            // this is unobservable); Select picks per the tree walker's
            // exact rules, including the unknown-condition X-merge.
            compile_into(cond, dst, ops, slots);
            compile_into(then, dst + 1, ops, slots);
            compile_into(els, dst + 2, ops, slots);
            ops.push(Op::Select { dst });
        }
        Expr::Concat(parts) => match parts.split_first() {
            None => ops.push(Op::Const {
                dst,
                value: LogicVec::zeros(1),
            }),
            Some((first, rest)) => {
                compile_into(first, dst, ops, slots);
                for part in rest {
                    compile_into(part, dst + 1, ops, slots);
                    ops.push(Op::Concat2 { dst });
                }
            }
        },
        Expr::Repeat { count, operand } => {
            compile_into(operand, dst, ops, slots);
            ops.push(Op::Repeat {
                dst,
                count: (*count).max(1),
            });
        }
        Expr::Time => ops.push(Op::Time { dst }),
        Expr::EdgeFlag { net, rising } => ops.push(Op::EdgeFlag {
            dst,
            net: *net,
            rising: *rising,
        }),
    }
}

/// Runs `prog` against the current net `values` and moves the result
/// out of slot 0 (leaving an inline placeholder behind, so the arena
/// never shrinks or reallocates).
///
/// `spilled_writes` counts op results that landed in the spilled
/// (heap-backed) representation — the evaluator's only possible source
/// of steady-state allocation. A design whose nets all fit 64 bits
/// reports zero here, which is exactly the claim the `eval_allocs`
/// diagnostic stat surfaces.
pub(crate) fn exec(
    prog: &ExprProgram,
    values: &[LogicVec],
    time: u64,
    last_wake: Option<NetId>,
    slots: &mut [LogicVec],
    spilled_writes: &mut u64,
) -> LogicVec {
    for op in &prog.ops {
        let dst = match op {
            Op::Const { dst, value } => {
                slots[*dst as usize] = value.clone();
                *dst
            }
            Op::Net { dst, net } => {
                slots[*dst as usize] = values[net.0 as usize].clone();
                *dst
            }
            Op::Index { dst, net } => {
                let value = &values[net.0 as usize];
                let d = *dst as usize;
                slots[d] = match slots[d].to_u64() {
                    Some(i) if i < u64::from(value.width()) => {
                        LogicVec::from_logic(value.get(i as u32))
                    }
                    _ => LogicVec::from_logic(Logic::X),
                };
                *dst
            }
            Op::Range { dst, net, msb, lsb } => {
                slots[*dst as usize] = values[net.0 as usize].slice(*msb, *lsb);
                *dst
            }
            Op::Unary { dst, op } => {
                let d = *dst as usize;
                let v = &slots[d];
                slots[d] = match op {
                    UnaryOp::Not => v.not(),
                    UnaryOp::LogicalNot => {
                        let b = match v.to_bool() {
                            Some(b) => Logic::from_bool(!b),
                            None => Logic::X,
                        };
                        LogicVec::from_logic(b)
                    }
                    UnaryOp::Negate => v.negate(),
                    UnaryOp::ReduceAnd => LogicVec::from_logic(v.reduce_and()),
                    UnaryOp::ReduceOr => LogicVec::from_logic(v.reduce_or()),
                    UnaryOp::ReduceXor => LogicVec::from_logic(v.reduce_xor()),
                    UnaryOp::ReduceNand => LogicVec::from_logic(v.reduce_and().not()),
                    UnaryOp::ReduceNor => LogicVec::from_logic(v.reduce_or().not()),
                    UnaryOp::ReduceXnor => LogicVec::from_logic(v.reduce_xor().not()),
                };
                *dst
            }
            Op::Binary { dst, op } => {
                let d = *dst as usize;
                let (lo, hi) = slots.split_at_mut(d + 1);
                let a = &lo[d];
                let b = &hi[0];
                lo[d] = match op {
                    BinaryOp::And => a.and(b),
                    BinaryOp::Or => a.or(b),
                    BinaryOp::Xor => a.xor(b),
                    BinaryOp::Xnor => a.xnor(b),
                    BinaryOp::Add => a.add(b),
                    BinaryOp::Sub => a.sub(b),
                    BinaryOp::Mul => a.mul(b),
                    BinaryOp::Div => a.div(b),
                    BinaryOp::Rem => a.rem(b),
                    BinaryOp::Shl => a.shl(b),
                    BinaryOp::Shr => a.shr(b),
                    BinaryOp::Eq => LogicVec::from_logic(a.logic_eq(b)),
                    BinaryOp::Ne => LogicVec::from_logic(a.logic_eq(b).not()),
                    BinaryOp::CaseEq => LogicVec::from_logic(Logic::from_bool(a.case_eq(b))),
                    BinaryOp::CaseNe => LogicVec::from_logic(Logic::from_bool(!a.case_eq(b))),
                    BinaryOp::Lt => LogicVec::from_logic(a.lt(b)),
                    BinaryOp::Le => LogicVec::from_logic(a.le(b)),
                    BinaryOp::Gt => LogicVec::from_logic(a.gt(b)),
                    BinaryOp::Ge => LogicVec::from_logic(a.ge(b)),
                    // The tree walker evaluates both operands' truth
                    // values unconditionally; with both already in
                    // slots this is the same computation.
                    BinaryOp::LogicalAnd | BinaryOp::LogicalOr => {
                        let (x, y) = (a.to_bool(), b.to_bool());
                        let r = match (op, x, y) {
                            (BinaryOp::LogicalAnd, Some(false), _)
                            | (BinaryOp::LogicalAnd, _, Some(false)) => Logic::Zero,
                            (BinaryOp::LogicalAnd, Some(true), Some(true)) => Logic::One,
                            (BinaryOp::LogicalOr, Some(true), _)
                            | (BinaryOp::LogicalOr, _, Some(true)) => Logic::One,
                            (BinaryOp::LogicalOr, Some(false), Some(false)) => Logic::Zero,
                            _ => Logic::X,
                        };
                        LogicVec::from_logic(r)
                    }
                };
                *dst
            }
            Op::Select { dst } => {
                let d = *dst as usize;
                match slots[d].to_bool() {
                    // Known condition: the taken arm at its own width.
                    // A swap moves it without touching the heap.
                    Some(true) => slots.swap(d, d + 1),
                    Some(false) => slots.swap(d, d + 2),
                    None => {
                        // IEEE 1364: merge both arms; disagreeing bits
                        // go X. Mirrors the tree walker bit for bit.
                        let t = &slots[d + 1];
                        let e = &slots[d + 2];
                        let width = t.width().max(e.width());
                        let t = t.resize(width);
                        let e = e.resize(width);
                        let mut out = LogicVec::zeros(width);
                        for i in 0..width {
                            let (a, b) = (t.get(i), e.get(i));
                            out.set(
                                i,
                                if a == b && !a.is_unknown() {
                                    a
                                } else {
                                    Logic::X
                                },
                            );
                        }
                        slots[d] = out;
                    }
                }
                *dst
            }
            Op::Concat2 { dst } => {
                let d = *dst as usize;
                let (lo, hi) = slots.split_at_mut(d + 1);
                lo[d] = lo[d].concat(&hi[0]);
                *dst
            }
            Op::Repeat { dst, count } => {
                let d = *dst as usize;
                slots[d] = slots[d].replicate(*count);
                *dst
            }
            Op::Time { dst } => {
                slots[*dst as usize] = LogicVec::from_u64(64, time);
                *dst
            }
            Op::EdgeFlag { dst, net, rising } => {
                let fired = last_wake == Some(*net) && {
                    let bit = values[net.0 as usize].get(0);
                    if *rising {
                        bit == Logic::One
                    } else {
                        bit == Logic::Zero
                    }
                };
                slots[*dst as usize] = LogicVec::from_logic(Logic::from_bool(fired));
                *dst
            }
        };
        if slots[dst as usize].is_spilled() {
            *spilled_writes += 1;
        }
    }
    std::mem::replace(&mut slots[0], LogicVec::zeros(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::EvalCtx;
    use proptest::collection::vec as pvec;
    use proptest::prelude::*;
    use proptest::strategy::BoxedStrategy;

    /// Runs `expr` through both evaluators and asserts bit-for-bit
    /// agreement (width included, via `PartialEq`).
    fn check(expr: &Expr, values: &[LogicVec], time: u64, last_wake: Option<NetId>) {
        let oracle = EvalCtx {
            values,
            time,
            last_wake,
        }
        .eval(expr);
        let prog = compile(expr);
        let mut slots = vec![LogicVec::zeros(1); prog.slots() as usize];
        let mut spills = 0u64;
        let compiled = exec(&prog, values, time, last_wake, &mut slots, &mut spills);
        assert_eq!(
            compiled, oracle,
            "bytecode diverged from tree walker on {expr:?}"
        );
    }

    /// Fixed net environment: widths chosen to cover the inline word,
    /// the boundary, and the spilled multi-word representation.
    const NET_WIDTHS: [u32; 6] = [1, 8, 16, 33, 64, 100];

    fn vec_from_masks(width: u32, aval: u64, bval: u64) -> LogicVec {
        let mut v = LogicVec::zeros(width);
        for i in 0..width.min(64) {
            v.set(i, Logic::from_avab(aval >> i & 1 == 1, bval >> i & 1 == 1));
        }
        v
    }

    fn values_strategy() -> BoxedStrategy<Vec<LogicVec>> {
        pvec(
            (0u64..=u64::MAX, 0u64..=u64::MAX),
            NET_WIDTHS.len()..=NET_WIDTHS.len(),
        )
        .prop_map(|masks| {
            NET_WIDTHS
                .iter()
                .zip(masks)
                .map(|(&w, (a, b))| vec_from_masks(w, a, b))
                .collect()
        })
        .boxed()
    }

    fn net_id_strategy() -> BoxedStrategy<NetId> {
        (0u32..NET_WIDTHS.len() as u32).prop_map(NetId).boxed()
    }

    fn leaf_strategy() -> BoxedStrategy<Expr> {
        prop_oneof![
            (1u32..=80, 0u64..=u64::MAX, 0u64..=u64::MAX)
                .prop_map(|(w, a, b)| Expr::Const(vec_from_masks(w, a, b))),
            net_id_strategy().prop_map(Expr::Net),
            (net_id_strategy(), 0u32..110, 0u32..110).prop_map(|(net, a, b)| Expr::Range {
                net,
                msb: a.max(b),
                lsb: a.min(b),
            }),
            Just(Expr::Time),
            (net_id_strategy(), 0u32..=1).prop_map(|(net, r)| Expr::EdgeFlag {
                net,
                rising: r == 1
            }),
        ]
        .boxed()
    }

    const UNARY_OPS: [UnaryOp; 9] = [
        UnaryOp::Not,
        UnaryOp::LogicalNot,
        UnaryOp::Negate,
        UnaryOp::ReduceAnd,
        UnaryOp::ReduceOr,
        UnaryOp::ReduceXor,
        UnaryOp::ReduceNand,
        UnaryOp::ReduceNor,
        UnaryOp::ReduceXnor,
    ];

    const BINARY_OPS: [BinaryOp; 21] = [
        BinaryOp::And,
        BinaryOp::Or,
        BinaryOp::Xor,
        BinaryOp::Xnor,
        BinaryOp::Add,
        BinaryOp::Sub,
        BinaryOp::Mul,
        BinaryOp::Div,
        BinaryOp::Rem,
        BinaryOp::Shl,
        BinaryOp::Shr,
        BinaryOp::Eq,
        BinaryOp::Ne,
        BinaryOp::CaseEq,
        BinaryOp::CaseNe,
        BinaryOp::Lt,
        BinaryOp::Le,
        BinaryOp::Gt,
        BinaryOp::Ge,
        BinaryOp::LogicalAnd,
        BinaryOp::LogicalOr,
    ];

    /// Random expression trees of bounded depth over the fixed nets.
    fn expr_strategy(depth: u32) -> BoxedStrategy<Expr> {
        if depth == 0 {
            return leaf_strategy();
        }
        let sub = move || expr_strategy(depth - 1);
        prop_oneof![
            leaf_strategy(),
            (0usize..UNARY_OPS.len(), sub()).prop_map(|(i, operand)| Expr::Unary {
                op: UNARY_OPS[i],
                operand: Box::new(operand),
            }),
            (0usize..BINARY_OPS.len(), sub(), sub()).prop_map(|(i, lhs, rhs)| Expr::Binary {
                op: BINARY_OPS[i],
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            }),
            (sub(), sub(), sub()).prop_map(|(cond, then, els)| Expr::Ternary {
                cond: Box::new(cond),
                then: Box::new(then),
                els: Box::new(els),
            }),
            pvec(sub(), 1..=3).prop_map(Expr::Concat),
            (1u32..=3, sub()).prop_map(|(count, operand)| Expr::Repeat {
                count,
                operand: Box::new(operand),
            }),
            (net_id_strategy(), sub()).prop_map(|(net, index)| Expr::Index {
                net,
                index: Box::new(index),
            }),
        ]
        .boxed()
    }

    fn last_wake_strategy() -> BoxedStrategy<Option<NetId>> {
        (0u32..=NET_WIDTHS.len() as u32)
            .prop_map(|i| (i as usize != NET_WIDTHS.len()).then_some(NetId(i)))
            .boxed()
    }

    proptest! {
        /// Satellite: compiled bytecode must agree with the tree
        /// interpreter bit-for-bit on arbitrary expression trees.
        #[test]
        fn bytecode_matches_tree_interpreter(
            expr in expr_strategy(3),
            values in values_strategy(),
            time in 0u64..1_000_000,
            last_wake in last_wake_strategy(),
        ) {
            check(&expr, &values, time, last_wake);
        }

        /// Deep, narrow trees stress the slot allocator (operand depth
        /// beyond what random shapes usually reach).
        #[test]
        fn deep_chains_match(
            expr in expr_strategy(5),
            values in values_strategy(),
        ) {
            check(&expr, &values, 7, None);
        }
    }

    #[test]
    fn inline_only_programs_report_zero_spills() {
        // (n1 + 8'd3) ^ (n2 >> 2) over <=64-bit nets: the whole
        // evaluation must stay in the inline representation.
        let expr = Expr::Binary {
            op: BinaryOp::Xor,
            lhs: Box::new(Expr::Binary {
                op: BinaryOp::Add,
                lhs: Box::new(Expr::Net(NetId(1))),
                rhs: Box::new(Expr::constant(8, 3)),
            }),
            rhs: Box::new(Expr::Binary {
                op: BinaryOp::Shr,
                lhs: Box::new(Expr::Net(NetId(2))),
                rhs: Box::new(Expr::constant(8, 2)),
            }),
        };
        let values: Vec<LogicVec> = NET_WIDTHS
            .iter()
            .map(|&w| LogicVec::from_u64(w, 0x5a))
            .collect();
        let prog = compile(&expr);
        let mut slots = vec![LogicVec::zeros(1); prog.slots() as usize];
        let mut spills = 0u64;
        let out = exec(&prog, &values, 0, None, &mut slots, &mut spills);
        assert_eq!(spills, 0, "no spilled values may be materialised");
        assert!(!out.is_spilled());
    }

    #[test]
    fn wide_programs_count_spills() {
        let expr = Expr::Binary {
            op: BinaryOp::Add,
            lhs: Box::new(Expr::Net(NetId(5))), // 100-bit net
            rhs: Box::new(Expr::constant(100, 1)),
        };
        let values: Vec<LogicVec> = NET_WIDTHS
            .iter()
            .map(|&w| LogicVec::from_u64(w, 1))
            .collect();
        let prog = compile(&expr);
        let mut slots = vec![LogicVec::zeros(1); prog.slots() as usize];
        let mut spills = 0u64;
        exec(&prog, &values, 0, None, &mut slots, &mut spills);
        assert!(spills >= 3, "net read, const and sum all spill: {spills}");
    }

    #[test]
    fn slot_heights_are_depth_not_size() {
        // A left-leaning chain of adds reuses slot 1 for every rhs.
        let mut expr = Expr::constant(8, 1);
        for i in 2..30u64 {
            expr = Expr::Binary {
                op: BinaryOp::Add,
                lhs: Box::new(expr),
                rhs: Box::new(Expr::constant(8, i)),
            };
        }
        assert_eq!(compile(&expr).slots(), 2);
    }

    #[test]
    fn empty_concat_compiles_to_one_bit_zero() {
        let prog = compile(&Expr::Concat(vec![]));
        let mut slots = vec![LogicVec::zeros(1); prog.slots() as usize];
        let mut spills = 0u64;
        let out = exec(&prog, &[], 0, None, &mut slots, &mut spills);
        assert_eq!(out, LogicVec::zeros(1));
    }
}
