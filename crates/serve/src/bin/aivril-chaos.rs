//! `aivril-chaos` — invariant-checking soak harness for the chaos
//! plane.
//!
//! Composes every deterministic fault injector the workspace has —
//! LLM backend faults (`AIVRIL_FAULTS`), EDA tool/disk/checkpoint
//! faults (`AIVRIL_EDA_FAULTS`), and a kill-and-restart of a live
//! `aivril-serve` child over its job journal — and checks the
//! system-wide invariants *mechanically* instead of eyeballing logs:
//!
//! 1. **Thread invariance under faults** — a quicklook-shaped grid
//!    with LLM + EDA faults on is byte-identical across worker
//!    counts (canonical JSON compare, 1 vs 2 threads).
//! 2. **Disk chaos is invisible** — the same grid through a
//!    fault-injected persistent cache tier equals the cache-free run
//!    byte-for-byte (disk faults degrade caching, never results),
//!    and reopening the store sweeps every stale `.tmp-*` file.
//! 3. **Checkpoint resume equality** — a run that checkpoints under
//!    torn-tail/checksum-flip faults, and a resume over that same
//!    directory, both equal the checkpoint-free baseline.
//! 4. **Counter consistency** — under a crash-only plan the emitted
//!    resilience counters obey the arithmetic the injector implies:
//!    `injected == retries + exhausted` and
//!    `retries == retry_max * exhausted`.
//! 5. **Crash-safe serve** — an `aivril-serve` child (faults on) is
//!    SIGKILLed with an admitted-but-unfinished job, restarted over
//!    the same journal directory, and every job's replayed frame
//!    stream must be byte-identical to an uninterrupted server's.
//!
//! ```text
//! aivril-chaos [--seed N] [--tasks N] [--report PATH]
//! ```
//!
//! `--seed` drives the deterministic kill schedule (which admitted
//! job the server dies on), `--tasks` scales the grid legs, and
//! `--report` writes the per-check verdict lines to a file for CI
//! artifacts. Exit status is 0 iff every check passed.

use aivril_bench::{arg_value, results_json, Flow, Harness, HarnessConfig, ResultSection};
use aivril_eda::{EdaCache, EdaFaultPlan};
use aivril_llm::{profiles, FaultConfig};
use aivril_obs::{MetricValue, MetricsRegistry, Recorder};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

/// The composed tool-plane plan for the grid legs: every fault class
/// at a rate high enough to fire many times over a small grid.
const TOOL_PLAN: &str = "crash=0.25,hang=0.1,garbled=0.2,truncate=0.15,\
                         spurious_exit=0.2,retry_max=2,watchdog_s=30";

/// Disk-tier chaos for the cache leg. `disk_stale_tmp=1.0` guarantees
/// stale tempfiles so the hygiene half of the check has teeth.
const DISK_PLAN: &str = "disk_short_write=0.6,disk_probe_eio=0.4,disk_stale_tmp=1.0";

/// Checkpoint-log chaos for the resume leg.
const CKPT_PLAN: &str = "ckpt_torn_tail=0.5,ckpt_checksum_flip=0.3";

/// Fault plans handed to both serve children (identically — the
/// invariant is byte-equality between the killed and unkilled runs,
/// not between faulted and clean ones).
const SERVE_LLM_PLAN: &str = "0.1";
const SERVE_EDA_PLAN: &str = "crash=0.2,garbled=0.2,retry_max=2";

/// Env vars scrubbed from serve children so the harness is immune to
/// whatever shell it runs in; the ones each phase needs are re-set
/// explicitly.
const SCRUBBED_ENV: &[&str] = &[
    "AIVRIL_CANONICAL",
    "AIVRIL_CHECKPOINT_DIR",
    "AIVRIL_EDA_CACHE",
    "AIVRIL_EDA_CACHE_DIR",
    "AIVRIL_EDA_FAULTS",
    "AIVRIL_FAULTS",
    "AIVRIL_METRICS",
    "AIVRIL_SERVE_ADDR",
    "AIVRIL_SERVE_DEADLINE_S",
    "AIVRIL_SERVE_JOURNAL_DIR",
    "AIVRIL_SERVE_WORKERS",
    "AIVRIL_SHARD",
    "AIVRIL_THREADS",
    "AIVRIL_TRACE_CHROME",
    "AIVRIL_TRACE_JSON",
];

struct Check {
    name: &'static str,
    pass: bool,
    detail: String,
}

fn check(name: &'static str, pass: bool, detail: impl Into<String>) -> Check {
    Check {
        name,
        pass,
        detail: detail.into(),
    }
}

fn main() {
    let seed: u64 = arg_value("--seed")
        .and_then(|s| s.parse().ok())
        .unwrap_or(9);
    let tasks: usize = arg_value("--tasks")
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);
    println!("chaos: seed {seed}, {tasks} tasks per grid leg");

    let mut checks = Vec::new();
    checks.extend(thread_invariance(tasks));
    checks.extend(disk_chaos(tasks));
    checks.extend(checkpoint_resume(tasks));
    checks.extend(counter_consistency());
    checks.extend(serve_kill_restart(seed));

    let mut lines = Vec::new();
    let mut failed = 0usize;
    for c in &checks {
        let verdict = if c.pass { "ok  " } else { "FAIL" };
        if !c.pass {
            failed += 1;
        }
        lines.push(format!("{verdict} {}: {}", c.name, c.detail));
    }
    lines.push(format!(
        "chaos: {} checks, {failed} failed (seed {seed})",
        checks.len()
    ));
    let report = lines.join("\n") + "\n";
    print!("{report}");
    if let Some(path) = arg_value("--report") {
        if let Err(e) = std::fs::write(&path, &report) {
            eprintln!("chaos: cannot write report {path}: {e}");
            std::process::exit(1);
        }
        println!("report written to {path}");
    }
    std::process::exit(i32::from(failed > 0));
}

/// Base config for every grid leg: tiny, canonical (volatile
/// wall-clock stats zeroed so JSON bodies are byte-comparable), one
/// sample per task.
fn grid_config(tasks: usize) -> HarnessConfig {
    HarnessConfig {
        samples: 1,
        task_limit: tasks,
        threads: 1,
        canonical: true,
        ..HarnessConfig::default()
    }
}

/// Runs the Verilog baseline + AIVRIL2 grid and renders canonical
/// results JSON.
fn grid_json(config: &HarnessConfig, recorder: Option<&Recorder>) -> String {
    let mut harness = Harness::new(config.clone());
    if let Some(r) = recorder {
        harness = harness.with_recorder(r.clone());
    }
    let profile = profiles::claude35_sonnet();
    let mut sections = Vec::new();
    for flow in [Flow::Baseline, Flow::Aivril2] {
        let label = match flow {
            Flow::Baseline => "chaos baseline",
            Flow::Aivril2 => "chaos aivril2",
        };
        let (outcomes, stats) = harness.evaluate_with_stats(&profile, true, flow);
        sections.push(ResultSection {
            label: label.to_string(),
            outcomes,
            stats,
        });
    }
    results_json(&sections)
}

fn tool_faults() -> EdaFaultPlan {
    EdaFaultPlan::parse(TOOL_PLAN).expect("TOOL_PLAN parses")
}

fn llm_faults() -> FaultConfig {
    FaultConfig::parse("0.15").expect("llm plan parses")
}

/// Check 1: LLM + EDA faults on, results byte-identical across worker
/// counts.
fn thread_invariance(tasks: usize) -> Vec<Check> {
    let mut config = grid_config(tasks);
    config.faults = llm_faults();
    config.eda_faults = tool_faults();
    let one = grid_json(&config, None);
    config.threads = 2;
    let two = grid_json(&config, None);
    vec![check(
        "faulted-grid-thread-invariance",
        one == two,
        if one == two {
            format!("{} bytes identical across threads 1 and 2", one.len())
        } else {
            "results JSON diverged between 1 and 2 worker threads".to_string()
        },
    )]
}

/// Check 2: disk chaos changes no result bytes, and reopening the
/// store sweeps the stale tempfiles the fault plan forced.
fn disk_chaos(tasks: usize) -> Vec<Check> {
    let dir = scratch_dir("disk");
    let clean = grid_json(&grid_config(tasks), None);
    let mut config = grid_config(tasks);
    config.eda_cache_dir = Some(dir.to_string_lossy().into_owned());
    config.eda_faults = EdaFaultPlan::parse(DISK_PLAN).expect("DISK_PLAN parses");
    let chaotic = grid_json(&config, None);
    let mut checks = vec![check(
        "disk-chaos-invisible-in-results",
        clean == chaotic,
        if clean == chaotic {
            "fault-injected persistent cache run equals cache-free run".to_string()
        } else {
            "disk fault plan leaked into result bytes".to_string()
        },
    )];

    let before = tmp_count(&dir);
    // Reopening the store is the sweep; the plan is irrelevant here.
    drop(EdaCache::persistent_with_faults(&dir, EdaFaultPlan::off()));
    let after = tmp_count(&dir);
    checks.push(check(
        "stale-tempfile-sweep",
        before > 0 && after == 0,
        format!("{before} stale .tmp-* file(s) before reopen, {after} after"),
    ));
    let _ = std::fs::remove_dir_all(&dir);
    checks
}

/// Check 3: checkpointing under log corruption, and resuming over the
/// damaged directory, both reproduce the checkpoint-free baseline.
fn checkpoint_resume(tasks: usize) -> Vec<Check> {
    let dir = scratch_dir("ckpt");
    let mut config = grid_config(tasks);
    config.eda_faults = EdaFaultPlan::parse(CKPT_PLAN).expect("CKPT_PLAN parses");
    let baseline = grid_json(&config, None);
    config.checkpoint_dir = Some(dir.to_string_lossy().into_owned());
    let first = grid_json(&config, None);
    let resumed = grid_json(&config, None);
    let _ = std::fs::remove_dir_all(&dir);
    let pass = first == baseline && resumed == baseline;
    vec![check(
        "checkpoint-resume-equality",
        pass,
        if pass {
            "faulted checkpoint run and its resume both equal the baseline".to_string()
        } else {
            format!(
                "divergence: first==baseline {}, resumed==baseline {}",
                first == baseline,
                resumed == baseline
            )
        },
    )]
}

/// Check 4: under `crash=1.0,retry_max=N` every tool invocation
/// crashes every attempt, so the counters must satisfy
/// `injected == retries + exhausted` and
/// `retries == retry_max * exhausted` exactly.
fn counter_consistency() -> Vec<Check> {
    const RETRY_MAX: u64 = 2;
    let mut config = grid_config(2);
    config.eda_faults =
        EdaFaultPlan::parse(&format!("crash=1.0,retry_max={RETRY_MAX}")).expect("plan parses");
    let recorder = Recorder::new();
    let _ = grid_json(&config, Some(&recorder));
    let metrics = recorder.metrics();
    let injected = counter_sum(&metrics, "eda_fault_injected_total");
    let retries = counter_sum(&metrics, "resilience_eda_retries_total");
    let exhausted = counter_sum(&metrics, "resilience_eda_exhausted_total");
    let pass = injected > 0 && injected == retries + exhausted && retries == RETRY_MAX * exhausted;
    vec![check(
        "fault-counter-arithmetic",
        pass,
        format!(
            "injected {injected}, retries {retries}, exhausted {exhausted} \
             (retry_max {RETRY_MAX})"
        ),
    )]
}

fn counter_sum(metrics: &MetricsRegistry, name: &str) -> u64 {
    metrics
        .snapshot()
        .iter()
        .filter(|(k, _)| k.name == name)
        .map(|(_, v)| match v {
            MetricValue::Counter(n) => *n,
            _ => 0,
        })
        .sum()
}

/// Check 5: the serve journal makes a SIGKILLed server's jobs
/// replayable byte-for-byte. Runs an uninterrupted reference child,
/// then a journaled child killed at a seed-derived admitted-job
/// count, restarts it over the same journal directory and compares
/// every job's frame stream.
fn serve_kill_restart(seed: u64) -> Vec<Check> {
    let serve = match serve_binary() {
        Ok(p) => p,
        Err(e) => return vec![check("serve-kill-restart", false, e)],
    };
    let jobs = ["chaos-1", "chaos-2"];
    let journal_dir = scratch_dir("journal");

    // Reference: an uninterrupted, journal-free server under the same
    // fault plans.
    let mut reference = match spawn_serve(&serve, None) {
        Ok(r) => r,
        Err(e) => return vec![check("serve-kill-restart", false, e)],
    };
    let mut want = Vec::new();
    for job in jobs {
        match submit(reference.addr, "acme", job, true) {
            Ok(t) => want.push(t),
            Err(e) => {
                let _ = reference.child.kill();
                return vec![check("serve-kill-restart", false, e)];
            }
        }
    }
    shutdown(&mut reference);

    // Chaos: journaled server, killed right after the ack of job
    // `kill_at` — admitted (and therefore journaled) but possibly
    // unfinished. Jobs before the kill point run to completion first,
    // so both "pending at kill" and "done before kill" recovery paths
    // get exercised as the seed varies.
    let kill_at = (seed as usize) % jobs.len();
    let mut victim = match spawn_serve(&serve, Some(&journal_dir)) {
        Ok(r) => r,
        Err(e) => return vec![check("serve-kill-restart", false, e)],
    };
    for (i, job) in jobs.iter().enumerate() {
        let r = if i < kill_at {
            submit(victim.addr, "acme", job, true).map(|_| ())
        } else {
            // Ack only: leave it admitted, then pull the plug.
            submit(victim.addr, "acme", job, false).map(|_| ())
        };
        if let Err(e) = r {
            let _ = victim.child.kill();
            return vec![check("serve-kill-restart", false, e)];
        }
        if i == kill_at {
            break;
        }
    }
    let _ = victim.child.kill();
    let _ = victim.child.wait();

    // Restart over the same journal. Recovery re-admits whatever the
    // journal says is unfinished; resubmitting every id must replay
    // the reference transcripts byte-for-byte (recovered jobs out of
    // the memo, already-done ones via a fresh deterministic run).
    let mut revived = match spawn_serve(&serve, Some(&journal_dir)) {
        Ok(r) => r,
        Err(e) => return vec![check("serve-kill-restart", false, e)],
    };
    let mut checks = Vec::new();
    for (job, want) in jobs.iter().zip(&want) {
        match submit_with_retry(revived.addr, "acme", job) {
            Ok(got) => {
                let pass = got == *want;
                checks.push(check(
                    "serve-kill-restart",
                    pass,
                    if pass {
                        format!(
                            "{job}: {} frame(s) byte-identical after kill+restart",
                            got.len()
                        )
                    } else {
                        format!("{job}: replayed frames diverged from uninterrupted run")
                    },
                ));
            }
            Err(e) => checks.push(check("serve-kill-restart", false, format!("{job}: {e}"))),
        }
    }
    shutdown(&mut revived);
    let _ = std::fs::remove_dir_all(&journal_dir);
    checks
}

struct ServeChild {
    child: Child,
    addr: SocketAddr,
}

fn serve_binary() -> Result<PathBuf, String> {
    let me = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    let dir = me.parent().ok_or("binary has no parent dir")?;
    let path = dir.join(format!("aivril-serve{}", std::env::consts::EXE_SUFFIX));
    if path.exists() {
        Ok(path)
    } else {
        Err(format!("aivril-serve not found next to {}", me.display()))
    }
}

/// Spawns an `aivril-serve` child on an ephemeral port with one
/// worker and the composed fault plans, scrubbing inherited env, and
/// parses the bound address off its stdout.
fn spawn_serve(binary: &Path, journal_dir: Option<&Path>) -> Result<ServeChild, String> {
    let mut cmd = Command::new(binary);
    for key in SCRUBBED_ENV {
        cmd.env_remove(key);
    }
    cmd.env("AIVRIL_SERVE_ADDR", "127.0.0.1:0")
        .env("AIVRIL_SERVE_WORKERS", "1")
        .env("AIVRIL_FAULTS", SERVE_LLM_PLAN)
        .env("AIVRIL_EDA_FAULTS", SERVE_EDA_PLAN)
        .stdout(Stdio::piped())
        .stderr(Stdio::null());
    if let Some(dir) = journal_dir {
        cmd.env("AIVRIL_SERVE_JOURNAL_DIR", dir);
    }
    let mut child = cmd
        .spawn()
        .map_err(|e| format!("spawn aivril-serve: {e}"))?;
    let stdout = child.stdout.take().expect("piped stdout");
    let mut reader = BufReader::new(stdout);
    loop {
        let mut line = String::new();
        let n = reader
            .read_line(&mut line)
            .map_err(|e| format!("read serve stdout: {e}"))?;
        if n == 0 {
            let _ = child.kill();
            return Err("serve exited before printing its address".to_string());
        }
        if let Some(rest) = line.trim().strip_prefix("[serve] listening on ") {
            let addr = rest
                .split_whitespace()
                .next()
                .unwrap_or("")
                .parse()
                .map_err(|e| format!("parse serve addr from {rest:?}: {e}"))?;
            return Ok(ServeChild { child, addr });
        }
    }
}

/// Submits one job over TCP. With `to_result` reads the full frame
/// stream (ack, progress…, result); otherwise returns after the ack,
/// leaving the job admitted but (likely) unfinished.
fn submit(
    addr: SocketAddr,
    tenant: &str,
    job: &str,
    to_result: bool,
) -> Result<Vec<String>, String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .map_err(|e| format!("read timeout: {e}"))?;
    let mut writer = stream.try_clone().map_err(|e| format!("clone: {e}"))?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader
        .read_line(&mut line)
        .map_err(|e| format!("hello: {e}"))?;
    if !line.contains("\"type\":\"hello\"") {
        return Err(format!("expected hello frame, got {line:?}"));
    }
    writeln!(
        writer,
        "{{\"type\":\"submit\",\"tenant\":\"{tenant}\",\"job\":\"{job}\",\
         \"task\":\"prob001_or2\"}}"
    )
    .map_err(|e| format!("submit: {e}"))?;
    let mut transcript = Vec::new();
    loop {
        let mut line = String::new();
        let n = reader
            .read_line(&mut line)
            .map_err(|e| format!("frame: {e}"))?;
        if n == 0 {
            return Err("connection closed mid-stream".to_string());
        }
        let line = line.trim_end().to_string();
        if line.contains("\"type\":\"error\"") || line.contains("\"type\":\"reject\"") {
            return Err(format!("unexpected frame: {line}"));
        }
        let terminal = line.contains("\"type\":\"result\"");
        transcript.push(line);
        if !to_result || terminal {
            return Ok(transcript);
        }
    }
}

/// Post-restart resubmit. A resubmission can attach to a recovered
/// job that is mid-execution and whose frames already went to the
/// recovery sink; the server memoizes completed frame streams, so
/// backing off and resubmitting converges on the byte-exact replay.
fn submit_with_retry(addr: SocketAddr, tenant: &str, job: &str) -> Result<Vec<String>, String> {
    let mut last = String::new();
    for _ in 0..40 {
        match submit(addr, tenant, job, true) {
            Ok(t) => return Ok(t),
            Err(e) => last = e,
        }
        std::thread::sleep(Duration::from_millis(250));
    }
    Err(format!("no result after retries: {last}"))
}

fn shutdown(serve: &mut ServeChild) {
    if let Ok(stream) = TcpStream::connect(serve.addr) {
        let mut writer = match stream.try_clone() {
            Ok(w) => w,
            Err(_) => {
                let _ = serve.child.kill();
                let _ = serve.child.wait();
                return;
            }
        };
        let mut reader = BufReader::new(stream);
        let mut line = String::new();
        let _ = reader.read_line(&mut line);
        let _ = writeln!(writer, "{{\"type\":\"shutdown\"}}");
    }
    let _ = serve.child.wait();
}

fn scratch_dir(leg: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("aivril-chaos-{leg}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn tmp_count(dir: &Path) -> usize {
    std::fs::read_dir(dir)
        .map(|entries| {
            entries
                .flatten()
                .filter(|e| e.file_name().to_string_lossy().starts_with(".tmp-"))
                .count()
        })
        .unwrap_or(0)
}
