//! Population counters (8 problems).

use crate::builders::{comb_problem, CombSpec};
use crate::port::Port;
use crate::{Difficulty, Family, Problem};

fn out_width(width: u32) -> u32 {
    // Enough bits to hold `width` itself.
    32 - width.leading_zeros()
}

/// Sum of bits, expressed as an explicit adder tree in both languages.
fn bit_sum_vlog(width: u32) -> String {
    let terms: Vec<String> = (0..width).map(|i| format!("d[{i}]")).collect();
    format!("  assign count = {};\n", terms.join(" + "))
}

fn bit_sum_vhdl(width: u32, out_w: u32) -> String {
    // Each 1-bit slice is zero-extended to the output width before the
    // additions so the sum cannot overflow.
    let pad = "0".repeat((out_w - 1) as usize);
    let terms: Vec<String> = (0..width)
        .map(|i| format!("(\"{pad}\" & d({i} downto {i}))"))
        .collect();
    format!("  count <= {};\n", terms.join(" + "))
}

fn popcount(width: u32) -> CombSpec {
    let ow = out_width(width);
    CombSpec {
        name: format!("popcount_w{width}"),
        family: Family::Popcount,
        difficulty: if width >= 8 {
            Difficulty::Medium
        } else {
            Difficulty::Easy
        },
        description: format!(
            "count is the number of 1 bits in the {width}-bit input d (population count)."
        ),
        inputs: vec![Port::new("d", width)],
        outputs: vec![Port::new("count", ow)],
        vlog_body: bit_sum_vlog(width),
        vlog_out_reg: false,
        vhdl_body: bit_sum_vhdl(width, ow),
        vhdl_decls: String::new(),
        eval: Box::new(|v| vec![u64::from(v[0].count_ones())]),
    }
}

fn count_zeros(width: u32) -> CombSpec {
    let ow = out_width(width);
    let pad = "0".repeat((ow - 1) as usize);
    let terms_v: Vec<String> = (0..width).map(|i| format!("~d[{i}]")).collect();
    let terms_h: Vec<String> = (0..width)
        .map(|i| format!("(\"{pad}\" & (not d({i} downto {i})))"))
        .collect();
    CombSpec {
        name: format!("count_zeros_w{width}"),
        family: Family::Popcount,
        difficulty: Difficulty::Medium,
        description: format!("count is the number of 0 bits in the {width}-bit input d."),
        inputs: vec![Port::new("d", width)],
        outputs: vec![Port::new("count", ow)],
        vlog_body: format!("  assign count = {};\n", terms_v.join(" + ")),
        vlog_out_reg: false,
        vhdl_body: format!("  count <= {};\n", terms_h.join(" + ")),
        vhdl_decls: String::new(),
        eval: Box::new(move |v| vec![u64::from(width - v[0].count_ones())]),
    }
}

fn majority_bits(width: u32) -> CombSpec {
    let ow = out_width(width);
    let half = width / 2;
    let pad = "0".repeat((ow - 1) as usize);
    let terms_h: Vec<String> = (0..width)
        .map(|i| format!("(\"{pad}\" & d({i} downto {i}))"))
        .collect();
    CombSpec {
        name: format!("ones_majority_w{width}"),
        family: Family::Popcount,
        difficulty: Difficulty::Medium,
        description: format!("y is 1 when strictly more than half of the {width} bits of d are 1."),
        inputs: vec![Port::new("d", width)],
        outputs: vec![Port::new("y", 1)],
        vlog_body: format!(
            "  wire [{}:0] total;\n  assign total = {};\n  assign y = (total > {half});\n",
            ow - 1,
            (0..width)
                .map(|i| format!("d[{i}]"))
                .collect::<Vec<_>>()
                .join(" + ")
        ),
        vlog_out_reg: false,
        vhdl_body: format!(
            "  total <= {};\n  y <= '1' when unsigned(total) > {half} else '0';\n",
            terms_h.join(" + ")
        ),
        vhdl_decls: format!("  signal total : std_logic_vector({} downto 0);\n", ow - 1),
        eval: Box::new(move |v| vec![u64::from(v[0].count_ones() > half)]),
    }
}

/// Appends the family's problems.
pub fn extend(problems: &mut Vec<Problem>) {
    for w in [3, 4, 8, 16] {
        problems.push(comb_problem(popcount(w)));
    }
    for w in [4, 8] {
        problems.push(comb_problem(count_zeros(w)));
    }
    for w in [4, 8] {
        problems.push(comb_problem(majority_bits(w)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contributes_8_problems() {
        let mut v = Vec::new();
        extend(&mut v);
        assert_eq!(v.len(), 8);
    }

    #[test]
    fn output_widths() {
        assert_eq!(out_width(3), 2);
        assert_eq!(out_width(4), 3);
        assert_eq!(out_width(8), 4);
        assert_eq!(out_width(16), 5);
    }

    #[test]
    fn popcount_golden() {
        let s = popcount(8);
        assert_eq!((s.eval)(&[0xFF]), vec![8]);
        assert_eq!((s.eval)(&[0b0101_0001]), vec![3]);
    }

    #[test]
    fn majority_strict() {
        let s = majority_bits(4);
        assert_eq!((s.eval)(&[0b0011]), vec![0], "half is not a majority");
        assert_eq!((s.eval)(&[0b0111]), vec![1]);
    }
}
